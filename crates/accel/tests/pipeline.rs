//! End-to-end correctness of the accelerator pipeline against the AES
//! reference, and the headline static-verification results.

use accel::driver::{AccelDriver, Request};
use accel::{baseline, baseline_annotated, protected, user_label, Protection, PIPELINE_DEPTH};
use aes_core::Aes;

fn fresh(protection: Protection) -> AccelDriver {
    AccelDriver::new(protection)
}

#[test]
fn baseline_encrypts_one_block_correctly() {
    let mut drv = fresh(Protection::Off);
    let key = [
        0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f,
        0x3c,
    ];
    let alice = user_label(1);
    drv.load_key(0, key, alice);
    let pt = *b"\x32\x43\xf6\xa8\x88\x5a\x30\x8d\x31\x31\x98\xa2\xe0\x37\x07\x34";
    drv.submit(&Request {
        block: pt,
        key_slot: 0,
        user: alice,
    });
    drv.drain(2 * PIPELINE_DEPTH as u64 + 10);
    assert_eq!(drv.responses.len(), 1);
    assert_eq!(drv.responses[0].block, Aes::new_128(key).encrypt_block(pt));
}

#[test]
fn protected_encrypts_one_block_correctly() {
    let mut drv = fresh(Protection::Full);
    let key = [7u8; 16];
    let alice = user_label(1);
    drv.load_key(0, key, alice);
    let pt = [0x42u8; 16];
    drv.submit(&Request {
        block: pt,
        key_slot: 0,
        user: alice,
    });
    drv.drain(2 * PIPELINE_DEPTH as u64 + 10);
    assert_eq!(drv.responses.len(), 1);
    assert_eq!(drv.responses[0].block, Aes::new_128(key).encrypt_block(pt));
    assert!(drv.violations().is_empty(), "{:?}", drv.violations());
}

#[test]
fn pipeline_latency_is_thirty_cycles() {
    let mut drv = fresh(Protection::Full);
    let alice = user_label(1);
    drv.load_key(0, [1u8; 16], alice);
    drv.submit(&Request {
        block: [2u8; 16],
        key_slot: 0,
        user: alice,
    });
    drv.drain(100);
    let r = drv.responses[0];
    assert_eq!(
        r.completed - r.submitted,
        PIPELINE_DEPTH as u64,
        "one block completes in exactly {PIPELINE_DEPTH} cycles"
    );
}

#[test]
fn pipeline_sustains_one_block_per_cycle() {
    let mut drv = fresh(Protection::Full);
    let alice = user_label(1);
    drv.load_key(0, [1u8; 16], alice);
    let n = 64u64;
    for i in 0..n {
        let mut block = [0u8; 16];
        block[0] = i as u8;
        assert!(drv.try_submit(&Request {
            block,
            key_slot: 0,
            user: alice,
        }));
    }
    drv.drain(200);
    assert_eq!(drv.responses.len(), n as usize);
    // Back-to-back completions: one per cycle.
    for pair in drv.responses.windows(2) {
        assert_eq!(pair[1].completed - pair[0].completed, 1);
    }
}

#[test]
fn multi_user_interleaving_gives_correct_results() {
    // Fine-grained sharing: blocks from two users interleave cycle by
    // cycle inside the pipeline and all come out correct (Fig. 7).
    let mut drv = fresh(Protection::Full);
    let alice = user_label(1);
    let eve = user_label(0);
    let key_a = [0xaau8; 16];
    let key_e = [0xeeu8; 16];
    drv.load_key(0, key_a, alice);
    drv.load_key(1, key_e, eve);

    let aes_a = Aes::new_128(key_a);
    let aes_e = Aes::new_128(key_e);
    let mut expected = Vec::new();
    for i in 0..32u8 {
        let block = [i; 16];
        if i % 2 == 0 {
            drv.submit(&Request {
                block,
                key_slot: 0,
                user: alice,
            });
            expected.push(aes_a.encrypt_block(block));
        } else {
            drv.submit(&Request {
                block,
                key_slot: 1,
                user: eve,
            });
            expected.push(aes_e.encrypt_block(block));
        }
    }
    drv.drain(200);
    let got: Vec<[u8; 16]> = drv.responses.iter().map(|r| r.block).collect();
    assert_eq!(got, expected);
    assert!(drv.violations().is_empty(), "{:?}", drv.violations());
}

#[test]
fn protected_design_passes_static_verification() {
    let report = ifc_check::check(&protected());
    assert!(
        report.is_secure(),
        "protected accelerator must verify:\n{report}"
    );
    assert!(
        !report.runtime_checked_downgrades.is_empty(),
        "the output release is a runtime-checked downgrade"
    );
}

#[test]
fn annotated_baseline_is_flagged_by_static_verification() {
    let report = ifc_check::check(&baseline_annotated());
    assert!(
        !report.is_secure(),
        "the unprotected structure must be flagged"
    );
    // The key/plaintext disclosure at out_block, the debug port leak, and
    // the config integrity hole are all distinct findings.
    assert!(
        report.violations.len() >= 3,
        "expected at least 3 violations, got:\n{report}"
    );
}

#[test]
fn baseline_and_protected_agree_on_ciphertexts() {
    let key = [0x10u8; 16];
    let alice = user_label(2);
    let pt = [0x5au8; 16];
    let mut outs = Vec::new();
    for p in [Protection::Off, Protection::Full] {
        let mut drv = fresh(p);
        drv.load_key(0, key, alice);
        drv.submit(&Request {
            block: pt,
            key_slot: 0,
            user: alice,
        });
        drv.drain(100);
        outs.push(drv.responses[0].block);
    }
    assert_eq!(outs[0], outs[1]);
    assert_eq!(outs[0], Aes::new_128(key).encrypt_block(pt));
}

#[test]
fn baseline_designs_lower_and_simulate() {
    for design in [baseline(), baseline_annotated(), protected()] {
        let net = design.lower().expect("lowers");
        assert!(net.topo.len() >= net.nodes.len() / 2);
    }
}
