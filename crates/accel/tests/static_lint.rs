//! The static verification suite against the real accelerator designs:
//! the intact protected netlist must lint clean at error severity, and
//! the known-bad variants must not.

use ifc_check::dataflow::{run_static_passes, LintConfig, Severity};

fn errors(report: &ifc_check::LintReport) -> Vec<String> {
    report
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .map(ToString::to_string)
        .collect()
}

#[test]
fn protected_design_lints_clean_at_error_severity() {
    let design = accel::protected();
    let net = design.lower().expect("protected design lowers");
    let report = run_static_passes(Some(&design), &net, &LintConfig::new());
    assert_eq!(errors(&report), Vec::<String>::new());
}

#[test]
fn trojaned_design_is_flagged() {
    let design = accel::trojaned(accel::Protection::Full);
    let net = design.lower().expect("trojaned design lowers");
    let report = run_static_passes(Some(&design), &net, &LintConfig::new());
    let errs = errors(&report);
    assert!(!errs.is_empty(), "trojan must be statically visible");
}

#[test]
fn crosscheck_holds_on_seeded_sessions_across_all_track_modes() {
    let net = accel::protected().lower().expect("protected design lowers");
    let outcome = accel::crosscheck::crosscheck_campaign(&net, 2019, &LintConfig::new());
    assert!(
        outcome.sessions >= 8,
        "need ≥8 sessions for the acceptance gate"
    );
    assert_eq!(
        outcome
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>(),
        Vec::<String>::new(),
        "static bound plane must dominate every observed runtime tag"
    );
}

#[test]
fn baseline_design_has_no_secret_timing_findings() {
    let design = accel::baseline();
    let net = design.lower().expect("baseline design lowers");
    let report = run_static_passes(Some(&design), &net, &LintConfig::new());
    assert!(
        report.findings.iter().all(|f| f.pass != "secret-timing"),
        "{report}"
    );
}
