//! The pipelined E/D datapath: decryption through the same 30-stage
//! pipeline, with on-the-fly inverse key expansion fed by the decrypt-key
//! preparation unit.

use accel::driver::{AccelDriver, Request};
use accel::{master_key_encrypt, supervisor_label, user_label, Protection, PIPELINE_DEPTH};
use aes_core::Aes;

#[test]
fn protected_decrypts_one_block_correctly() {
    let mut drv = AccelDriver::new(Protection::Full);
    let key = [
        0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f,
        0x3c,
    ];
    let alice = user_label(1);
    drv.load_key(0, key, alice);
    let pt = *b"\x32\x43\xf6\xa8\x88\x5a\x30\x8d\x31\x31\x98\xa2\xe0\x37\x07\x34";
    let ct = Aes::new_128(key).encrypt_block(pt);
    drv.submit_decrypt(&Request {
        block: ct,
        key_slot: 0,
        user: alice,
    });
    drv.drain(100);
    assert_eq!(drv.responses.len(), 1);
    assert_eq!(drv.responses[0].block, pt);
    assert!(drv.violations().is_empty(), "{:?}", drv.violations());
}

#[test]
fn baseline_decrypts_too() {
    let mut drv = AccelDriver::new(Protection::Off);
    let key = [0x42u8; 16];
    let alice = user_label(2);
    drv.load_key(1, key, alice);
    let pt = [0x99u8; 16];
    let ct = Aes::new_128(key).encrypt_block(pt);
    drv.submit_decrypt(&Request {
        block: ct,
        key_slot: 1,
        user: alice,
    });
    drv.drain(100);
    assert_eq!(drv.responses[0].block, pt);
}

#[test]
fn decrypt_latency_matches_encrypt() {
    let mut drv = AccelDriver::new(Protection::Full);
    let alice = user_label(1);
    drv.load_key(0, [7u8; 16], alice);
    drv.submit_decrypt(&Request {
        block: [1u8; 16],
        key_slot: 0,
        user: alice,
    });
    drv.drain(100);
    let r = drv.responses[0];
    assert_eq!(r.completed - r.submitted, PIPELINE_DEPTH as u64);
}

#[test]
fn interleaved_enc_dec_streams_are_correct() {
    // Encryptions and decryptions from two users share the pipeline in
    // adjacent slots — the full E/D fine-grained sharing picture.
    let mut drv = AccelDriver::new(Protection::Full);
    let alice = user_label(1);
    let eve = user_label(0);
    let key_a = [0xaau8; 16];
    let key_e = [0xeeu8; 16];
    drv.load_key(0, key_a, alice);
    drv.load_key(1, key_e, eve);
    let aes_a = Aes::new_128(key_a);
    let aes_e = Aes::new_128(key_e);

    let mut expected = Vec::new();
    for i in 0..24u8 {
        let block = [i; 16];
        match i % 4 {
            0 => {
                drv.submit(&Request {
                    block,
                    key_slot: 0,
                    user: alice,
                });
                expected.push(aes_a.encrypt_block(block));
            }
            1 => {
                let ct = aes_e.encrypt_block(block);
                drv.submit_decrypt(&Request {
                    block: ct,
                    key_slot: 1,
                    user: eve,
                });
                expected.push(block);
            }
            2 => {
                let ct = aes_a.encrypt_block(block);
                drv.submit_decrypt(&Request {
                    block: ct,
                    key_slot: 0,
                    user: alice,
                });
                expected.push(block);
            }
            _ => {
                drv.submit(&Request {
                    block,
                    key_slot: 1,
                    user: eve,
                });
                expected.push(aes_e.encrypt_block(block));
            }
        }
    }
    drv.drain(200);
    let got: Vec<[u8; 16]> = drv.responses.iter().map(|r| r.block).collect();
    assert_eq!(got, expected);
    assert!(drv.violations().is_empty(), "{:?}", drv.violations());
}

#[test]
fn hardware_round_trip_without_software_reference() {
    // Encrypt then decrypt entirely in hardware.
    let mut drv = AccelDriver::new(Protection::Full);
    let alice = user_label(1);
    drv.load_key(0, [0x31u8; 16], alice);
    let pt = [0x5cu8; 16];
    drv.submit(&Request {
        block: pt,
        key_slot: 0,
        user: alice,
    });
    drv.drain(100);
    let ct = drv.responses[0].block;
    drv.submit_decrypt(&Request {
        block: ct,
        key_slot: 0,
        user: alice,
    });
    drv.drain(100);
    assert_eq!(drv.responses[1].block, pt);
}

#[test]
fn master_key_decrypt_follows_the_same_nm_rule() {
    // The supervisor can unseal master-key ciphertexts; Eve cannot.
    let sealed = master_key_encrypt([0x77u8; 16]);

    let mut drv = AccelDriver::new(Protection::Full);
    drv.submit_decrypt(&Request {
        block: sealed,
        key_slot: accel::MASTER_KEY_SLOT,
        user: supervisor_label(),
    });
    drv.drain(100);
    assert_eq!(drv.responses[0].block, [0x77u8; 16]);

    let mut drv = AccelDriver::new(Protection::Full);
    drv.submit_decrypt(&Request {
        block: sealed,
        key_slot: accel::MASTER_KEY_SLOT,
        user: user_label(0),
    });
    drv.drain(100);
    assert!(drv.responses.is_empty(), "Eve must not unseal");
    assert_eq!(drv.rejections.len(), 1);
}

#[test]
fn rekeying_refreshes_the_decrypt_key() {
    // Loading a new key into a slot re-runs the preparation unit; decrypts
    // immediately afterwards use the fresh RK10.
    let mut drv = AccelDriver::new(Protection::Full);
    let alice = user_label(1);
    drv.load_key(0, [0x01u8; 16], alice);
    drv.load_key(0, [0x02u8; 16], alice);
    let pt = [0xabu8; 16];
    let ct = Aes::new_128([0x02u8; 16]).encrypt_block(pt);
    drv.submit_decrypt(&Request {
        block: ct,
        key_slot: 0,
        user: alice,
    });
    drv.drain(100);
    assert_eq!(drv.responses[0].block, pt);
}
