//! Golden listing snapshot for the protected accelerator's optimized
//! tape.
//!
//! The full listing runs to thousands of lines, so the checked-in golden
//! is the disassembler header — which pins the instruction count and the
//! FNV-1a fingerprint of *every* column of the whole tape — plus the
//! first instructions as a human-readable anchor. Any change to lowering
//! or the optimizer pipeline shifts the fingerprint and fails this test;
//! re-bless deliberately with:
//!
//! ```text
//! BLESS_GOLDEN=1 cargo test -p accel --test disasm_golden
//! ```

use accel::protected;
use sim::{disasm, CompiledSim, OptConfig, TrackMode};

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/protected_tape.txt"
);

/// Header line + this many instruction lines.
const SNAPSHOT_INSTRS: usize = 47;

fn snapshot() -> String {
    let net = protected().lower().expect("protected design lowers");
    let sim = CompiledSim::with_tracking_opt(net, TrackMode::Precise, &OptConfig::all());
    let listing = sim.disassemble();
    let head: Vec<&str> = listing.lines().take(SNAPSHOT_INSTRS + 1).collect();
    assert_eq!(
        head.len(),
        SNAPSHOT_INSTRS + 1,
        "optimized protected tape shrank below the snapshot window"
    );
    let mut snap = head.join("\n");
    snap.push('\n');
    snap
}

#[test]
fn protected_tape_listing_matches_golden() {
    let snap = snapshot();
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, &snap).expect("golden file writes");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden snapshot missing; bless with BLESS_GOLDEN=1");
    assert_eq!(
        snap, golden,
        "protected tape listing diverged from the golden snapshot \
         (re-bless with BLESS_GOLDEN=1 if the change is intentional)"
    );
    // The snapshot is a truncated but well-formed listing: every line
    // must survive the disassembler's own parser.
    let parsed = disasm::parse(&snap).expect("golden snapshot parses");
    assert_eq!(parsed.len(), SNAPSHOT_INSTRS);
}
