//! The prover against the real accelerator builds: the protected design
//! is noninterferent at depth 8 for every observable, and the ablated
//! baseline leaks through its debug/config surface with a counterexample
//! the interpreter oracle confirms.

use ifc_check::prover::{prove_annotated, ProveOptions, Verdict};

#[test]
fn protected_design_proves_noninterferent_at_k8() {
    let net = accel::protected().lower().expect("protected lowers");
    let report = prove_annotated(&net, &ProveOptions::default());
    assert!(
        report.all_proved(),
        "protected must prove clean: {}",
        report.to_json()
    );
    // The bulk of the surface never touches a secret cone at all.
    let structural = report
        .results
        .iter()
        .filter(|r| matches!(r.verdict, Verdict::ProvedStructural))
        .count();
    assert!(structural >= 10, "expected a mostly-structural surface");
}

#[test]
fn baseline_debug_port_yields_confirmed_counterexample() {
    let net = accel::baseline_annotated()
        .lower()
        .expect("baseline lowers");
    let report = prove_annotated(
        &net,
        &ProveOptions {
            k: 3,
            targets: Some(vec!["dbg_out".into(), "cfg_out".into()]),
            ..ProveOptions::default()
        },
    );
    let cexs = report.counterexamples();
    assert!(!cexs.is_empty(), "ablated control must leak");
    for r in cexs {
        let Verdict::Counterexample(cex) = &r.verdict else {
            unreachable!();
        };
        assert!(cex.confirmed, "{} model must replay on the oracle", r.name);
        assert_ne!(cex.observed[0], cex.observed[1]);
    }
}
