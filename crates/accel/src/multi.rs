//! A multi-key-size (AES-128/192/256) encrypt/decrypt engine — the full
//! generality of the paper's Fig. 1, where "different key length requires
//! different numbers of computing iterations: N = 10 for 128-bit, 12 for
//! 192-bit, 14 for 256-bit keys".
//!
//! The engine first runs a *word-serial* key schedule into a round-key
//! register file (one 32-bit word per cycle, `4·(Nr+1)` words), then the
//! cipher rounds (one per cycle, forward or inverse). Latency is a
//! function of the *key size only* — never of key or data values — so the
//! design stays constant-time per configuration and verifies under the
//! same labels as the AES-128 engines.

use hdl::{Design, MemHandle, ModuleBuilder, Sig};
use ifc_lattice::{Conf, Integ, Label};

use crate::bytes::{
    add_round_key_hw, inv_mix_columns_hw, inv_sbox_rom, inv_shift_rows_hw, inv_sub_bytes_hw,
    mix_columns_hw, sbox_rom, shift_rows_hw, sub_bytes_hw,
};

/// Key-size selector values for the `key_size` input port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKeySize {
    /// AES-128: Nk = 4 words, Nr = 10 rounds.
    Aes128 = 0,
    /// AES-192: Nk = 6 words, Nr = 12 rounds.
    Aes192 = 1,
    /// AES-256: Nk = 8 words, Nr = 14 rounds.
    Aes256 = 2,
}

impl EngineKeySize {
    /// Number of 32-bit key words `Nk`.
    #[must_use]
    pub const fn nk(self) -> u32 {
        match self {
            EngineKeySize::Aes128 => 4,
            EngineKeySize::Aes192 => 6,
            EngineKeySize::Aes256 => 8,
        }
    }

    /// Number of rounds `Nr` (the paper's `N`).
    #[must_use]
    pub const fn rounds(self) -> u32 {
        self.nk() + 6
    }

    /// Expected engine latency in cycles: load + schedule + whiten +
    /// rounds.
    #[must_use]
    pub const fn latency(self) -> u32 {
        2 + 4 * (self.rounds() + 1) + self.rounds()
    }
}

/// SubWord (four S-box lookups) on a 32-bit word.
fn sub_word(m: &mut ModuleBuilder, rom: MemHandle, w: Sig) -> Sig {
    let b0 = m.slice(w, 31, 24);
    let b1 = m.slice(w, 23, 16);
    let b2 = m.slice(w, 15, 8);
    let b3 = m.slice(w, 7, 0);
    let s0 = m.mem_read(rom, b0);
    let s1 = m.mem_read(rom, b1);
    let s2 = m.mem_read(rom, b2);
    let s3 = m.mem_read(rom, b3);
    let hi = m.cat(s0, s1);
    let lo = m.cat(s2, s3);
    m.cat(hi, lo)
}

/// RotWord on a 32-bit word.
fn rot_word(m: &mut ModuleBuilder, w: Sig) -> Sig {
    let hi = m.slice(w, 31, 24);
    let lo = m.slice(w, 23, 0);
    m.cat(lo, hi)
}

/// Builds the multi-key-size E/D engine.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn multi_engine() -> Design {
    let mut m = ModuleBuilder::new("aes_engine_multi");
    let user = Label::new(Conf::new(5), Integ::new(5));
    let public_user = Label::new(Conf::PUBLIC, Integ::new(5));

    let start = m.input("start", 1);
    let decrypt = m.input("decrypt", 1);
    let key_size = m.input("key_size", 2);
    let block = m.input("block", 128);
    let key_hi = m.input("key_hi", 128);
    let key_lo = m.input("key_lo", 128);
    for s in [start, decrypt, key_size] {
        m.set_label(s, public_user);
    }
    m.set_label(block, user);
    m.set_label(key_hi, user);
    m.set_label(key_lo, user);

    let rom = sbox_rom(&mut m);
    let inv_rom = inv_sbox_rom(&mut m);
    // Round constants, directly indexed: rcon0_rom[i] = RCON[i].
    let rcon_rom = m.mem(
        "rcon0_rom",
        8,
        16,
        vec![
            0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36, 0x6c, 0, 0, 0, 0, 0,
        ],
    );
    // The round-key register file: up to 60 words of 32 bits.
    let rkmem = m.mem("rk_file", 32, 64, vec![]);

    // Key-size derived parameters.
    let nk = {
        let four = m.lit(4, 6);
        let six = m.lit(6, 6);
        let eight = m.lit(8, 6);
        let is192 = m.eq_lit(key_size, 1);
        let is256 = m.eq_lit(key_size, 2);
        let a = m.mux(is192, six, four);
        m.mux(is256, eight, a)
    };
    let total_words = {
        let w44 = m.lit(44, 6);
        let w52 = m.lit(52, 6);
        let w60 = m.lit(60, 6);
        let is192 = m.eq_lit(key_size, 1);
        let is256 = m.eq_lit(key_size, 2);
        let a = m.mux(is192, w52, w44);
        m.mux(is256, w60, a)
    };
    let nr = {
        let r10 = m.lit(10, 4);
        let r12 = m.lit(12, 4);
        let r14 = m.lit(14, 4);
        let is192 = m.eq_lit(key_size, 1);
        let is256 = m.eq_lit(key_size, 2);
        let a = m.mux(is192, r12, r10);
        m.mux(is256, r14, a)
    };

    // State registers.
    let state = m.reg("state", 128, 0);
    let blk_hold = m.reg("blk_hold", 128, 0);
    let w = m.reg("sched.w", 6, 0);
    let kmod = m.reg("sched.kmod", 3, 0);
    let rcon_i = m.reg("sched.rcon_i", 4, 0);
    let round = m.reg("round", 4, 0);
    // 0 = idle-after-reset/schedule, 1 = encrypt rounds, 2 = decrypt rounds.
    let mode = m.reg("mode", 2, 0);
    let scheduling = m.reg("scheduling", 1, 0);
    let busy = m.reg("busy", 1, 0);
    let valid = m.reg("valid", 1, 0);
    let dec_hold = m.reg("dec_hold", 1, 0);
    m.set_label(state, user);
    m.set_label(blk_hold, user);
    for s in [w, kmod, rcon_i, round, busy, valid, scheduling, dec_hold] {
        m.set_label(s, public_user);
    }
    m.set_label(mode, public_user);

    let zero1 = m.lit(0, 1);
    let one1 = m.lit(1, 1);
    let one4 = m.lit(1, 4);
    let one6 = m.lit(1, 6);

    // ----- accept -----------------------------------------------------------
    let not_busy = m.not(busy);
    let accept = m.and(start, not_busy);
    m.when(accept, |m| {
        m.connect(blk_hold, block);
        let z6 = m.lit(0, 6);
        let z3 = m.lit(0, 3);
        let z4 = m.lit(0, 4);
        m.connect(w, z6);
        m.connect(kmod, z3);
        m.connect(rcon_i, z4);
        m.connect(busy, one1);
        m.connect(scheduling, one1);
        m.connect(valid, zero1);
        m.connect(dec_hold, decrypt);
    });

    // ----- word-serial key schedule -------------------------------------------
    let sched_run = m.and(busy, scheduling);
    // Initial words come straight from the key inputs: word index w picks
    // hi[w] for w < 4, lo[w-4] otherwise.
    let init_word = {
        let mut acc = m.lit(0, 32);
        for i in 0..8u16 {
            let src = if i < 4 { key_hi } else { key_lo };
            let hi_bit = 127 - 32 * (i % 4);
            let slice = m.slice(src, hi_bit, hi_bit - 31);
            let sel = m.eq_lit(w, u128::from(i));
            acc = m.mux(sel, slice, acc);
        }
        acc
    };
    let in_init = m.lt(w, nk);

    // Expansion words: rk[w] = rk[w-Nk] ^ temp(rk[w-1]).
    let w_minus_1 = m.sub(w, one6);
    let w_minus_nk = m.sub(w, nk);
    let prev = m.mem_read(rkmem, w_minus_1);
    let base = m.mem_read(rkmem, w_minus_nk);
    let rcon = m.mem_read(rcon_rom, rcon_i);
    let rotated = rot_word(&mut m, prev);
    let sub_rot = sub_word(&mut m, rom, rotated);
    let rcon_word = {
        let z24 = m.lit(0, 24);
        m.cat(rcon, z24)
    };
    let g = m.xor(sub_rot, rcon_word);
    let sub_only = sub_word(&mut m, rom, prev);
    let at_nk_boundary = m.eq_lit(kmod, 0);
    let is256 = m.eq_lit(key_size, 2);
    let at_half = m.eq_lit(kmod, 4);
    let h_case = m.and(is256, at_half);
    let temp0 = m.mux(h_case, sub_only, prev);
    let temp = m.mux(at_nk_boundary, g, temp0);
    let expanded = m.xor(base, temp);
    let word = m.mux(in_init, init_word, expanded);

    let next_w = m.add(w, one6);
    let kmod_ext = {
        let z3 = m.lit(0, 3);
        m.cat(z3, kmod)
    };
    let one3 = m.lit(1, 3);
    let kmod_inc = m.add(kmod, one3);
    let kmod_wraps = {
        let next = m.add(kmod_ext, one6);
        m.eq(next, nk)
    };
    let z3 = m.lit(0, 3);
    let kmod_next = m.mux(kmod_wraps, z3, kmod_inc);
    let sched_done = {
        let next = m.add(w, one6);
        m.eq(next, total_words)
    };
    let not_init = m.not(in_init);
    let used_rcon = m.and(at_nk_boundary, not_init);
    let rcon_next = m.add(rcon_i, one4);

    m.when(sched_run, |m| {
        m.mem_write(rkmem, w, word);
        m.connect(w, next_w);
        m.connect(kmod, kmod_next);
        m.when(used_rcon, |m| m.connect(rcon_i, rcon_next));
        m.when(sched_done, |m| {
            m.connect(scheduling, zero1);
        });
    });

    // ----- round-key fetch -----------------------------------------------------
    // RK(r) = words 4r .. 4r+3.
    let rk_at = |m: &mut ModuleBuilder, r: Sig| -> Sig {
        let z2 = m.lit(0, 2);
        let base_addr = m.cat(r, z2);
        let mut words = Vec::with_capacity(4);
        for k in 0..4u128 {
            let off = m.lit(k, 6);
            let addr = m.add(base_addr, off);
            words.push(m.mem_read(rkmem, addr));
        }
        let hi = m.cat(words[0], words[1]);
        let lo = m.cat(words[2], words[3]);
        m.cat(hi, lo)
    };

    // ----- entering the rounds ---------------------------------------------------
    // One cycle after the schedule finishes (scheduling just cleared,
    // mode still 0): whiten and start.
    let mode_idle = m.eq_lit(mode, 0);
    let not_sched = m.not(scheduling);
    let b0 = m.and(busy, not_sched);
    let entering = m.and(b0, mode_idle);
    let z4 = m.lit(0, 4);
    let rk0 = rk_at(&mut m, z4);
    let rk_nr = rk_at(&mut m, nr);
    m.when(entering, |m| {
        let enc_white = add_round_key_hw(m, blk_hold, rk0);
        let dec_white = add_round_key_hw(m, blk_hold, rk_nr);
        let white = m.mux(dec_hold, dec_white, enc_white);
        m.connect(state, white);
        let enc_mode = m.lit(1, 2);
        let dec_mode = m.lit(2, 2);
        let next_mode = m.mux(dec_hold, dec_mode, enc_mode);
        m.connect(mode, next_mode);
        let one = m.lit(1, 4);
        let r_start = m.mux(dec_hold, nr, one);
        m.connect(round, r_start);
    });

    // ----- encrypt rounds ----------------------------------------------------------
    let enc_mode_sig = m.eq_lit(mode, 1);
    let enc_run = m.and(busy, enc_mode_sig);
    let rk_round = rk_at(&mut m, round);
    let subbed = sub_bytes_hw(&mut m, rom, state);
    let shifted = shift_rows_hw(&mut m, subbed);
    let mixed = mix_columns_hw(&mut m, shifted);
    let full_round = add_round_key_hw(&mut m, mixed, rk_round);
    let final_round = add_round_key_hw(&mut m, shifted, rk_round);
    let enc_last = m.eq(round, nr);
    let next_round = m.add(round, one4);
    let not_enc_last = m.not(enc_last);
    let enc_step = m.and(enc_run, not_enc_last);
    let enc_fin = m.and(enc_run, enc_last);
    let zero2 = m.lit(0, 2);
    m.when(enc_step, |m| {
        m.connect(state, full_round);
        m.connect(round, next_round);
    });
    m.when(enc_fin, |m| {
        m.connect(state, final_round);
        m.connect(busy, zero1);
        m.connect(valid, one1);
        m.connect(mode, zero2);
    });

    // ----- decrypt rounds -----------------------------------------------------------
    let dec_mode_sig = m.eq_lit(mode, 2);
    let dec_run = m.and(busy, dec_mode_sig);
    let prev_round = m.sub(round, one4);
    let rk_prev = rk_at(&mut m, prev_round);
    let inv_shifted = inv_shift_rows_hw(&mut m, state);
    let inv_subbed = inv_sub_bytes_hw(&mut m, inv_rom, inv_shifted);
    let added = add_round_key_hw(&mut m, inv_subbed, rk_prev);
    let dec_middle = inv_mix_columns_hw(&mut m, added);
    let dec_last = m.eq_lit(round, 1);
    let not_dec_last = m.not(dec_last);
    let dec_step = m.and(dec_run, not_dec_last);
    let dec_fin = m.and(dec_run, dec_last);
    m.when(dec_step, |m| {
        m.connect(state, dec_middle);
        m.connect(round, prev_round);
    });
    m.when(dec_fin, |m| {
        m.connect(state, added);
        m.connect(busy, zero1);
        m.connect(valid, one1);
        m.connect(mode, zero2);
    });

    // ----- release ---------------------------------------------------------------------
    let owner = m.tag_lit(user);
    let released = m.declassify(state, Label::PUBLIC_UNTRUSTED, owner);
    m.output("result", released);
    m.output_labeled("valid", valid, public_user);
    m.output_labeled("busy", busy, public_user);
    m.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aes_core::{block_to_u128, u128_to_block, Aes};
    use sim::Simulator;

    fn run(size: EngineKeySize, decrypt: bool, key: &[u8], block: [u8; 16]) -> ([u8; 16], u32) {
        let mut sim = Simulator::new(multi_engine().lower().expect("lowers"));
        let mut hi = [0u8; 16];
        let mut lo = [0u8; 16];
        hi.copy_from_slice(&key[..16]);
        lo[..key.len() - 16].copy_from_slice(&key[16..]);
        sim.set("key_hi", block_to_u128(hi));
        sim.set("key_lo", block_to_u128(lo));
        sim.set("key_size", size as u128);
        sim.set("block", block_to_u128(block));
        sim.set("decrypt", u128::from(decrypt));
        sim.set("start", 1);
        sim.tick();
        sim.set("start", 0);
        let mut cycles = 1u32;
        while sim.peek("valid") == 0 {
            sim.tick();
            cycles += 1;
            assert!(cycles < 200, "engine hung");
        }
        (u128_to_block(sim.peek("result")), cycles)
    }

    #[test]
    fn aes128_matches_fips_c1() {
        let key: Vec<u8> = (0..16).collect();
        let pt = *b"\x00\x11\x22\x33\x44\x55\x66\x77\x88\x99\xaa\xbb\xcc\xdd\xee\xff";
        let (ct, cycles) = run(EngineKeySize::Aes128, false, &key, pt);
        assert_eq!(
            ct,
            *b"\x69\xc4\xe0\xd8\x6a\x7b\x04\x30\xd8\xcd\xb7\x80\x70\xb4\xc5\x5a"
        );
        assert_eq!(cycles, EngineKeySize::Aes128.latency());
    }

    #[test]
    fn aes192_matches_fips_c2() {
        let key: Vec<u8> = (0..24).collect();
        let pt = *b"\x00\x11\x22\x33\x44\x55\x66\x77\x88\x99\xaa\xbb\xcc\xdd\xee\xff";
        let (ct, cycles) = run(EngineKeySize::Aes192, false, &key, pt);
        assert_eq!(
            ct,
            *b"\xdd\xa9\x7c\xa4\x86\x4c\xdf\xe0\x6e\xaf\x70\xa0\xec\x0d\x71\x91"
        );
        assert_eq!(cycles, EngineKeySize::Aes192.latency());
    }

    #[test]
    fn aes256_matches_fips_c3() {
        let key: Vec<u8> = (0..32).collect();
        let pt = *b"\x00\x11\x22\x33\x44\x55\x66\x77\x88\x99\xaa\xbb\xcc\xdd\xee\xff";
        let (ct, cycles) = run(EngineKeySize::Aes256, false, &key, pt);
        assert_eq!(
            ct,
            *b"\x8e\xa2\xb7\xca\x51\x67\x45\xbf\xea\xfc\x49\x90\x4b\x49\x60\x89"
        );
        assert_eq!(cycles, EngineKeySize::Aes256.latency());
    }

    #[test]
    fn decrypt_round_trips_all_sizes() {
        for (size, klen) in [
            (EngineKeySize::Aes128, 16usize),
            (EngineKeySize::Aes192, 24),
            (EngineKeySize::Aes256, 32),
        ] {
            let key: Vec<u8> = (0..klen as u8).map(|b| b.wrapping_mul(37) ^ 5).collect();
            let pt = [0x3cu8; 16];
            let ct_ref = Aes::new(&key).unwrap().encrypt_block(pt);
            let (ct, _) = run(size, false, &key, pt);
            assert_eq!(ct, ct_ref, "{size:?} encrypt");
            let (back, dec_cycles) = run(size, true, &key, ct);
            assert_eq!(back, pt, "{size:?} decrypt");
            assert_eq!(dec_cycles, size.latency());
        }
    }

    #[test]
    fn latency_depends_only_on_key_size() {
        // Fig. 1's N = 10/12/14 — and never on key *values*.
        let (_, a) = run(EngineKeySize::Aes128, false, &[0u8; 16], [0; 16]);
        let (_, b) = run(EngineKeySize::Aes128, false, &[0xff; 16], [9; 16]);
        assert_eq!(a, b);
        let (_, c) = run(EngineKeySize::Aes256, false, &[0u8; 32], [0; 16]);
        assert!(c > a, "more rounds for longer keys");
    }

    #[test]
    fn multi_engine_passes_static_verification() {
        let report = ifc_check::check(&multi_engine());
        assert!(report.is_secure(), "{report}");
    }
}
