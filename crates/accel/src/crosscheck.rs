//! The static/dynamic label cross-check harness (lint pass 4).
//!
//! Statically, [`ifc_check::dataflow::bound_plane`] claims a per-wire
//! upper bound on every label the runtime tag planes can ever hold. This
//! module drives seeded accelerator sessions on the interpreting,
//! compiled, and lane-batched simulators across the tracking modes, folds
//! the runtime tag planes they produce into an
//! [`ObservedPlane`](ifc_check::ObservedPlane), and diffs the result
//! against the static bound. Any wire where the static bound sits *below*
//! an observed runtime tag is a soundness bug in the static analysis (or
//! a driver stepping outside its annotated input contract) and fails the
//! pass.

use hdl::Netlist;
use ifc_check::dataflow::{bound_plane, crosscheck_findings, Finding, LintConfig, ObservedPlane};
use ifc_lattice::Label;
use sim::{BatchedSim, CompiledSim, LaneBackend, SimBackend, Simulator, TrackMode};

use crate::batch::BatchedDriver;
use crate::driver::{AccelDriver, Request};
use crate::fleet::block_from;
use crate::params::{supervisor_label, user_label};

/// The per-session key derivation salt [`crate::fleet::run_session`] uses,
/// so cross-check sessions exercise the same key material the fleet does.
const KEY_SALT: u64 = 0x4b45_5953;

fn fold<B: SimBackend>(driver: &mut AccelDriver<B>, plane: &mut ObservedPlane) {
    let sim = driver.sim_mut();
    sim.fold_label_plane(&mut plane.nodes);
    sim.fold_mem_labels(&mut plane.mems);
}

/// One instrumented session: load a tagged key, write the configuration
/// register as the supervisor, stream `blocks` encryptions, drain with a
/// per-cycle tag-plane sample, and probe the debug port — touching every
/// labelled region of the design while the plane records what the runtime
/// tags actually reached.
fn observe_session<B: SimBackend>(
    driver: &mut AccelDriver<B>,
    plane: &mut ObservedPlane,
    user: Label,
    seed: u64,
    blocks: usize,
) {
    driver.load_key(0, block_from(seed, KEY_SALT), user);
    fold(driver, plane);
    driver.write_cfg((seed as u8) | 1, supervisor_label());
    fold(driver, plane);
    for i in 0..blocks {
        driver.submit(&Request {
            block: block_from(seed, i as u64),
            key_slot: 0,
            user,
        });
        fold(driver, plane);
    }
    let mut guard = 0u32;
    while driver.in_flight() > 0 {
        driver.idle_cycle();
        fold(driver, plane);
        guard += 1;
        assert!(guard < 10_000, "cross-check session failed to drain");
    }
    driver.idle(4);
    let _ = driver.read_debug(0, supervisor_label());
    fold(driver, plane);
}

/// Folds the observed tag plane from `sessions` seeded sessions on
/// backend `B` in tracking mode `mode`, `blocks` encryptions each.
/// Deterministic in `base_seed`; sessions rotate through the SoC's user
/// levels.
#[must_use]
pub fn observe_sessions<B: SimBackend>(
    net: &Netlist,
    mode: TrackMode,
    sessions: usize,
    blocks: usize,
    base_seed: u64,
) -> ObservedPlane {
    let mut plane = ObservedPlane::new(net);
    for s in 0..sessions {
        let mut driver = AccelDriver::<B>::from_netlist_on(net.clone(), mode);
        observe_session(
            &mut driver,
            &mut plane,
            user_label(s % 4),
            base_seed ^ (0x5e55 * (s as u64 + 1)),
            blocks,
        );
    }
    plane
}

fn fold_batched<S: LaneBackend>(driver: &mut BatchedDriver<S>, plane: &mut ObservedPlane) {
    for lane in 0..driver.lanes() {
        let sim = driver.sim_mut();
        sim.fold_label_plane(lane, &mut plane.nodes);
        sim.fold_mem_labels(lane, &mut plane.mems);
    }
}

/// The lane-parallel counterpart of [`observe_sessions`]: all sessions
/// run as lanes of one [`LaneBackend`] — the batched interpreter
/// ([`sim::BatchedSim`]) or the native-codegen executor
/// ([`sim::NativeSim`]) — so the cross-check also covers the bit-sliced
/// tag-plane implementations.
#[must_use]
pub fn observe_lanes<S: LaneBackend>(
    net: &Netlist,
    mode: TrackMode,
    lanes: usize,
    blocks: usize,
    base_seed: u64,
) -> ObservedPlane {
    let mut plane = ObservedPlane::new(net);
    let mut driver = BatchedDriver::<S>::from_netlist(net.clone(), mode, lanes);
    let users: Vec<Label> = (0..lanes).map(|l| user_label(l % 4)).collect();
    let seeds: Vec<u64> = (0..lanes)
        .map(|l| base_seed ^ (0xba7c * (l as u64 + 1)))
        .collect();
    let keys: Vec<[u8; 16]> = seeds.iter().map(|&s| block_from(s, KEY_SALT)).collect();
    driver.load_keys(0, &keys, &users);
    fold_batched(&mut driver, &mut plane);

    let mut next = vec![0usize; lanes];
    let mut reqs: Vec<Option<Request>> = vec![None; lanes];
    let mut accepted = vec![false; lanes];
    let mut guard = 0u32;
    while next.iter().any(|&n| n < blocks) {
        for l in 0..lanes {
            reqs[l] = (next[l] < blocks).then(|| Request {
                block: block_from(seeds[l], next[l] as u64),
                key_slot: 0,
                user: users[l],
            });
        }
        driver.try_submit_each(&reqs, &mut accepted);
        for l in 0..lanes {
            if accepted[l] {
                next[l] += 1;
            }
        }
        fold_batched(&mut driver, &mut plane);
        guard += 1;
        assert!(guard < 10_000, "batched cross-check failed to submit");
    }
    while (0..lanes).any(|l| driver.in_flight(l) > 0) {
        driver.idle_cycle();
        fold_batched(&mut driver, &mut plane);
        guard += 1;
        assert!(guard < 10_000, "batched cross-check failed to drain");
    }
    plane
}

/// [`observe_lanes`] on the lane-batched interpreter (the historical
/// entry point; kept for callers that don't pick a backend).
#[must_use]
pub fn observe_batched(
    net: &Netlist,
    mode: TrackMode,
    lanes: usize,
    blocks: usize,
    base_seed: u64,
) -> ObservedPlane {
    observe_lanes::<BatchedSim>(net, mode, lanes, blocks, base_seed)
}

/// The outcome of a full cross-check campaign.
#[derive(Debug)]
pub struct CrosscheckOutcome {
    /// The merged observed plane across every backend and mode.
    pub observed: ObservedPlane,
    /// The cross-check findings (empty iff the static bound is sound for
    /// everything observed).
    pub findings: Vec<Finding>,
    /// How many seeded sessions contributed observations.
    pub sessions: usize,
}

/// Runs the full pass-4 campaign on a netlist: seeded sessions on the
/// interpreting, compiled, and lane-batched backends, across the `Off`,
/// `Conservative`, and `Precise` tracking modes, then diffs the merged
/// observed plane against the static bound plane.
#[must_use]
pub fn crosscheck_campaign(net: &Netlist, seed: u64, cfg: &LintConfig) -> CrosscheckOutcome {
    let mut observed = ObservedPlane::new(net);
    let mut sessions = 0usize;
    for (i, mode) in [TrackMode::Off, TrackMode::Conservative, TrackMode::Precise]
        .into_iter()
        .enumerate()
    {
        let m = seed ^ ((i as u64 + 1) << 32);
        observed.merge(&observe_sessions::<Simulator>(net, mode, 1, 2, m));
        observed.merge(&observe_sessions::<CompiledSim>(net, mode, 2, 3, m ^ 0xc0));
        sessions += 3;
        if mode != TrackMode::Off {
            observed.merge(&observe_batched(net, mode, 4, 2, m ^ 0xba));
            sessions += 4;
        }
    }
    let bound = bound_plane(net);
    let findings = crosscheck_findings(net, &bound, &observed, cfg);
    CrosscheckOutcome {
        observed,
        findings,
        sessions,
    }
}
