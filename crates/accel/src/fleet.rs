//! Parallel multi-session throughput harness.
//!
//! An SoC deployment of the accelerator serves many mutually distrusting
//! principals at once; for simulation-based evaluation the natural way to
//! scale is *sessions*, not cycles: N fully independent accelerator
//! instances, each with its own keys and request stream, running on N OS
//! threads. Netlist lowering happens once; every session receives a clone
//! of the lowered netlist and builds its own simulation backend
//! ([`Simulator`](sim::Simulator) or the compiled tape backend
//! [`CompiledSim`](sim::CompiledSim) — the harness is generic over
//! [`SimBackend`]).
//!
//! [`run_fleet`] drives a deterministic encrypt workload through every
//! session, checks each ciphertext against the software AES oracle, and
//! aggregates per-session statistics. The benchmark suite uses it to
//! measure 1-vs-N-session scaling for both backends.

use aes_core::Aes;
use hdl::Netlist;
use ifc_lattice::Label;
use sim::{
    BatchedSim, LaneBackend, NativeSim, OptConfig, RuntimeViolation, SimBackend, TrackMode,
    SUPPORTED_LANES,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

use crate::batch::BatchedDriver;
use crate::build::{protected, Protection};
use crate::driver::{AccelDriver, Request};
use crate::params::user_label;

/// Workload configuration for one fleet run.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Number of independent accelerator sessions (one thread each).
    pub sessions: usize,
    /// Encryption requests submitted per session.
    pub blocks_per_session: usize,
    /// Tracking mode every session's backend runs.
    pub mode: TrackMode,
    /// Seed mixed into each session's key and plaintext stream.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            sessions: 4,
            blocks_per_session: 32,
            mode: TrackMode::Precise,
            seed: 0x5eed,
        }
    }
}

/// What one session observed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Completed encryptions.
    pub responses: usize,
    /// Requests refused by the release check.
    pub rejections: usize,
    /// Runtime violations the tracking logic recorded.
    pub violations: usize,
    /// Cycles the session's simulator ran.
    pub cycles: u64,
    /// Ciphertexts that matched the software AES oracle.
    pub verified: usize,
    /// Cycle of the first runtime violation, if any — the mutation
    /// campaign's cycles-to-kill measurement.
    pub first_violation: Option<u64>,
}

/// Aggregated results of a fleet run.
#[derive(Debug, Clone, Default)]
pub struct FleetStats {
    /// Per-session statistics, in session order.
    pub sessions: Vec<SessionStats>,
}

impl FleetStats {
    /// Total completed encryptions across all sessions.
    #[must_use]
    pub fn total_responses(&self) -> usize {
        self.sessions.iter().map(|s| s.responses).sum()
    }

    /// Total runtime violations across all sessions.
    #[must_use]
    pub fn total_violations(&self) -> usize {
        self.sessions.iter().map(|s| s.violations).sum()
    }

    /// Total simulated cycles across all sessions.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.sessions.iter().map(|s| s.cycles).sum()
    }

    /// Whether every ciphertext in every session matched the software
    /// AES oracle.
    #[must_use]
    pub fn all_verified(&self) -> bool {
        self.sessions
            .iter()
            .all(|s| s.verified == s.responses && s.responses > 0)
    }

    /// The earliest violation cycle across all sessions, if any session
    /// recorded a runtime violation.
    #[must_use]
    pub fn first_violation_cycle(&self) -> Option<u64> {
        self.sessions.iter().filter_map(|s| s.first_violation).min()
    }

    /// Whether every session completed its full workload with a
    /// verified ciphertext for each submitted block — the functional
    /// acceptance a test bench without IFC oversight would apply.
    #[must_use]
    pub fn functionally_clean(&self, blocks_per_session: usize) -> bool {
        self.sessions
            .iter()
            .all(|s| s.responses == blocks_per_session && s.verified == s.responses)
    }
}

/// Deterministic per-session key/plaintext derivation (SplitMix64).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

pub(crate) fn block_from(seed: u64, i: u64) -> [u8; 16] {
    let hi = mix(seed ^ (2 * i));
    let lo = mix(seed ^ (2 * i + 1));
    let mut b = [0u8; 16];
    b[..8].copy_from_slice(&hi.to_be_bytes());
    b[8..].copy_from_slice(&lo.to_be_bytes());
    b
}

/// Runs one session's workload on an existing driver: load a key, submit
/// `blocks` encryptions under `user`, drain, and verify every ciphertext
/// against the software oracle.
pub fn run_session<B: SimBackend>(
    driver: &mut AccelDriver<B>,
    blocks: usize,
    user: Label,
    seed: u64,
) -> SessionStats {
    let key = block_from(seed, 0x4b45_5953);
    driver.load_key(0, key, user);
    for i in 0..blocks {
        driver.submit(&Request {
            block: block_from(seed, i as u64),
            key_slot: 0,
            user,
        });
    }
    driver.drain(10_000);

    let oracle = Aes::new(&key).expect("16-byte key");
    let verified = driver
        .responses
        .iter()
        .enumerate()
        .filter(|(i, r)| oracle.encrypt_block(block_from(seed, *i as u64)) == r.block)
        .count();
    SessionStats {
        responses: driver.responses.len(),
        rejections: driver.rejections.len(),
        violations: driver.violations().len(),
        cycles: driver.cycle(),
        verified,
        first_violation: driver.violations().first().map(RuntimeViolation::cycle),
    }
}

/// Number of worker threads for a fleet: one per hardware thread, never
/// more than there are work items (a fleet used to spawn one thread per
/// session, which on a small host oversubscribes the cores and measures
/// scheduler churn instead of simulation throughput).
fn worker_count(items: usize) -> usize {
    thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(items)
        .max(1)
}

/// Runs `config.sessions` independent accelerator instances on backend
/// `B`, on a bounded worker pool.
///
/// The netlist is lowered and compiled **once**: every session's driver
/// wraps a clone of one prototype backend, so for the compiled backends a
/// session costs only its own state arrays, not a recompilation of the
/// tape. Workers are clamped to [`std::thread::available_parallelism`]
/// and claim sessions from a shared counter, so the pool stays fully
/// busy without oversubscribing the host.
///
/// Sessions stay fully isolated — separate simulator state, separate key
/// material — so this measures how simulation throughput scales with
/// independent instances, the deployment shape of a multi-tenant SoC
/// evaluation.
#[must_use]
pub fn run_fleet_on_netlist<B: SimBackend + Clone + Send + Sync>(
    net: &Netlist,
    config: FleetConfig,
) -> FleetStats {
    let prototype = B::from_netlist(net.clone(), config.mode);
    let next = AtomicUsize::new(0);
    let results = Mutex::new(vec![SessionStats::default(); config.sessions]);
    thread::scope(|s| {
        for _ in 0..worker_count(config.sessions) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= config.sessions {
                    break;
                }
                let mut driver = AccelDriver::from_backend(prototype.clone());
                let user = user_label(i % 4);
                let seed = mix(config.seed ^ (i as u64) << 8);
                let stats = run_session(&mut driver, config.blocks_per_session, user, seed);
                results.lock().expect("no poisoned sessions")[i] = stats;
            });
        }
    });
    FleetStats {
        sessions: results.into_inner().expect("no poisoned sessions"),
    }
}

/// Runs one batch's workload: the same key-load / submit / drain / verify
/// sequence as [`run_session`], with lane `l` deriving its key and
/// plaintext stream from `seeds[l]` exactly as a single session would.
///
/// # Panics
///
/// Panics if `users` and `seeds` do not hold one entry per lane, or the
/// pipeline refuses input for 10 000 consecutive cycles.
pub fn run_lane_sessions<S: LaneBackend>(
    driver: &mut BatchedDriver<S>,
    blocks: usize,
    users: &[Label],
    seeds: &[u64],
) -> Vec<SessionStats> {
    let lanes = driver.lanes();
    assert_eq!(users.len(), lanes, "one user per lane");
    assert_eq!(seeds.len(), lanes, "one seed per lane");
    let keys: Vec<[u8; 16]> = seeds.iter().map(|&s| block_from(s, 0x4b45_5953)).collect();
    driver.load_keys(0, &keys, users);

    let mut next = vec![0usize; lanes];
    let mut reqs: Vec<Option<Request>> = vec![None; lanes];
    let mut accepted = vec![false; lanes];
    let mut stalled = 0u32;
    while next.iter().any(|&n| n < blocks) {
        for l in 0..lanes {
            reqs[l] = (next[l] < blocks).then(|| Request {
                block: block_from(seeds[l], next[l] as u64),
                key_slot: 0,
                user: users[l],
            });
        }
        driver.try_submit_each(&reqs, &mut accepted);
        let mut any = false;
        for l in 0..lanes {
            if accepted[l] {
                next[l] += 1;
                any = true;
            }
        }
        stalled = if any { 0 } else { stalled + 1 };
        assert!(stalled < 10_000, "pipeline refused input for 10000 cycles");
    }
    driver.drain(10_000);

    (0..lanes)
        .map(|l| {
            let oracle = Aes::new(&keys[l]).expect("16-byte key");
            let verified = driver.responses[l]
                .iter()
                .enumerate()
                .filter(|(i, r)| oracle.encrypt_block(block_from(seeds[l], *i as u64)) == r.block)
                .count();
            SessionStats {
                responses: driver.responses[l].len(),
                rejections: driver.rejections[l].len(),
                violations: driver.violations(l).len(),
                cycles: driver.cycle(),
                verified,
                first_violation: driver.violations(l).first().map(RuntimeViolation::cycle),
            }
        })
        .collect()
}

/// Runs `config.sessions` accelerator sessions scheduled onto lane
/// batches of the [`BatchedSim`] backend: sessions are greedily grouped
/// into the widest supported lane batches, the tape is compiled once and
/// shared by every batch, and a bounded worker pool claims batches.
///
/// Per-lane observable results (responses, rejections, violations,
/// verification) match [`run_fleet_on_netlist`] for the same
/// configuration; only the throughput differs, because one tape pass
/// advances a whole batch.
#[must_use]
pub fn run_fleet_batched(net: &Netlist, config: FleetConfig) -> FleetStats {
    run_fleet_batched_opt(net, config, &OptConfig::none())
}

/// [`run_fleet_batched`] with the tape optimizer: the shared program is
/// compiled once and run through the configured passes before any batch
/// executes, so every session benefits from the shrunken tape.
#[must_use]
pub fn run_fleet_batched_opt(net: &Netlist, config: FleetConfig, opt: &OptConfig) -> FleetStats {
    run_fleet_lanes_opt::<BatchedSim>(net, config, opt)
}

/// Runs the lane-batched fleet on the native-codegen backend
/// ([`NativeSim`]) with every optimizer pass enabled — the tape the
/// executor specializes code for. The first launch on a given
/// (netlist, mode, width) set pays one `rustc` invocation per distinct
/// lane width; later launches hit the on-disk compile cache
/// (see [`sim::cache_stats`]).
#[must_use]
pub fn run_fleet_native(net: &Netlist, config: FleetConfig) -> FleetStats {
    run_fleet_native_opt(net, config, &OptConfig::all())
}

/// [`run_fleet_native`] with an explicit optimizer configuration.
#[must_use]
pub fn run_fleet_native_opt(net: &Netlist, config: FleetConfig, opt: &OptConfig) -> FleetStats {
    run_fleet_lanes_opt::<NativeSim>(net, config, opt)
}

/// The generic lane-batched fleet engine behind
/// [`run_fleet_batched_opt`] and [`run_fleet_native_opt`]: sessions are
/// greedily grouped into the widest supported lane batches, one
/// prototype backend compiles the shared tape once, and a bounded worker
/// pool claims batches and re-stripes the prototype to each batch's
/// width.
#[must_use]
pub fn run_fleet_lanes_opt<S: LaneBackend + Send + Sync>(
    net: &Netlist,
    config: FleetConfig,
    opt: &OptConfig,
) -> FleetStats {
    // Greedy partition into the widest supported batches.
    let mut batches: Vec<(usize, usize)> = Vec::new(); // (first session, width)
    let mut i = 0;
    while i < config.sessions {
        let width = SUPPORTED_LANES
            .iter()
            .rev()
            .copied()
            .find(|&w| w <= config.sessions - i)
            .expect("width 1 always fits");
        batches.push((i, width));
        i += width;
    }

    // Compile once; every batch re-stripes the same program.
    let prototype = S::with_tracking_opt(net.clone(), config.mode, 1, opt);
    let next = AtomicUsize::new(0);
    let results = Mutex::new(vec![SessionStats::default(); config.sessions]);
    thread::scope(|s| {
        for _ in 0..worker_count(batches.len()) {
            s.spawn(|| loop {
                let b = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(first, width)) = batches.get(b) else {
                    break;
                };
                let mut driver = BatchedDriver::from_batched(prototype.with_lanes(width));
                let users: Vec<Label> = (first..first + width).map(|i| user_label(i % 4)).collect();
                let seeds: Vec<u64> = (first..first + width)
                    .map(|i| mix(config.seed ^ (i as u64) << 8))
                    .collect();
                let stats =
                    run_lane_sessions(&mut driver, config.blocks_per_session, &users, &seeds);
                results.lock().expect("no poisoned sessions")[first..first + width]
                    .copy_from_slice(&stats);
            });
        }
    });
    FleetStats {
        sessions: results.into_inner().expect("no poisoned sessions"),
    }
}

/// Convenience wrapper: lowers a freshly built design at the given
/// protection level, then calls [`run_fleet_on_netlist`].
///
/// # Panics
///
/// Panics if the design fails to lower (the shipped designs never do).
#[must_use]
pub fn run_fleet<B: SimBackend + Clone + Send + Sync>(
    protection: Protection,
    config: FleetConfig,
) -> FleetStats {
    let design = match protection {
        Protection::Full => protected(),
        Protection::Off => crate::build::baseline(),
        Protection::Annotated => crate::build::baseline_annotated(),
    };
    let net = design.lower().expect("accelerator design lowers");
    run_fleet_on_netlist::<B>(&net, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::{CompiledSim, Simulator};

    #[test]
    fn fleet_runs_parallel_sessions_and_verifies() {
        let config = FleetConfig {
            sessions: 3,
            blocks_per_session: 4,
            mode: TrackMode::Precise,
            seed: 7,
        };
        let stats = run_fleet::<CompiledSim>(Protection::Full, config);
        assert_eq!(stats.sessions.len(), 3);
        assert_eq!(stats.total_responses(), 12);
        assert!(stats.all_verified(), "{stats:?}");
        assert_eq!(stats.total_violations(), 0, "{stats:?}");
    }

    #[test]
    fn fleet_matches_across_backends() {
        let config = FleetConfig {
            sessions: 2,
            blocks_per_session: 3,
            mode: TrackMode::Conservative,
            seed: 99,
        };
        let a = run_fleet::<Simulator>(Protection::Full, config);
        let b = run_fleet::<CompiledSim>(Protection::Full, config);
        assert_eq!(a.sessions, b.sessions);
        assert!(a.all_verified());
    }

    #[test]
    fn batched_fleet_matches_per_session_fleet() {
        // 5 sessions forces a mixed partition (one 4-lane batch + one
        // 1-lane batch); per-lane results must still match the
        // session-at-a-time fleet exactly, including cycle counts.
        let config = FleetConfig {
            sessions: 5,
            blocks_per_session: 3,
            mode: TrackMode::Precise,
            seed: 21,
        };
        let net = protected().lower().expect("lowers");
        let a = run_fleet_on_netlist::<CompiledSim>(&net, config);
        let b = run_fleet_batched(&net, config);
        assert_eq!(a.sessions, b.sessions);
        assert!(b.all_verified(), "{b:?}");
        // With every optimizer pass on (exercising DCE's handling of the
        // real design's dynamic release labels), results are unchanged.
        let c = run_fleet_batched_opt(&net, config, &sim::OptConfig::all());
        assert_eq!(a.sessions, c.sessions);
    }
}
