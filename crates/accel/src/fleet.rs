//! Parallel multi-session throughput harness.
//!
//! An SoC deployment of the accelerator serves many mutually distrusting
//! principals at once; for simulation-based evaluation the natural way to
//! scale is *sessions*, not cycles: N fully independent accelerator
//! instances, each with its own keys and request stream, running on N OS
//! threads. Netlist lowering happens once; every session receives a clone
//! of the lowered netlist and builds its own simulation backend
//! ([`Simulator`](sim::Simulator) or the compiled tape backend
//! [`CompiledSim`](sim::CompiledSim) — the harness is generic over
//! [`SimBackend`]).
//!
//! [`run_fleet`] drives a deterministic encrypt workload through every
//! session, checks each ciphertext against the software AES oracle, and
//! aggregates per-session statistics. The benchmark suite uses it to
//! measure 1-vs-N-session scaling for both backends.

use aes_core::Aes;
use hdl::Netlist;
use ifc_lattice::Label;
use sim::{SimBackend, TrackMode};
use std::thread;

use crate::build::{protected, Protection};
use crate::driver::{AccelDriver, Request};
use crate::params::user_label;

/// Workload configuration for one fleet run.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Number of independent accelerator sessions (one thread each).
    pub sessions: usize,
    /// Encryption requests submitted per session.
    pub blocks_per_session: usize,
    /// Tracking mode every session's backend runs.
    pub mode: TrackMode,
    /// Seed mixed into each session's key and plaintext stream.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            sessions: 4,
            blocks_per_session: 32,
            mode: TrackMode::Precise,
            seed: 0x5eed,
        }
    }
}

/// What one session observed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Completed encryptions.
    pub responses: usize,
    /// Requests refused by the release check.
    pub rejections: usize,
    /// Runtime violations the tracking logic recorded.
    pub violations: usize,
    /// Cycles the session's simulator ran.
    pub cycles: u64,
    /// Ciphertexts that matched the software AES oracle.
    pub verified: usize,
}

/// Aggregated results of a fleet run.
#[derive(Debug, Clone, Default)]
pub struct FleetStats {
    /// Per-session statistics, in session order.
    pub sessions: Vec<SessionStats>,
}

impl FleetStats {
    /// Total completed encryptions across all sessions.
    #[must_use]
    pub fn total_responses(&self) -> usize {
        self.sessions.iter().map(|s| s.responses).sum()
    }

    /// Total runtime violations across all sessions.
    #[must_use]
    pub fn total_violations(&self) -> usize {
        self.sessions.iter().map(|s| s.violations).sum()
    }

    /// Total simulated cycles across all sessions.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.sessions.iter().map(|s| s.cycles).sum()
    }

    /// Whether every ciphertext in every session matched the software
    /// AES oracle.
    #[must_use]
    pub fn all_verified(&self) -> bool {
        self.sessions
            .iter()
            .all(|s| s.verified == s.responses && s.responses > 0)
    }
}

/// Deterministic per-session key/plaintext derivation (SplitMix64).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn block_from(seed: u64, i: u64) -> [u8; 16] {
    let hi = mix(seed ^ (2 * i));
    let lo = mix(seed ^ (2 * i + 1));
    let mut b = [0u8; 16];
    b[..8].copy_from_slice(&hi.to_be_bytes());
    b[8..].copy_from_slice(&lo.to_be_bytes());
    b
}

/// Runs one session's workload on an existing driver: load a key, submit
/// `blocks` encryptions under `user`, drain, and verify every ciphertext
/// against the software oracle.
pub fn run_session<B: SimBackend>(
    driver: &mut AccelDriver<B>,
    blocks: usize,
    user: Label,
    seed: u64,
) -> SessionStats {
    let key = block_from(seed, 0x4b45_5953);
    driver.load_key(0, key, user);
    for i in 0..blocks {
        driver.submit(&Request {
            block: block_from(seed, i as u64),
            key_slot: 0,
            user,
        });
    }
    driver.drain(10_000);

    let oracle = Aes::new(&key).expect("16-byte key");
    let verified = driver
        .responses
        .iter()
        .enumerate()
        .filter(|(i, r)| oracle.encrypt_block(block_from(seed, *i as u64)) == r.block)
        .count();
    SessionStats {
        responses: driver.responses.len(),
        rejections: driver.rejections.len(),
        violations: driver.violations().len(),
        cycles: driver.cycle(),
        verified,
    }
}

/// Runs `config.sessions` independent accelerator instances in parallel
/// (one OS thread each) over clones of `net`, on backend `B`.
///
/// Sessions are fully isolated — separate netlist clone, separate
/// simulator state, separate key material — so this measures how
/// simulation throughput scales with independent instances, the
/// deployment shape of a multi-tenant SoC evaluation.
#[must_use]
pub fn run_fleet_on_netlist<B: SimBackend + Send>(
    net: &Netlist,
    config: FleetConfig,
) -> FleetStats {
    let sessions = thread::scope(|s| {
        let handles: Vec<_> = (0..config.sessions)
            .map(|i| {
                let net = net.clone();
                s.spawn(move || {
                    let mut driver = AccelDriver::<B>::from_netlist_on(net, config.mode);
                    let user = user_label(i % 4);
                    let seed = mix(config.seed ^ (i as u64) << 8);
                    run_session(&mut driver, config.blocks_per_session, user, seed)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("session thread panicked"))
            .collect()
    });
    FleetStats { sessions }
}

/// Convenience wrapper: lowers a freshly built design at the given
/// protection level, then calls [`run_fleet_on_netlist`].
///
/// # Panics
///
/// Panics if the design fails to lower (the shipped designs never do).
#[must_use]
pub fn run_fleet<B: SimBackend + Send>(protection: Protection, config: FleetConfig) -> FleetStats {
    let design = match protection {
        Protection::Full => protected(),
        Protection::Off => crate::build::baseline(),
        Protection::Annotated => crate::build::baseline_annotated(),
    };
    let net = design.lower().expect("accelerator design lowers");
    run_fleet_on_netlist::<B>(&net, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::{CompiledSim, Simulator};

    #[test]
    fn fleet_runs_parallel_sessions_and_verifies() {
        let config = FleetConfig {
            sessions: 3,
            blocks_per_session: 4,
            mode: TrackMode::Precise,
            seed: 7,
        };
        let stats = run_fleet::<CompiledSim>(Protection::Full, config);
        assert_eq!(stats.sessions.len(), 3);
        assert_eq!(stats.total_responses(), 12);
        assert!(stats.all_verified(), "{stats:?}");
        assert_eq!(stats.total_violations(), 0, "{stats:?}");
    }

    #[test]
    fn fleet_matches_across_backends() {
        let config = FleetConfig {
            sessions: 2,
            blocks_per_session: 3,
            mode: TrackMode::Conservative,
            seed: 99,
        };
        let a = run_fleet::<Simulator>(Protection::Full, config);
        let b = run_fleet::<CompiledSim>(Protection::Full, config);
        assert_eq!(a.sessions, b.sessions);
        assert!(a.all_verified());
    }
}
