//! Parallel multi-session throughput harness.
//!
//! An SoC deployment of the accelerator serves many mutually distrusting
//! principals at once; for simulation-based evaluation the natural way to
//! scale is *sessions*, not cycles: N fully independent accelerator
//! instances, each with its own keys and request stream, running on N OS
//! threads. Netlist lowering happens once; every session receives a clone
//! of the lowered netlist and builds its own simulation backend
//! ([`Simulator`](sim::Simulator) or the compiled tape backend
//! [`CompiledSim`](sim::CompiledSim) — the harness is generic over
//! [`SimBackend`]).
//!
//! [`run_fleet`] drives a deterministic encrypt workload through every
//! session, checks each ciphertext against the software AES oracle, and
//! aggregates per-session statistics. The benchmark suite uses it to
//! measure 1-vs-N-session scaling for both backends.

use aes_core::Aes;
use hdl::Netlist;
use ifc_lattice::Label;
use sim::{
    BatchedSim, LaneBackend, NativeSim, OptConfig, RuntimeViolation, SimBackend, TrackMode,
    SUPPORTED_LANES,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

use crate::batch::BatchedDriver;
use crate::build::{protected, Protection};
use crate::driver::{AccelDriver, Request};
use crate::params::user_label;

/// Stream index reserved for deriving a session's key from its seed
/// (ASCII `"KEYS"`; request blocks use their small submission indices,
/// which never collide with it).
pub const KEY_DERIVE_INDEX: u64 = 0x4b45_5953;

/// Workload configuration for one fleet run.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Number of independent accelerator sessions (one thread each).
    pub sessions: usize,
    /// Encryption requests submitted per session.
    pub blocks_per_session: usize,
    /// Tracking mode every session's backend runs.
    pub mode: TrackMode,
    /// Seed mixed into each session's key and plaintext stream.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            sessions: 4,
            blocks_per_session: 32,
            mode: TrackMode::Precise,
            seed: 0x5eed,
        }
    }
}

/// What one session observed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Completed encryptions.
    pub responses: usize,
    /// Requests refused by the release check.
    pub rejections: usize,
    /// Runtime violations the tracking logic recorded.
    pub violations: usize,
    /// Cycles the session's simulator ran.
    pub cycles: u64,
    /// Ciphertexts that matched the software AES oracle.
    pub verified: usize,
    /// Cycle of the first runtime violation, if any — the mutation
    /// campaign's cycles-to-kill measurement.
    pub first_violation: Option<u64>,
}

/// Aggregated results of a fleet run.
#[derive(Debug, Clone, Default)]
pub struct FleetStats {
    /// Per-session statistics, in session order.
    pub sessions: Vec<SessionStats>,
}

impl FleetStats {
    /// Total completed encryptions across all sessions.
    #[must_use]
    pub fn total_responses(&self) -> usize {
        self.sessions.iter().map(|s| s.responses).sum()
    }

    /// Total runtime violations across all sessions.
    #[must_use]
    pub fn total_violations(&self) -> usize {
        self.sessions.iter().map(|s| s.violations).sum()
    }

    /// Total simulated cycles across all sessions.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.sessions.iter().map(|s| s.cycles).sum()
    }

    /// Whether every ciphertext in every session matched the software
    /// AES oracle.
    #[must_use]
    pub fn all_verified(&self) -> bool {
        self.sessions
            .iter()
            .all(|s| s.verified == s.responses && s.responses > 0)
    }

    /// The earliest violation cycle across all sessions, if any session
    /// recorded a runtime violation.
    #[must_use]
    pub fn first_violation_cycle(&self) -> Option<u64> {
        self.sessions.iter().filter_map(|s| s.first_violation).min()
    }

    /// Whether every session completed its full workload with a
    /// verified ciphertext for each submitted block — the functional
    /// acceptance a test bench without IFC oversight would apply.
    #[must_use]
    pub fn functionally_clean(&self, blocks_per_session: usize) -> bool {
        self.sessions
            .iter()
            .all(|s| s.responses == blocks_per_session && s.verified == s.responses)
    }

    /// Loads the run's aggregates into a [`telemetry::Registry`] under
    /// `fleet_*` names, so fleet harness results share an exposition
    /// (JSON / Prometheus text) with the farm's metrics.
    ///
    /// # Panics
    ///
    /// Panics if the registry mutex is poisoned.
    pub fn record_into(&self, reg: &telemetry::Registry) {
        reg.counter("fleet_sessions_total")
            .add(self.sessions.len() as u64);
        reg.counter("fleet_responses_total")
            .add(self.total_responses() as u64);
        reg.counter("fleet_violations_total")
            .add(self.total_violations() as u64);
        reg.counter("fleet_cycles_total").add(self.total_cycles());
        reg.counter("fleet_rejections_total")
            .add(self.sessions.iter().map(|s| s.rejections as u64).sum());
        reg.counter("fleet_verified_total")
            .add(self.sessions.iter().map(|s| s.verified as u64).sum());
        let cycles = reg.histogram(
            "fleet_session_cycles",
            &[256.0, 1024.0, 4096.0, 16384.0, 65536.0],
        );
        for s in &self.sessions {
            #[allow(clippy::cast_precision_loss)]
            cycles.observe(s.cycles as f64);
        }
    }
}

/// Deterministic per-session key/plaintext derivation (SplitMix64) —
/// shared by the fleet harness and the farm's churn workloads so the
/// same seed always produces the same traffic.
#[must_use]
pub fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The `i`-th deterministic 16-byte block of a seeded stream ([`mix`]
/// applied to the seed and index). Session keys use index
/// [`KEY_DERIVE_INDEX`]; request blocks use their submission index.
#[must_use]
pub fn block_from(seed: u64, i: u64) -> [u8; 16] {
    let hi = mix(seed ^ (2 * i));
    let lo = mix(seed ^ (2 * i + 1));
    let mut b = [0u8; 16];
    b[..8].copy_from_slice(&hi.to_be_bytes());
    b[8..].copy_from_slice(&lo.to_be_bytes());
    b
}

/// Runs one session's workload on an existing driver: load a key, submit
/// `blocks` encryptions under `user`, drain, and verify every ciphertext
/// against the software oracle.
pub fn run_session<B: SimBackend>(
    driver: &mut AccelDriver<B>,
    blocks: usize,
    user: Label,
    seed: u64,
) -> SessionStats {
    let key = block_from(seed, KEY_DERIVE_INDEX);
    driver.load_key(0, key, user);
    for i in 0..blocks {
        driver.submit(&Request {
            block: block_from(seed, i as u64),
            key_slot: 0,
            user,
        });
    }
    driver.drain(10_000);

    let oracle = Aes::new(&key).expect("16-byte key");
    let verified = driver
        .responses
        .iter()
        .enumerate()
        .filter(|(i, r)| oracle.encrypt_block(block_from(seed, *i as u64)) == r.block)
        .count();
    SessionStats {
        responses: driver.responses.len(),
        rejections: driver.rejections.len(),
        violations: driver.violations().len(),
        cycles: driver.cycle(),
        verified,
        first_violation: driver.violations().first().map(RuntimeViolation::cycle),
    }
}

/// Number of worker threads for a fleet: one per hardware thread, never
/// more than there are work items (a fleet used to spawn one thread per
/// session, which on a small host oversubscribes the cores and measures
/// scheduler churn instead of simulation throughput).
fn worker_count(items: usize) -> usize {
    thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(items)
        .max(1)
}

/// Runs `config.sessions` independent accelerator instances on backend
/// `B`, on a bounded worker pool.
///
/// The netlist is lowered and compiled **once**: every session's driver
/// wraps a clone of one prototype backend, so for the compiled backends a
/// session costs only its own state arrays, not a recompilation of the
/// tape. Workers are clamped to [`std::thread::available_parallelism`]
/// and claim sessions from a shared counter, so the pool stays fully
/// busy without oversubscribing the host.
///
/// Sessions stay fully isolated — separate simulator state, separate key
/// material — so this measures how simulation throughput scales with
/// independent instances, the deployment shape of a multi-tenant SoC
/// evaluation.
#[must_use]
pub fn run_fleet_on_netlist<B: SimBackend + Clone + Send + Sync>(
    net: &Netlist,
    config: FleetConfig,
) -> FleetStats {
    let prototype = B::from_netlist(net.clone(), config.mode);
    let next = AtomicUsize::new(0);
    let results = Mutex::new(vec![SessionStats::default(); config.sessions]);
    thread::scope(|s| {
        for _ in 0..worker_count(config.sessions) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= config.sessions {
                    break;
                }
                let mut driver = AccelDriver::from_backend(prototype.clone());
                let user = user_label(i % 4);
                let seed = mix(config.seed ^ (i as u64) << 8);
                let stats = run_session(&mut driver, config.blocks_per_session, user, seed);
                results.lock().expect("no poisoned sessions")[i] = stats;
            });
        }
    });
    FleetStats {
        sessions: results.into_inner().expect("no poisoned sessions"),
    }
}

/// Runs one batch's workload: the same key-load / submit / drain / verify
/// sequence as [`run_session`], with lane `l` deriving its key and
/// plaintext stream from `seeds[l]` exactly as a single session would.
///
/// # Panics
///
/// Panics if `users` and `seeds` do not hold one entry per lane, or the
/// pipeline refuses input for 10 000 consecutive cycles.
pub fn run_lane_sessions<S: LaneBackend>(
    driver: &mut BatchedDriver<S>,
    blocks: usize,
    users: &[Label],
    seeds: &[u64],
) -> Vec<SessionStats> {
    let lanes = driver.lanes();
    assert_eq!(users.len(), lanes, "one user per lane");
    assert_eq!(seeds.len(), lanes, "one seed per lane");
    let keys: Vec<[u8; 16]> = seeds
        .iter()
        .map(|&s| block_from(s, KEY_DERIVE_INDEX))
        .collect();
    driver.load_keys(0, &keys, users);

    let mut next = vec![0usize; lanes];
    let mut reqs: Vec<Option<Request>> = vec![None; lanes];
    let mut accepted = vec![false; lanes];
    let mut stalled = 0u32;
    while next.iter().any(|&n| n < blocks) {
        for l in 0..lanes {
            reqs[l] = (next[l] < blocks).then(|| Request {
                block: block_from(seeds[l], next[l] as u64),
                key_slot: 0,
                user: users[l],
            });
        }
        driver.try_submit_each(&reqs, &mut accepted);
        let mut any = false;
        for l in 0..lanes {
            if accepted[l] {
                next[l] += 1;
                any = true;
            }
        }
        stalled = if any { 0 } else { stalled + 1 };
        assert!(stalled < 10_000, "pipeline refused input for 10000 cycles");
    }
    driver.drain(10_000);

    (0..lanes)
        .map(|l| {
            let oracle = Aes::new(&keys[l]).expect("16-byte key");
            let verified = driver.responses[l]
                .iter()
                .enumerate()
                .filter(|(i, r)| oracle.encrypt_block(block_from(seeds[l], *i as u64)) == r.block)
                .count();
            SessionStats {
                responses: driver.responses[l].len(),
                rejections: driver.rejections[l].len(),
                violations: driver.violations(l).len(),
                cycles: driver.cycle(),
                verified,
                first_violation: driver.violations(l).first().map(RuntimeViolation::cycle),
            }
        })
        .collect()
}

/// Runs `config.sessions` accelerator sessions scheduled onto lane
/// batches of the [`BatchedSim`] backend: sessions are greedily grouped
/// into the widest supported lane batches, the tape is compiled once and
/// shared by every batch, and a bounded worker pool claims batches.
///
/// Per-lane observable results (responses, rejections, violations,
/// verification) match [`run_fleet_on_netlist`] for the same
/// configuration; only the throughput differs, because one tape pass
/// advances a whole batch.
#[must_use]
pub fn run_fleet_batched(net: &Netlist, config: FleetConfig) -> FleetStats {
    run_fleet_batched_opt(net, config, &OptConfig::none())
}

/// [`run_fleet_batched`] with the tape optimizer: the shared program is
/// compiled once and run through the configured passes before any batch
/// executes, so every session benefits from the shrunken tape.
#[must_use]
pub fn run_fleet_batched_opt(net: &Netlist, config: FleetConfig, opt: &OptConfig) -> FleetStats {
    run_fleet_lanes_opt::<BatchedSim>(net, config, opt)
}

/// Runs the lane-batched fleet on the native-codegen backend
/// ([`NativeSim`]) with the tuned optimizer configuration
/// ([`sim::tuned_opt_config`]) — every pass enabled, and with the
/// `profile` feature the scheduling window is sized from the cycle
/// profiler's measured run fragmentation instead of the static default.
/// The first launch on a given (netlist, mode, width) set pays one
/// `rustc` invocation per distinct lane width; later launches hit the
/// on-disk compile cache (see [`sim::cache_stats`]).
#[must_use]
pub fn run_fleet_native(net: &Netlist, config: FleetConfig) -> FleetStats {
    run_fleet_native_opt(net, config, &sim::tuned_opt_config(net, config.mode))
}

/// [`run_fleet_native`] with an explicit optimizer configuration.
#[must_use]
pub fn run_fleet_native_opt(net: &Netlist, config: FleetConfig, opt: &OptConfig) -> FleetStats {
    run_fleet_lanes_opt::<NativeSim>(net, config, opt)
}

/// Greedy partition of `sessions` into `(first session, width)` lane
/// batches with the width clamped for worker coverage.
///
/// Plain widest-fit packs 8 sessions into one 8-wide batch, which on a
/// 2-core host leaves the second worker idle *and* runs the measurably
/// slower W=8 batch shape (BENCH_sim.json recorded 3009 blocks/s at W=8
/// against 4085 at W=4 before this clamp). Capping the width at
/// `ceil(sessions / workers)` — rounded up to a supported width, and
/// never below the backend's own efficiency floor `min_width`
/// ([`LaneBackend::min_efficient_width`]) — splits the same sessions
/// into enough batches to keep every worker busy: 8 sessions on 2 cores
/// become two concurrent 4-wide batches.
#[must_use]
pub fn plan_batches(sessions: usize, workers: usize, min_width: usize) -> Vec<(usize, usize)> {
    let target = sessions.div_ceil(workers.max(1)).max(min_width);
    let cap = SUPPORTED_LANES
        .iter()
        .copied()
        .find(|&w| w >= target)
        .unwrap_or(SUPPORTED_LANES[SUPPORTED_LANES.len() - 1]);
    let mut batches = Vec::new();
    let mut i = 0;
    while i < sessions {
        let width = SUPPORTED_LANES
            .iter()
            .rev()
            .copied()
            .find(|&w| w <= (sessions - i).min(cap))
            .expect("width 1 always fits");
        batches.push((i, width));
        i += width;
    }
    batches
}

/// The generic lane-batched fleet engine behind
/// [`run_fleet_batched_opt`] and [`run_fleet_native_opt`]: sessions are
/// greedily grouped into lane batches sized for the worker pool (see
/// [`plan_batches`]), one prototype backend compiles the shared tape
/// once, and the bounded pool claims batches and re-stripes the
/// prototype to each batch's width.
#[must_use]
pub fn run_fleet_lanes_opt<S: LaneBackend + Send + Sync>(
    net: &Netlist,
    config: FleetConfig,
    opt: &OptConfig,
) -> FleetStats {
    let batches = plan_batches(
        config.sessions,
        worker_count(config.sessions),
        S::min_efficient_width(),
    );

    // Compile once; every batch re-stripes the same program.
    let prototype = S::with_tracking_opt(net.clone(), config.mode, 1, opt);
    let next = AtomicUsize::new(0);
    let results = Mutex::new(vec![SessionStats::default(); config.sessions]);
    thread::scope(|s| {
        for _ in 0..worker_count(batches.len()) {
            s.spawn(|| loop {
                let b = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(first, width)) = batches.get(b) else {
                    break;
                };
                let mut driver = BatchedDriver::from_batched(prototype.with_lanes(width));
                let users: Vec<Label> = (first..first + width).map(|i| user_label(i % 4)).collect();
                let seeds: Vec<u64> = (first..first + width)
                    .map(|i| mix(config.seed ^ (i as u64) << 8))
                    .collect();
                let stats =
                    run_lane_sessions(&mut driver, config.blocks_per_session, &users, &seeds);
                results.lock().expect("no poisoned sessions")[first..first + width]
                    .copy_from_slice(&stats);
            });
        }
    });
    FleetStats {
        sessions: results.into_inner().expect("no poisoned sessions"),
    }
}

/// Convenience wrapper: lowers a freshly built design at the given
/// protection level, then calls [`run_fleet_on_netlist`].
///
/// # Panics
///
/// Panics if the design fails to lower (the shipped designs never do).
#[must_use]
pub fn run_fleet<B: SimBackend + Clone + Send + Sync>(
    protection: Protection,
    config: FleetConfig,
) -> FleetStats {
    let design = match protection {
        Protection::Full => protected(),
        Protection::Off => crate::build::baseline(),
        Protection::Annotated => crate::build::baseline_annotated(),
    };
    let net = design.lower().expect("accelerator design lowers");
    run_fleet_on_netlist::<B>(&net, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::{CompiledSim, Simulator};

    #[test]
    fn fleet_runs_parallel_sessions_and_verifies() {
        let config = FleetConfig {
            sessions: 3,
            blocks_per_session: 4,
            mode: TrackMode::Precise,
            seed: 7,
        };
        let stats = run_fleet::<CompiledSim>(Protection::Full, config);
        assert_eq!(stats.sessions.len(), 3);
        assert_eq!(stats.total_responses(), 12);
        assert!(stats.all_verified(), "{stats:?}");
        assert_eq!(stats.total_violations(), 0, "{stats:?}");
    }

    #[test]
    fn fleet_matches_across_backends() {
        let config = FleetConfig {
            sessions: 2,
            blocks_per_session: 3,
            mode: TrackMode::Conservative,
            seed: 99,
        };
        let a = run_fleet::<Simulator>(Protection::Full, config);
        let b = run_fleet::<CompiledSim>(Protection::Full, config);
        assert_eq!(a.sessions, b.sessions);
        assert!(a.all_verified());
    }

    #[test]
    fn plan_batches_clamps_width_to_worker_coverage() {
        // The W=8 cliff: 8 sessions on 2 workers must split into two
        // 4-wide batches, not one 8-wide batch that idles a core.
        assert_eq!(plan_batches(8, 2, 1), vec![(0, 4), (4, 4)]);
        // 4 sessions on 2 workers: two 2-wide batches keep both busy.
        assert_eq!(plan_batches(4, 2, 1), vec![(0, 2), (2, 2)]);
        // A single worker gets plain widest-fit.
        assert_eq!(plan_batches(8, 1, 1), vec![(0, 8)]);
        // Leftovers still narrow down to fit.
        assert_eq!(plan_batches(5, 2, 1), vec![(0, 4), (4, 1)]);
        // The backend's efficiency floor wins over worker coverage: the
        // native executor would rather idle a core than run 2-wide.
        assert_eq!(plan_batches(4, 2, 4), vec![(0, 4)]);
        assert_eq!(plan_batches(8, 2, 4), vec![(0, 4), (4, 4)]);
        // Targets past the widest supported width saturate at 16.
        assert_eq!(plan_batches(64, 2, 1).len(), 4);
        // Fewer sessions than the floor: a batch never exceeds the
        // remaining sessions.
        assert_eq!(plan_batches(1, 2, 4), vec![(0, 1)]);
        assert_eq!(plan_batches(0, 2, 1), vec![]);
    }

    #[test]
    fn batched_fleet_matches_per_session_fleet() {
        // 5 sessions forces a mixed partition (one 4-lane batch + one
        // 1-lane batch); per-lane results must still match the
        // session-at-a-time fleet exactly, including cycle counts.
        let config = FleetConfig {
            sessions: 5,
            blocks_per_session: 3,
            mode: TrackMode::Precise,
            seed: 21,
        };
        let net = protected().lower().expect("lowers");
        let a = run_fleet_on_netlist::<CompiledSim>(&net, config);
        let b = run_fleet_batched(&net, config);
        assert_eq!(a.sessions, b.sessions);
        assert!(b.all_verified(), "{b:?}");
        // With every optimizer pass on (exercising DCE's handling of the
        // real design's dynamic release labels), results are unchanged.
        let c = run_fleet_batched_opt(&net, config, &sim::OptConfig::all());
        assert_eq!(a.sessions, c.sessions);
    }
}
