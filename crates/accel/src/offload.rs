//! Host-level message encryption offloaded to the accelerator.
//!
//! The paper's motivating workload is SSL-style record encryption in the
//! cloud: the host splits a message into CTR counter blocks, streams them
//! through the shared pipeline at one block per cycle, and XORs the
//! returned keystream into the payload. This module implements that host
//! side over [`AccelDriver`], giving the library a realistic end-to-end
//! entry point (and exercising deep pipelining on real message sizes).

use ifc_lattice::Label;

use crate::driver::{AccelDriver, Request};

/// One tenant's CBC stream: its `(key slot, user, IV)` header and the
/// plaintext blocks of the chain.
pub type CbcStream = ((usize, Label, [u8; 16]), Vec<[u8; 16]>);

/// Encrypts (or decrypts — CTR is symmetric) `message` under the key in
/// `slot` on behalf of `user`, with the 128-bit initial counter `iv`.
///
/// Counter blocks are pipelined back-to-back, so an `n`-block message
/// costs roughly `n + 30` accelerator cycles.
///
/// # Panics
///
/// Panics if the hardware refuses the request stream (e.g. a master-key
/// slot used by a non-supervisor — use [`AccelDriver::submit`] directly to
/// observe rejections).
#[must_use]
pub fn ctr_apply(
    drv: &mut AccelDriver,
    slot: usize,
    user: Label,
    iv: [u8; 16],
    message: &[u8],
) -> Vec<u8> {
    let blocks = message.len().div_ceil(16);
    let first = drv.responses.len();
    let mut counter = u128::from_be_bytes(iv);
    for _ in 0..blocks {
        drv.submit(&Request {
            block: counter.to_be_bytes(),
            key_slot: slot,
            user,
        });
        counter = counter.wrapping_add(1);
    }
    drv.drain(blocks as u64 + 200);
    let keystream = &drv.responses[first..];
    assert_eq!(
        keystream.len(),
        blocks,
        "the accelerator refused part of the stream"
    );
    message
        .iter()
        .enumerate()
        .map(|(i, &b)| b ^ keystream[i / 16].block[i % 16])
        .collect()
}

/// Encrypts whole blocks in CBC mode through the accelerator.
///
/// CBC chains each block on the previous ciphertext, so a single stream
/// is *latency-bound*: one block per 30-cycle pipeline pass. This is the
/// workload that motivates fine-grained sharing — see
/// [`cbc_encrypt_interleaved`] and the `sharing_granularity` experiment.
///
/// # Panics
///
/// Panics if the hardware refuses part of the stream.
#[must_use]
pub fn cbc_encrypt(
    drv: &mut AccelDriver,
    slot: usize,
    user: Label,
    iv: [u8; 16],
    blocks: &[[u8; 16]],
) -> Vec<[u8; 16]> {
    let mut prev = iv;
    let mut out = Vec::with_capacity(blocks.len());
    for &b in blocks {
        let mut x = [0u8; 16];
        for i in 0..16 {
            x[i] = b[i] ^ prev[i];
        }
        let first = drv.responses.len();
        drv.submit(&Request {
            block: x,
            key_slot: slot,
            user,
        });
        drv.drain(200);
        let ct = drv.responses[first].block;
        out.push(ct);
        prev = ct;
    }
    out
}

/// Encrypts several tenants' CBC streams concurrently: the chains are
/// independent, so their blocks interleave in the pipeline and the
/// aggregate throughput approaches one block per cycle even though each
/// individual stream is latency-bound.
///
/// `streams` pairs each tenant's `(slot, user, iv)` with its plaintext
/// blocks; returns each tenant's ciphertext stream in the same order.
///
/// # Panics
///
/// Panics if the hardware refuses part of any stream.
#[must_use]
pub fn cbc_encrypt_interleaved(drv: &mut AccelDriver, streams: &[CbcStream]) -> Vec<Vec<[u8; 16]>> {
    let n = streams.len();
    let mut prev: Vec<[u8; 16]> = streams.iter().map(|((_, _, iv), _)| *iv).collect();
    let mut next_block: Vec<usize> = vec![0; n];
    let mut out: Vec<Vec<[u8; 16]>> = vec![Vec::new(); n];
    // (stream index) of each in-flight request, in submission order.
    let mut in_flight: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    let total: usize = streams.iter().map(|(_, blocks)| blocks.len()).sum();
    let mut completed = 0usize;
    let mut guard = 0u32;
    while completed < total {
        guard += 1;
        assert!(guard < 1_000_000, "interleaved CBC did not converge");
        // Submit the next block of every stream whose chain value is
        // available (round-robin over tenants).
        let mut submitted_any = false;
        for (s, ((slot, user, _), blocks)) in streams.iter().enumerate() {
            // Only one outstanding block per chain.
            if next_block[s] < blocks.len() && !in_flight.contains(&s) {
                let b = blocks[next_block[s]];
                let mut x = [0u8; 16];
                for i in 0..16 {
                    x[i] = b[i] ^ prev[s][i];
                }
                if drv.try_submit(&Request {
                    block: x,
                    key_slot: *slot,
                    user: *user,
                }) {
                    in_flight.push_back(s);
                    submitted_any = true;
                }
            }
        }
        if !submitted_any {
            drv.idle_cycle();
        }
        // Collect completions — responses arrive in submission order.
        while completed < drv.responses.len() {
            let s = in_flight
                .pop_front()
                .expect("completion without submission");
            let resp = drv.responses[completed].block;
            prev[s] = resp;
            out[s].push(resp);
            next_block[s] += 1;
            completed += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::Protection;
    use crate::params::user_label;
    use aes_core::{Aes, CtrStream};

    /// Software CBC reference.
    fn cbc_reference(key: [u8; 16], iv: [u8; 16], blocks: &[[u8; 16]]) -> Vec<[u8; 16]> {
        let aes = Aes::new_128(key);
        let mut prev = iv;
        blocks
            .iter()
            .map(|&b| {
                let mut x = [0u8; 16];
                for i in 0..16 {
                    x[i] = b[i] ^ prev[i];
                }
                prev = aes.encrypt_block(x);
                prev
            })
            .collect()
    }

    #[test]
    fn offloaded_cbc_matches_software() {
        let mut drv = AccelDriver::new(Protection::Full);
        let alice = user_label(1);
        let key = [0x44u8; 16];
        drv.load_key(0, key, alice);
        let iv = [0x0fu8; 16];
        let blocks: Vec<[u8; 16]> = (0..5u8).map(|i| [i; 16]).collect();
        let hw = cbc_encrypt(&mut drv, 0, alice, iv, &blocks);
        assert_eq!(hw, cbc_reference(key, iv, &blocks));
    }

    #[test]
    fn interleaved_cbc_matches_per_stream_references() {
        let mut drv = AccelDriver::new(Protection::Full);
        let users = [user_label(0), user_label(1), user_label(2)];
        let keys = [[0x10u8; 16], [0x20u8; 16], [0x30u8; 16]];
        for (slot, (&key, &user)) in keys.iter().zip(&users).enumerate() {
            drv.load_key(slot, key, user);
        }
        let streams: Vec<CbcStream> = (0..3)
            .map(|s| {
                let iv = [s as u8; 16];
                let blocks: Vec<[u8; 16]> = (0..6u8)
                    .map(|i| [i.wrapping_mul(7) ^ s as u8; 16])
                    .collect();
                ((s, users[s], iv), blocks)
            })
            .collect();
        let out = cbc_encrypt_interleaved(&mut drv, &streams);
        for (s, ((_, _, iv), blocks)) in streams.iter().enumerate() {
            assert_eq!(out[s], cbc_reference(keys[s], *iv, blocks), "stream {s}");
        }
        assert!(drv.violations().is_empty(), "{:?}", drv.violations());
    }

    #[test]
    fn interleaving_recovers_cbc_throughput() {
        // One CBC chain is latency-bound at ~30 cycles/block; eight
        // independent tenant chains interleave in the pipeline and push
        // aggregate throughput far above a single chain's.
        let blocks_per_stream = 6u64;

        let single_cycles = {
            let mut drv = AccelDriver::new(Protection::Full);
            let alice = user_label(1);
            drv.load_key(0, [1u8; 16], alice);
            let start = drv.cycle();
            let blocks: Vec<[u8; 16]> = (0..blocks_per_stream as u8).map(|i| [i; 16]).collect();
            let _ = cbc_encrypt(&mut drv, 0, alice, [0; 16], &blocks);
            drv.cycle() - start
        };

        let (multi_cycles, streams_n) = {
            let mut drv = AccelDriver::new(Protection::Full);
            let users = [user_label(0), user_label(1), user_label(2)];
            for (slot, &user) in users.iter().enumerate() {
                drv.load_key(slot, [slot as u8 + 1; 16], user);
            }
            let streams: Vec<CbcStream> = (0..3)
                .map(|s| {
                    let blocks: Vec<[u8; 16]> = (0..blocks_per_stream as u8)
                        .map(|i| [i ^ s as u8; 16])
                        .collect();
                    ((s, users[s], [s as u8; 16]), blocks)
                })
                .collect();
            let start = drv.cycle();
            let _ = cbc_encrypt_interleaved(&mut drv, &streams);
            (drv.cycle() - start, 3u64)
        };

        let single_bpc = blocks_per_stream as f64 / single_cycles as f64;
        let multi_bpc = (blocks_per_stream * streams_n) as f64 / multi_cycles as f64;
        assert!(
            multi_bpc > 2.0 * single_bpc,
            "interleaving should recover throughput: single {single_bpc:.4} vs multi {multi_bpc:.4} blk/cyc"
        );
    }

    #[test]
    fn offloaded_ctr_matches_software() {
        let mut drv = AccelDriver::new(Protection::Full);
        let alice = user_label(1);
        let key = [0x3cu8; 16];
        drv.load_key(0, key, alice);
        let iv = [0x01u8; 16];
        let message: Vec<u8> = (0..100u8).collect();

        let hw = ctr_apply(&mut drv, 0, alice, iv, &message);
        let sw = CtrStream::new(Aes::new_128(key), iv).apply(&message);
        assert_eq!(hw, sw);
    }

    #[test]
    fn offloaded_ctr_round_trips() {
        let mut drv = AccelDriver::new(Protection::Full);
        let alice = user_label(2);
        drv.load_key(1, [9u8; 16], alice);
        let iv = [0xabu8; 16];
        let message = b"the paper's motivating SSL record workload".to_vec();
        let ct = ctr_apply(&mut drv, 1, alice, iv, &message);
        assert_ne!(ct, message);
        let pt = ctr_apply(&mut drv, 1, alice, iv, &ct);
        assert_eq!(pt, message);
    }

    #[test]
    fn empty_message_is_a_noop() {
        let mut drv = AccelDriver::new(Protection::Full);
        let alice = user_label(0);
        drv.load_key(0, [1u8; 16], alice);
        assert!(ctr_apply(&mut drv, 0, alice, [0; 16], &[]).is_empty());
    }

    #[test]
    fn two_tenants_interleave_messages_correctly() {
        // Both tenants' CTR streams pipeline through the same hardware
        // (sequentially here; the interleaved case is covered by the
        // multi_user_soc example) and each matches its own software
        // stream.
        let mut drv = AccelDriver::new(Protection::Full);
        let users = [user_label(0), user_label(1)];
        let keys = [[0x11u8; 16], [0x22u8; 16]];
        drv.load_key(0, keys[0], users[0]);
        drv.load_key(1, keys[1], users[1]);
        for i in 0..2 {
            let msg: Vec<u8> = (0..64).map(|b| (b as u8).wrapping_mul(3)).collect();
            let hw = ctr_apply(&mut drv, i, users[i], [i as u8; 16], &msg);
            let sw = CtrStream::new(Aes::new_128(keys[i]), [i as u8; 16]).apply(&msg);
            assert_eq!(hw, sw, "tenant {i}");
        }
    }
}
