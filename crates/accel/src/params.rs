//! Accelerator parameters and the SoC's principal labels.

use ifc_lattice::{Conf, Integ, Label};

/// Pipeline depth in clock cycles: one input/whitening stage, nine full
/// rounds of three registered substages each, and a two-substage final
/// round — the paper's "completes the encryption of a data block in 30
/// cycles" at one block per cycle.
pub const PIPELINE_DEPTH: usize = 30;

/// The scratchpad slot (key index) holding the master key.
pub const MASTER_KEY_SLOT: usize = 3;

/// Sizing of the accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccelParams {
    /// Number of 64-bit scratchpad cells (8 × 64 = the paper's 512-bit
    /// scratchpad, Fig. 5).
    pub scratchpad_cells: usize,
    /// Number of 128-bit key slots (two cells per slot).
    pub key_slots: usize,
    /// Depth of the protected design's output holding buffer.
    pub out_buffer_depth: usize,
}

impl AccelParams {
    /// The paper's prototype configuration.
    #[must_use]
    pub const fn paper() -> AccelParams {
        AccelParams {
            scratchpad_cells: 8,
            key_slots: 4,
            out_buffer_depth: 16,
        }
    }
}

impl Default for AccelParams {
    fn default() -> AccelParams {
        AccelParams::paper()
    }
}

/// The security label of regular user `k` (0-based, up to 4 users).
///
/// Users sit at pairwise-incomparable levels — each has both higher
/// confidentiality *and* higher integrity requirements than none of the
/// others — so no user may read or contaminate another's data.
///
/// ```
/// use accel::user_label;
/// let a = user_label(0);
/// let b = user_label(1);
/// assert!(!a.flows_to(b));
/// assert!(!b.flows_to(a));
/// ```
#[must_use]
pub fn user_label(k: usize) -> Label {
    assert!(k < 4, "the SoC model has four user levels");
    let level = (2 + 3 * k) as u8;
    Label::new(Conf::new(level), Integ::new(level))
}

/// The supervisor's label: `(⊤,⊤)` — may read anything, trusted to write
/// configuration state and release master-key ciphertexts.
#[must_use]
pub fn supervisor_label() -> Label {
    Label::SECRET_TRUSTED
}

/// The master key's label: `(⊤,⊤)` — only the supervisor can read or use
/// it (the paper's Section 3.2.2 and Fig. 4).
#[must_use]
pub fn master_key_label() -> Label {
    Label::SECRET_TRUSTED
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn users_are_pairwise_incomparable() {
        for a in 0..4 {
            for b in 0..4 {
                if a != b {
                    assert!(!user_label(a).flows_to(user_label(b)));
                }
            }
        }
    }

    #[test]
    fn users_flow_to_supervisor_reads() {
        // Every user's confidentiality is below the supervisor's.
        for k in 0..4 {
            assert!(user_label(k).conf.flows_to(supervisor_label().conf));
        }
    }

    #[test]
    #[should_panic(expected = "four user levels")]
    fn user_label_bounds() {
        let _ = user_label(4);
    }
}
