//! Construction of the baseline and protected accelerator designs.
//!
//! Both share one microarchitecture (`build`): a 30-stage AES-128 pipeline
//! (whitening stage, nine rounds of three registered substages, a
//! two-substage final round), an on-the-fly key-expansion pipeline, a
//! 512-bit key scratchpad (eight 64-bit cells, Fig. 5), configuration
//! registers, and a debug peripheral exposing any pipeline register
//! (the trace-buffer attack surface). The [`Protection`] level selects how
//! much of the paper's enforcement is instantiated.

use aes_core::{block_to_u128, Aes};
use hdl::{Design, LabelExpr, ModuleBuilder, Sig};
use ifc_lattice::{Label, SecurityTag};

use crate::bytes::{
    add_round_key_hw, inv_mix_columns_hw, inv_sbox_rom, inv_shift_rows_hw, inv_sub_bytes_hw,
    key_expand_hw, key_unexpand_dyn_hw, mix_columns_hw, sbox_rom, shift_rows_hw, sub_bytes_hw,
};
use crate::params::{AccelParams, PIPELINE_DEPTH};

/// AES round constants (RCON\[r\] produces round key `r + 1`).
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// The device master key, provisioned at manufacturing time into
/// scratchpad cells 6 and 7 with the `(⊤,⊤)` label.
pub const MASTER_KEY: [u8; 16] = [
    0xc0, 0xff, 0xee, 0x42, 0xde, 0xad, 0xbe, 0xef, 0x01, 0x23, 0x45, 0x67, 0x89, 0xab, 0xcd, 0xef,
];

/// Reference ciphertext oracle for the master key (used by attack checks).
#[must_use]
pub fn master_key_encrypt(block: [u8; 16]) -> [u8; 16] {
    Aes::new_128(MASTER_KEY).encrypt_block(block)
}

/// How much of the paper's protection scheme a built design carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protection {
    /// The unprotected baseline: no labels, no tags, no checks.
    Off,
    /// The baseline *structure* with the security annotations of Table 1
    /// applied — the artifact the static checker floods with label errors
    /// (the paper's methodology step between baseline and protected).
    Annotated,
    /// The protected design: tags, runtime checks, stall policy, holding
    /// buffer, and nonmalleable declassification. Verifies cleanly.
    Full,
}

/// Builds the unprotected baseline accelerator.
#[must_use]
pub fn baseline() -> Design {
    build(Protection::Off, AccelParams::paper())
}

/// Builds the baseline structure carrying security annotations (for static
/// analysis; see [`Protection::Annotated`]).
#[must_use]
pub fn baseline_annotated() -> Design {
    build(Protection::Annotated, AccelParams::paper())
}

/// Builds the protected accelerator.
#[must_use]
pub fn protected() -> Design {
    build(Protection::Full, AccelParams::paper())
}

/// The individual enforcement mechanisms of the protected design.
/// Disabling one produces a *lesion* variant for the ablation study: the
/// corresponding attack class becomes exploitable again, and (for the
/// value-flow mechanisms) the static checker flags the hole.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mechanisms {
    /// The Fig. 5 hardware tag check guarding scratchpad writes.
    pub scratchpad_check: bool,
    /// The Fig. 8 confidentiality-meet stall policy (off = baseline
    /// stall-on-any-backpressure). An *architectural* mechanism: its
    /// absence shows up in the noninterference experiment, not as a label
    /// error.
    pub stall_policy: bool,
    /// Nonmalleable declassification of the output (off = raw release).
    pub nm_release: bool,
    /// The integrity check on configuration writes.
    pub cfg_check: bool,
    /// Releasing the debug port at the supervisor-only (S,U) level.
    pub supervisor_debug: bool,
}

impl Mechanisms {
    /// Every mechanism enabled — the shipped protected design.
    #[must_use]
    pub const fn all() -> Mechanisms {
        Mechanisms {
            scratchpad_check: true,
            stall_policy: true,
            nm_release: true,
            cfg_check: true,
            supervisor_debug: true,
        }
    }
}

impl Default for Mechanisms {
    fn default() -> Mechanisms {
        Mechanisms::all()
    }
}

/// Builds a protected accelerator with a subset of mechanisms (the lesion
/// study's subjects).
#[must_use]
pub fn protected_with(mechanisms: Mechanisms) -> Design {
    build_with(Protection::Full, AccelParams::paper(), mechanisms)
}

/// Builds an accelerator at the given protection level.
#[must_use]
pub fn build(p: Protection, params: AccelParams) -> Design {
    build_with(p, params, Mechanisms::all())
}

/// Builds an accelerator at the given protection level with an explicit
/// mechanism set (only meaningful for [`Protection::Full`]).
#[must_use]
pub fn build_with(p: Protection, params: AccelParams, mech: Mechanisms) -> Design {
    build_full(p, params, mech, false)
}

/// Builds an accelerator with a data-leak hardware Trojan inserted (the
/// attack class of the paper's reference \[16\]): a magic plaintext block
/// arms an exfiltration FSM that leaks round-key bytes through the
/// `out_tag` side channel, one byte per cycle. The Trojan never perturbs
/// ciphertexts, so functional testing cannot see it — but on the
/// annotated/protected structure the static IFC check flags the
/// key-to-public flow immediately.
#[must_use]
pub fn trojaned(p: Protection) -> Design {
    build_full(p, AccelParams::paper(), Mechanisms::all(), true)
}

/// The plaintext block that arms the Trojan.
pub const TROJAN_TRIGGER: [u8; 16] = [
    0x13, 0x37, 0xc0, 0xde, 0xde, 0xad, 0xbe, 0xef, 0x0b, 0xad, 0xf0, 0x0d, 0xca, 0xfe, 0xd0, 0x0d,
];

#[must_use]
#[allow(clippy::too_many_lines)]
fn build_full(p: Protection, params: AccelParams, mech: Mechanisms, trojan: bool) -> Design {
    let annotate = p != Protection::Off;
    let full = p == Protection::Full;
    let name = match p {
        _ if trojan => "aes_accel_trojaned",
        Protection::Off => "aes_accel_baseline",
        Protection::Annotated => "aes_accel_baseline_annotated",
        Protection::Full if mech == Mechanisms::all() => "aes_accel_protected",
        Protection::Full => "aes_accel_protected_lesioned",
    };
    let mut m = ModuleBuilder::new(name);
    let pt = Label::PUBLIC_TRUSTED;

    // ----- ports ----------------------------------------------------------
    let in_valid = m.input("in_valid", 1);
    let in_block = m.input("in_block", 128);
    let in_tag = m.input("in_tag", 8);
    let in_decrypt = m.input("in_decrypt", 1);
    let in_key_slot = m.input("in_key_slot", 2);
    let key_we = m.input("key_we", 1);
    let key_cell = m.input("key_cell", 3);
    let key_data = m.input("key_data", 64);
    let key_wr_tag = m.input("key_wr_tag", 8);
    let alloc_we = m.input("alloc_we", 1);
    let alloc_cell = m.input("alloc_cell", 3);
    let alloc_tag = m.input("alloc_tag", 8);
    let cfg_we = m.input("cfg_we", 1);
    let cfg_data = m.input("cfg_data", 8);
    let cfg_wr_tag = m.input("cfg_wr_tag", 8);
    let dbg_sel = m.input("dbg_sel", 6);
    let out_ready = m.input("out_ready", 1);

    if annotate {
        // Control and metadata signals come from the trusted SoC wrapper
        // of Fig. 2; data signals carry the label of their runtime tag.
        for sig in [
            in_valid,
            in_tag,
            in_decrypt,
            in_key_slot,
            key_we,
            key_cell,
            key_wr_tag,
            alloc_we,
            alloc_cell,
            alloc_tag,
            cfg_we,
            cfg_wr_tag,
            dbg_sel,
            out_ready,
        ] {
            m.set_label(sig, pt);
        }
        m.set_label(in_block, LabelExpr::FromTag(in_tag.id()));
        m.set_label(key_data, LabelExpr::FromTag(key_wr_tag.id()));
        m.set_label(cfg_data, LabelExpr::FromTag(cfg_wr_tag.id()));
    }

    // ----- shared ROM ------------------------------------------------------
    let rom = sbox_rom(&mut m);

    // ----- key scratchpad (Fig. 5) ------------------------------------------
    let mk = block_to_u128(MASTER_KEY);
    let mut cell_init = vec![0u128; params.scratchpad_cells];
    cell_init[6] = mk >> 64;
    cell_init[7] = mk & u128::from(u64::MAX);
    let cells = m.mem("scratchpad.cells", 64, params.scratchpad_cells, cell_init);

    // Per-cell tag array; unallocated cells are supervisor-owned (P,T),
    // master-key cells carry (S,T).
    let tags_mem = if full {
        let mut tag_init = vec![u128::from(SecurityTag::from(pt).bits()); params.scratchpad_cells];
        let mk_tag = u128::from(SecurityTag::from(Label::SECRET_TRUSTED).bits());
        tag_init[6] = mk_tag;
        tag_init[7] = mk_tag;
        let tm = m.mem("scratchpad.tags", 8, params.scratchpad_cells, tag_init);
        m.set_mem_label(tm, pt);
        Some(tm)
    } else {
        None
    };

    // Key write path. `key_write_landed` is the effective write enable,
    // which also triggers decrypt-key preparation below.
    let key_write_landed = if let Some(tm) = tags_mem {
        // Fig. 5: the hardware tag check in front of the tagged storage.
        let wr_cell_tag = m.mem_read(tm, key_cell);
        let wr_en = if mech.scratchpad_check {
            let wr_ok = m.tag_leq(key_wr_tag, wr_cell_tag);
            m.and(key_we, wr_ok)
        } else {
            // Lesion: the bounds/ownership check is missing.
            key_we
        };
        m.when(wr_en, |m| m.mem_write(cells, key_cell, key_data));
        m.set_mem_label(cells, LabelExpr::FromTag(wr_cell_tag.id()));
        // The arbiter (re)allocates a cell: retag and wipe.
        m.when(alloc_we, |m| {
            m.mem_write(tm, alloc_cell, alloc_tag);
            let zero64 = m.lit(0, 64);
            m.mem_write(cells, alloc_cell, zero64);
        });
        wr_en
    } else {
        // Baseline: no bounds/ownership check whatsoever.
        m.when(key_we, |m| m.mem_write(cells, key_cell, key_data));
        key_we
    };

    // ----- decrypt-key scratchpad and preparation unit ------------------------
    // Decryption whitens with the *last* round key, so the accelerator
    // precomputes RK10 for each loaded key into a parallel scratchpad
    // (one expansion step per cycle) — the standard E/D organisation. The
    // master key's decrypt key is factory-provisioned like the key itself.
    let mk_rk10 = block_to_u128(
        aes_core::KeySchedule::expand(&MASTER_KEY)
            .expect("master key is 16 bytes")
            .round_key(10),
    );
    let mut dec_init = vec![0u128; params.scratchpad_cells];
    dec_init[6] = mk_rk10 >> 64;
    dec_init[7] = mk_rk10 & u128::from(u64::MAX);
    let dec_cells = m.mem("decpad.cells", 64, params.scratchpad_cells, dec_init);
    let dec_tags = if full {
        let mut tag_init = vec![u128::from(SecurityTag::from(pt).bits()); params.scratchpad_cells];
        let mk_tag = u128::from(SecurityTag::from(Label::SECRET_TRUSTED).bits());
        tag_init[6] = mk_tag;
        tag_init[7] = mk_tag;
        let tm = m.mem("decpad.tags", 8, params.scratchpad_cells, tag_init);
        m.set_mem_label(tm, pt);
        Some(tm)
    } else {
        None
    };

    let prep_active = m.reg("prep.active", 1, 0);
    let prep_cnt = m.reg("prep.cnt", 4, 0);
    let prep_base = m.reg("prep.base", 3, 0);
    let prep_ktag = m.reg("prep.ktag", 8, 0);
    let prep_kstate = m.reg("prep.kstate", 128, 0);
    if annotate {
        for s in [prep_active, prep_cnt, prep_base, prep_ktag] {
            m.set_label(s, pt);
        }
    }
    if full {
        m.set_label(prep_kstate, LabelExpr::FromTag(prep_ktag.id()));
    }

    // A completed write to a slot's odd cell kicks off preparation.
    let odd_cell = m.slice(key_cell, 0, 0);
    let prep_trigger = m.and(key_write_landed, odd_cell);
    let slot_bits = m.slice(key_cell, 2, 1);
    let bit0 = m.lit(0, 1);
    let bit1 = m.lit(1, 1);
    let base_cell = m.cat(slot_bits, bit0);
    m.when(prep_trigger, |m| {
        let one = m.lit(1, 1);
        m.connect(prep_active, one);
        let z4 = m.lit(0, 4);
        m.connect(prep_cnt, z4);
        m.connect(prep_base, base_cell);
    });

    let prep_base_hi = prep_base;
    let prep_base_slot = m.slice(prep_base, 2, 1);
    let prep_base_lo = m.cat(prep_base_slot, bit1);
    let p_hi = m.mem_read(cells, prep_base_hi);
    let p_lo = m.mem_read(cells, prep_base_lo);
    let p_key = m.cat(p_hi, p_lo);

    let prep_rcon_rom = m.mem(
        "prep.rcon_rom",
        8,
        16,
        vec![
            0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36, 0, 0, 0, 0, 0, 0,
        ],
    );
    let one4p = m.lit(1, 4);
    let cnt_m1 = m.sub(prep_cnt, one4p);
    let prep_rcon = m.mem_read(prep_rcon_rom, cnt_m1);
    let prep_expanded = crate::bytes::key_expand_dyn_hw(&mut m, rom, prep_kstate, prep_rcon);
    let kstate_hi = m.slice(prep_kstate, 127, 64);
    let kstate_lo = m.slice(prep_kstate, 63, 0);

    let cnt_is_latch = m.eq_lit(prep_cnt, 0);
    let cnt_ge1 = m.ge(prep_cnt, one4p);
    let eleven = m.lit(11, 4);
    let cnt_lt11 = m.lt(prep_cnt, eleven);
    let cnt_expanding = m.and(cnt_ge1, cnt_lt11);
    let cnt_is_tagwr = m.eq_lit(prep_cnt, 11);
    let cnt_is_datawr = m.eq_lit(prep_cnt, 12);
    let cnt_next = m.add(prep_cnt, one4p);

    m.when(prep_active, |m| {
        m.connect(prep_cnt, cnt_next);
        m.when(cnt_is_latch, |m| {
            m.connect(prep_kstate, p_key);
            if let Some(tm) = tags_mem {
                let pt_hi = m.mem_read(tm, prep_base_hi);
                let pt_lo = m.mem_read(tm, prep_base_lo);
                let joined = m.tag_join(pt_hi, pt_lo);
                m.connect(prep_ktag, joined);
            }
        });
        m.when(cnt_expanding, |m| m.connect(prep_kstate, prep_expanded));
        if let Some(dtm) = dec_tags {
            m.when(cnt_is_tagwr, |m| {
                m.mem_write(dtm, prep_base_hi, prep_ktag);
                m.mem_write(dtm, prep_base_lo, prep_ktag);
            });
            let dt_rd_hi = m.mem_read(dtm, prep_base_hi);
            let dt_rd_lo = m.mem_read(dtm, prep_base_lo);
            let ok_hi = m.tag_leq(prep_ktag, dt_rd_hi);
            let ok_lo = m.tag_leq(prep_ktag, dt_rd_lo);
            let wr_hi = m.and(cnt_is_datawr, ok_hi);
            let wr_lo = m.and(cnt_is_datawr, ok_lo);
            m.when(wr_hi, |m| m.mem_write(dec_cells, prep_base_hi, kstate_hi));
            m.when(wr_lo, |m| m.mem_write(dec_cells, prep_base_lo, kstate_lo));
            m.set_mem_label(dec_cells, LabelExpr::FromTag(dt_rd_hi.id()));
        } else {
            m.when(cnt_is_datawr, |m| {
                m.mem_write(dec_cells, prep_base_hi, kstate_hi);
                m.mem_write(dec_cells, prep_base_lo, kstate_lo);
            });
        }
        m.when(cnt_is_datawr, |m| {
            let z1 = m.lit(0, 1);
            m.connect(prep_active, z1);
        });
    });

    // Dispatch key read: slot s occupies cells 2s (high half) and 2s+1.
    let addr_hi = m.cat(in_key_slot, bit0);
    let addr_lo = m.cat(in_key_slot, bit1);
    let k_hi = m.mem_read(cells, addr_hi);
    let k_lo = m.mem_read(cells, addr_lo);
    let key128 = m.cat(k_hi, k_lo);
    let d_hi = m.mem_read(dec_cells, addr_hi);
    let d_lo = m.mem_read(dec_cells, addr_lo);
    let dec_key128 = m.cat(d_hi, d_lo);

    let disp_tag = if full {
        let tm = tags_mem.expect("full protection has a tag array");
        let t_hi = m.mem_read(tm, addr_hi);
        let t_lo = m.mem_read(tm, addr_lo);
        let enc_key_tag = m.tag_join(t_hi, t_lo);
        let dtm = dec_tags.expect("full protection has a decrypt tag array");
        let dt_hi = m.mem_read(dtm, addr_hi);
        let dt_lo = m.mem_read(dtm, addr_lo);
        let dec_key_tag = m.tag_join(dt_hi, dt_lo);
        let key_tag = m.mux(in_decrypt, dec_key_tag, enc_key_tag);
        Some(m.tag_join(in_tag, key_tag))
    } else {
        None
    };

    // ----- pipeline registers ------------------------------------------------
    let data: Vec<Sig> = (0..PIPELINE_DEPTH)
        .map(|i| m.reg(&format!("pipe.data{i}"), 128, 0))
        .collect();
    let kreg: Vec<Sig> = (0..PIPELINE_DEPTH)
        .map(|i| m.reg(&format!("pipe.key{i}"), 128, 0))
        .collect();
    let valid: Vec<Sig> = (0..PIPELINE_DEPTH)
        .map(|i| m.reg(&format!("pipe.valid{i}"), 1, 0))
        .collect();
    // Per-block direction bit: each slot knows whether it is encrypting
    // or decrypting (the E/D datapath of Fig. 7).
    let dmode: Vec<Sig> = (0..PIPELINE_DEPTH)
        .map(|i| m.reg(&format!("pipe.dec{i}"), 1, 0))
        .collect();
    let tag: Vec<Sig> = if full {
        (0..PIPELINE_DEPTH)
            .map(|i| m.reg(&format!("pipe.tag{i}"), 8, 0))
            .collect()
    } else {
        Vec::new()
    };
    if annotate {
        for &v in &valid {
            m.set_label(v, pt);
        }
        for &d in &dmode {
            m.set_label(d, pt);
        }
    }
    if full {
        // Fig. 7: each stage's data is labelled by its dedicated tag
        // register; tags themselves are public metadata.
        for i in 0..PIPELINE_DEPTH {
            m.set_label(tag[i], pt);
            m.set_label(data[i], LabelExpr::FromTag(tag[i].id()));
            m.set_label(kreg[i], LabelExpr::FromTag(tag[i].id()));
        }
    }

    // ----- stall / advance ---------------------------------------------------
    let advance = m.wire("ctl.advance", 1);
    if annotate {
        m.set_label(advance, pt);
    }
    let not_ready = m.not(out_ready);
    if full && mech.stall_policy {
        // Fig. 8: the stall requester (the block at the output stage) may
        // stall the pipeline only when no stage holds data of lower
        // confidentiality: C(req) ⊑C C(⊓ stage labels).
        let top_tag = m.lit(
            u128::from(SecurityTag::from(Label::SECRET_TRUSTED).bits()),
            8,
        );
        let mut level: Vec<Sig> = (0..PIPELINE_DEPTH)
            .map(|i| m.mux(valid[i], tag[i], top_tag))
            .collect();
        // Balanced reduction tree (log depth, as a synthesis tool would
        // build it) rather than a linear chain.
        while level.len() > 1 {
            level = level
                .chunks(2)
                .map(|pair| {
                    if pair.len() == 2 {
                        m.tag_meet(pair[0], pair[1])
                    } else {
                        pair[0]
                    }
                })
                .collect();
        }
        let meet = level[0];
        let req_conf = m.slice(tag[PIPELINE_DEPTH - 1], 7, 4);
        let meet_conf = m.slice(meet, 7, 4);
        let permitted = m.ge(meet_conf, req_conf);
        let blocked = m.and(valid[PIPELINE_DEPTH - 1], not_ready);
        let stall = m.and(blocked, permitted);
        let go = m.not(stall);
        m.connect(advance, go);
    } else {
        // Baseline: any block waiting on a slow receiver stalls everyone —
        // the cross-user timing channel of Section 3.1.
        let stall = m.and(valid[PIPELINE_DEPTH - 1], not_ready);
        let go = m.not(stall);
        m.connect(advance, go);
    }

    // ----- pipeline next-state -------------------------------------------------
    // Encryption whitens with RK0 (the key itself) and expands forward;
    // decryption whitens with RK10 from the decrypt-key scratchpad and
    // expands *backwards* on the fly.
    let inv_rom = inv_sbox_rom(&mut m);
    let sel_key = m.mux(in_decrypt, dec_key128, key128);
    let whiten = add_round_key_hw(&mut m, in_block, sel_key);
    let rk1 = key_expand_hw(&mut m, rom, key128, RCON[0]);
    let rcon9 = m.lit(u128::from(RCON[9]), 8);
    let rk9 = key_unexpand_dyn_hw(&mut m, rom, dec_key128, rcon9);
    let k0 = m.mux(in_decrypt, rk9, rk1);

    m.when(advance, |m| {
        m.connect(valid[0], in_valid);
        m.connect(data[0], whiten);
        m.connect(kreg[0], k0);
        m.connect(dmode[0], in_decrypt);
        if let Some(dt) = disp_tag {
            m.connect(tag[0], dt);
        }
    });

    for i in 1..PIPELINE_DEPTH {
        let prev_d = data[i - 1];
        let prev_k = kreg[i - 1];
        let prev_m = dmode[i - 1];
        // Stage function by position: stages 1..=27 are rounds 1..=9
        // (three registered substages each); 28–29 are the final round.
        // Encrypt substages: SubBytes / ShiftRows+MixColumns / AddRoundKey
        // (expanding the next round key). Decrypt substages:
        // InvShiftRows+InvSubBytes / AddRoundKey / InvMixColumns
        // (un-expanding the next round key).
        let (enc_d, enc_k, dec_d, dec_k) = if i <= 27 {
            let round = i.div_ceil(3);
            match (i - 1) % 3 {
                0 => {
                    let e = sub_bytes_hw(&mut m, rom, prev_d);
                    let ishift = inv_shift_rows_hw(&mut m, prev_d);
                    let d = inv_sub_bytes_hw(&mut m, inv_rom, ishift);
                    (e, prev_k, d, prev_k)
                }
                1 => {
                    let shifted = shift_rows_hw(&mut m, prev_d);
                    let e = mix_columns_hw(&mut m, shifted);
                    let d = add_round_key_hw(&mut m, prev_d, prev_k);
                    (e, prev_k, d, prev_k)
                }
                _ => {
                    let e = add_round_key_hw(&mut m, prev_d, prev_k);
                    let ek = key_expand_hw(&mut m, rom, prev_k, RCON[round]);
                    let d = inv_mix_columns_hw(&mut m, prev_d);
                    let rc = m.lit(u128::from(RCON[9 - round]), 8);
                    let dk = key_unexpand_dyn_hw(&mut m, rom, prev_k, rc);
                    (e, ek, d, dk)
                }
            }
        } else if i == 28 {
            let e = sub_bytes_hw(&mut m, rom, prev_d);
            let ishift = inv_shift_rows_hw(&mut m, prev_d);
            let d = inv_sub_bytes_hw(&mut m, inv_rom, ishift);
            (e, prev_k, d, prev_k)
        } else {
            let shifted = shift_rows_hw(&mut m, prev_d);
            let e = add_round_key_hw(&mut m, shifted, prev_k);
            let d = add_round_key_hw(&mut m, prev_d, prev_k);
            (e, prev_k, d, prev_k)
        };
        let next_d = m.mux(prev_m, dec_d, enc_d);
        let next_k = m.mux(prev_m, dec_k, enc_k);
        m.when(advance, |m| {
            m.connect(data[i], next_d);
            m.connect(kreg[i], next_k);
            m.connect(valid[i], valid[i - 1]);
            m.connect(dmode[i], prev_m);
            if full {
                m.connect(tag[i], tag[i - 1]);
            }
        });
    }

    let last = PIPELINE_DEPTH - 1;
    let zero128 = m.lit(0, 128);

    // ----- output path ------------------------------------------------------
    let out_tag_normal = if full {
        // Holding buffer for completed blocks that may not stall the
        // pipeline (Fig. 8) — the paper's extra BRAM consumer.
        let depth = params.out_buffer_depth;
        let ptr_w = (usize::BITS - (depth - 1).leading_zeros()).max(1) as u16;
        let buf_data = m.mem("outbuf.data", 128, depth, vec![]);
        let buf_tag = m.mem("outbuf.tag", 8, depth, vec![]);
        let head = m.reg("outbuf.head", ptr_w, 0);
        let tail = m.reg("outbuf.tail", ptr_w, 0);
        let count = m.reg("outbuf.count", ptr_w + 1, 0);
        if annotate {
            for s in [head, tail, count] {
                m.set_label(s, pt);
            }
        }

        let empty = m.eq_lit(count, 0);
        let nonempty = m.not(empty);
        let buf_full = m.eq_lit(count, depth as u128);

        let pop = m.and(out_ready, nonempty);
        let leaving = m.and(valid[last], advance);
        let d0 = m.and(out_ready, empty);
        let direct = m.and(d0, leaving);
        let not_direct = m.not(direct);
        let push = m.and(leaving, not_direct);
        let not_full = m.not(buf_full);
        let do_push = m.and(push, not_full);

        m.when(do_push, |m| {
            m.mem_write(buf_data, tail, data[last]);
            m.mem_write(buf_tag, tail, tag[last]);
            let one4 = m.lit(1, ptr_w);
            let t1 = m.add(tail, one4);
            m.connect(tail, t1);
        });
        m.when(pop, |m| {
            let one4 = m.lit(1, ptr_w);
            let h1 = m.add(head, one4);
            m.connect(head, h1);
        });
        let one5 = m.lit(1, ptr_w + 1);
        let inc = m.add(count, one5);
        let dec = m.sub(count, one5);
        let not_pop = m.not(pop);
        let push_only = m.and(do_push, not_pop);
        let not_push = m.not(do_push);
        let pop_only = m.and(pop, not_push);
        m.when(push_only, |m| m.connect(count, inc));
        m.when(pop_only, |m| m.connect(count, dec));

        let drop_count = m.reg("outbuf.drop_count", 16, 0);
        if annotate {
            m.set_label(drop_count, pt);
        }
        let dropping = m.and(push, buf_full);
        let one16 = m.lit(1, 16);
        let dinc = m.add(drop_count, one16);
        m.when(dropping, |m| m.connect(drop_count, dinc));

        // Output select: drain the buffer first to preserve order.
        let buf_rd_data = m.mem_read(buf_data, head);
        let buf_rd_tag = m.mem_read(buf_tag, head);
        let out_pre = m.mux(pop, buf_rd_data, data[last]);
        let out_tag_sig = m.mux(pop, buf_rd_tag, tag[last]);

        // Nonmalleable release of the final ciphertext (Sections
        // 3.2.1–3.2.2): the principal is the owning user, whose integrity
        // the block's tag carries. The downgrade hardware only sees data
        // on cycles where a block is actually leaving (`emit`); idle
        // cycles present public zeroes.
        let emit = m.or(pop, direct);
        let idle_tag = m.tag_lit(Label::PUBLIC_TRUSTED);
        let gated_data = m.mux(emit, out_pre, zero128);
        let gated_tag = m.mux(emit, out_tag_sig, idle_tag);
        let (out_valid, out_block) = if mech.nm_release {
            let nm_ok = m.nm_declassify_ok(gated_tag, Label::PUBLIC_UNTRUSTED, gated_tag);
            let released = m.declassify(gated_data, Label::PUBLIC_UNTRUSTED, gated_tag);
            let out_valid = m.and(emit, nm_ok);
            (out_valid, m.mux(out_valid, released, zero128))
        } else {
            // Lesion: the ciphertext is released raw, with no reviewed
            // downgrade and no nonmalleability check.
            (emit, m.mux(emit, gated_data, zero128))
        };

        let nm_rejects = m.reg("ctl.nm_reject_count", 16, 0);
        if annotate {
            m.set_label(nm_rejects, pt);
        }
        let not_valid = m.not(out_valid);
        let rejected = m.and(emit, not_valid);
        let rinc = m.add(nm_rejects, one16);
        m.when(rejected, |m| m.connect(nm_rejects, rinc));

        m.output("out_valid", out_valid);
        m.output("out_block", out_block);
        m.output("out_emit", emit);
        m.output("drop_count", drop_count);
        m.output("nm_reject_count", nm_rejects);
        out_tag_sig
    } else {
        let out_valid = m.and(valid[last], out_ready);
        let out_block = m.mux(out_valid, data[last], zero128);
        let zero8 = m.lit(0, 8);
        let zero16 = m.lit(0, 16);
        m.output("out_valid", out_valid);
        m.output("out_block", out_block);
        m.output("out_emit", out_valid);
        m.output("drop_count", zero16);
        m.output("nm_reject_count", zero16);
        zero8
    };

    // A data-leak hardware Trojan (reference [16]): armed by a magic
    // plaintext, it exfiltrates the round-key pipeline through the
    // out_tag side channel one byte per cycle, without ever perturbing a
    // ciphertext.
    let out_tag_final = if trojan {
        let magic = m.lit(block_to_u128(TROJAN_TRIGGER), 128);
        let hit = m.eq(in_block, magic);
        let fire = m.and(hit, in_valid);
        let armed = m.reg("trojan.armed", 1, 0);
        let one1 = m.lit(1, 1);
        m.when(fire, |m| m.connect(armed, one1));
        let idx = m.reg("trojan.idx", 4, 0);
        let one4 = m.lit(1, 4);
        let next_idx = m.add(idx, one4);
        m.when(armed, |m| m.connect(idx, next_idx));
        let mut leak = m.lit(0, 8);
        for i in 0..16 {
            let sel = m.eq_lit(idx, i as u128);
            let byte = crate::bytes::byte_of(&mut m, kreg[0], i);
            leak = m.mux(sel, byte, leak);
        }
        m.mux(armed, leak, out_tag_normal)
    } else {
        out_tag_normal
    };
    m.output("out_tag", out_tag_final);

    m.output("in_ready", advance);

    // ----- configuration registers -------------------------------------------
    let cfg = m.reg("cfg.reg", 8, 0);
    if annotate {
        // Readable by anyone, writable only with full integrity: (⊥,⊤).
        m.set_label(cfg, pt);
    }
    if full && mech.cfg_check {
        let cfg_limit = m.tag_lit(pt);
        let trusted = m.tag_leq(cfg_wr_tag, cfg_limit);
        let cfg_en = m.and(cfg_we, trusted);
        m.when(cfg_en, |m| m.connect(cfg, cfg_data));
    } else {
        // Baseline: any user can flip configuration bits — including the
        // debug unlock.
        m.when(cfg_we, |m| m.connect(cfg, cfg_data));
    }
    m.output("cfg_out", cfg);

    // ----- debug peripheral ----------------------------------------------------
    // Selects any pipeline data or key register: the trace-buffer attack
    // surface. Baseline gates it only behind a config bit that anyone can
    // set; the protected design releases it solely at the supervisor-read
    // level (S,U).
    let dbg_unlocked = m.slice(cfg, 0, 0);
    let mut probe = zero128;
    for (i, &d) in data.iter().enumerate() {
        let sel = m.eq_lit(dbg_sel, i as u128);
        probe = m.mux(sel, d, probe);
    }
    for (i, &k) in kreg.iter().enumerate() {
        let sel = m.eq_lit(dbg_sel, (32 + i) as u128);
        probe = m.mux(sel, k, probe);
    }
    let dbg_out = m.mux(dbg_unlocked, probe, zero128);
    if full && mech.supervisor_debug {
        m.output_labeled("dbg_out", dbg_out, Label::SECRET_UNTRUSTED);
    } else {
        m.output("dbg_out", dbg_out);
    }

    // ----- shared response-tag store (Fig. 3) --------------------------------
    // The paper's motivating dependent-label example, instantiated as the
    // accelerator's slice of the SoC's shared cache-tag array: way 0 is
    // the trusted OS way, way 1 the untrusted guest way, and the shared
    // input/output ports carry the dependent label `DL(way)`. Present at
    // every protection level so area comparisons stay like-for-like; the
    // labels exist only on the annotated designs. The mutation campaign
    // targets the `DL(sel)` table entries here.
    let ct_we = m.input("ctag_we", 1);
    let ct_way = m.input("ctag_way", 1);
    let ct_index = m.input("ctag_index", 8);
    let ct_in = m.input("ctag_in", 19);
    let dl_way = LabelExpr::dl2(ct_way.id(), pt, Label::PUBLIC_UNTRUSTED);
    if annotate {
        for sig in [ct_we, ct_way, ct_index] {
            m.set_label(sig, pt);
        }
        m.set_label(ct_in, dl_way.clone());
    }
    let ct_way0 = m.mem("ctag.way0", 19, 256, vec![]);
    let ct_way1 = m.mem("ctag.way1", 19, 256, vec![]);
    if annotate {
        m.set_mem_label(ct_way0, pt);
        m.set_mem_label(ct_way1, Label::PUBLIC_UNTRUSTED);
    }
    let ct_is0 = m.eq_lit(ct_way, 0);
    m.when(ct_we, |m| {
        m.when_else(
            ct_is0,
            |m| m.mem_write(ct_way0, ct_index, ct_in),
            |m| m.mem_write(ct_way1, ct_index, ct_in),
        );
    });
    let ct_rd0 = m.mem_read(ct_way0, ct_index);
    let ct_rd1 = m.mem_read(ct_way1, ct_index);
    let ct_out = m.wire("ctag.out", 19);
    if annotate {
        m.set_label(ct_out, dl_way.clone());
    }
    m.when_else(
        ct_is0,
        |m| m.connect(ct_out, ct_rd0),
        |m| m.connect(ct_out, ct_rd1),
    );
    if annotate {
        m.output_labeled("ctag_out", ct_out, dl_way);
    } else {
        m.output("ctag_out", ct_out);
    }

    m.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn designs_build_and_lower() {
        for p in [Protection::Off, Protection::Annotated, Protection::Full] {
            let d = build(p, AccelParams::paper());
            let net = d.lower().expect("accelerator lowers");
            assert!(net.nodes.len() > 1000, "non-trivial design");
        }
    }

    #[test]
    fn protected_design_is_larger() {
        let base = baseline();
        let prot = protected();
        assert!(prot.node_count() > base.node_count());
        assert!(prot.mems().len() > base.mems().len());
    }
}
