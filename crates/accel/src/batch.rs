//! Transaction-level driver for lane-batched accelerator sessions.
//!
//! [`BatchedDriver`] is the [`AccelDriver`](crate::driver::AccelDriver)
//! protocol replicated across the W lanes of one
//! [`BatchedSim`](sim::BatchedSim): every lane is an independent
//! accelerator session (own keys, own request stream, own responses and
//! violation stream), but all lanes share the clock and advance through
//! one tape pass per cycle. The port protocol per lane is cycle-for-cycle
//! identical to the single-session driver, so per-lane statistics from a
//! symmetric workload match what `AccelDriver` reports for the same
//! stimulus — the fleet tests assert exactly that.
//!
//! Lanes may diverge (one lane stalled or rejected while another
//! proceeds): submission is per-lane handshake-checked each cycle, and
//! lanes with nothing to submit simply idle (inputs held cleared).

use std::collections::VecDeque;

use aes_core::{block_to_u128, u128_to_block};
use hdl::NodeId;
use ifc_lattice::{Label, SecurityTag};
use sim::{BatchedSim, LaneBackend, OptConfig, RuntimeViolation, TrackMode};

use crate::driver::{Pending, Rejection, Request, Response};
use crate::params::MASTER_KEY_SLOT;

/// Interface ports resolved once at construction, so the per-cycle
/// drive and sampling loops do no name lookups (clearing the inputs of
/// W lanes every cycle is the hot edge of the batched protocol).
#[derive(Debug, Clone, Copy)]
struct Ports {
    out_emit: NodeId,
    out_valid: NodeId,
    out_block: NodeId,
    out_tag: NodeId,
    in_ready: NodeId,
    in_valid: NodeId,
    in_block: NodeId,
    in_decrypt: NodeId,
    in_tag: NodeId,
    in_key_slot: NodeId,
    key_we: NodeId,
    key_cell: NodeId,
    key_data: NodeId,
    key_wr_tag: NodeId,
    alloc_we: NodeId,
    alloc_cell: NodeId,
    alloc_tag: NodeId,
    cfg_we: NodeId,
    out_ready: NodeId,
}

/// One lane's port activity for one [`BatchedDriver::step`] cycle.
///
/// The whole-batch helpers ([`BatchedDriver::alloc_cell`],
/// [`BatchedDriver::write_key_cell`], [`BatchedDriver::try_submit_each`])
/// drive every lane through the same protocol phase; `LaneAction` lets
/// each lane be in a *different* phase on the same cycle, which is what
/// live lane refill in the accelerator farm needs.
#[derive(Debug, Clone)]
pub enum LaneAction {
    /// Hold this lane's inputs cleared for the cycle.
    Idle,
    /// Allocate scratchpad `cell` to `owner` via the arbiter port
    /// (retags and wipes the cell).
    Alloc {
        /// Scratchpad cell index.
        cell: usize,
        /// New owner; becomes the cell's tag.
        owner: Label,
    },
    /// Write one 64-bit scratchpad cell as `writer`.
    WriteKey {
        /// Scratchpad cell index.
        cell: usize,
        /// Data word.
        data: u64,
        /// Writer principal carried on the key-write port.
        writer: Label,
    },
    /// Offer a request to the input handshake; the cycle's acceptance is
    /// reported through [`BatchedDriver::step`]'s `accepted` slot.
    Submit {
        /// The request to offer.
        req: Request,
        /// Decrypt instead of encrypt.
        decrypt: bool,
    },
}

/// Drives W accelerator sessions at the transaction level over one
/// lane-batched simulator (any [`LaneBackend`] — the interpreting
/// [`BatchedSim`] by default, or the native-codegen
/// [`NativeSim`](sim::NativeSim)). See the [module docs](self).
#[derive(Debug)]
pub struct BatchedDriver<S: LaneBackend = BatchedSim> {
    sim: S,
    ports: Ports,
    pending: Vec<VecDeque<Pending>>,
    /// Per-lane completed encryptions, in order.
    pub responses: Vec<Vec<Response>>,
    /// Per-lane requests refused by the release check.
    pub rejections: Vec<Vec<Rejection>>,
    receiver_ready: bool,
}

impl<S: LaneBackend> BatchedDriver<S> {
    /// Compiles a netlist (no optimizer passes) and instantiates `lanes`
    /// driver sessions.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is not a supported lane width
    /// ([`sim::SUPPORTED_LANES`]).
    #[must_use]
    pub fn from_netlist(net: hdl::Netlist, mode: TrackMode, lanes: usize) -> BatchedDriver<S> {
        BatchedDriver::from_batched(S::with_tracking_opt(net, mode, lanes, &OptConfig::none()))
    }

    /// Wraps an already-constructed batched simulator (the fleet path:
    /// one prototype shares its compiled program with every batch).
    ///
    /// # Panics
    ///
    /// Panics if the design has no output interface (not an accelerator).
    #[must_use]
    pub fn from_batched(mut sim: S) -> BatchedDriver<S> {
        // The factory-provisioned master key carries (⊤,⊤) in every lane.
        if let Some(mem) = sim.mem_index("scratchpad.cells") {
            for lane in 0..sim.lanes() {
                sim.set_mem_cell_label(lane, mem, 2 * MASTER_KEY_SLOT, Label::SECRET_TRUSTED);
                sim.set_mem_cell_label(lane, mem, 2 * MASTER_KEY_SLOT + 1, Label::SECRET_TRUSTED);
            }
        }
        let out = |name: &str| {
            sim.netlist()
                .output(name)
                .unwrap_or_else(|| panic!("accelerator design has no {name:?} port"))
        };
        let inp = |name: &str| {
            sim.netlist()
                .input(name)
                .unwrap_or_else(|| panic!("accelerator design has no {name:?} input"))
        };
        let ports = Ports {
            out_emit: out("out_emit"),
            out_valid: out("out_valid"),
            out_block: out("out_block"),
            out_tag: out("out_tag"),
            in_ready: out("in_ready"),
            in_valid: inp("in_valid"),
            in_block: inp("in_block"),
            in_decrypt: inp("in_decrypt"),
            in_tag: inp("in_tag"),
            in_key_slot: inp("in_key_slot"),
            key_we: inp("key_we"),
            key_cell: inp("key_cell"),
            key_data: inp("key_data"),
            key_wr_tag: inp("key_wr_tag"),
            alloc_we: inp("alloc_we"),
            alloc_cell: inp("alloc_cell"),
            alloc_tag: inp("alloc_tag"),
            cfg_we: inp("cfg_we"),
            out_ready: inp("out_ready"),
        };
        let lanes = sim.lanes();
        BatchedDriver {
            sim,
            ports,
            pending: vec![VecDeque::new(); lanes],
            responses: vec![Vec::new(); lanes],
            rejections: vec![Vec::new(); lanes],
            receiver_ready: true,
        }
    }

    /// Number of lanes (sessions).
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.sim.lanes()
    }

    /// The wrapped batched simulator.
    pub fn sim_mut(&mut self) -> &mut S {
        &mut self.sim
    }

    /// Shared view of the wrapped simulator.
    #[must_use]
    pub fn sim(&self) -> &S {
        &self.sim
    }

    /// One lane's recorded runtime violations.
    #[must_use]
    pub fn violations(&self, lane: usize) -> &[RuntimeViolation] {
        self.sim.violations(lane)
    }

    /// The shared cycle count.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.sim.cycle()
    }

    /// One lane's number of in-flight requests.
    #[must_use]
    pub fn in_flight(&self, lane: usize) -> usize {
        self.pending[lane].len()
    }

    /// Sets whether every lane's downstream receiver accepts outputs.
    pub fn set_receiver_ready(&mut self, ready: bool) {
        self.receiver_ready = ready;
    }

    fn clear_cycle_inputs(&mut self) {
        let p = self.ports;
        for lane in 0..self.lanes() {
            for port in [p.in_valid, p.key_we, p.alloc_we, p.cfg_we] {
                self.sim.set_node(lane, port, 0);
                self.sim.set_node_label(lane, port, Label::PUBLIC_TRUSTED);
            }
            self.sim.set_node(lane, p.in_block, 0);
            self.sim.set_node(lane, p.in_decrypt, 0);
            self.sim
                .set_node_label(lane, p.in_block, Label::PUBLIC_TRUSTED);
            self.sim.set_node(lane, p.key_data, 0);
            self.sim
                .set_node_label(lane, p.key_data, Label::PUBLIC_TRUSTED);
            self.sim
                .set_node(lane, p.out_ready, u128::from(self.receiver_ready));
        }
    }

    /// Finishes the current cycle: samples every lane's output interface,
    /// updates the per-lane bookkeeping, and advances the shared clock.
    fn finish_cycle(&mut self) {
        for lane in 0..self.lanes() {
            if self.sim.peek_node(lane, self.ports.out_emit) != 1 {
                continue;
            }
            let valid = self.sim.peek_node(lane, self.ports.out_valid) == 1;
            let pending = self.pending[lane]
                .pop_front()
                .expect("hardware emitted more blocks than were submitted");
            if valid {
                let block = u128_to_block(self.sim.peek_node(lane, self.ports.out_block));
                let tag =
                    SecurityTag::from_bits(self.sim.peek_node(lane, self.ports.out_tag) as u8);
                self.responses[lane].push(Response {
                    block,
                    tag,
                    submitted: pending.submitted,
                    completed: self.sim.cycle(),
                    user: pending.user,
                });
            } else {
                self.rejections[lane].push(Rejection {
                    cycle: self.sim.cycle(),
                    user: pending.user,
                });
            }
        }
        self.sim.tick();
    }

    /// Runs one idle cycle on every lane.
    pub fn idle_cycle(&mut self) {
        self.clear_cycle_inputs();
        self.finish_cycle();
    }

    /// Runs `n` idle cycles.
    pub fn idle(&mut self, n: u64) {
        for _ in 0..n {
            self.idle_cycle();
        }
    }

    /// Allocates scratchpad `cell` to a per-lane owner on every lane
    /// (retags and wipes the cell). One cycle.
    ///
    /// # Panics
    ///
    /// Panics if `owners` does not hold one label per lane.
    pub fn alloc_cell(&mut self, cell: usize, owners: &[Label]) {
        assert_eq!(owners.len(), self.lanes(), "one owner per lane");
        self.clear_cycle_inputs();
        let p = self.ports;
        for (lane, owner) in owners.iter().enumerate() {
            self.sim.set_node(lane, p.alloc_we, 1);
            self.sim.set_node(lane, p.alloc_cell, cell as u128);
            self.sim.set_node(
                lane,
                p.alloc_tag,
                u128::from(SecurityTag::from(*owner).bits()),
            );
        }
        self.finish_cycle();
    }

    /// Writes one 64-bit scratchpad cell with per-lane data and writer.
    /// One cycle.
    ///
    /// # Panics
    ///
    /// Panics if `data` or `writers` does not hold one entry per lane.
    pub fn write_key_cell(&mut self, cell: usize, data: &[u64], writers: &[Label]) {
        assert_eq!(data.len(), self.lanes(), "one data word per lane");
        assert_eq!(writers.len(), self.lanes(), "one writer per lane");
        self.clear_cycle_inputs();
        let p = self.ports;
        for lane in 0..self.lanes() {
            self.sim.set_node(lane, p.key_we, 1);
            self.sim.set_node(lane, p.key_cell, cell as u128);
            self.sim.set_node(lane, p.key_data, u128::from(data[lane]));
            self.sim.set_node_label(lane, p.key_data, writers[lane]);
            self.sim.set_node(
                lane,
                p.key_wr_tag,
                u128::from(SecurityTag::from(writers[lane]).bits()),
            );
        }
        self.finish_cycle();
    }

    /// Allocates and loads a full per-lane 128-bit key into `slot` (four
    /// cycles plus the decrypt-key preparation idle, exactly like
    /// [`AccelDriver::load_key`](crate::driver::AccelDriver::load_key)).
    ///
    /// # Panics
    ///
    /// Panics on a bad slot, a non-supervisor master-slot load, or
    /// mismatched per-lane array lengths.
    pub fn load_keys(&mut self, slot: usize, keys: &[[u8; 16]], owners: &[Label]) {
        assert!(slot < 4, "four key slots");
        assert_eq!(keys.len(), self.lanes(), "one key per lane");
        assert_eq!(owners.len(), self.lanes(), "one owner per lane");
        if slot == MASTER_KEY_SLOT {
            assert!(
                owners.iter().all(|&o| o == Label::SECRET_TRUSTED),
                "only the supervisor may touch the master-key slot"
            );
        }
        let hi: Vec<u64> = keys
            .iter()
            .map(|k| u64::from_be_bytes(k[..8].try_into().expect("8 bytes")))
            .collect();
        let lo: Vec<u64> = keys
            .iter()
            .map(|k| u64::from_be_bytes(k[8..].try_into().expect("8 bytes")))
            .collect();
        self.alloc_cell(2 * slot, owners);
        self.alloc_cell(2 * slot + 1, owners);
        self.write_key_cell(2 * slot, &hi, owners);
        self.write_key_cell(2 * slot + 1, &lo, owners);
        // Let every lane's decrypt-key preparation unit finish expanding
        // RK10 before the key is used.
        self.idle(14);
    }

    /// Advances one cycle with an independent port action per lane — the
    /// farm's lane engine uses this to interleave phases across lanes
    /// (one lane allocating its key cells while its neighbours keep
    /// submitting blocks), which the whole-batch helpers above cannot
    /// express.
    ///
    /// Acceptance is reported per lane in `accepted`: `true` only for a
    /// [`LaneAction::Submit`] the input handshake took this cycle.
    /// Alloc/write actions always land (the arbiter's *security*
    /// decision shows up in the tag planes, not a handshake); policy
    /// checks such as the master-slot supervisor rule are the caller's
    /// admission layer, exactly as with
    /// [`alloc_cell`](Self::alloc_cell)/[`write_key_cell`](Self::write_key_cell).
    ///
    /// # Panics
    ///
    /// Panics if `actions` or `accepted` does not hold one entry per
    /// lane.
    pub fn step(&mut self, actions: &[LaneAction], accepted: &mut [bool]) {
        assert_eq!(actions.len(), self.lanes(), "one action per lane");
        assert_eq!(accepted.len(), self.lanes(), "one flag per lane");
        self.clear_cycle_inputs();
        let p = self.ports;
        for (lane, action) in actions.iter().enumerate() {
            match action {
                LaneAction::Idle => {}
                LaneAction::Alloc { cell, owner } => {
                    self.sim.set_node(lane, p.alloc_we, 1);
                    self.sim.set_node(lane, p.alloc_cell, *cell as u128);
                    self.sim.set_node(
                        lane,
                        p.alloc_tag,
                        u128::from(SecurityTag::from(*owner).bits()),
                    );
                }
                LaneAction::WriteKey { cell, data, writer } => {
                    self.sim.set_node(lane, p.key_we, 1);
                    self.sim.set_node(lane, p.key_cell, *cell as u128);
                    self.sim.set_node(lane, p.key_data, u128::from(*data));
                    self.sim.set_node_label(lane, p.key_data, *writer);
                    self.sim.set_node(
                        lane,
                        p.key_wr_tag,
                        u128::from(SecurityTag::from(*writer).bits()),
                    );
                }
                LaneAction::Submit { req, decrypt } => {
                    self.sim.set_node(lane, p.in_valid, 1);
                    self.sim.set_node(lane, p.in_decrypt, u128::from(*decrypt));
                    self.sim
                        .set_node(lane, p.in_block, block_to_u128(req.block));
                    self.sim.set_node_label(lane, p.in_block, req.user);
                    self.sim.set_node(
                        lane,
                        p.in_tag,
                        u128::from(SecurityTag::from(req.user).bits()),
                    );
                    self.sim.set_node(lane, p.in_key_slot, req.key_slot as u128);
                }
            }
        }
        for (lane, action) in actions.iter().enumerate() {
            accepted[lane] = false;
            let LaneAction::Submit { req, .. } = action else {
                continue;
            };
            if self.sim.peek_node(lane, self.ports.in_ready) == 1 {
                self.pending[lane].push_back(Pending {
                    submitted: self.sim.cycle(),
                    user: req.user,
                });
                accepted[lane] = true;
            }
        }
        self.finish_cycle();
    }

    /// Tries to submit one request per lane this cycle (`None` lanes
    /// idle). Writes per-lane acceptance into `accepted`; a refused
    /// lane's request must be retried next cycle. Consumes one cycle.
    ///
    /// # Panics
    ///
    /// Panics if `reqs` or `accepted` does not hold one entry per lane.
    pub fn try_submit_each(&mut self, reqs: &[Option<Request>], accepted: &mut [bool]) {
        assert_eq!(reqs.len(), self.lanes(), "one request slot per lane");
        assert_eq!(accepted.len(), self.lanes(), "one flag per lane");
        self.clear_cycle_inputs();
        let p = self.ports;
        for (lane, req) in reqs.iter().enumerate() {
            let Some(req) = req else { continue };
            self.sim.set_node(lane, p.in_valid, 1);
            self.sim
                .set_node(lane, p.in_block, block_to_u128(req.block));
            self.sim.set_node_label(lane, p.in_block, req.user);
            self.sim.set_node(
                lane,
                p.in_tag,
                u128::from(SecurityTag::from(req.user).bits()),
            );
            self.sim.set_node(lane, p.in_key_slot, req.key_slot as u128);
        }
        for (lane, req) in reqs.iter().enumerate() {
            accepted[lane] = false;
            let Some(req) = req else { continue };
            if self.sim.peek_node(lane, self.ports.in_ready) == 1 {
                self.pending[lane].push_back(Pending {
                    submitted: self.sim.cycle(),
                    user: req.user,
                });
                accepted[lane] = true;
            }
        }
        self.finish_cycle();
    }

    /// Runs idle cycles until every lane's in-flight requests have
    /// completed or been rejected (up to `max_cycles`).
    ///
    /// # Panics
    ///
    /// Panics if requests remain in flight after `max_cycles`.
    pub fn drain(&mut self, max_cycles: u64) {
        for _ in 0..max_cycles {
            if self.pending.iter().all(VecDeque::is_empty) {
                return;
            }
            self.idle_cycle();
        }
        assert!(
            self.pending.iter().all(VecDeque::is_empty),
            "requests still in flight after {max_cycles} cycles"
        );
    }
}
