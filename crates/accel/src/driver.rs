//! Transaction-level driver around the simulated accelerator.
//!
//! [`AccelDriver`] hides the port-level protocol: allocate scratchpad
//! cells, load keys, submit encryption requests, and observe cycle-stamped
//! responses. It is the shared substrate for the integration tests, the
//! attack library, and the benchmark harness.

use std::collections::VecDeque;

use aes_core::{block_to_u128, u128_to_block};
use hdl::Design;
use ifc_lattice::{Label, SecurityTag};
use sim::{RuntimeViolation, SimBackend, Simulator, TrackMode};

use crate::build::{baseline, protected, Protection};
use crate::params::MASTER_KEY_SLOT;

/// An encryption request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Plaintext block.
    pub block: [u8; 16],
    /// Scratchpad key slot (0..=3; slot 3 is the master key).
    pub key_slot: usize,
    /// The requesting user's label (drives the request tag and the
    /// simulator's runtime label of the plaintext).
    pub user: Label,
}

/// A completed encryption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Response {
    /// Ciphertext block.
    pub block: [u8; 16],
    /// The tag the hardware attached to the output (protected design).
    pub tag: SecurityTag,
    /// Cycle at which the request entered the pipeline.
    pub submitted: u64,
    /// Cycle at which the response appeared at the output.
    pub completed: u64,
    /// The requesting user.
    pub user: Label,
}

/// A request refused at release time by the nonmalleable-declassification
/// check (e.g. master-key misuse).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejection {
    /// Cycle at which the refusal happened.
    pub cycle: u64,
    /// The refused request's user.
    pub user: Label,
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct Pending {
    pub(crate) submitted: u64,
    pub(crate) user: Label,
}

/// Drives a simulated accelerator at the transaction level.
///
/// Generic over the simulation backend: the default [`Simulator`] is the
/// interpreting reference engine; instantiate with
/// [`CompiledSim`](sim::CompiledSim) (via
/// [`from_design_on`](Self::from_design_on) /
/// [`new_on`](Self::new_on)) for the compiled-tape throughput engine.
/// All transaction-level behaviour is identical across backends.
#[derive(Debug)]
pub struct AccelDriver<B: SimBackend = Simulator> {
    sim: B,
    pending: VecDeque<Pending>,
    /// Completed encryptions, in order.
    pub responses: Vec<Response>,
    /// Requests refused by the release check.
    pub rejections: Vec<Rejection>,
    receiver_ready: bool,
}

impl AccelDriver {
    /// Wraps an already-built accelerator design using the interpreting
    /// [`Simulator`] backend.
    ///
    /// # Panics
    ///
    /// Panics if the design fails to lower (the shipped designs never do).
    #[must_use]
    pub fn from_design(design: &Design, mode: TrackMode) -> AccelDriver {
        AccelDriver::from_design_on(design, mode)
    }

    /// Builds and wraps a fresh design at the given protection level, with
    /// mux-precise runtime tracking (what the protected hardware's
    /// tracking logic implements).
    #[must_use]
    pub fn new(protection: Protection) -> AccelDriver {
        AccelDriver::new_on(protection)
    }
}

impl<B: SimBackend> AccelDriver<B> {
    /// Wraps an already-built accelerator design on an explicit backend,
    /// e.g. `AccelDriver::<CompiledSim>::from_design_on(&design, mode)`.
    ///
    /// # Panics
    ///
    /// Panics if the design fails to lower (the shipped designs never do).
    #[must_use]
    pub fn from_design_on(design: &Design, mode: TrackMode) -> AccelDriver<B> {
        let net = design.lower().expect("accelerator design lowers");
        AccelDriver::from_netlist_on(net, mode)
    }

    /// Wraps an already-lowered netlist on an explicit backend. Lowering
    /// is the expensive part of construction, so fleets of identical
    /// sessions lower once and hand each driver a clone of the netlist.
    #[must_use]
    pub fn from_netlist_on(net: hdl::Netlist, mode: TrackMode) -> AccelDriver<B> {
        AccelDriver::from_backend(B::from_netlist(net, mode))
    }

    /// Wraps an already-constructed backend. For compiled backends even
    /// netlist lowering can be skipped: a fleet builds one prototype
    /// backend (compiling the tape once) and hands each driver a clone,
    /// which costs only the session's state arrays.
    #[must_use]
    pub fn from_backend(mut sim: B) -> AccelDriver<B> {
        // The factory-provisioned master key in scratchpad cells 6/7
        // carries the (⊤,⊤) label from power-on.
        if let Some(mem) = sim.mem_index("scratchpad.cells") {
            sim.set_mem_cell_label(mem, 2 * MASTER_KEY_SLOT, Label::SECRET_TRUSTED);
            sim.set_mem_cell_label(mem, 2 * MASTER_KEY_SLOT + 1, Label::SECRET_TRUSTED);
        }
        AccelDriver {
            sim,
            pending: VecDeque::new(),
            responses: Vec::new(),
            rejections: Vec::new(),
            receiver_ready: true,
        }
    }

    /// Builds and wraps a fresh design at the given protection level on an
    /// explicit backend, with mux-precise runtime tracking.
    #[must_use]
    pub fn new_on(protection: Protection) -> AccelDriver<B> {
        let design = match protection {
            Protection::Full => protected(),
            Protection::Off => baseline(),
            Protection::Annotated => crate::build::baseline_annotated(),
        };
        AccelDriver::from_design_on(&design, TrackMode::Precise)
    }

    /// The wrapped simulator (for assertions on labels and violations).
    pub fn sim_mut(&mut self) -> &mut B {
        &mut self.sim
    }

    /// Shared view of the wrapped simulator.
    #[must_use]
    pub fn sim(&self) -> &B {
        &self.sim
    }

    /// Runtime violations recorded so far.
    #[must_use]
    pub fn violations(&self) -> &[RuntimeViolation] {
        self.sim.violations()
    }

    /// The current cycle.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.sim.cycle()
    }

    /// Sets whether the downstream receiver accepts outputs (the
    /// `out_ready` port). A slow receiver is what provokes stalls.
    pub fn set_receiver_ready(&mut self, ready: bool) {
        self.receiver_ready = ready;
    }

    fn clear_cycle_inputs(&mut self) {
        for (port, width_label) in [
            ("in_valid", Label::PUBLIC_TRUSTED),
            ("key_we", Label::PUBLIC_TRUSTED),
            ("alloc_we", Label::PUBLIC_TRUSTED),
            ("cfg_we", Label::PUBLIC_TRUSTED),
        ] {
            self.sim.set(port, 0);
            self.sim.set_label(port, width_label);
        }
        self.sim.set("in_block", 0);
        self.sim.set("in_decrypt", 0);
        self.sim.set_label("in_block", Label::PUBLIC_TRUSTED);
        self.sim.set("key_data", 0);
        self.sim.set_label("key_data", Label::PUBLIC_TRUSTED);
        self.sim.set("out_ready", u128::from(self.receiver_ready));
    }

    /// Finishes the current cycle: samples the output interface, updates
    /// the in-flight bookkeeping, and advances the clock.
    fn finish_cycle(&mut self) {
        let emit = self.sim.peek("out_emit") == 1;
        if emit {
            let valid = self.sim.peek("out_valid") == 1;
            let pending = self
                .pending
                .pop_front()
                .expect("hardware emitted more blocks than were submitted");
            if valid {
                let block = u128_to_block(self.sim.peek("out_block"));
                let tag = SecurityTag::from_bits(self.sim.peek("out_tag") as u8);
                self.responses.push(Response {
                    block,
                    tag,
                    submitted: pending.submitted,
                    completed: self.sim.cycle(),
                    user: pending.user,
                });
            } else {
                self.rejections.push(Rejection {
                    cycle: self.sim.cycle(),
                    user: pending.user,
                });
            }
        }
        self.sim.tick();
    }

    /// Runs one idle cycle (no new request).
    pub fn idle_cycle(&mut self) {
        self.clear_cycle_inputs();
        self.finish_cycle();
    }

    /// Runs one idle cycle and reports whether the pipeline would have
    /// accepted input (the `in_ready` handshake) — the observable a
    /// co-resident user reads to sense stalls.
    pub fn probe_in_ready(&mut self) -> bool {
        self.clear_cycle_inputs();
        let ready = self.sim.peek("in_ready") == 1;
        self.finish_cycle();
        ready
    }

    /// Current occupancy of the protected design's output holding buffer.
    ///
    /// # Panics
    ///
    /// Panics on the baseline design, which has no buffer.
    pub fn buffer_occupancy(&mut self) -> u16 {
        self.sim.peek("outbuf.count") as u16
    }

    /// Runs `n` idle cycles.
    pub fn idle(&mut self, n: u64) {
        for _ in 0..n {
            self.idle_cycle();
        }
    }

    /// Tries to submit a request this cycle. Returns `false` (consuming
    /// the cycle) when the pipeline refused new input (stalled).
    pub fn try_submit(&mut self, req: &Request) -> bool {
        self.try_submit_op(req, false)
    }

    /// Tries to submit a *decryption* request this cycle.
    pub fn try_submit_decrypt(&mut self, req: &Request) -> bool {
        self.try_submit_op(req, true)
    }

    fn try_submit_op(&mut self, req: &Request, decrypt: bool) -> bool {
        self.clear_cycle_inputs();
        self.sim.set("in_decrypt", u128::from(decrypt));
        self.sim.set("in_valid", 1);
        self.sim.set("in_block", block_to_u128(req.block));
        self.sim.set_label("in_block", req.user);
        self.sim
            .set("in_tag", u128::from(SecurityTag::from(req.user).bits()));
        self.sim.set("in_key_slot", req.key_slot as u128);
        let accepted = self.sim.peek("in_ready") == 1;
        if accepted {
            self.pending.push_back(Pending {
                submitted: self.sim.cycle(),
                user: req.user,
            });
        }
        self.finish_cycle();
        accepted
    }

    /// Submits a request, retrying across stalled cycles.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline refuses input for 10 000 consecutive cycles
    /// (a deadlocked testbench).
    pub fn submit(&mut self, req: &Request) {
        for _ in 0..10_000 {
            if self.try_submit(req) {
                return;
            }
        }
        panic!("pipeline refused input for 10000 cycles");
    }

    /// Submits a decryption request, retrying across stalled cycles.
    ///
    /// # Panics
    ///
    /// Panics as [`submit`](Self::submit) does on a deadlocked testbench.
    pub fn submit_decrypt(&mut self, req: &Request) {
        for _ in 0..10_000 {
            if self.try_submit_decrypt(req) {
                return;
            }
        }
        panic!("pipeline refused input for 10000 cycles");
    }

    /// Allocates a scratchpad cell to `owner` via the arbiter port
    /// (retags and wipes the cell). One cycle.
    pub fn alloc_cell(&mut self, cell: usize, owner: Label) {
        self.clear_cycle_inputs();
        self.sim.set("alloc_we", 1);
        self.sim.set("alloc_cell", cell as u128);
        self.sim
            .set("alloc_tag", u128::from(SecurityTag::from(owner).bits()));
        self.finish_cycle();
    }

    /// Writes one 64-bit scratchpad cell on behalf of `writer`. One cycle.
    /// On the protected design the hardware tag check may silently block
    /// the write.
    pub fn write_key_cell(&mut self, cell: usize, data: u64, writer: Label) {
        self.clear_cycle_inputs();
        self.sim.set("key_we", 1);
        self.sim.set("key_cell", cell as u128);
        self.sim.set("key_data", u128::from(data));
        self.sim.set_label("key_data", writer);
        self.sim
            .set("key_wr_tag", u128::from(SecurityTag::from(writer).bits()));
        self.finish_cycle();
    }

    /// Allocates and loads a full 128-bit key into `slot` on behalf of
    /// `owner` (four cycles).
    pub fn load_key(&mut self, slot: usize, key: [u8; 16], owner: Label) {
        assert!(slot < 4, "four key slots");
        assert!(
            slot != MASTER_KEY_SLOT || owner == Label::SECRET_TRUSTED,
            "only the supervisor may touch the master-key slot"
        );
        let hi = u64::from_be_bytes(key[..8].try_into().expect("8 bytes"));
        let lo = u64::from_be_bytes(key[8..].try_into().expect("8 bytes"));
        self.alloc_cell(2 * slot, owner);
        self.alloc_cell(2 * slot + 1, owner);
        self.write_key_cell(2 * slot, hi, owner);
        self.write_key_cell(2 * slot + 1, lo, owner);
        // Let the decrypt-key preparation unit finish expanding RK10
        // into the decrypt scratchpad before the key is used.
        self.idle(14);
    }

    /// Writes the configuration register on behalf of `writer`. One cycle.
    pub fn write_cfg(&mut self, value: u8, writer: Label) {
        self.clear_cycle_inputs();
        self.sim.set("cfg_we", 1);
        self.sim.set("cfg_data", u128::from(value));
        self.sim.set_label(
            "cfg_data",
            Label::new(Label::PUBLIC_TRUSTED.conf, writer.integ),
        );
        self.sim.set(
            "cfg_wr_tag",
            u128::from(
                SecurityTag::from(Label::new(Label::PUBLIC_TRUSTED.conf, writer.integ)).bits(),
            ),
        );
        self.finish_cycle();
    }

    /// The configuration register's current value.
    pub fn cfg(&mut self) -> u8 {
        self.sim.peek("cfg_out") as u8
    }

    /// Reads the debug port at `sel` on behalf of `reader`. Returns the
    /// probed value if the SoC access gate (the port's confidentiality
    /// versus the reader's clearance) permits it.
    pub fn read_debug(&mut self, sel: u32, reader: Label) -> Option<[u8; 16]> {
        self.clear_cycle_inputs();
        self.sim.set("dbg_sel", u128::from(sel));
        let port_label = self
            .sim
            .netlist()
            .outputs
            .iter()
            .find(|p| p.name == "dbg_out")
            .and_then(|p| match &p.label {
                Some(hdl::LabelExpr::Const(l)) => Some(*l),
                _ => None,
            })
            .unwrap_or(Label::PUBLIC_UNTRUSTED);
        let value = self.sim.peek("dbg_out");
        self.finish_cycle();
        // The SoC interconnect only routes a port to principals cleared
        // for its confidentiality level.
        if port_label.conf.flows_to(reader.conf) {
            Some(u128_to_block(value))
        } else {
            None
        }
    }

    /// Number of in-flight requests.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Runs idle cycles until every in-flight request has completed or
    /// been rejected (up to `max_cycles`).
    ///
    /// # Panics
    ///
    /// Panics if requests remain in flight after `max_cycles`.
    pub fn drain(&mut self, max_cycles: u64) {
        for _ in 0..max_cycles {
            if self.pending.is_empty() {
                return;
            }
            self.idle_cycle();
        }
        assert!(
            self.pending.is_empty(),
            "requests still in flight after {max_cycles} cycles"
        );
    }

    /// The hardware's dropped-output counter (buffer overflow).
    pub fn drop_count(&mut self) -> u16 {
        self.sim.peek("drop_count") as u16
    }

    /// The hardware's nonmalleable-rejection counter.
    pub fn nm_reject_count(&mut self) -> u16 {
        self.sim.peek("nm_reject_count") as u16
    }
}
