//! The case-study AES accelerator: a deeply pipelined AES-128 engine with
//! a 512-bit key scratchpad, configuration registers, a debug peripheral,
//! and an arbiter — in two variants:
//!
//! * [`baseline`] — the high-throughput design a performance-focused team
//!   would ship: 1 block/cycle, 30-cycle latency, **no** security
//!   enforcement. It contains every vulnerability the paper discusses
//!   (pipeline timing channel, scratchpad overruns, debug key disclosure,
//!   master-key misuse, config tampering).
//! * [`protected`] — the same microarchitecture extended with security
//!   tags and information-flow enforcement: per-stage tag registers
//!   (Fig. 7), a tagged scratchpad with hardware tag checks (Fig. 5),
//!   confidentiality-meet stall logic plus an output holding buffer
//!   (Fig. 8), nonmalleable declassification of the final ciphertext
//!   (Sections 3.2.1–3.2.2), supervisor-only configuration writes, and a
//!   supervisor-only debug port.
//!
//! [`baseline_annotated`] is the intermediate artifact of the paper's
//! methodology: the *unprotected* structure carrying the *security*
//! annotations, which the static checker (`ifc-check`) floods with
//! exactly the label errors of Fig. 6.
//!
//! The [`driver`] module wraps the simulated designs in a transaction-level
//! API (load keys, submit requests, observe responses with cycle stamps)
//! used by the attack library, the integration tests, and the benchmark
//! harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
mod build;
mod bytes;
pub mod crosscheck;
pub mod driver;
pub mod effort;
pub mod engine;
pub mod fleet;
pub mod multi;
pub mod offload;
mod params;
pub mod policies;

pub use build::{
    baseline, baseline_annotated, build, build_with, master_key_encrypt, protected, protected_with,
    trojaned, Mechanisms, Protection, MASTER_KEY, TROJAN_TRIGGER,
};
pub use params::{
    master_key_label, supervisor_label, user_label, AccelParams, MASTER_KEY_SLOT, PIPELINE_DEPTH,
};
