//! The iterative (single-block) AES engine of the paper's Fig. 6 example
//! — in a correct, constant-time variant and in a "performance-optimised"
//! variant with a key-dependent early-out.
//!
//! The leaky variant skips two rounds when the key's low byte is zero (a
//! caricature of data-dependent round optimisations, cf. Koeune &
//! Quisquater's timing attack on Rijndael \[12\]). Its `valid` handshake
//! therefore fires earlier for weak keys: a timing channel from the key.
//! The static checker flags exactly this — the designer annotated `valid`
//! as public, the inference computes it key-tainted via the guard *pc* —
//! reproducing the label error of Fig. 6.
//!
//! The iterative engine is also the *coarse-grained sharing* comparator
//! for the motivation experiment: it serves one block (one user) at a
//! time, with the host draining it between users.

use hdl::{Design, ModuleBuilder};
use ifc_lattice::{Conf, Integ, Label};

use crate::bytes::{
    add_round_key_hw, inv_mix_columns_hw, inv_sbox_rom, inv_shift_rows_hw, inv_sub_bytes_hw,
    key_expand_dyn_hw, key_unexpand_dyn_hw, mix_columns_hw, sbox_rom, shift_rows_hw, sub_bytes_hw,
};

/// Builds the iterative AES-128 engine.
///
/// With `leaky = true`, the key-dependent round-skip "optimisation" is
/// included; with `false`, the engine is constant-time (11 cycles per
/// block: load + 10 rounds).
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn iterative_engine(leaky: bool) -> Design {
    let name = if leaky {
        "aes_engine_leaky"
    } else {
        "aes_engine_ct"
    };
    let mut m = ModuleBuilder::new(name);
    let user = Label::new(Conf::new(5), Integ::new(5));
    let key_label = Label::new(Conf::new(5), Integ::new(5));
    let public_user = Label::new(Conf::PUBLIC, Integ::new(5));

    let start = m.input("start", 1);
    let block = m.input("block", 128);
    let key = m.input("key", 128);
    m.set_label(start, public_user);
    m.set_label(block, user);
    m.set_label(key, key_label);

    let rom = sbox_rom(&mut m);

    let state = m.reg("state", 128, 0);
    let rkey = m.reg("rkey", 128, 0);
    let round = m.reg("round", 4, 0);
    let busy = m.reg("busy", 1, 0);
    let valid = m.reg("valid", 1, 0);
    m.set_label(state, user.join(key_label));
    m.set_label(rkey, key_label);
    // The designer intends round/busy/valid to be public handshake state.
    m.set_label(round, public_user);
    m.set_label(busy, public_user);
    m.set_label(valid, public_user);

    // Round-constant lookup table indexed by the runtime round counter.
    let rcon_rom = m.mem(
        "rcon_rom",
        8,
        16,
        vec![
            0, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36, 0, 0, 0, 0, 0,
        ],
    );

    let zero1 = m.lit(0, 1);
    let one1 = m.lit(1, 1);
    let one4 = m.lit(1, 4);

    let not_busy = m.not(busy);
    let accept = m.and(start, not_busy);
    m.when(accept, |m| {
        let whitened = add_round_key_hw(m, block, key);
        m.connect(state, whitened);
        // Pre-compute round key 1.
        let rcon1 = m.lit(0x01, 8);
        let rk1 = key_expand_dyn_hw(m, rom, key, rcon1);
        m.connect(rkey, rk1);
        let one = m.lit(1, 4);
        m.connect(round, one);
        m.connect(busy, one1);
        m.connect(valid, zero1);
    });

    // One round per cycle while busy.
    let subbed = sub_bytes_hw(&mut m, rom, state);
    let shifted = shift_rows_hw(&mut m, subbed);
    let mixed = mix_columns_hw(&mut m, shifted);
    let full_round = add_round_key_hw(&mut m, mixed, rkey);
    let final_round = add_round_key_hw(&mut m, shifted, rkey);
    let next_round = m.add(round, one4);
    let rcon_next = m.mem_read(rcon_rom, next_round);
    let next_rkey = key_expand_dyn_hw(&mut m, rom, rkey, rcon_next);
    let is_last = m.eq_lit(round, 10);
    let not_last = m.not(is_last);
    let stepping = m.and(busy, not_last);
    let finishing = m.and(busy, is_last);

    m.when(stepping, |m| {
        m.connect(state, full_round);
        m.connect(rkey, next_rkey);
        m.connect(round, next_round);
    });
    m.when(finishing, |m| {
        m.connect(state, final_round);
        m.connect(busy, zero1);
        m.connect(valid, one1);
    });

    if leaky {
        // The flawed "optimisation": keys with a zero low byte skip two
        // rounds. Functionally wrong *and* a timing channel — the round
        // counter (and hence `valid`) becomes key-dependent. This is the
        // implementation error the IFC analysis catches at design time.
        let key_low = m.slice(key, 7, 0);
        let weak = m.eq_lit(key_low, 0);
        let at_round_1 = m.eq_lit(round, 1);
        let b = m.and(busy, at_round_1);
        let skip = m.and(b, weak);
        let three = m.lit(3, 4);
        m.when(skip, |m| m.connect(round, three));
    }

    // The ciphertext is released through an explicit declassification by
    // the owning user, as in Fig. 7.
    let owner = m.tag_lit(user);
    let released = m.declassify(state, Label::PUBLIC_UNTRUSTED, owner);
    m.output("ciphertext", released);
    m.output_labeled("valid", valid, public_user);
    m.output_labeled("busy", busy, public_user);

    m.finish()
}

/// Builds the full encryption/decryption ("E/D") iterative engine.
///
/// Encryption completes in 11 cycles (load + 10 rounds). Decryption first
/// walks the key schedule forward to recover round key 10 (10 cycles,
/// folding the ciphertext whitening into the last one), then runs the
/// FIPS-197 inverse cipher with on-the-fly *inverse* key expansion —
/// 21 cycles total, and crucially **key-independent**, so the engine
/// verifies under the same labels as the encrypt-only one.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn iterative_ed_engine() -> Design {
    let mut m = ModuleBuilder::new("aes_engine_ed");
    let user = Label::new(Conf::new(5), Integ::new(5));
    let public_user = Label::new(Conf::PUBLIC, Integ::new(5));

    let start = m.input("start", 1);
    let decrypt = m.input("decrypt", 1);
    let block = m.input("block", 128);
    let key = m.input("key", 128);
    m.set_label(start, public_user);
    m.set_label(decrypt, public_user);
    m.set_label(block, user);
    m.set_label(key, user);

    let rom = sbox_rom(&mut m);
    let inv_rom = inv_sbox_rom(&mut m);
    let rcon_rom = m.mem(
        "rcon_rom",
        8,
        16,
        vec![
            0, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36, 0, 0, 0, 0, 0,
        ],
    );

    let state = m.reg("state", 128, 0);
    let blk_hold = m.reg("blk_hold", 128, 0);
    let rkey = m.reg("rkey", 128, 0);
    let round = m.reg("round", 4, 0);
    // 0 = encrypt rounds, 1 = decrypt key schedule, 2 = decrypt rounds.
    let mode = m.reg("mode", 2, 0);
    let busy = m.reg("busy", 1, 0);
    let valid = m.reg("valid", 1, 0);
    m.set_label(state, user);
    m.set_label(blk_hold, user);
    m.set_label(rkey, user);
    for s in [round, busy, valid] {
        m.set_label(s, public_user);
    }
    m.set_label(mode, public_user);

    let zero1 = m.lit(0, 1);
    let one1 = m.lit(1, 1);
    let one4 = m.lit(1, 4);

    // ----- request acceptance ------------------------------------------------
    let not_busy = m.not(busy);
    let accept = m.and(start, not_busy);
    let not_dec = m.not(decrypt);
    let accept_enc = m.and(accept, not_dec);
    let accept_dec = m.and(accept, decrypt);
    m.when(accept_enc, |m| {
        let whitened = add_round_key_hw(m, block, key);
        m.connect(state, whitened);
        let rcon1 = m.lit(0x01, 8);
        let rk1 = key_expand_dyn_hw(m, rom, key, rcon1);
        m.connect(rkey, rk1);
        let one = m.lit(1, 4);
        m.connect(round, one);
        let enc_mode = m.lit(0, 2);
        m.connect(mode, enc_mode);
        m.connect(busy, one1);
        m.connect(valid, zero1);
    });
    m.when(accept_dec, |m| {
        m.connect(blk_hold, block);
        m.connect(rkey, key);
        let zero4 = m.lit(0, 4);
        m.connect(round, zero4);
        let ks_mode = m.lit(1, 2);
        m.connect(mode, ks_mode);
        m.connect(busy, one1);
        m.connect(valid, zero1);
    });

    // ----- encrypt rounds (mode 0) --------------------------------------------
    let enc_mode = m.eq_lit(mode, 0);
    let enc_run = m.and(busy, enc_mode);
    let subbed = sub_bytes_hw(&mut m, rom, state);
    let shifted = shift_rows_hw(&mut m, subbed);
    let mixed = mix_columns_hw(&mut m, shifted);
    let full_round = add_round_key_hw(&mut m, mixed, rkey);
    let final_round = add_round_key_hw(&mut m, shifted, rkey);
    let next_round = m.add(round, one4);
    let rcon_next = m.mem_read(rcon_rom, next_round);
    let next_rkey = key_expand_dyn_hw(&mut m, rom, rkey, rcon_next);
    let is_last = m.eq_lit(round, 10);
    let not_last = m.not(is_last);
    let enc_step = m.and(enc_run, not_last);
    let enc_finish = m.and(enc_run, is_last);
    m.when(enc_step, |m| {
        m.connect(state, full_round);
        m.connect(rkey, next_rkey);
        m.connect(round, next_round);
    });
    m.when(enc_finish, |m| {
        m.connect(state, final_round);
        m.connect(busy, zero1);
        m.connect(valid, one1);
    });

    // ----- decrypt key schedule (mode 1) ----------------------------------------
    let ks_mode = m.eq_lit(mode, 1);
    let ks_run = m.and(busy, ks_mode);
    // Forward expansion RK(round) → RK(round+1) uses RCON[round], which
    // lives at rcon_rom[round + 1].
    let rk_fwd = key_expand_dyn_hw(&mut m, rom, rkey, rcon_next);
    let ks_done = m.eq_lit(round, 9);
    m.when(ks_run, |m| {
        m.connect(rkey, rk_fwd);
        m.connect(round, next_round);
        m.when(ks_done, |m| {
            // rk_fwd is RK10: whiten the held ciphertext and enter the
            // inverse rounds.
            let whitened = add_round_key_hw(m, blk_hold, rk_fwd);
            m.connect(state, whitened);
            let dec_mode = m.lit(2, 2);
            m.connect(mode, dec_mode);
            let ten = m.lit(10, 4);
            m.connect(round, ten);
        });
    });

    // ----- decrypt rounds (mode 2) ----------------------------------------------
    let dec_mode = m.eq_lit(mode, 2);
    let dec_run = m.and(busy, dec_mode);
    // Inverse expansion RK(round) → RK(round-1) uses RCON[round-1], at
    // rcon_rom[round].
    let rcon_here = m.mem_read(rcon_rom, round);
    let rk_back = key_unexpand_dyn_hw(&mut m, rom, rkey, rcon_here);
    let inv_shifted = inv_shift_rows_hw(&mut m, state);
    let inv_subbed = inv_sub_bytes_hw(&mut m, inv_rom, inv_shifted);
    let added = add_round_key_hw(&mut m, inv_subbed, rk_back);
    let middle = inv_mix_columns_hw(&mut m, added);
    let prev_round = m.sub(round, one4);
    let dec_last = m.eq_lit(round, 1);
    let not_dec_last = m.not(dec_last);
    let dec_step = m.and(dec_run, not_dec_last);
    let dec_finish = m.and(dec_run, dec_last);
    m.when(dec_step, |m| {
        m.connect(state, middle);
        m.connect(rkey, rk_back);
        m.connect(round, prev_round);
    });
    m.when(dec_finish, |m| {
        m.connect(state, added);
        m.connect(busy, zero1);
        m.connect(valid, one1);
    });

    // ----- release -----------------------------------------------------------------
    let owner = m.tag_lit(user);
    let released = m.declassify(state, Label::PUBLIC_UNTRUSTED, owner);
    m.output("result", released);
    m.output_labeled("valid", valid, public_user);
    m.output_labeled("busy", busy, public_user);
    m.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aes_core::{block_to_u128, u128_to_block, Aes};
    use sim::Simulator;

    fn run_ed(decrypt: bool, key: [u8; 16], block: [u8; 16]) -> ([u8; 16], u32) {
        let mut sim = Simulator::new(iterative_ed_engine().lower().unwrap());
        sim.set("key", block_to_u128(key));
        sim.set("block", block_to_u128(block));
        sim.set("decrypt", u128::from(decrypt));
        sim.set("start", 1);
        sim.tick();
        sim.set("start", 0);
        let mut cycles = 1;
        while sim.peek("valid") == 0 {
            sim.tick();
            cycles += 1;
            assert!(cycles < 64, "engine hung");
        }
        (u128_to_block(sim.peek("result")), cycles)
    }

    #[test]
    fn ed_engine_encrypts_like_the_reference() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let pt = *b"\x32\x43\xf6\xa8\x88\x5a\x30\x8d\x31\x31\x98\xa2\xe0\x37\x07\x34";
        let (ct, cycles) = run_ed(false, key, pt);
        assert_eq!(ct, Aes::new_128(key).encrypt_block(pt));
        assert_eq!(cycles, 11);
    }

    #[test]
    fn ed_engine_decrypts_like_the_reference() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let pt = *b"\x32\x43\xf6\xa8\x88\x5a\x30\x8d\x31\x31\x98\xa2\xe0\x37\x07\x34";
        let ct = Aes::new_128(key).encrypt_block(pt);
        let (recovered, cycles) = run_ed(true, key, ct);
        assert_eq!(recovered, pt);
        assert_eq!(cycles, 21, "load + 10 schedule + 10 inverse rounds");
    }

    #[test]
    fn ed_engine_round_trips_random_blocks() {
        for seed in 0..4u8 {
            let key: [u8; 16] = core::array::from_fn(|i| (i as u8).wrapping_mul(7) ^ seed);
            let pt: [u8; 16] = core::array::from_fn(|i| (i as u8).wrapping_mul(13) ^ seed);
            let (ct, _) = run_ed(false, key, pt);
            let (back, _) = run_ed(true, key, ct);
            assert_eq!(back, pt, "seed {seed}");
        }
    }

    #[test]
    fn ed_engine_latency_is_key_independent() {
        let pt = [9u8; 16];
        let (_, enc_a) = run_ed(false, [0u8; 16], pt);
        let (_, enc_b) = run_ed(false, [0xffu8; 16], pt);
        assert_eq!(enc_a, enc_b);
        let (_, dec_a) = run_ed(true, [0u8; 16], pt);
        let (_, dec_b) = run_ed(true, [0xffu8; 16], pt);
        assert_eq!(dec_a, dec_b);
    }

    #[test]
    fn ed_engine_passes_static_verification() {
        let report = ifc_check::check(&iterative_ed_engine());
        assert!(report.is_secure(), "{report}");
    }

    #[test]
    fn constant_time_engine_encrypts_correctly() {
        let mut sim = Simulator::new(iterative_engine(false).lower().unwrap());
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let pt = *b"\x32\x43\xf6\xa8\x88\x5a\x30\x8d\x31\x31\x98\xa2\xe0\x37\x07\x34";
        sim.set("key", block_to_u128(key));
        sim.set("block", block_to_u128(pt));
        sim.set("start", 1);
        sim.tick();
        sim.set("start", 0);
        let mut cycles = 1;
        while sim.peek("valid") == 0 {
            sim.tick();
            cycles += 1;
            assert!(cycles < 40, "engine never finished");
        }
        assert_eq!(cycles, 11, "load + 10 rounds");
        assert_eq!(
            u128_to_block(sim.peek("ciphertext")),
            Aes::new_128(key).encrypt_block(pt)
        );
    }

    #[test]
    fn engine_latency_is_key_independent_when_fixed() {
        let latency = |key_low: u8| {
            let mut sim = Simulator::new(iterative_engine(false).lower().unwrap());
            let mut key = [7u8; 16];
            key[15] = key_low;
            sim.set("key", block_to_u128(key));
            sim.set("block", 0);
            sim.set("start", 1);
            sim.tick();
            sim.set("start", 0);
            let mut cycles = 1u32;
            while sim.peek("valid") == 0 {
                sim.tick();
                cycles += 1;
            }
            cycles
        };
        assert_eq!(latency(0), latency(0xff));
    }

    #[test]
    fn leaky_engine_finishes_early_for_weak_keys() {
        let latency = |key_low: u8| {
            let mut sim = Simulator::new(iterative_engine(true).lower().unwrap());
            let mut key = [7u8; 16];
            key[15] = key_low;
            sim.set("key", block_to_u128(key));
            sim.set("block", 0);
            sim.set("start", 1);
            sim.tick();
            sim.set("start", 0);
            let mut cycles = 1u32;
            while sim.peek("valid") == 0 {
                sim.tick();
                cycles += 1;
            }
            cycles
        };
        assert!(
            latency(0) < latency(0xff),
            "weak keys take fewer cycles — the timing channel"
        );
    }

    #[test]
    fn checker_passes_fixed_engine_and_flags_leaky() {
        let ok = ifc_check::check(&iterative_engine(false));
        assert!(ok.is_secure(), "constant-time engine verifies:\n{ok}");
        let bad = ifc_check::check(&iterative_engine(true));
        assert!(!bad.is_secure(), "leaky engine must be flagged");
    }
}
