//! Design-effort accounting: what it took to turn the baseline into the
//! protected design.
//!
//! The paper reports "around 70 lines of the baseline implementation in
//! Chisel" changed, covering (i) label annotations, (ii) runtime checkers,
//! and (iii) code transformations. This module measures the same three
//! categories structurally on our builder output, so the number is derived
//! from the designs rather than asserted.

use hdl::{BinOp, Design, Node};

/// Structural delta between the baseline and protected designs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtectionDelta {
    /// Signal and memory label annotations added (the `Label(...)`
    /// annotations of a security-typed HDL).
    pub annotations: usize,
    /// Runtime checker hardware added: tag comparators (`TagLeq`) and
    /// nonmalleable downgrade nodes.
    pub checker_nodes: usize,
    /// Security tag state added: tag registers and tag memory cells'
    /// worth of registers (counted as register instances).
    pub tag_registers: usize,
    /// Extra memories (tag arrays, the output holding buffer).
    pub extra_mems: usize,
    /// Extra registers beyond tags (buffer pointers, counters).
    pub extra_regs: usize,
}

impl ProtectionDelta {
    /// An estimate of the changed source lines in the builder description:
    /// one line per annotation group of four (labels are annotated in
    /// bulk), one per checker construct, one per added register or memory
    /// declaration. This deliberately mirrors how the paper counts Chisel
    /// lines (declaration-level edits, not generated hardware).
    #[must_use]
    pub fn estimated_changed_lines(&self) -> usize {
        self.annotations / 4
            + self.checker_nodes
            + self.tag_registers / 8
            + self.extra_mems
            + self.extra_regs
    }
}

fn count_annotations(design: &Design) -> usize {
    let node_labels = design
        .node_ids()
        .filter(|&id| design.label_of(id).is_some())
        .count();
    let port_labels = design
        .outputs()
        .iter()
        .filter(|p| p.label.is_some())
        .count();
    let mem_labels = design.mems().iter().filter(|m| m.label.is_some()).count();
    node_labels + port_labels + mem_labels
}

fn count_checker_nodes(design: &Design) -> usize {
    design
        .node_ids()
        .filter(|&id| {
            matches!(
                design.node(id),
                Node::Binary {
                    op: BinOp::TagLeq | BinOp::TagJoin | BinOp::TagMeet,
                    ..
                } | Node::Declassify { .. }
                    | Node::Endorse { .. }
            )
        })
        .count()
}

fn count_regs(design: &Design, prefix: &str) -> usize {
    design
        .node_ids()
        .filter(|&id| {
            matches!(design.node(id), Node::Reg { .. })
                && design.name_of(id).is_some_and(|n| n.starts_with(prefix))
        })
        .count()
}

/// Measures the structural protection delta between two designs.
#[must_use]
pub fn protection_delta(baseline: &Design, protected: &Design) -> ProtectionDelta {
    let annotations = count_annotations(protected).saturating_sub(count_annotations(baseline));
    let checker_nodes =
        count_checker_nodes(protected).saturating_sub(count_checker_nodes(baseline));
    let tag_registers = count_regs(protected, "pipe.tag");
    let base_regs = baseline
        .node_ids()
        .filter(|&id| matches!(baseline.node(id), Node::Reg { .. }))
        .count();
    let prot_regs = protected
        .node_ids()
        .filter(|&id| matches!(protected.node(id), Node::Reg { .. }))
        .count();
    let extra_regs = prot_regs.saturating_sub(base_regs + tag_registers);
    let extra_mems = protected.mems().len().saturating_sub(baseline.mems().len());
    ProtectionDelta {
        annotations,
        checker_nodes,
        tag_registers,
        extra_mems,
        extra_regs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{baseline, protected};

    #[test]
    fn delta_is_modest() {
        let delta = protection_delta(&baseline(), &protected());
        assert!(delta.annotations > 50, "labels were added: {delta:?}");
        assert!(delta.tag_registers == 30, "one tag per stage: {delta:?}");
        assert!(delta.extra_mems >= 3, "tag array + buffer: {delta:?}");
        // The paper's headline: on the order of 70 changed lines, not
        // thousands.
        let lines = delta.estimated_changed_lines();
        assert!(
            (30..200).contains(&lines),
            "changed-lines estimate out of range: {lines} ({delta:?})"
        );
    }
}
