//! The paper's Table 1 as an executable policy set.
//!
//! Each row names a security requirement, its dimension, and the
//! source/sink pair in the accelerator. [`table1_policies`] instantiates
//! the rows against a concrete design (baseline or protected) so the same
//! audit can show the baseline violating every row and the protected
//! design enforcing them (structurally cut at a downgrade or a verified
//! runtime check).

use hdl::{Design, LabelExpr, NodeId};
use ifc_check::{FlowPolicy, PolicyKind};
use ifc_lattice::{reflect_integ, Label};

use crate::params::user_label;

/// The label at which a named output port releases its value: its
/// annotation when present, else `default` (an unlabelled port is readable
/// by anyone, i.e. by the attacker).
fn port_release_label(design: &Design, name: &str, default: Label) -> Label {
    design
        .outputs()
        .iter()
        .find(|p| p.name == name)
        .and_then(|p| match &p.label {
            Some(LabelExpr::Const(l)) => Some(*l),
            _ => None,
        })
        .unwrap_or(default)
}

/// Looks up a node by its diagnostic name (register/wire) or port name.
///
/// # Panics
///
/// Panics if the design has no such node — a mismatch between the policy
/// set and the design generation.
#[must_use]
pub fn node_named(design: &Design, name: &str) -> NodeId {
    design
        .input(name)
        .or_else(|| design.output(name))
        .or_else(|| {
            design
                .node_ids()
                .find(|&id| design.name_of(id) == Some(name))
        })
        .unwrap_or_else(|| panic!("design {} has no node named {name:?}", design.name()))
}

/// Instantiates the six rows of Table 1 against a design.
///
/// `attacker` is the less-privileged user the rows quantify over
/// (defaults in the harness to user 0), `victim` the key/data owner.
#[must_use]
pub fn table1_policies(design: &Design, attacker: Label, victim: Label) -> Vec<FlowPolicy> {
    let key_regs = node_named(design, "pipe.key0");
    let out_block = node_named(design, "out_block");
    let dbg_out = node_named(design, "dbg_out");
    let key_data_in = node_named(design, "key_data");
    let in_block = node_named(design, "in_block");
    let data_reg = node_named(design, "pipe.data0");
    let cfg_data = node_named(design, "cfg_data");
    let cfg_reg = node_named(design, "cfg.reg");

    vec![
        FlowPolicy {
            name: "1. a classified key cannot be read out by a less confidential user".into(),
            kind: PolicyKind::Confidentiality,
            source: key_regs,
            source_label: victim,
            sink: dbg_out,
            sink_label: port_release_label(design, "dbg_out", attacker),
        },
        FlowPolicy {
            name: "2. a protected key cannot be modified by a less trusted user".into(),
            kind: PolicyKind::Integrity,
            source: key_data_in,
            source_label: attacker,
            sink: key_regs,
            sink_label: victim,
        },
        FlowPolicy {
            name: "3. a classified key cannot be used by a less trusted user".into(),
            kind: PolicyKind::Confidentiality,
            source: key_regs,
            // The master key: releasable only when C(key) ⊑ r(I(user)).
            source_label: Label::SECRET_TRUSTED,
            sink: out_block,
            sink_label: Label::new(reflect_integ(attacker.integ), attacker.integ),
        },
        FlowPolicy {
            name: "4. a low confidential user cannot read another user's plaintext".into(),
            kind: PolicyKind::Confidentiality,
            source: in_block,
            source_label: victim,
            sink: out_block,
            sink_label: attacker,
        },
        FlowPolicy {
            name: "5. a less trusted user cannot modify data beyond its authority".into(),
            kind: PolicyKind::Integrity,
            source: in_block,
            source_label: attacker,
            sink: data_reg,
            sink_label: victim,
        },
        FlowPolicy {
            name: "6. configuration registers writable only by the supervisor".into(),
            kind: PolicyKind::Integrity,
            source: cfg_data,
            source_label: attacker,
            sink: cfg_reg,
            sink_label: Label::PUBLIC_TRUSTED,
        },
    ]
}

/// The default attacker/victim pair used by the harness: user 0 attacks
/// user 1.
#[must_use]
pub fn default_table1(design: &Design) -> Vec<FlowPolicy> {
    table1_policies(design, user_label(0), user_label(1))
}

/// Table 1 as a reviewable text file (`policies/table1.policy`), in the
/// `ifc-check` policy DSL. The same requirements as
/// [`table1_policies`], but maintained as data rather than code — the
/// direction the paper's conclusion calls "automating the formulation
/// procedure".
pub const TABLE1_POLICY_TEXT: &str = include_str!("../policies/table1.policy");

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{baseline, protected};
    use ifc_check::check_policies;

    #[test]
    fn baseline_violates_every_row() {
        let design = baseline();
        let outcomes = check_policies(&design, &default_table1(&design));
        for o in &outcomes {
            assert!(o.violated(), "expected baseline violation: {o}");
        }
    }

    #[test]
    fn textual_table1_parses_and_flags_the_baseline() {
        let design = baseline();
        let policies =
            ifc_check::parse_policies(&design, TABLE1_POLICY_TEXT).expect("policy file parses");
        assert_eq!(policies.len(), 6);
        let outcomes = check_policies(&design, &policies);
        for o in &outcomes {
            assert!(o.violated(), "baseline must violate: {o}");
        }
    }

    #[test]
    fn protected_violates_no_row() {
        let design = protected();
        let outcomes = check_policies(&design, &default_table1(&design));
        for o in &outcomes {
            assert!(!o.violated(), "unexpected protected violation: {o}");
        }
    }
}
