//! Hardware building blocks for the AES datapath: byte plumbing, S-box
//! ROMs, and the four round transformations as combinational circuits.

use aes_core::{INV_SBOX, SBOX};
use hdl::{MemHandle, ModuleBuilder, Sig};

/// Instantiates the shared S-box ROM (256 × 8, initialised from the
/// derived [`SBOX`] table). Reads are combinational; in the FPGA model
/// this maps to block RAM, exactly the paper's main BRAM consumer.
pub fn sbox_rom(m: &mut ModuleBuilder) -> MemHandle {
    m.mem(
        "sbox_rom",
        8,
        256,
        SBOX.iter().map(|&b| u128::from(b)).collect(),
    )
}

/// Instantiates the inverse S-box ROM for the decryption datapath.
pub fn inv_sbox_rom(m: &mut ModuleBuilder) -> MemHandle {
    m.mem(
        "inv_sbox_rom",
        8,
        256,
        INV_SBOX.iter().map(|&b| u128::from(b)).collect(),
    )
}

/// Extracts byte `i` of a 128-bit signal. Byte 0 is the most significant —
/// the order bytes arrive on the bus and the order `aes_core` uses.
pub fn byte_of(m: &mut ModuleBuilder, s: Sig, i: usize) -> Sig {
    assert!(s.width() == 128 && i < 16);
    let hi = (127 - 8 * i) as u16;
    m.slice(s, hi, hi - 7)
}

/// Reassembles 16 byte signals into a 128-bit signal (byte 0 most
/// significant).
pub fn assemble(m: &mut ModuleBuilder, bytes: &[Sig; 16]) -> Sig {
    let mut acc = bytes[0];
    for &b in &bytes[1..] {
        acc = m.cat(acc, b);
    }
    acc
}

/// SubBytes: 16 parallel S-box lookups.
pub fn sub_bytes_hw(m: &mut ModuleBuilder, rom: MemHandle, s: Sig) -> Sig {
    let bytes: [Sig; 16] = core::array::from_fn(|i| byte_of(m, s, i));
    let subbed: [Sig; 16] = core::array::from_fn(|i| m.mem_read(rom, bytes[i]));
    assemble(m, &subbed)
}

/// ShiftRows: a pure byte permutation (free wiring in hardware).
pub fn shift_rows_hw(m: &mut ModuleBuilder, s: Sig) -> Sig {
    let bytes: [Sig; 16] = core::array::from_fn(|i| byte_of(m, s, i));
    let mut out = [bytes[0]; 16];
    for r in 0..4 {
        for c in 0..4 {
            out[4 * c + r] = bytes[4 * ((c + r) % 4) + r];
        }
    }
    assemble(m, &out)
}

/// GF(2⁸) multiplication by x (`xtime`): shift left, conditionally reduce
/// by 0x1b.
pub fn xtime_hw(m: &mut ModuleBuilder, b: Sig) -> Sig {
    assert_eq!(b.width(), 8);
    let low = m.slice(b, 6, 0);
    let zero = m.lit(0, 1);
    let shifted = m.cat(low, zero);
    let msb = m.slice(b, 7, 7);
    let poly = m.lit(0x1b, 8);
    let none = m.lit(0, 8);
    let reduce = m.mux(msb, poly, none);
    m.xor(shifted, reduce)
}

/// MixColumns over all four columns.
pub fn mix_columns_hw(m: &mut ModuleBuilder, s: Sig) -> Sig {
    let bytes: [Sig; 16] = core::array::from_fn(|i| byte_of(m, s, i));
    let mut out = [bytes[0]; 16];
    for c in 0..4 {
        let col = [
            bytes[4 * c],
            bytes[4 * c + 1],
            bytes[4 * c + 2],
            bytes[4 * c + 3],
        ];
        let x2: [Sig; 4] = core::array::from_fn(|i| xtime_hw(m, col[i]));
        let x3: [Sig; 4] = core::array::from_fn(|i| m.xor(x2[i], col[i]));
        // out0 = 2·b0 ⊕ 3·b1 ⊕ b2 ⊕ b3, and rotations thereof.
        for r in 0..4 {
            let t0 = m.xor(x2[r], x3[(r + 1) % 4]);
            let t1 = m.xor(col[(r + 2) % 4], col[(r + 3) % 4]);
            out[4 * c + r] = m.xor(t0, t1);
        }
    }
    assemble(m, &out)
}

/// One AES-128 key-schedule step: expands round key `r` into round key
/// `r + 1` using the round constant `rcon`.
pub fn key_expand_hw(m: &mut ModuleBuilder, rom: MemHandle, key: Sig, rcon: u8) -> Sig {
    assert_eq!(key.width(), 128);
    let w0 = m.slice(key, 127, 96);
    let w1 = m.slice(key, 95, 64);
    let w2 = m.slice(key, 63, 32);
    let w3 = m.slice(key, 31, 0);
    // RotWord: [a,b,c,d] → [b,c,d,a] (a is the most significant byte).
    let b0 = m.slice(w3, 31, 24);
    let b1 = m.slice(w3, 23, 16);
    let b2 = m.slice(w3, 15, 8);
    let b3 = m.slice(w3, 7, 0);
    // SubWord on the rotated bytes.
    let s0 = m.mem_read(rom, b1);
    let s1 = m.mem_read(rom, b2);
    let s2 = m.mem_read(rom, b3);
    let s3 = m.mem_read(rom, b0);
    let hi = m.cat(s0, s1);
    let lo = m.cat(s2, s3);
    let subbed = m.cat(hi, lo);
    let rcon_word = m.lit(u128::from(rcon) << 24, 32);
    let temp = m.xor(subbed, rcon_word);
    let n0 = m.xor(w0, temp);
    let n1 = m.xor(w1, n0);
    let n2 = m.xor(w2, n1);
    let n3 = m.xor(w3, n2);
    let hi = m.cat(n0, n1);
    let lo = m.cat(n2, n3);
    m.cat(hi, lo)
}

/// AddRoundKey: XOR of state and round key.
pub fn add_round_key_hw(m: &mut ModuleBuilder, s: Sig, rk: Sig) -> Sig {
    m.xor(s, rk)
}

/// InvSubBytes: 16 parallel inverse S-box lookups.
pub fn inv_sub_bytes_hw(m: &mut ModuleBuilder, inv_rom: MemHandle, s: Sig) -> Sig {
    let bytes: [Sig; 16] = core::array::from_fn(|i| byte_of(m, s, i));
    let subbed: [Sig; 16] = core::array::from_fn(|i| m.mem_read(inv_rom, bytes[i]));
    assemble(m, &subbed)
}

/// InvShiftRows: the inverse byte permutation.
pub fn inv_shift_rows_hw(m: &mut ModuleBuilder, s: Sig) -> Sig {
    let bytes: [Sig; 16] = core::array::from_fn(|i| byte_of(m, s, i));
    let mut out = [bytes[0]; 16];
    for r in 0..4 {
        for c in 0..4 {
            out[4 * ((c + r) % 4) + r] = bytes[4 * c + r];
        }
    }
    assemble(m, &out)
}

/// InvMixColumns: multiplies each column by
/// {0b}x³ + {0d}x² + {09}x + {0e}, built from `xtime` chains
/// (x·9 = x·8 ⊕ x, x·b = x·8 ⊕ x·2 ⊕ x, x·d = x·8 ⊕ x·4 ⊕ x,
/// x·e = x·8 ⊕ x·4 ⊕ x·2).
pub fn inv_mix_columns_hw(m: &mut ModuleBuilder, s: Sig) -> Sig {
    let bytes: [Sig; 16] = core::array::from_fn(|i| byte_of(m, s, i));
    let mut out = [bytes[0]; 16];
    for c in 0..4 {
        let col = [
            bytes[4 * c],
            bytes[4 * c + 1],
            bytes[4 * c + 2],
            bytes[4 * c + 3],
        ];
        let x2: [Sig; 4] = core::array::from_fn(|i| xtime_hw(m, col[i]));
        let x4: [Sig; 4] = core::array::from_fn(|i| xtime_hw(m, x2[i]));
        let x8: [Sig; 4] = core::array::from_fn(|i| xtime_hw(m, x4[i]));
        let mul9: [Sig; 4] = core::array::from_fn(|i| m.xor(x8[i], col[i]));
        let mul_b: [Sig; 4] = core::array::from_fn(|i| {
            let t = m.xor(x8[i], x2[i]);
            m.xor(t, col[i])
        });
        let mul_d: [Sig; 4] = core::array::from_fn(|i| {
            let t = m.xor(x8[i], x4[i]);
            m.xor(t, col[i])
        });
        let mul_e: [Sig; 4] = core::array::from_fn(|i| {
            let t = m.xor(x8[i], x4[i]);
            m.xor(t, x2[i])
        });
        for r in 0..4 {
            // out_r = e·b_r ⊕ b·b_{r+1} ⊕ d·b_{r+2} ⊕ 9·b_{r+3}
            let t0 = m.xor(mul_e[r], mul_b[(r + 1) % 4]);
            let t1 = m.xor(mul_d[(r + 2) % 4], mul9[(r + 3) % 4]);
            out[4 * c + r] = m.xor(t0, t1);
        }
    }
    assemble(m, &out)
}

/// One *inverse* AES-128 key-schedule step with a signal round constant:
/// given round key `r + 1` (and `RCON[r]` as a signal), recovers round
/// key `r`. Used by the decryption FSM to walk the schedule backwards.
pub fn key_unexpand_dyn_hw(m: &mut ModuleBuilder, rom: MemHandle, next: Sig, rcon: Sig) -> Sig {
    assert_eq!(next.width(), 128);
    assert_eq!(rcon.width(), 8);
    let n0 = m.slice(next, 127, 96);
    let n1 = m.slice(next, 95, 64);
    let n2 = m.slice(next, 63, 32);
    let n3 = m.slice(next, 31, 0);
    let w3 = m.xor(n3, n2);
    let w2 = m.xor(n2, n1);
    let w1 = m.xor(n1, n0);
    // g(w3) = SubWord(RotWord(w3)) ^ rcon.
    let b0 = m.slice(w3, 31, 24);
    let b1 = m.slice(w3, 23, 16);
    let b2 = m.slice(w3, 15, 8);
    let b3 = m.slice(w3, 7, 0);
    let s0 = m.mem_read(rom, b1);
    let s1 = m.mem_read(rom, b2);
    let s2 = m.mem_read(rom, b3);
    let s3 = m.mem_read(rom, b0);
    let s0r = m.xor(s0, rcon);
    let hi = m.cat(s0r, s1);
    let lo = m.cat(s2, s3);
    let g = m.cat(hi, lo);
    let w0 = m.xor(n0, g);
    let hi = m.cat(w0, w1);
    let lo = m.cat(w2, w3);
    m.cat(hi, lo)
}

/// One AES-128 key-schedule step with a *signal* round constant, for
/// iterative engines whose round index is a runtime counter.
pub fn key_expand_dyn_hw(m: &mut ModuleBuilder, rom: MemHandle, key: Sig, rcon: Sig) -> Sig {
    assert_eq!(key.width(), 128);
    assert_eq!(rcon.width(), 8);
    let w0 = m.slice(key, 127, 96);
    let w1 = m.slice(key, 95, 64);
    let w2 = m.slice(key, 63, 32);
    let w3 = m.slice(key, 31, 0);
    let b0 = m.slice(w3, 31, 24);
    let b1 = m.slice(w3, 23, 16);
    let b2 = m.slice(w3, 15, 8);
    let b3 = m.slice(w3, 7, 0);
    let s0 = m.mem_read(rom, b1);
    let s1 = m.mem_read(rom, b2);
    let s2 = m.mem_read(rom, b3);
    let s3 = m.mem_read(rom, b0);
    let s0r = m.xor(s0, rcon);
    let hi = m.cat(s0r, s1);
    let lo = m.cat(s2, s3);
    let subbed = m.cat(hi, lo);
    let n0 = m.xor(w0, subbed);
    let n1 = m.xor(w1, n0);
    let n2 = m.xor(w2, n1);
    let n3 = m.xor(w3, n2);
    let hi = m.cat(n0, n1);
    let lo = m.cat(n2, n3);
    m.cat(hi, lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aes_core::{block_to_u128, u128_to_block};
    use sim::Simulator;

    /// Builds a one-shot combinational test harness around `f`.
    fn harness(f: impl FnOnce(&mut ModuleBuilder, MemHandle, Sig) -> Sig) -> Simulator {
        let mut m = ModuleBuilder::new("harness");
        let rom = sbox_rom(&mut m);
        let input = m.input("in", 128);
        let out = f(&mut m, rom, input);
        m.output("out", out);
        Simulator::new(m.finish().lower().expect("combinational harness"))
    }

    #[test]
    fn hw_sub_bytes_matches_reference() {
        let mut sim = harness(sub_bytes_hw);
        let block: [u8; 16] = core::array::from_fn(|i| (i * 16 + 3) as u8);
        sim.set("in", block_to_u128(block));
        let got = u128_to_block(sim.peek("out"));
        assert_eq!(got, aes_core::sub_bytes(block));
    }

    #[test]
    fn hw_shift_rows_matches_reference() {
        let mut sim = harness(|m, _, s| shift_rows_hw(m, s));
        let block: [u8; 16] = core::array::from_fn(|i| i as u8);
        sim.set("in", block_to_u128(block));
        assert_eq!(u128_to_block(sim.peek("out")), aes_core::shift_rows(block));
    }

    #[test]
    fn hw_mix_columns_matches_reference() {
        let mut sim = harness(|m, _, s| mix_columns_hw(m, s));
        for seed in [0u8, 1, 0x5a, 0xff] {
            let block: [u8; 16] = core::array::from_fn(|i| (i as u8).wrapping_mul(31) ^ seed);
            sim.set("in", block_to_u128(block));
            assert_eq!(u128_to_block(sim.peek("out")), aes_core::mix_columns(block));
        }
    }

    #[test]
    fn hw_xtime_matches_reference() {
        let mut m = ModuleBuilder::new("xtime");
        let input = m.input("in", 8);
        let out = xtime_hw(&mut m, input);
        m.output("out", out);
        let mut sim = Simulator::new(m.finish().lower().unwrap());
        for v in 0..=255u8 {
            sim.set("in", u128::from(v));
            assert_eq!(sim.peek("out") as u8, aes_core::xtime(v), "xtime({v:#x})");
        }
    }

    #[test]
    fn hw_inverse_ops_match_reference() {
        let mut m = ModuleBuilder::new("inv");
        let inv_rom = inv_sbox_rom(&mut m);
        let input = m.input("in", 128);
        let isb = inv_sub_bytes_hw(&mut m, inv_rom, input);
        let isr = inv_shift_rows_hw(&mut m, input);
        let imc = inv_mix_columns_hw(&mut m, input);
        m.output("isb", isb);
        m.output("isr", isr);
        m.output("imc", imc);
        let mut sim = Simulator::new(m.finish().lower().unwrap());
        for seed in [0u8, 7, 0x5a, 0xff] {
            let block: [u8; 16] = core::array::from_fn(|i| (i as u8).wrapping_mul(29) ^ seed);
            sim.set("in", block_to_u128(block));
            assert_eq!(
                u128_to_block(sim.peek("isb")),
                aes_core::inv_sub_bytes(block)
            );
            assert_eq!(
                u128_to_block(sim.peek("isr")),
                aes_core::inv_shift_rows(block)
            );
            assert_eq!(
                u128_to_block(sim.peek("imc")),
                aes_core::inv_mix_columns(block)
            );
        }
    }

    #[test]
    fn hw_key_unexpand_inverts_expand() {
        let mut m = ModuleBuilder::new("unexpand");
        let rom = sbox_rom(&mut m);
        let input = m.input("in", 128);
        let rcon = m.lit(0x01, 8);
        let fwd = key_expand_hw(&mut m, rom, input, 0x01);
        let back = key_unexpand_dyn_hw(&mut m, rom, fwd, rcon);
        m.output("back", back);
        let mut sim = Simulator::new(m.finish().lower().unwrap());
        for seed in [0u8, 3, 0x77] {
            let key: [u8; 16] = core::array::from_fn(|i| (i as u8).wrapping_mul(41) ^ seed);
            sim.set("in", block_to_u128(key));
            assert_eq!(u128_to_block(sim.peek("back")), key, "seed {seed}");
        }
    }

    #[test]
    fn hw_key_expand_matches_reference() {
        let key = *b"\x2b\x7e\x15\x16\x28\xae\xd2\xa6\xab\xf7\x15\x88\x09\xcf\x4f\x3c";
        let schedule = aes_core::KeySchedule::expand(&key).unwrap();

        let mut m = ModuleBuilder::new("expand");
        let rom = sbox_rom(&mut m);
        let input = m.input("in", 128);
        // Chain all ten expansions combinationally and expose each.
        let mut k = input;
        for r in 1..=10u8 {
            const RCON: [u8; 10] = [1, 2, 4, 8, 16, 32, 64, 128, 0x1b, 0x36];
            k = key_expand_hw(&mut m, rom, k, RCON[(r - 1) as usize]);
            m.output(&format!("rk{r}"), k);
        }
        let mut sim = Simulator::new(m.finish().lower().unwrap());
        sim.set("in", block_to_u128(key));
        for r in 1..=10usize {
            assert_eq!(
                u128_to_block(sim.peek(&format!("rk{r}"))),
                schedule.round_key(r),
                "round key {r}"
            );
        }
    }
}
