//! Structural FPGA area and timing estimation.
//!
//! The paper's Table 2 reports Vivado post-implementation numbers on a
//! Virtex-7. Without Vivado, this crate estimates the same four quantities
//! (LUTs, flip-flops, block RAMs, Fmax) *structurally* from the lowered
//! netlist, with documented, deterministic mapping rules:
//!
//! * **FFs** — sum of register widths.
//! * **LUTs** — per-node 6-LUT costs (bitwise ops pack two 2-input gates
//!   per LUT; adders use the carry chain at one LUT per bit; wide
//!   equality folds through 6-input reduction; slices/concats are free
//!   wiring). Hold muxes synthesised by `when` lowering that feed a
//!   register's own next-value map to the flip-flop's clock-enable pin and
//!   cost nothing.
//! * **BRAMs** — each memory needs `ceil(bits / 18 Kib)` BRAM18 *per port
//!   pair*; small arrays still occupy one. Reported in BRAM18 units.
//! * **Fmax** — longest combinational path in weighted logic levels,
//!   linearly calibrated against an anchor design (the baseline
//!   accelerator at 400 MHz, the paper's operating point). Identical
//!   depths therefore reproduce the paper's "no impact on the critical
//!   path".
//!
//! Absolute values will differ from Vivado's (placement, routing, and
//! LUT packing are not modelled); the *relative* overhead between two
//! designs on the same rules — which is what Table 2's comparison shows —
//! is meaningful.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hdl::{BinOp, Netlist, Node, NodeId, UnOp};

/// Structural resource estimate for one design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaReport {
    /// Estimated 6-input look-up tables.
    pub luts: usize,
    /// Flip-flops (register bits).
    pub ffs: usize,
    /// BRAM18 blocks.
    pub bram18: usize,
    /// Longest combinational path, in weighted logic levels.
    pub logic_levels: u32,
}

impl AreaReport {
    /// Relative overhead of `self` versus a baseline, as a fraction
    /// (`0.056` = +5.6 %).
    #[must_use]
    pub fn overhead_vs(&self, base: &AreaReport) -> Overheads {
        let pct = |a: usize, b: usize| {
            if b == 0 {
                0.0
            } else {
                a as f64 / b as f64 - 1.0
            }
        };
        Overheads {
            luts: pct(self.luts, base.luts),
            ffs: pct(self.ffs, base.ffs),
            bram18: pct(self.bram18, base.bram18),
            levels: pct(self.logic_levels as usize, base.logic_levels as usize),
        }
    }
}

/// Relative overheads between two designs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Overheads {
    /// LUT overhead fraction.
    pub luts: f64,
    /// FF overhead fraction.
    pub ffs: f64,
    /// BRAM overhead fraction.
    pub bram18: f64,
    /// Logic-level (critical-path) overhead fraction.
    pub levels: f64,
}

/// Frequency calibration: a known design depth anchored to a known clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// The anchor design's logic levels.
    pub anchor_levels: u32,
    /// The anchor design's clock in MHz (the paper's 400 MHz baseline).
    pub anchor_mhz: f64,
}

impl Calibration {
    /// Estimated Fmax of a design with `levels` logic levels.
    #[must_use]
    pub fn fmax_mhz(&self, levels: u32) -> f64 {
        self.anchor_mhz * f64::from(self.anchor_levels) / f64::from(levels.max(1))
    }
}

/// Per-node LUT cost under the documented mapping rules.
fn lut_cost(net: &Netlist, id: NodeId) -> usize {
    let width = |n: NodeId| usize::from(node_width(net, n));
    match net.node(id) {
        Node::Input { .. }
        | Node::Const { .. }
        | Node::Wire { .. }
        | Node::Reg { .. }
        | Node::MemRead { .. }
        | Node::Slice { .. }
        | Node::Cat { .. }
        // Downgrade nodes are label-plane constructs: the data passes
        // through as wiring.
        | Node::Declassify { .. }
        | Node::Endorse { .. } => 0,
        Node::Unary { op, a } => match op {
            // Inverters fuse into downstream LUTs.
            UnOp::Not => 0,
            // A reduction tree over w bits through 6-input LUTs.
            UnOp::ReduceOr | UnOp::ReduceAnd | UnOp::ReduceXor => reduction_luts(width(*a)),
        },
        Node::Binary { op, a, .. } => {
            let w = width(*a);
            match op {
                // Two 2-input gates pack per LUT on average.
                BinOp::And | BinOp::Or | BinOp::Xor => w.div_ceil(2),
                // Carry chain: one LUT per bit.
                BinOp::Add | BinOp::Sub => w,
                // Per-bit XNOR then a reduction tree.
                BinOp::Eq | BinOp::Ne => w.div_ceil(2) + reduction_luts(w),
                // Comparators use the carry chain.
                BinOp::Lt | BinOp::Ge => w,
                // Tag operators work on two 4-bit nibbles.
                BinOp::TagLeq => 4,
                BinOp::TagJoin | BinOp::TagMeet => 8,
            }
        }
        Node::Mux { sel: _, t, f } => {
            // A hold mux feeding its own register's next value maps to the
            // flip-flop clock-enable.
            if is_hold_mux(net, id, *f) {
                0
            } else {
                // 2:1 mux per bit; two per LUT6.
                width(*t).div_ceil(2)
            }
        }
    }
}

/// LUTs in a 6-input reduction tree over `w` bits.
fn reduction_luts(w: usize) -> usize {
    let mut total = 0;
    let mut remaining = w;
    while remaining > 1 {
        let level = remaining.div_ceil(6);
        total += level;
        remaining = level;
    }
    total
}

/// Whether `mux_id` is a hold mux: its false-arm is a register whose next
/// value is this mux (the `when` lowering idiom for clock enables).
fn is_hold_mux(net: &Netlist, mux_id: NodeId, false_arm: NodeId) -> bool {
    matches!(net.node(false_arm), Node::Reg { .. })
        && net.reg_next[false_arm.index()] == Some(mux_id)
}

fn node_width(net: &Netlist, id: NodeId) -> u16 {
    match net.node(id) {
        Node::Input { width }
        | Node::Const { width, .. }
        | Node::Wire { width, .. }
        | Node::Reg { width, .. } => *width,
        Node::MemRead { mem, .. } => net.mems[mem.index()].width,
        Node::Unary { op: UnOp::Not, a } => node_width(net, *a),
        Node::Unary { .. } => 1,
        Node::Binary { op, a, .. } => match op {
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Ge | BinOp::TagLeq => 1,
            _ => node_width(net, *a),
        },
        Node::Mux { t, .. } => node_width(net, *t),
        Node::Slice { hi, lo, .. } => hi - lo + 1,
        Node::Cat { hi, lo } => node_width(net, *hi) + node_width(net, *lo),
        Node::Declassify { data, .. } | Node::Endorse { data, .. } => node_width(net, *data),
    }
}

/// Per-node delay weight for the critical-path estimate (in LUT-delay
/// units; a BRAM access costs about two).
fn delay_weight(net: &Netlist, id: NodeId) -> u32 {
    match net.node(id) {
        Node::MemRead { .. } => 2,
        Node::Mux { f, .. } if is_hold_mux(net, id, *f) => 0,
        _ if lut_cost(net, id) > 0 => 1,
        _ => 0,
    }
}

/// Estimates area and critical path for a lowered netlist.
#[must_use]
pub fn estimate(net: &Netlist) -> AreaReport {
    let mut luts = 0usize;
    let mut ffs = 0usize;
    for id in net.node_ids() {
        luts += lut_cost(net, id);
        if let Node::Reg { width, .. } = net.node(id) {
            ffs += usize::from(*width);
        }
    }

    // BRAM mapping: ceil(bits / 18 Kib) per dual-port pair.
    let mut ports_per_mem = vec![0usize; net.mems.len()];
    for id in net.node_ids() {
        if let Node::MemRead { mem, .. } = net.node(id) {
            ports_per_mem[mem.index()] += 1;
        }
    }
    for wp in &net.write_ports {
        ports_per_mem[wp.mem.index()] += 1;
    }
    let mut bram18 = 0usize;
    for (mem, ports) in net.mems.iter().zip(&ports_per_mem) {
        let bits = mem.depth * usize::from(mem.width);
        let per_pair = bits.div_ceil(18 * 1024).max(1);
        let pairs = ports.div_ceil(2).max(1);
        bram18 += per_pair * pairs;
    }

    // Longest weighted combinational path over the topological order.
    let mut depth = vec![0u32; net.nodes.len()];
    let mut worst = 0u32;
    for &id in &net.topo {
        let idx = id.index();
        let mut input_depth = 0u32;
        let mut visit = |n: NodeId| input_depth = input_depth.max(depth[n.index()]);
        match net.node(id) {
            Node::Reg { .. } | Node::Input { .. } | Node::Const { .. } => {}
            Node::Wire { .. } => {
                if let Some(d) = net.wire_driver[idx] {
                    visit(d);
                }
            }
            other => {
                for op in other.operands() {
                    visit(op);
                }
            }
        }
        depth[idx] = input_depth + delay_weight(net, id);
        worst = worst.max(depth[idx]);
    }

    AreaReport {
        luts,
        ffs,
        bram18,
        logic_levels: worst,
    }
}

/// Area attributed to one hierarchy group (a dotted-name prefix).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupArea {
    /// Group name (first dotted component of node names; `<top>` for
    /// unscoped logic).
    pub group: String,
    /// Flip-flop bits whose registers live in this group.
    pub ffs: usize,
    /// LUTs of combinational nodes attributed to this group.
    pub luts: usize,
    /// BRAM18 of memories named in this group.
    pub bram18: usize,
}

/// Splits the estimate by hierarchy: registers and memories are
/// attributed by the first dotted component of their names; anonymous
/// combinational logic is attributed to the group of the nearest named
/// node *using* it (falling back to `<top>`).
#[must_use]
pub fn estimate_by_group(net: &Netlist) -> Vec<GroupArea> {
    use std::collections::HashMap;

    let group_of = |name: Option<&str>| -> String {
        match name {
            Some(n) => n.split('.').next().unwrap_or(n).to_owned(),
            None => "<top>".to_owned(),
        }
    };

    // Attribute anonymous nodes to the group of the named node they feed,
    // by reverse-propagating group ownership from named nodes.
    let n = net.nodes.len();
    let mut owner: Vec<Option<String>> = (0..n)
        .map(|i| net.names[i].as_ref().map(|s| group_of(Some(s))))
        .collect();
    // Output ports own their driving cones (useful for interface logic
    // like the debug mux tree).
    for p in &net.outputs {
        if owner[p.node.index()].is_none() {
            owner[p.node.index()] = Some(group_of(Some(&p.name)));
        }
    }
    // Registers own their next-state expressions.
    for id in net.node_ids() {
        if let Some(next) = net.reg_next[id.index()] {
            if owner[next.index()].is_none() {
                owner[next.index()] = owner[id.index()].clone();
            }
        }
    }
    // Memory write ports belong to their memory's group.
    for wp in &net.write_ports {
        let group = group_of(Some(&net.mems[wp.mem.index()].name));
        for n in [wp.en, wp.addr, wp.data] {
            if owner[n.index()].is_none() {
                owner[n.index()] = Some(group.clone());
            }
        }
    }
    // Walk the topological order backwards so consumers assign producers.
    for &id in net.topo.iter().rev() {
        if let Some(group) = owner[id.index()].clone() {
            let assign = |op: NodeId, owner: &mut Vec<Option<String>>| {
                if owner[op.index()].is_none() {
                    owner[op.index()] = Some(group.clone());
                }
            };
            match net.node(id) {
                Node::Wire { .. } => {
                    if let Some(d) = net.wire_driver[id.index()] {
                        assign(d, &mut owner);
                    }
                }
                other => {
                    for op in other.operands() {
                        assign(op, &mut owner);
                    }
                }
            }
        }
    }
    let mut groups: HashMap<String, GroupArea> = HashMap::new();
    fn touch(groups: &mut HashMap<String, GroupArea>, name: String) -> &mut GroupArea {
        groups.entry(name.clone()).or_insert(GroupArea {
            group: name,
            ffs: 0,
            luts: 0,
            bram18: 0,
        })
    }
    for id in net.node_ids() {
        let group = owner[id.index()].clone().unwrap_or_else(|| "<top>".into());
        let entry = touch(&mut groups, group);
        entry.luts += lut_cost(net, id);
        if let Node::Reg { width, .. } = net.node(id) {
            entry.ffs += usize::from(*width);
        }
    }
    // BRAM per memory, port-pair rule as in `estimate`.
    let mut ports_per_mem = vec![0usize; net.mems.len()];
    for id in net.node_ids() {
        if let Node::MemRead { mem, .. } = net.node(id) {
            ports_per_mem[mem.index()] += 1;
        }
    }
    for wp in &net.write_ports {
        ports_per_mem[wp.mem.index()] += 1;
    }
    for (mem, ports) in net.mems.iter().zip(&ports_per_mem) {
        let bits = mem.depth * usize::from(mem.width);
        let per_pair = bits.div_ceil(18 * 1024).max(1);
        let pairs = ports.div_ceil(2).max(1);
        let entry = touch(&mut groups, group_of(Some(&mem.name)));
        entry.bram18 += per_pair * pairs;
    }

    let mut out: Vec<GroupArea> = groups.into_values().collect();
    out.sort_by_key(|g| std::cmp::Reverse(g.luts + g.ffs));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdl::ModuleBuilder;

    #[test]
    fn counts_register_bits() {
        let mut m = ModuleBuilder::new("t");
        let r = m.reg("r", 17, 0);
        m.output("r", r);
        let report = estimate(&m.finish().lower().unwrap());
        assert_eq!(report.ffs, 17);
        assert_eq!(report.luts, 0);
    }

    #[test]
    fn hold_mux_is_free() {
        let mut m = ModuleBuilder::new("t");
        let en = m.input("en", 1);
        let d = m.input("d", 8);
        let r = m.reg("r", 8, 0);
        m.when(en, |m| m.connect(r, d));
        m.output("r", r);
        let report = estimate(&m.finish().lower().unwrap());
        // The enable mux costs nothing (CE pin).
        assert_eq!(report.luts, 0);
    }

    #[test]
    fn xor_packs_two_bits_per_lut() {
        let mut m = ModuleBuilder::new("t");
        let a = m.input("a", 128);
        let b = m.input("b", 128);
        let x = m.xor(a, b);
        m.output("x", x);
        let report = estimate(&m.finish().lower().unwrap());
        assert_eq!(report.luts, 64);
        assert_eq!(report.logic_levels, 1);
    }

    #[test]
    fn memory_needs_at_least_one_bram_per_port_pair() {
        let mut m = ModuleBuilder::new("t");
        let a0 = m.input("a0", 8);
        let a1 = m.input("a1", 8);
        let a2 = m.input("a2", 8);
        let rom = m.mem("rom", 8, 256, vec![0; 256]);
        let r0 = m.mem_read(rom, a0);
        let r1 = m.mem_read(rom, a1);
        let r2 = m.mem_read(rom, a2);
        m.output("r0", r0);
        m.output("r1", r1);
        m.output("r2", r2);
        let report = estimate(&m.finish().lower().unwrap());
        // Three ports → two port pairs → two BRAM18 (2 Kib contents).
        assert_eq!(report.bram18, 2);
    }

    #[test]
    fn calibration_reproduces_anchor() {
        let cal = Calibration {
            anchor_levels: 10,
            anchor_mhz: 400.0,
        };
        assert!((cal.fmax_mhz(10) - 400.0).abs() < 1e-9);
        assert!((cal.fmax_mhz(20) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn group_breakdown_attributes_hierarchy() {
        let mut m = ModuleBuilder::new("t");
        let d = m.input("d", 8);
        m.scope("engine", |m| {
            let r = m.reg("state", 8, 0);
            let x = m.xor(r, d);
            m.connect(r, x);
            m.output("state", r);
        });
        m.scope("iface", |m| {
            let q = m.reg("q", 4, 0);
            m.output("q", q);
        });
        let net = m.finish().lower().unwrap();
        let groups = estimate_by_group(&net);
        let engine = groups.iter().find(|g| g.group == "engine").unwrap();
        assert_eq!(engine.ffs, 8);
        assert!(engine.luts >= 4, "the xor belongs to the engine");
        let iface = groups.iter().find(|g| g.group == "iface").unwrap();
        assert_eq!(iface.ffs, 4);
        // Totals across groups match the flat estimate.
        let flat = estimate(&net);
        assert_eq!(groups.iter().map(|g| g.ffs).sum::<usize>(), flat.ffs);
        assert_eq!(groups.iter().map(|g| g.luts).sum::<usize>(), flat.luts);
        assert_eq!(groups.iter().map(|g| g.bram18).sum::<usize>(), flat.bram18);
    }

    #[test]
    fn deeper_logic_reports_more_levels() {
        let mut m = ModuleBuilder::new("t");
        let a = m.input("a", 8);
        let b = m.input("b", 8);
        let mut acc = m.xor(a, b);
        for _ in 0..5 {
            acc = m.add(acc, b);
        }
        m.output("acc", acc);
        let report = estimate(&m.finish().lower().unwrap());
        assert_eq!(report.logic_levels, 6);
    }
}
