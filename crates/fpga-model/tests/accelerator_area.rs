//! Table 2 shape checks: the protected accelerator's area overhead is
//! marginal and its critical path is unchanged.

use accel::{baseline, protected};
use fpga_model::{estimate, Calibration};

#[test]
fn protected_overheads_match_table2_shape() {
    let base = estimate(&baseline().lower().unwrap());
    let prot = estimate(&protected().lower().unwrap());
    let ovh = prot.overhead_vs(&base);

    // Table 2: +5.6 % LUTs, +6.6 % FFs, +10 % BRAMs, +0 % frequency.
    // Our structural model must land in the same regime: small positive
    // area overhead, unchanged critical path.
    assert!(
        ovh.luts > 0.0 && ovh.luts < 0.15,
        "LUT overhead {:.1}% out of the marginal regime (base {}, prot {})",
        ovh.luts * 100.0,
        base.luts,
        prot.luts
    );
    assert!(
        ovh.ffs > 0.0 && ovh.ffs < 0.15,
        "FF overhead {:.1}% out of the marginal regime (base {}, prot {})",
        ovh.ffs * 100.0,
        base.ffs,
        prot.ffs
    );
    assert!(
        ovh.bram18 > 0.0 && ovh.bram18 < 0.25,
        "BRAM overhead {:.1}% out of the marginal regime (base {}, prot {})",
        ovh.bram18 * 100.0,
        base.bram18,
        prot.bram18
    );
    assert_eq!(
        base.logic_levels, prot.logic_levels,
        "protection must not lengthen the critical path"
    );
}

#[test]
fn calibrated_frequency_is_unchanged() {
    let base = estimate(&baseline().lower().unwrap());
    let prot = estimate(&protected().lower().unwrap());
    let cal = Calibration {
        anchor_levels: base.logic_levels,
        anchor_mhz: 400.0,
    };
    assert!((cal.fmax_mhz(base.logic_levels) - 400.0).abs() < 1e-9);
    assert!((cal.fmax_mhz(prot.logic_levels) - 400.0).abs() < 1e-9);
}

#[test]
fn designs_are_nontrivially_sized() {
    let base = estimate(&baseline().lower().unwrap());
    assert!(base.luts > 3000, "baseline LUTs: {}", base.luts);
    assert!(base.ffs > 7000, "baseline FFs: {}", base.ffs);
    assert!(base.bram18 > 10, "baseline BRAM18: {}", base.bram18);
}
