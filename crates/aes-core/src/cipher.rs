//! The block cipher: full encryption/decryption plus a round-level trace
//! API for verifying hardware pipelines.

use std::fmt;

use crate::key_schedule::{InvalidKeyLength, KeySchedule};
use crate::ops::{
    add_round_key, inv_mix_columns, inv_shift_rows, inv_sub_bytes, mix_columns, shift_rows,
    sub_bytes,
};

/// A 16-byte AES block.
pub type Block = [u8; 16];

/// The three standard AES key sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeySize {
    /// 128-bit key, 10 rounds.
    Aes128,
    /// 192-bit key, 12 rounds.
    Aes192,
    /// 256-bit key, 14 rounds.
    Aes256,
}

impl KeySize {
    /// Key length in bytes.
    #[must_use]
    pub const fn key_bytes(self) -> usize {
        match self {
            KeySize::Aes128 => 16,
            KeySize::Aes192 => 24,
            KeySize::Aes256 => 32,
        }
    }

    /// Number of rounds `Nr` (the `N` of the paper's Fig. 1: 10/12/14).
    #[must_use]
    pub const fn rounds(self) -> usize {
        match self {
            KeySize::Aes128 => 10,
            KeySize::Aes192 => 12,
            KeySize::Aes256 => 14,
        }
    }
}

impl fmt::Display for KeySize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeySize::Aes128 => f.write_str("AES-128"),
            KeySize::Aes192 => f.write_str("AES-192"),
            KeySize::Aes256 => f.write_str("AES-256"),
        }
    }
}

/// An AES cipher instance with an expanded key schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Aes {
    schedule: KeySchedule,
    size: KeySize,
}

impl Aes {
    /// Creates a cipher from a key of any standard size.
    ///
    /// # Errors
    ///
    /// Returns an error for key lengths other than 16, 24, or 32 bytes.
    pub fn new(key: &[u8]) -> Result<Aes, InvalidKeyLength> {
        let size = match key.len() {
            16 => KeySize::Aes128,
            24 => KeySize::Aes192,
            32 => KeySize::Aes256,
            other => return Err(InvalidKeyLength { bytes: other }),
        };
        Ok(Aes {
            schedule: KeySchedule::expand(key)?,
            size,
        })
    }

    /// Creates an AES-128 cipher.
    #[must_use]
    pub fn new_128(key: [u8; 16]) -> Aes {
        Aes::new(&key).expect("16-byte key is always valid")
    }

    /// Creates an AES-192 cipher.
    #[must_use]
    pub fn new_192(key: [u8; 24]) -> Aes {
        Aes::new(&key).expect("24-byte key is always valid")
    }

    /// Creates an AES-256 cipher.
    #[must_use]
    pub fn new_256(key: [u8; 32]) -> Aes {
        Aes::new(&key).expect("32-byte key is always valid")
    }

    /// The cipher's key size.
    #[must_use]
    pub fn key_size(&self) -> KeySize {
        self.size
    }

    /// The expanded key schedule.
    #[must_use]
    pub fn schedule(&self) -> &KeySchedule {
        &self.schedule
    }

    /// All round keys (convenience passthrough used by the hardware
    /// drivers).
    #[must_use]
    pub fn round_keys(&self) -> &[[u8; 16]] {
        self.schedule.round_keys()
    }

    /// Encrypts one block.
    #[must_use]
    pub fn encrypt_block(&self, block: Block) -> Block {
        let nr = self.size.rounds();
        let mut state = add_round_key(block, self.schedule.round_key(0));
        for r in 1..nr {
            state = sub_bytes(state);
            state = shift_rows(state);
            state = mix_columns(state);
            state = add_round_key(state, self.schedule.round_key(r));
        }
        state = sub_bytes(state);
        state = shift_rows(state);
        add_round_key(state, self.schedule.round_key(nr))
    }

    /// Decrypts one block (the straightforward inverse cipher of
    /// FIPS-197 §5.3).
    #[must_use]
    pub fn decrypt_block(&self, block: Block) -> Block {
        let nr = self.size.rounds();
        let mut state = add_round_key(block, self.schedule.round_key(nr));
        for r in (1..nr).rev() {
            state = inv_shift_rows(state);
            state = inv_sub_bytes(state);
            state = add_round_key(state, self.schedule.round_key(r));
            state = inv_mix_columns(state);
        }
        state = inv_shift_rows(state);
        state = inv_sub_bytes(state);
        add_round_key(state, self.schedule.round_key(0))
    }

    /// Encrypts one block, returning the state after the initial key
    /// whitening and after every round — `Nr + 1` entries, the last being
    /// the ciphertext. This is the oracle the pipelined accelerator is
    /// verified against, stage by stage.
    #[must_use]
    pub fn encrypt_trace(&self, block: Block) -> Vec<Block> {
        let nr = self.size.rounds();
        let mut trace = Vec::with_capacity(nr + 1);
        let mut state = add_round_key(block, self.schedule.round_key(0));
        trace.push(state);
        for r in 1..nr {
            state = sub_bytes(state);
            state = shift_rows(state);
            state = mix_columns(state);
            state = add_round_key(state, self.schedule.round_key(r));
            trace.push(state);
        }
        state = sub_bytes(state);
        state = shift_rows(state);
        state = add_round_key(state, self.schedule.round_key(nr));
        trace.push(state);
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len() / 2)
            .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap())
            .collect()
    }

    fn block(s: &str) -> Block {
        hex(s).try_into().unwrap()
    }

    #[test]
    fn fips_appendix_b_example() {
        let aes = Aes::new(&hex("2b7e151628aed2a6abf7158809cf4f3c")).unwrap();
        let ct = aes.encrypt_block(block("3243f6a8885a308d313198a2e0370734"));
        assert_eq!(ct, block("3925841d02dc09fbdc118597196a0b32"));
    }

    #[test]
    fn fips_appendix_c1_aes128() {
        let aes = Aes::new(&hex("000102030405060708090a0b0c0d0e0f")).unwrap();
        let pt = block("00112233445566778899aabbccddeeff");
        let ct = aes.encrypt_block(pt);
        assert_eq!(ct, block("69c4e0d86a7b0430d8cdb78070b4c55a"));
        assert_eq!(aes.decrypt_block(ct), pt);
    }

    #[test]
    fn fips_appendix_c2_aes192() {
        let aes = Aes::new(&hex("000102030405060708090a0b0c0d0e0f1011121314151617")).unwrap();
        let pt = block("00112233445566778899aabbccddeeff");
        let ct = aes.encrypt_block(pt);
        assert_eq!(ct, block("dda97ca4864cdfe06eaf70a0ec0d7191"));
        assert_eq!(aes.decrypt_block(ct), pt);
    }

    #[test]
    fn fips_appendix_c3_aes256() {
        let aes = Aes::new(&hex(
            "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
        ))
        .unwrap();
        let pt = block("00112233445566778899aabbccddeeff");
        let ct = aes.encrypt_block(pt);
        assert_eq!(ct, block("8ea2b7ca516745bfeafc49904b496089"));
        assert_eq!(aes.decrypt_block(ct), pt);
    }

    #[test]
    fn trace_ends_with_ciphertext_and_has_nr_plus_one_entries() {
        let aes = Aes::new(&hex("000102030405060708090a0b0c0d0e0f")).unwrap();
        let pt = block("00112233445566778899aabbccddeeff");
        let trace = aes.encrypt_trace(pt);
        assert_eq!(trace.len(), 11);
        assert_eq!(*trace.last().unwrap(), aes.encrypt_block(pt));
    }

    #[test]
    fn trace_round1_matches_fips_c1_intermediate() {
        // FIPS-197 Appendix C.1: round[ 1].start is the state after
        // round 0's AddRoundKey; our trace[0].
        let aes = Aes::new(&hex("000102030405060708090a0b0c0d0e0f")).unwrap();
        let trace = aes.encrypt_trace(block("00112233445566778899aabbccddeeff"));
        assert_eq!(trace[0], block("00102030405060708090a0b0c0d0e0f0"));
        // round[ 2].start = state after round 1.
        assert_eq!(trace[1], block("89d810e8855ace682d1843d8cb128fe4"));
    }

    #[test]
    fn different_keys_give_different_ciphertexts() {
        let a = Aes::new_128([0u8; 16]);
        let b = Aes::new_128([1u8; 16]);
        assert_ne!(a.encrypt_block([0u8; 16]), b.encrypt_block([0u8; 16]));
    }
}
