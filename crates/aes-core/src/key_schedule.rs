//! The AES key expansion (FIPS-197 §5.2).

use crate::sbox::SBOX;

/// Round constants `Rcon[i] = x^(i-1)` in GF(2⁸).
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// The expanded key schedule: `Nr + 1` round keys of 16 bytes.
///
/// ```
/// use aes_core::KeySchedule;
/// let ks = KeySchedule::expand(&[0u8; 16]).unwrap();
/// assert_eq!(ks.rounds(), 10);
/// assert_eq!(ks.round_key(0), [0u8; 16]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeySchedule {
    round_keys: Vec<[u8; 16]>,
}

impl KeySchedule {
    /// Expands a 16-, 24-, or 32-byte key.
    ///
    /// # Errors
    ///
    /// Returns a descriptive error for any other key length.
    pub fn expand(key: &[u8]) -> Result<KeySchedule, InvalidKeyLength> {
        let nk = match key.len() {
            16 => 4,
            24 => 6,
            32 => 8,
            other => return Err(InvalidKeyLength { bytes: other }),
        };
        let nr = nk + 6;
        let total_words = 4 * (nr + 1);

        let mut words: Vec<[u8; 4]> = Vec::with_capacity(total_words);
        for chunk in key.chunks_exact(4) {
            words.push([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in nk..total_words {
            let mut temp = words[i - 1];
            if i % nk == 0 {
                // RotWord + SubWord + Rcon.
                temp = [temp[1], temp[2], temp[3], temp[0]];
                temp = temp.map(|b| SBOX[b as usize]);
                temp[0] ^= RCON[i / nk - 1];
            } else if nk > 6 && i % nk == 4 {
                // AES-256 extra SubWord.
                temp = temp.map(|b| SBOX[b as usize]);
            }
            let prev = words[i - nk];
            words.push([
                prev[0] ^ temp[0],
                prev[1] ^ temp[1],
                prev[2] ^ temp[2],
                prev[3] ^ temp[3],
            ]);
        }

        let round_keys = words
            .chunks_exact(4)
            .map(|w| {
                let mut rk = [0u8; 16];
                for (c, word) in w.iter().enumerate() {
                    rk[4 * c..4 * c + 4].copy_from_slice(word);
                }
                rk
            })
            .collect();
        Ok(KeySchedule { round_keys })
    }

    /// Number of cipher rounds `Nr` (10, 12, or 14).
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.round_keys.len() - 1
    }

    /// The round key for round `r` (round 0 is the initial whitening key).
    ///
    /// # Panics
    ///
    /// Panics if `r > Nr`.
    #[must_use]
    pub fn round_key(&self, r: usize) -> [u8; 16] {
        self.round_keys[r]
    }

    /// All round keys, in order.
    #[must_use]
    pub fn round_keys(&self) -> &[[u8; 16]] {
        &self.round_keys
    }
}

/// Error returned for key lengths other than 16, 24, or 32 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidKeyLength {
    /// The offending length in bytes.
    pub bytes: usize,
}

impl std::fmt::Display for InvalidKeyLength {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid AES key length: {} bytes (expected 16, 24, or 32)",
            self.bytes
        )
    }
}

impl std::error::Error for InvalidKeyLength {}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex16(s: &str) -> [u8; 16] {
        let mut out = [0u8; 16];
        for (i, byte) in out.iter_mut().enumerate() {
            *byte = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap();
        }
        out
    }

    #[test]
    fn aes128_expansion_matches_fips_a1() {
        // FIPS-197 Appendix A.1 key.
        let key = hex16("2b7e151628aed2a6abf7158809cf4f3c");
        let ks = KeySchedule::expand(&key).unwrap();
        assert_eq!(ks.rounds(), 10);
        assert_eq!(ks.round_key(0), key);
        // w[4..8] from the appendix: a0fafe17 88542cb1 23a33939 2a6c7605.
        assert_eq!(ks.round_key(1), hex16("a0fafe1788542cb123a339392a6c7605"));
        // Final round key w[40..44]: d014f9a8 c9ee2589 e13f0cc8 b6630ca6.
        assert_eq!(ks.round_key(10), hex16("d014f9a8c9ee2589e13f0cc8b6630ca6"));
    }

    #[test]
    fn aes192_and_256_round_counts() {
        assert_eq!(KeySchedule::expand(&[0u8; 24]).unwrap().rounds(), 12);
        assert_eq!(KeySchedule::expand(&[0u8; 32]).unwrap().rounds(), 14);
    }

    #[test]
    fn aes256_expansion_matches_fips_a3() {
        // FIPS-197 Appendix A.3 key.
        let mut key = [0u8; 32];
        key[..16].copy_from_slice(&hex16("603deb1015ca71be2b73aef0857d7781"));
        key[16..].copy_from_slice(&hex16("1f352c073b6108d72d9810a30914dff4"));
        let ks = KeySchedule::expand(&key).unwrap();
        // w[8..12]: 9ba35411 8e6925af a51a8b5f 2067fcde.
        assert_eq!(ks.round_key(2), hex16("9ba354118e6925afa51a8b5f2067fcde"));
    }

    #[test]
    fn rejects_bad_lengths() {
        for len in [0usize, 1, 15, 17, 23, 25, 31, 33, 64] {
            assert!(KeySchedule::expand(&vec![0u8; len]).is_err());
        }
    }
}
