//! A from-scratch AES (FIPS-197) reference implementation.
//!
//! Supports AES-128/192/256 encryption and decryption, with a *round-level*
//! API ([`Aes::encrypt_trace`], [`round_keys`](Aes::round_keys)) so the
//! hardware pipeline in the `accel` crate can be verified stage by stage
//! against the specification.
//!
//! The S-box and its inverse are derived from GF(2⁸) arithmetic at
//! compile time rather than transcribed, so the whole cipher is built from
//! first principles.
//!
//! # Example
//!
//! ```
//! use aes_core::Aes;
//!
//! let key = [0u8; 16];
//! let aes = Aes::new_128(key);
//! let ct = aes.encrypt_block([0u8; 16]);
//! assert_eq!(aes.decrypt_block(ct), [0u8; 16]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cipher;
mod gf;
mod key_schedule;
mod modes;
mod ops;
mod sbox;

pub use cipher::{Aes, Block, KeySize};
pub use gf::{gmul, xtime};
pub use key_schedule::KeySchedule;
pub use modes::{ecb_decrypt, ecb_encrypt, CtrStream};
pub use ops::{
    add_round_key, inv_mix_columns, inv_shift_rows, inv_sub_bytes, mix_columns, shift_rows,
    sub_bytes,
};
pub use sbox::{INV_SBOX, SBOX};

/// Converts a 16-byte block to a `u128` (byte 0 is the most significant —
/// the order a hex string reads in).
#[must_use]
pub fn block_to_u128(block: [u8; 16]) -> u128 {
    u128::from_be_bytes(block)
}

/// Converts a `u128` back to a 16-byte block.
#[must_use]
pub fn u128_to_block(value: u128) -> [u8; 16] {
    value.to_be_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_u128_round_trip() {
        let block: [u8; 16] = core::array::from_fn(|i| i as u8);
        assert_eq!(u128_to_block(block_to_u128(block)), block);
        assert_eq!(
            block_to_u128([0x00, 0x11, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0x01]),
            0x0011_0000_0000_0000_0000_0000_0000_0001
        );
    }
}
