//! The AES S-box and its inverse, derived at compile time.

use crate::gf::ginv;

/// Applies the AES affine transformation over GF(2) to the bits of `b`:
/// `b'ᵢ = bᵢ ⊕ b₍ᵢ₊₄₎ ⊕ b₍ᵢ₊₅₎ ⊕ b₍ᵢ₊₆₎ ⊕ b₍ᵢ₊₇₎ ⊕ cᵢ` with c = 0x63.
const fn affine(b: u8) -> u8 {
    let mut out = 0u8;
    let mut i = 0;
    while i < 8 {
        let bit = ((b >> i)
            ^ (b >> ((i + 4) % 8))
            ^ (b >> ((i + 5) % 8))
            ^ (b >> ((i + 6) % 8))
            ^ (b >> ((i + 7) % 8))
            ^ (0x63 >> i))
            & 1;
        out |= bit << i;
        i += 1;
    }
    out
}

const fn build_sbox() -> [u8; 256] {
    let mut table = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        table[i] = affine(ginv(i as u8));
        i += 1;
    }
    table
}

const fn build_inv_sbox(sbox: &[u8; 256]) -> [u8; 256] {
    let mut table = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        table[sbox[i] as usize] = i as u8;
        i += 1;
    }
    table
}

/// The AES substitution box (FIPS-197 Fig. 7), derived from GF(2⁸)
/// inversion plus the affine transformation.
pub const SBOX: [u8; 256] = build_sbox();

/// The inverse substitution box.
pub const INV_SBOX: [u8; 256] = build_inv_sbox(&SBOX);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_entries() {
        // Spot values from FIPS-197 Figure 7.
        assert_eq!(SBOX[0x00], 0x63);
        assert_eq!(SBOX[0x01], 0x7c);
        assert_eq!(SBOX[0x53], 0xed);
        assert_eq!(SBOX[0xff], 0x16);
        assert_eq!(SBOX[0x10], 0xca);
        assert_eq!(INV_SBOX[0x63], 0x00);
        assert_eq!(INV_SBOX[0xed], 0x53);
    }

    #[test]
    fn sbox_is_a_permutation() {
        let mut seen = [false; 256];
        for &v in SBOX.iter() {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
    }

    #[test]
    fn inverse_inverts() {
        for i in 0..256 {
            assert_eq!(INV_SBOX[SBOX[i] as usize] as usize, i);
            assert_eq!(SBOX[INV_SBOX[i] as usize] as usize, i);
        }
    }

    #[test]
    fn sbox_has_no_fixed_points() {
        for i in 0..256u16 {
            assert_ne!(SBOX[i as usize] as u16, i);
            assert_ne!(SBOX[i as usize] as u16, i ^ 0xff);
        }
    }
}
