//! Simple block modes used by the workload generators: ECB (what the
//! accelerator's datapath computes per block) and CTR (a realistic stream
//! for multi-block messages).

use crate::cipher::{Aes, Block};

/// Encrypts a sequence of whole blocks in ECB mode.
///
/// ECB is what the accelerator's pipeline computes: one independent block
/// per cycle. Message-level chaining is the host's concern.
#[must_use]
pub fn ecb_encrypt(aes: &Aes, blocks: &[Block]) -> Vec<Block> {
    blocks.iter().map(|&b| aes.encrypt_block(b)).collect()
}

/// Decrypts a sequence of whole blocks in ECB mode.
#[must_use]
pub fn ecb_decrypt(aes: &Aes, blocks: &[Block]) -> Vec<Block> {
    blocks.iter().map(|&b| aes.decrypt_block(b)).collect()
}

/// A CTR-mode keystream generator.
///
/// ```
/// use aes_core::{Aes, CtrStream};
///
/// let aes = Aes::new_128([7u8; 16]);
/// let mut enc = CtrStream::new(aes.clone(), [0u8; 16]);
/// let mut dec = CtrStream::new(aes, [0u8; 16]);
/// let ct = enc.apply(b"attack at dawn!");
/// assert_eq!(dec.apply(&ct), b"attack at dawn!");
/// ```
#[derive(Debug, Clone)]
pub struct CtrStream {
    aes: Aes,
    counter: u128,
    buffer: Block,
    used: usize,
}

impl CtrStream {
    /// Creates a stream from a cipher and an initial counter block.
    #[must_use]
    pub fn new(aes: Aes, iv: Block) -> CtrStream {
        CtrStream {
            aes,
            counter: u128::from_be_bytes(iv),
            buffer: [0; 16],
            used: 16,
        }
    }

    /// XORs the keystream into `data`, returning the transformed bytes.
    /// Encryption and decryption are the same operation.
    #[must_use]
    pub fn apply(&mut self, data: &[u8]) -> Vec<u8> {
        data.iter()
            .map(|&b| {
                if self.used == 16 {
                    self.buffer = self.aes.encrypt_block(self.counter.to_be_bytes());
                    self.counter = self.counter.wrapping_add(1);
                    self.used = 0;
                }
                let k = self.buffer[self.used];
                self.used += 1;
                b ^ k
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecb_round_trips() {
        let aes = Aes::new_128([3u8; 16]);
        let blocks: Vec<Block> = (0..8u8).map(|i| [i; 16]).collect();
        assert_eq!(ecb_decrypt(&aes, &ecb_encrypt(&aes, &blocks)), blocks);
    }

    #[test]
    fn ecb_reveals_equal_blocks() {
        // The classic ECB weakness — two equal plaintext blocks give two
        // equal ciphertext blocks. (Why the host must layer a mode.)
        let aes = Aes::new_128([3u8; 16]);
        let ct = ecb_encrypt(&aes, &[[9u8; 16], [9u8; 16]]);
        assert_eq!(ct[0], ct[1]);
    }

    #[test]
    fn ctr_round_trips_odd_lengths() {
        let aes = Aes::new_256([5u8; 32]);
        let mut enc = CtrStream::new(aes.clone(), [1u8; 16]);
        let mut dec = CtrStream::new(aes, [1u8; 16]);
        let msg: Vec<u8> = (0..100u8).collect();
        assert_eq!(dec.apply(&enc.apply(&msg)), msg);
    }

    #[test]
    fn ctr_depends_on_iv() {
        let aes = Aes::new_128([5u8; 16]);
        let mut a = CtrStream::new(aes.clone(), [0u8; 16]);
        let mut b = CtrStream::new(aes, [1u8; 16]);
        assert_ne!(a.apply(&[0u8; 32]), b.apply(&[0u8; 32]));
    }
}
