//! The four AES round transformations and their inverses.
//!
//! The state is a 16-byte array in *block order* (the order bytes arrive on
//! the wire); FIPS-197's column-major state maps byte `i` of the block to
//! state column `i / 4`, row `i % 4` — with this layout ShiftRows permutes
//! indices `{0,5,10,15,…}` and MixColumns operates on each aligned 4-byte
//! chunk.

use crate::gf::gmul;
use crate::sbox::{INV_SBOX, SBOX};

/// Applies the S-box to every byte (SubBytes).
#[must_use]
pub fn sub_bytes(state: [u8; 16]) -> [u8; 16] {
    state.map(|b| SBOX[b as usize])
}

/// Applies the inverse S-box to every byte (InvSubBytes).
#[must_use]
pub fn inv_sub_bytes(state: [u8; 16]) -> [u8; 16] {
    state.map(|b| INV_SBOX[b as usize])
}

/// Rotates row `r` of the state left by `r` positions (ShiftRows).
#[must_use]
pub fn shift_rows(s: [u8; 16]) -> [u8; 16] {
    // Row r holds bytes {r, r+4, r+8, r+12}; output byte at column c, row r
    // comes from column (c + r) mod 4.
    let mut out = [0u8; 16];
    for r in 0..4 {
        for c in 0..4 {
            out[4 * c + r] = s[4 * ((c + r) % 4) + r];
        }
    }
    out
}

/// Inverse of [`shift_rows`].
#[must_use]
pub fn inv_shift_rows(s: [u8; 16]) -> [u8; 16] {
    let mut out = [0u8; 16];
    for r in 0..4 {
        for c in 0..4 {
            out[4 * ((c + r) % 4) + r] = s[4 * c + r];
        }
    }
    out
}

/// Mixes each column by the fixed polynomial {03}x³+{01}x²+{01}x+{02}
/// (MixColumns).
#[must_use]
pub fn mix_columns(s: [u8; 16]) -> [u8; 16] {
    let mut out = [0u8; 16];
    for c in 0..4 {
        let col = &s[4 * c..4 * c + 4];
        out[4 * c] = gmul(col[0], 2) ^ gmul(col[1], 3) ^ col[2] ^ col[3];
        out[4 * c + 1] = col[0] ^ gmul(col[1], 2) ^ gmul(col[2], 3) ^ col[3];
        out[4 * c + 2] = col[0] ^ col[1] ^ gmul(col[2], 2) ^ gmul(col[3], 3);
        out[4 * c + 3] = gmul(col[0], 3) ^ col[1] ^ col[2] ^ gmul(col[3], 2);
    }
    out
}

/// Inverse of [`mix_columns`] (multiplies by {0b}x³+{0d}x²+{09}x+{0e}).
#[must_use]
pub fn inv_mix_columns(s: [u8; 16]) -> [u8; 16] {
    let mut out = [0u8; 16];
    for c in 0..4 {
        let col = &s[4 * c..4 * c + 4];
        out[4 * c] =
            gmul(col[0], 0x0e) ^ gmul(col[1], 0x0b) ^ gmul(col[2], 0x0d) ^ gmul(col[3], 0x09);
        out[4 * c + 1] =
            gmul(col[0], 0x09) ^ gmul(col[1], 0x0e) ^ gmul(col[2], 0x0b) ^ gmul(col[3], 0x0d);
        out[4 * c + 2] =
            gmul(col[0], 0x0d) ^ gmul(col[1], 0x09) ^ gmul(col[2], 0x0e) ^ gmul(col[3], 0x0b);
        out[4 * c + 3] =
            gmul(col[0], 0x0b) ^ gmul(col[1], 0x0d) ^ gmul(col[2], 0x09) ^ gmul(col[3], 0x0e);
    }
    out
}

/// XORs the round key into the state (AddRoundKey).
#[must_use]
pub fn add_round_key(state: [u8; 16], round_key: [u8; 16]) -> [u8; 16] {
    core::array::from_fn(|i| state[i] ^ round_key[i])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_rows_round_trips() {
        let s: [u8; 16] = core::array::from_fn(|i| i as u8);
        assert_eq!(inv_shift_rows(shift_rows(s)), s);
    }

    #[test]
    fn shift_rows_moves_expected_bytes() {
        let s: [u8; 16] = core::array::from_fn(|i| i as u8);
        let out = shift_rows(s);
        // Row 0 unchanged.
        assert_eq!(out[0], 0);
        assert_eq!(out[4], 4);
        // Row 1 rotates by one column: position (col 0, row 1) gets byte
        // from col 1 row 1 = index 5.
        assert_eq!(out[1], 5);
        assert_eq!(out[5], 9);
        assert_eq!(out[13], 1);
        // Row 3 rotates by three.
        assert_eq!(out[3], 15);
    }

    #[test]
    fn mix_columns_matches_spec_example() {
        // FIPS-197 §5.1.3 test column: db 13 53 45 → 8e 4d a1 bc.
        let mut s = [0u8; 16];
        s[..4].copy_from_slice(&[0xdb, 0x13, 0x53, 0x45]);
        let out = mix_columns(s);
        assert_eq!(&out[..4], &[0x8e, 0x4d, 0xa1, 0xbc]);
    }

    #[test]
    fn mix_columns_round_trips() {
        let s: [u8; 16] = core::array::from_fn(|i| (i * 17 + 3) as u8);
        assert_eq!(inv_mix_columns(mix_columns(s)), s);
    }

    #[test]
    fn sub_bytes_round_trips() {
        let s: [u8; 16] = core::array::from_fn(|i| (i * 13) as u8);
        assert_eq!(inv_sub_bytes(sub_bytes(s)), s);
    }

    #[test]
    fn add_round_key_is_involutive() {
        let s: [u8; 16] = core::array::from_fn(|i| i as u8);
        let k: [u8; 16] = core::array::from_fn(|i| (255 - i) as u8);
        assert_eq!(add_round_key(add_round_key(s, k), k), s);
    }
}
