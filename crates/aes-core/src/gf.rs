//! GF(2⁸) arithmetic with the AES reduction polynomial
//! x⁸ + x⁴ + x³ + x + 1 (0x11b).

/// Multiplies by `x` in GF(2⁸) (the `xtime` primitive of FIPS-197 §4.2.1).
#[must_use]
pub const fn xtime(a: u8) -> u8 {
    let shifted = (a as u16) << 1;
    let reduced = if a & 0x80 != 0 {
        shifted ^ 0x1b
    } else {
        shifted
    };
    (reduced & 0xff) as u8
}

/// Full GF(2⁸) multiplication (Russian-peasant style).
#[must_use]
pub const fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut acc = 0u8;
    let mut i = 0;
    while i < 8 {
        if b & 1 != 0 {
            acc ^= a;
        }
        a = xtime(a);
        b >>= 1;
        i += 1;
    }
    acc
}

/// Multiplicative inverse in GF(2⁸), with `inv(0) = 0` as AES requires.
/// Computed as a^254 (Fermat's little theorem in GF(2⁸)).
#[must_use]
pub const fn ginv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    // a^254 by square-and-multiply: 254 = 0b11111110.
    let mut result = 1u8;
    let mut base = a;
    let mut exp = 254u16;
    while exp > 0 {
        if exp & 1 != 0 {
            result = gmul(result, base);
        }
        base = gmul(base, base);
        exp >>= 1;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xtime_matches_spec_example() {
        // FIPS-197 §4.2.1: {57} · {02} = {ae}, · {04} = {47}, · {08} = {8e}.
        assert_eq!(xtime(0x57), 0xae);
        assert_eq!(xtime(0xae), 0x47);
        assert_eq!(xtime(0x47), 0x8e);
    }

    #[test]
    fn gmul_matches_spec_example() {
        // FIPS-197 §4.2: {57} · {83} = {c1}.
        assert_eq!(gmul(0x57, 0x83), 0xc1);
        assert_eq!(gmul(0x57, 0x13), 0xfe);
    }

    #[test]
    fn gmul_commutative_and_distributive() {
        for a in [0u8, 1, 2, 0x53, 0x7f, 0x80, 0xff] {
            for b in [0u8, 1, 3, 0x10, 0xca, 0xff] {
                assert_eq!(gmul(a, b), gmul(b, a));
                for c in [0u8, 5, 0xaa] {
                    assert_eq!(gmul(a, b ^ c), gmul(a, b) ^ gmul(a, c));
                }
            }
        }
    }

    #[test]
    fn inverse_is_inverse() {
        for a in 1..=255u8 {
            assert_eq!(gmul(a, ginv(a)), 1, "inv({a:#x})");
        }
        assert_eq!(ginv(0), 0);
    }
}
