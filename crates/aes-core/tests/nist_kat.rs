//! NIST AESAVS known-answer tests (GFSbox, KeySbox, VarTxt, VarKey
//! samples) for all three key sizes, the AESAVS ECB Monte Carlo
//! procedure in both directions, plus multi-block consistency checks.

use aes_core::{ecb_encrypt, Aes};

fn hex(s: &str) -> Vec<u8> {
    (0..s.len() / 2)
        .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).expect("hex"))
        .collect()
}

fn block(s: &str) -> [u8; 16] {
    hex(s).try_into().expect("16 bytes")
}

fn check(key_hex: &str, pt_hex: &str, ct_hex: &str) {
    let aes = Aes::new(&hex(key_hex)).expect("valid key");
    let pt = block(pt_hex);
    let ct = block(ct_hex);
    assert_eq!(aes.encrypt_block(pt), ct, "encrypt {pt_hex}");
    assert_eq!(aes.decrypt_block(ct), pt, "decrypt {ct_hex}");
}

#[test]
fn aesavs_gfsbox_128() {
    let key = "00000000000000000000000000000000";
    check(
        key,
        "f34481ec3cc627bacd5dc3fb08f273e6",
        "0336763e966d92595a567cc9ce537f5e",
    );
    check(
        key,
        "9798c4640bad75c7c3227db910174e72",
        "a9a1631bf4996954ebc093957b234589",
    );
    check(
        key,
        "96ab5c2ff612d9dfaae8c31f30c42168",
        "ff4f8391a6a40ca5b25d23bedd44a597",
    );
    check(
        key,
        "6a118a874519e64e9963798a503f1d35",
        "dc43be40be0e53712f7e2bf5ca707209",
    );
    check(
        key,
        "cb9fceec81286ca3e989bd979b0cb284",
        "92beedab1895a94faa69b632e5cc47ce",
    );
    check(
        key,
        "b26aeb1874e47ca8358ff22378f09144",
        "459264f4798f6a78bacb89c15ed3d601",
    );
    check(
        key,
        "58c8e00b2631686d54eab84b91f0aca1",
        "08a4e2efec8a8e3312ca7460b9040bbf",
    );
}

#[test]
fn aesavs_keysbox_128() {
    let pt = "00000000000000000000000000000000";
    check(
        "10a58869d74be5a374cf867cfb473859",
        pt,
        "6d251e6944b051e04eaa6fb4dbf78465",
    );
    check(
        "caea65cdbb75e9169ecd22ebe6e54675",
        pt,
        "6e29201190152df4ee058139def610bb",
    );
    check(
        "a2e2fa9baf7d20822ca9f0542f764a41",
        pt,
        "c3b44b95d9d2f25670eee9a0de099fa3",
    );
    check(
        "b6364ac4e1de1e285eaf144a2415f7a0",
        pt,
        "5d9b05578fc944b3cf1ccf0e746cd581",
    );
    check(
        "64cf9c7abc50b888af65f49d521944b2",
        pt,
        "f7efc89d5dba578104016ce5ad659c05",
    );
}

#[test]
fn aesavs_vartxt_varkey_128() {
    check(
        "00000000000000000000000000000000",
        "80000000000000000000000000000000",
        "3ad78e726c1ec02b7ebfe92b23d9ec34",
    );
    check(
        "80000000000000000000000000000000",
        "00000000000000000000000000000000",
        "0edd33d3c621e546455bd8ba1418bec8",
    );
    check(
        "ffffffffffffffffffffffffffffffff",
        "00000000000000000000000000000000",
        "a1f6258c877d5fcd8964484538bfc92c",
    );
}

#[test]
fn aesavs_gfsbox_192() {
    let key = "000000000000000000000000000000000000000000000000";
    check(
        key,
        "1b077a6af4b7f98229de786d7516b639",
        "275cfc0413d8ccb70513c3859b1d0f72",
    );
    check(
        key,
        "9c2d8842e5f48f57648205d39a239af1",
        "c9b8135ff1b5adc413dfd053b21bd96d",
    );
    check(
        key,
        "bff52510095f518ecca60af4205444bb",
        "4a3650c3371ce2eb35e389a171427440",
    );
}

#[test]
fn aesavs_gfsbox_256() {
    let key = "0000000000000000000000000000000000000000000000000000000000000000";
    check(
        key,
        "014730f80ac625fe84f026c60bfd547d",
        "5c9d844ed46f9885085e5d6a4f94c7d7",
    );
    check(
        key,
        "0b24af36193ce4665f2825d7b4749c98",
        "a9ff75bd7cf6613d3731c77c3b6d0c04",
    );
    check(
        key,
        "761c1fe41a18acf20d241650611d90f1",
        "623a52fcea5d443e48d9181ab32c7421",
    );
}

#[test]
fn aesavs_keysbox_192() {
    let pt = "00000000000000000000000000000000";
    check(
        "e9f065d7c13573587f7875357dfbb16c53489f6a4bd0f7cd",
        pt,
        "0956259c9cd5cfd0181cca53380cde06",
    );
    check(
        "15d20f6ebc7e649fd95b76b107e6daba967c8a9484797f29",
        pt,
        "8e4e18424e591a3d5b6f0876f16f8594",
    );
}

#[test]
fn aesavs_keysbox_256() {
    let pt = "00000000000000000000000000000000";
    check(
        "c47b0294dbbbee0fec4757f22ffeee3587ca4730c3d33b691df38bab076bc558",
        pt,
        "46f2fb342d6f0ab477476fc501242c5f",
    );
    check(
        "28d46cffa158533194214a91e712fc2b45b518076675affd910edeca5f41ac64",
        pt,
        "4bf3b0a69aeb6657794f2901b1440ad4",
    );
}

/// One outer round of the AESAVS ECB Monte Carlo procedure: 1000 chained
/// block operations (`OUT[j]` feeds `IN[j+1]`), then the key is xored
/// with the tail of `OUT[998] ‖ OUT[999]` sized to the key — the AESAVS
/// §6.4.1 feedback rule, which degenerates to `key ^= OUT[999]` for
/// 128-bit keys but pulls in `OUT[998]` bytes for 192/256.
fn mct_round(key: &mut [u8], text: [u8; 16], decrypt: bool) -> [u8; 16] {
    let aes = Aes::new(key).expect("valid key");
    let mut prev = [0u8; 16];
    let mut x = text;
    for _ in 0..1000 {
        prev = x;
        x = if decrypt {
            aes.decrypt_block(x)
        } else {
            aes.encrypt_block(x)
        };
    }
    let feedback: Vec<u8> = prev.iter().chain(x.iter()).copied().collect();
    let tail = &feedback[feedback.len() - key.len()..];
    for (k, t) in key.iter_mut().zip(tail) {
        *k ^= t;
    }
    x
}

/// Runs `outer` MCT rounds from the all-zero seed and returns the last
/// round's result.
fn mct_chain(key_bytes: usize, outer: usize, decrypt: bool) -> [u8; 16] {
    let mut key = vec![0u8; key_bytes];
    let mut text = [0u8; 16];
    for _ in 0..outer {
        text = mct_round(&mut key, text, decrypt);
    }
    text
}

// The pinned chain values below are *chain-derived*: computed with this
// crate's implementation (itself anchored to the official single-block
// AESAVS vectors above and the FIPS-197 worked example) rather than
// transcribed from the ECBMCT*.rsp files, which the offline build
// environment cannot fetch. They freeze today's behaviour so any future
// key-schedule or round-function regression — including ones that only
// show up under iteration — breaks loudly. The full AESAVS run is 100
// outer rounds; ten keeps the debug-profile suite fast while still
// exercising the key-feedback rule repeatedly.

#[test]
fn aesavs_mct_ecb_encrypt_chain() {
    for (key_bytes, round0, round9) in [
        (
            16,
            "adc883cf76c234032f31b33734aa4b51",
            "df47d38fcffa458303c603e82617a571",
        ),
        (
            24,
            "96bd35dd817a2d381a66d6f2c7bec1a9",
            "de1caac949671457be741befc38fddef",
        ),
        (
            32,
            "709a586288928e038d0fb13c13bceade",
            "e1d225d9a1ebc352017b9a2a868aef4c",
        ),
    ] {
        assert_eq!(
            mct_chain(key_bytes, 1, false),
            block(round0),
            "MCT-{} encrypt round 0",
            key_bytes * 8
        );
        assert_eq!(
            mct_chain(key_bytes, 10, false),
            block(round9),
            "MCT-{} encrypt round 9",
            key_bytes * 8
        );
    }
}

#[test]
fn aesavs_mct_ecb_decrypt_chain() {
    for (key_bytes, round0, round9) in [
        (
            16,
            "53b1766bc7f55aab974d05c2edd90856",
            "eeeb615cb942fb6dd77367d53f56c39f",
        ),
        (
            24,
            "b25486a65fd9f6fddd0a5d858c0b0497",
            "1955d70f6b66694a410fc50cab44cf2c",
        ),
        (
            32,
            "33015ca1b953ac7b240d73c72f0b47be",
            "6ffb5d07a7d6a0e4bc3f2605e5ec526e",
        ),
    ] {
        assert_eq!(
            mct_chain(key_bytes, 1, true),
            block(round0),
            "MCT-{} decrypt round 0",
            key_bytes * 8
        );
        assert_eq!(
            mct_chain(key_bytes, 10, true),
            block(round9),
            "MCT-{} decrypt round 9",
            key_bytes * 8
        );
    }
}

#[test]
fn mct_encrypt_chain_inverts_under_decrypt() {
    // Structural cross-check that needs no external pin: a round's
    // 1000-deep encrypt chain must unwind exactly under 1000 decrypts
    // with the same key, for every key size.
    for key_bytes in [16usize, 24, 32] {
        let key = vec![0x5au8; key_bytes];
        let aes = Aes::new(&key).expect("valid key");
        let seed = block("f34481ec3cc627bacd5dc3fb08f273e6");
        let mut x = seed;
        for _ in 0..1000 {
            x = aes.encrypt_block(x);
        }
        for _ in 0..1000 {
            x = aes.decrypt_block(x);
        }
        assert_eq!(
            x,
            seed,
            "E^1000 then D^1000 with a {}-bit key",
            key_bytes * 8
        );
    }
}

#[test]
fn multi_block_ecb_is_per_block() {
    // ECB of a multi-block message equals per-block encryption of each.
    let aes = Aes::new_128(block("10a58869d74be5a374cf867cfb473859"));
    let blocks = [
        block("00000000000000000000000000000000"),
        block("f34481ec3cc627bacd5dc3fb08f273e6"),
        block("ffffffffffffffffffffffffffffffff"),
    ];
    let out = ecb_encrypt(&aes, &blocks);
    for (i, b) in blocks.iter().enumerate() {
        assert_eq!(out[i], aes.encrypt_block(*b));
    }
}
