//! Property-based tests of the AES implementation.

use aes_core::{
    add_round_key, block_to_u128, inv_mix_columns, inv_shift_rows, inv_sub_bytes, mix_columns,
    shift_rows, sub_bytes, u128_to_block, Aes, CtrStream,
};
use proptest::prelude::*;

fn arb_block() -> impl Strategy<Value = [u8; 16]> {
    any::<[u8; 16]>()
}

proptest! {
    #[test]
    fn encrypt_decrypt_identity_128(key in any::<[u8; 16]>(), pt in arb_block()) {
        let aes = Aes::new_128(key);
        prop_assert_eq!(aes.decrypt_block(aes.encrypt_block(pt)), pt);
    }

    #[test]
    fn encrypt_decrypt_identity_192(key in any::<[u8; 24]>(), pt in arb_block()) {
        let aes = Aes::new_192(key);
        prop_assert_eq!(aes.decrypt_block(aes.encrypt_block(pt)), pt);
    }

    #[test]
    fn encrypt_decrypt_identity_256(key in any::<[u8; 32]>(), pt in arb_block()) {
        let aes = Aes::new_256(key);
        prop_assert_eq!(aes.decrypt_block(aes.encrypt_block(pt)), pt);
    }

    #[test]
    fn encryption_is_injective(key in any::<[u8; 16]>(), a in arb_block(), b in arb_block()) {
        let aes = Aes::new_128(key);
        if a != b {
            prop_assert_ne!(aes.encrypt_block(a), aes.encrypt_block(b));
        }
    }

    #[test]
    fn round_ops_invert(s in arb_block()) {
        prop_assert_eq!(inv_sub_bytes(sub_bytes(s)), s);
        prop_assert_eq!(inv_shift_rows(shift_rows(s)), s);
        prop_assert_eq!(inv_mix_columns(mix_columns(s)), s);
    }

    #[test]
    fn add_round_key_self_inverse(s in arb_block(), k in arb_block()) {
        prop_assert_eq!(add_round_key(add_round_key(s, k), k), s);
    }

    #[test]
    fn mix_columns_is_linear(a in arb_block(), b in arb_block()) {
        let xored: [u8; 16] = core::array::from_fn(|i| a[i] ^ b[i]);
        let lhs = mix_columns(xored);
        let rhs: [u8; 16] = {
            let ma = mix_columns(a);
            let mb = mix_columns(b);
            core::array::from_fn(|i| ma[i] ^ mb[i])
        };
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn trace_is_consistent(key in any::<[u8; 16]>(), pt in arb_block()) {
        let aes = Aes::new_128(key);
        let trace = aes.encrypt_trace(pt);
        prop_assert_eq!(trace.len(), 11);
        prop_assert_eq!(trace[10], aes.encrypt_block(pt));
    }

    #[test]
    fn block_u128_round_trip(b in arb_block()) {
        prop_assert_eq!(u128_to_block(block_to_u128(b)), b);
    }

    #[test]
    fn ctr_round_trips(key in any::<[u8; 16]>(), iv in arb_block(), msg in proptest::collection::vec(any::<u8>(), 0..200)) {
        let aes = Aes::new_128(key);
        let mut enc = CtrStream::new(aes.clone(), iv);
        let mut dec = CtrStream::new(aes, iv);
        prop_assert_eq!(dec.apply(&enc.apply(&msg)), msg);
    }

    #[test]
    fn avalanche_flips_many_bits(key in any::<[u8; 16]>(), pt in arb_block(), bit in 0usize..128) {
        // Flipping one plaintext bit should change roughly half the
        // ciphertext bits; assert a loose lower bound (> 16 of 128).
        let aes = Aes::new_128(key);
        let mut flipped = pt;
        flipped[bit / 8] ^= 1 << (bit % 8);
        let c0 = block_to_u128(aes.encrypt_block(pt));
        let c1 = block_to_u128(aes.encrypt_block(flipped));
        prop_assert!((c0 ^ c1).count_ones() > 16);
    }
}
