//! Monotonicity of the PR-4 bound plane in the downgrade set.
//!
//! The conservative bound plane treats a `Declassify` node as the one
//! place a wire's confidentiality bound may step *down*. Removing a
//! downgrade edge from a design (rerouting its uses straight to the
//! still-secret data) must therefore never *lower* any wire's bound —
//! every node and memory can only stay put or become more confidential.
//! If an edit that deletes a release ever makes the analysis claim some
//! wire got *more* public, the transfer function is unsound (it would be
//! crediting a release that no longer exists).
//!
//! The designs are random members of the fuzzer's generated family
//! ([`gen_spec`]/[`build_design`]), which reaches the protected shape
//! (nonmalleable declassified output) on most draws. Lowering appends
//! synthesised nodes after the design's own, so the design-id prefix of
//! both bound planes lines up node-for-node.

use fuzz::{build_design, gen_spec, FuzzRng};
use hdl::{Design, Node, NodeId, Rewriter};
use ifc_check::dataflow::bound_plane;
use proptest::prelude::*;

/// Every declassify node in the design, paired with its data operand.
fn declassify_sites(design: &Design) -> Vec<(NodeId, NodeId)> {
    design
        .node_ids()
        .filter_map(|id| match design.node(id) {
            Node::Declassify { data, .. } => Some((id, *data)),
            _ => None,
        })
        .collect()
}

proptest! {
    // Each case costs several lower + fixpoint rounds; a couple dozen
    // random designs already cover every spec shape the generator has.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn removing_a_downgrade_never_lowers_any_bound(seed in any::<u64>()) {
        let spec = gen_spec(&mut FuzzRng::new(seed));
        let design = build_design(&spec);
        let base_net = design.lower().expect("generated design lowers");
        let base = bound_plane(&base_net);

        for (site, data) in declassify_sites(&design) {
            let mut rw = Rewriter::new(&design);
            rw.replace_uses(site, data);
            let stripped = rw.finish();
            let net = stripped.lower().expect("stripped design lowers");
            let plane = bound_plane(&net);

            // The design's own node ids are a stable prefix of both
            // lowered netlists; synthesised nodes past it need not
            // correspond.
            for id in design.node_ids() {
                let before = base.node(id);
                let after = plane.node(id);
                prop_assert!(
                    before.conf.flows_to(after.conf),
                    "seed {seed}: stripping {} lowered the bound of {} ({:?} -> {:?})",
                    design.describe(site),
                    design.describe(id),
                    before.conf,
                    after.conf
                );
            }
            for (mem, (before, after)) in base.mems.iter().zip(&plane.mems).enumerate() {
                prop_assert!(
                    before.conf.flows_to(after.conf),
                    "seed {seed}: stripping {} lowered the bound of memory {mem} \
                     ({:?} -> {:?})",
                    design.describe(site),
                    before.conf,
                    after.conf
                );
            }
        }
    }
}
