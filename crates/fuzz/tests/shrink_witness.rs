//! The acceptance-criterion shrink: a seeded known-bad input (the
//! annotation spoof buried under noise surgery and noise traffic) must
//! shrink, under the *real* pipeline predicate, to a 1-minimal witness —
//! every single remaining op is necessary for the invariant-1 failure to
//! reproduce.

use fuzz::{
    gen_input, is_one_minimal, run_input, shrink, size, AttackOp, FuzzInput, ProtectedReplayer,
    SurgeryOp, TenantProgram,
};

#[test]
fn planted_known_bad_shrinks_to_a_one_minimal_witness() {
    let replayer = ProtectedReplayer::new();

    // The spoof plus guaranteed traffic, padded with droppable noise.
    let mut planted = gen_input(0xbad_c0de);
    planted.surgery.truncate(2);
    planted.surgery.push(SurgeryOp::DeadConst { wide: false });
    planted
        .surgery
        .push(SurgeryOp::SpoofInputLabel { input: 0 });
    planted.programs = vec![TenantProgram {
        ops: vec![
            AttackOp::Idle { cycles: 3 },
            AttackOp::Submit { slot: 0, data: 9 },
            AttackOp::WriteCfg { value: 2 },
        ],
    }];
    planted.spec.tenants = 1;
    planted.spec.normalize();

    let mut fails = |candidate: &FuzzInput| !run_input(candidate, &replayer).invariant1.is_empty();
    assert!(fails(&planted), "the planted spoof must break invariant 1");

    let minimal = shrink(&planted, 200, &mut fails);
    assert!(fails(&minimal), "shrinking must preserve the failure");
    assert!(
        size(&minimal) < size(&planted),
        "shrinking must make progress ({} -> {})",
        size(&planted),
        size(&minimal)
    );
    assert!(
        is_one_minimal(&minimal, &mut fails),
        "the shrunk witness must be 1-minimal: {minimal:?}"
    );

    // The minimal witness is the spoof itself plus a single submission:
    // one surgery op, one program op.
    assert_eq!(minimal.surgery.len(), 1);
    assert!(minimal.surgery[0].is_known_bad());
    let total_ops: usize = minimal.programs.iter().map(|p| p.ops.len()).sum();
    assert_eq!(total_ops, 1);
}
