//! Property tests for [`hdl::Rewriter`] surgery on generator-produced
//! designs: whatever op list the fuzzer applies, the result must stay a
//! well-formed design — no dangling [`NodeId`]s anywhere the netlist can
//! reference one — and the deterministic topological order must survive
//! (re-derivation agrees, and an identical rebuild reproduces it
//! bit-for-bit, which is what the compiled simulator's tape layout and
//! the lint fixpoint both assume). The render leg checks the Verilog
//! backend: surgered netlists still print, and identically so.
//!
//! [`NodeId`]: hdl::NodeId

use fuzz::{apply_surgery, build_design, gen_spec, FuzzRng, SurgeryOp};
use hdl::Netlist;
use proptest::prelude::*;

/// Decodes one proptest tuple into a surgery op, covering all eight
/// classes including the seeded known-bad annotation spoof (the
/// well-formedness properties must hold for it too).
fn decode_op(class: u8, site: u8, flag: bool) -> SurgeryOp {
    match class % 8 {
        0 => SurgeryOp::StuckTagJoin { site, keep_b: flag },
        1 => SurgeryOp::ConstGuard { site, allow: flag },
        2 => SurgeryOp::WidenDeclassify { site },
        3 => SurgeryOp::DropMux { site, keep_t: flag },
        4 => SurgeryOp::RerouteOutput {
            out: site,
            back: site / 2,
        },
        5 => SurgeryOp::RelabelOutput { out: site },
        6 => SurgeryOp::DeadConst { wide: flag },
        _ => SurgeryOp::SpoofInputLabel { input: site },
    }
}

/// Every `NodeId` the netlist can hand out must index a real node: the
/// combinational dependencies of every node, every register's next
/// pointer, every output port driver, and every memory write port.
fn assert_no_dangling_ids(net: &Netlist) {
    let n = net.node_count();
    for id in net.node_ids() {
        for dep in net.comb_dependencies(id) {
            assert!(dep.index() < n, "{id:?} depends on out-of-range {dep:?}");
        }
    }
    for (i, next) in net.reg_next.iter().enumerate() {
        if let Some(next) = next {
            assert!(next.index() < n, "reg {i} next points at {next:?}");
        }
    }
    for port in &net.outputs {
        assert!(port.node.index() < n, "output {} dangles", port.name);
    }
    for wp in &net.write_ports {
        for src in [wp.data, wp.addr, wp.en] {
            assert!(src.index() < n, "write port references {src:?}");
        }
        assert!(
            wp.mem.index() < net.mems.len(),
            "write port names a bad mem"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn surgery_never_dangles_and_topo_stays_deterministic(
        seed in any::<u64>(),
        raw_ops in proptest::collection::vec((0u8..8, any::<u8>(), any::<bool>()), 0..6),
    ) {
        let spec = gen_spec(&mut FuzzRng::new(seed));
        let ops: Vec<SurgeryOp> = raw_ops
            .iter()
            .map(|&(c, s, f)| decode_op(c, s, f))
            .collect();

        let surgered = apply_surgery(&build_design(&spec), &ops);
        let net = surgered.lower().expect("surgered design lowers");
        assert_no_dangling_ids(&net);

        // Topo validity: every node after its combinational dependencies.
        let order: Vec<_> = net.topo_order().collect();
        prop_assert_eq!(order.len(), net.node_count());
        let mut pos = vec![usize::MAX; net.node_count()];
        for (i, id) in order.iter().enumerate() {
            pos[id.index()] = i;
        }
        for id in net.node_ids() {
            for dep in net.comb_dependencies(id) {
                prop_assert!(
                    pos[dep.index()] < pos[id.index()],
                    "{:?} must precede {:?}", dep, id
                );
            }
        }

        // Determinism: re-derivation agrees with the lowering-time order,
        // and an independent rebuild + identical surgery reproduces both
        // the order and the rendered Verilog bit-for-bit.
        let rederived = net.toposort().expect("surgered netlist stays acyclic");
        prop_assert_eq!(&rederived, &order);
        let again = apply_surgery(&build_design(&spec), &ops)
            .lower()
            .expect("identical surgery lowers identically");
        prop_assert_eq!(&again.topo, &order);
        prop_assert_eq!(hdl::verilog::to_verilog(&again), hdl::verilog::to_verilog(&net));
    }
}
