//! The checked-in corpus is a deterministic regression gate: every
//! minimized witness in `corpus/` must replay to its filename's
//! expectation (`bad-*` still fails fuzz invariant 1, everything else
//! holds both invariants), and two replays must agree bit-for-bit on the
//! coverage map — the property the CI `fuzz-guard` job builds on.

use std::path::{Path, PathBuf};

use fuzz::{load_corpus, replay_corpus, ProtectedReplayer};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../corpus")
}

#[test]
fn checked_in_corpus_replays_green_and_deterministically() {
    let entries = load_corpus(&corpus_dir()).expect("checked-in corpus loads");
    assert!(!entries.is_empty(), "corpus must not be empty");
    assert!(
        entries.iter().any(fuzz::CorpusEntry::expects_failure),
        "corpus must carry at least one known-bad (bad-*) witness"
    );

    let replayer = ProtectedReplayer::new();
    let a = replay_corpus(&entries, &replayer);
    assert!(a.ok(), "corpus expectation mismatches: {:?}", a.mismatches);
    assert!(!a.coverage.is_empty());

    let b = replay_corpus(&entries, &replayer);
    assert_eq!(
        a.coverage.fingerprint(),
        b.coverage.fingerprint(),
        "corpus replay coverage must be deterministic"
    );
    assert_eq!(a.kills, b.kills, "corpus kill histogram must be stable");
}

/// Replaying the corpus with the prover stage enabled may only move an
/// input's kill attribution *earlier* (lint/static/counterexample) —
/// never later: the prover adds a conviction point, it cannot absolve.
/// The prover-stage coverage (and therefore its fingerprint) must also
/// stay deterministic run to run.
#[test]
fn prover_stage_only_moves_attribution_earlier() {
    use fuzz::{run_input, run_input_with, PipelineConfig};

    let entries = load_corpus(&corpus_dir()).expect("checked-in corpus loads");
    let replayer = ProtectedReplayer::new();
    let cfg = PipelineConfig { prove: true };

    let mut proved_fingerprint = 0u64;
    for entry in &entries {
        let plain = run_input(&entry.input, &replayer);
        let proved = run_input_with(&entry.input, &replayer, &cfg);
        assert!(
            proved.kill <= plain.kill,
            "{}: prover moved attribution later ({} -> {})",
            entry.name,
            plain.kill.key(),
            proved.kill.key()
        );
        assert!(
            proved.coverage.events.is_superset(&plain.coverage.events) || proved.kill < plain.kill,
            "{}: prover run lost coverage without re-attributing",
            entry.name
        );
        proved_fingerprint ^= proved
            .coverage
            .events
            .iter()
            .fold(0u64, |acc, e| acc.rotate_left(7) ^ e);
    }

    // Determinism of the prover-enabled replay, fingerprint included.
    let mut again = 0u64;
    for entry in &entries {
        let proved = run_input_with(&entry.input, &replayer, &cfg);
        again ^= proved
            .coverage
            .events
            .iter()
            .fold(0u64, |acc, e| acc.rotate_left(7) ^ e);
    }
    assert_eq!(
        proved_fingerprint, again,
        "prover-stage corpus coverage must be deterministic"
    );
}
