//! The checked-in corpus is a deterministic regression gate: every
//! minimized witness in `corpus/` must replay to its filename's
//! expectation (`bad-*` still fails fuzz invariant 1, everything else
//! holds both invariants), and two replays must agree bit-for-bit on the
//! coverage map — the property the CI `fuzz-guard` job builds on.

use std::path::{Path, PathBuf};

use fuzz::{load_corpus, replay_corpus, ProtectedReplayer};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../corpus")
}

#[test]
fn checked_in_corpus_replays_green_and_deterministically() {
    let entries = load_corpus(&corpus_dir()).expect("checked-in corpus loads");
    assert!(!entries.is_empty(), "corpus must not be empty");
    assert!(
        entries.iter().any(fuzz::CorpusEntry::expects_failure),
        "corpus must carry at least one known-bad (bad-*) witness"
    );

    let replayer = ProtectedReplayer::new();
    let a = replay_corpus(&entries, &replayer);
    assert!(a.ok(), "corpus expectation mismatches: {:?}", a.mismatches);
    assert!(!a.coverage.is_empty());

    let b = replay_corpus(&entries, &replayer);
    assert_eq!(
        a.coverage.fingerprint(),
        b.coverage.fingerprint(),
        "corpus replay coverage must be deterministic"
    );
    assert_eq!(a.kills, b.kills, "corpus kill histogram must be stable");
}
