//! One fuzz input through the whole enforcement stack.
//!
//! Stage order mirrors the deployment story: netlist lint → static IFC
//! check → runtime tracking on the generated engine → replay against the
//! protected accelerator. Every stage *always* runs (a lint kill does
//! not skip runtime tracking — later-stage coverage on statically-dead
//! inputs is exactly how the fuzzer learns which faults only dynamic
//! enforcement catches); the kill stage records the *first* stage that
//! objected.
//!
//! The two fuzz invariants are evaluated here:
//!
//! 1. **Bound-plane domination** — the static bound plane of the mutated
//!    netlist must dominate every runtime label either simulator surface
//!    observed ([`ifc_check`'s cross-check][crosscheck]).
//! 2. **No protected leak** — replaying the input's attack programs on
//!    the real protected accelerator must not deliver master-key
//!    ciphertext or debug reads to any tenant, under any [`TrackMode`].
//!
//! [crosscheck]: ifc_check::dataflow::passes::crosscheck_findings
//! [`TrackMode`]: sim::TrackMode

use ifc_check::dataflow::{bound_plane, passes::crosscheck_findings};
use ifc_check::{run_static_passes, LintConfig, Severity};

use crate::coverage::{InputCoverage, KillStage};
use crate::exec::run_generated;
use crate::input::FuzzInput;
use crate::prove::{fuzz_prove_options, prove_stage};
use crate::replay::ProtectedReplayer;
use crate::spec::build_design;
use crate::surgery::apply_surgery;

/// Which optional stages a pipeline run enables.
#[derive(Debug, Clone, Default)]
pub struct PipelineConfig {
    /// Run the noninterference prover (role-based contract) between the
    /// static check and runtime tracking. Off by default: the prover is
    /// the one stage whose cost is input-shaped, so throughput-oriented
    /// campaigns opt in per run.
    pub prove: bool,
}

/// The result of running one input through the stack.
#[derive(Debug, Clone)]
pub struct InputReport {
    /// First stage that objected.
    pub kill: KillStage,
    /// Every coverage event the input produced.
    pub coverage: InputCoverage,
    /// Invariant-1 failures (bound-plane cross-check findings). Empty
    /// means the invariant held.
    pub invariant1: Vec<String>,
    /// Invariant-2 failures (protected-replay leaks). Empty means the
    /// invariant held.
    pub invariant2: Vec<String>,
    /// Error-severity lint findings.
    pub lint_errors: usize,
    /// Static checker violations.
    pub static_violations: usize,
    /// Runtime violations across both generated-engine surfaces.
    pub runtime_violations: usize,
    /// Oracle-confirmed prover counterexamples (0 when the prover stage
    /// was not enabled).
    pub counterexamples: usize,
}

impl InputReport {
    /// Whether both fuzz invariants held.
    #[must_use]
    pub fn invariants_hold(&self) -> bool {
        self.invariant1.is_empty() && self.invariant2.is_empty()
    }
}

/// Runs one input through lint, static check, runtime tracking, and the
/// protected replay. Deterministic and non-panicking for every input the
/// generator, the mutator, or the corpus codec can produce.
#[must_use]
pub fn run_input(input: &FuzzInput, replayer: &ProtectedReplayer) -> InputReport {
    run_input_with(input, replayer, &PipelineConfig::default())
}

/// [`run_input`] with optional stages configured — notably the prover
/// kill stage, which sits between the static check and runtime
/// tracking: an oracle-confirmed counterexample convicts the design
/// without executing it, so attribution can only move *earlier* when
/// the stage is enabled.
#[must_use]
pub fn run_input_with(
    input: &FuzzInput,
    replayer: &ProtectedReplayer,
    pipeline_cfg: &PipelineConfig,
) -> InputReport {
    let mut coverage = InputCoverage::new();
    let design = apply_surgery(&build_design(&input.spec), &input.surgery);

    let Ok(net) = design.lower() else {
        // Unreachable for the shipped fault model (all classes preserve
        // lowerability), but a corpus file is attacker-controlled input:
        // degrade to a coverage event instead of a panic.
        coverage
            .events
            .insert(crate::coverage::fnv64("build:failed"));
        coverage.kill(KillStage::Lint);
        return InputReport {
            kill: KillStage::Lint,
            coverage,
            invariant1: Vec::new(),
            invariant2: Vec::new(),
            lint_errors: 0,
            static_violations: 0,
            runtime_violations: 0,
            counterexamples: 0,
        };
    };

    // Stage 1: lint.
    let cfg = LintConfig::new();
    let lint = run_static_passes(Some(&design), &net, &cfg);
    coverage.lint(&lint);
    let lint_errors = lint.count_at(Severity::Error);

    // Stage 2: static IFC check.
    let check = ifc_check::check(&design);
    coverage.static_check(&check);
    let static_violations = check.violations.len();

    // Stage 2½ (opt-in): the noninterference prover under the role
    // contract. Only an oracle-confirmed counterexample convicts;
    // unreplayed models and budget `unknown`s are coverage signal only.
    let counterexamples = if pipeline_cfg.prove {
        let prove_report = prove_stage(&net, &fuzz_prove_options());
        coverage.prove(&prove_report);
        prove_report
            .counterexamples()
            .iter()
            .filter(|r| {
                matches!(
                    &r.verdict,
                    ifc_check::prover::Verdict::Counterexample(cex) if cex.confirmed
                )
            })
            .count()
    } else {
        0
    };

    // Stage 3: runtime tracking on the generated engine.
    let outcome = run_generated(&net, &input.spec, &input.programs);
    coverage.runtime(&outcome.violations);
    coverage.plane(&net, &outcome.observed);
    coverage.out_tags(&outcome.out_tag_bits);
    let runtime_violations = outcome.violations.len();

    // Invariant 1: the static bound plane dominates everything observed.
    let bound = bound_plane(&net);
    let invariant1: Vec<String> = crosscheck_findings(&net, &bound, &outcome.observed, &cfg)
        .into_iter()
        .map(|f| f.to_string())
        .collect();

    // Stage 4: replay the attack programs on the protected accelerator.
    let replay = replayer.replay(&input.programs);
    coverage.replay(&replay);
    let invariant2 = replay.leaks();
    let replay_blocked = replay
        .modes
        .iter()
        .any(|m| !m.drained || m.stalled_submits > 0);

    let kill = if lint_errors > 0 {
        KillStage::Lint
    } else if static_violations > 0 {
        KillStage::Static
    } else if counterexamples > 0 {
        KillStage::Counterexample
    } else if runtime_violations > 0 {
        KillStage::Runtime
    } else if replay_blocked {
        KillStage::ReplayBlocked
    } else {
        KillStage::Clean
    };
    coverage.kill(kill);

    InputReport {
        kill,
        coverage,
        invariant1,
        invariant2,
        lint_errors,
        static_violations,
        runtime_violations,
        counterexamples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::gen_input;
    use crate::surgery::SurgeryOp;

    #[test]
    fn random_inputs_keep_both_invariants() {
        let replayer = ProtectedReplayer::new();
        for seed in 0..4u64 {
            let input = gen_input(seed);
            let report = run_input(&input, &replayer);
            assert!(
                report.invariants_hold(),
                "seed {seed} broke an invariant: i1={:?} i2={:?}",
                report.invariant1,
                report.invariant2
            );
            assert!(!report.coverage.events.is_empty());
        }
    }

    #[test]
    fn the_spoofed_annotation_breaks_invariant_one() {
        let replayer = ProtectedReplayer::new();
        let mut input = gen_input(0x5eed);
        input.surgery = vec![SurgeryOp::SpoofInputLabel { input: 0 }];
        // Guarantee traffic on the spoofed data port: one submission
        // carries the tenant's real label onto the lying annotation.
        input.programs = vec![crate::program::TenantProgram {
            ops: vec![crate::program::AttackOp::Submit { slot: 0, data: 1 }],
        }];
        let report = run_input(&input, &replayer);
        assert!(
            !report.invariant1.is_empty(),
            "annotation spoof went unnoticed by the cross-check"
        );
    }
}
