//! One fuzz input: a spec, its surgery, and the tenant attack programs —
//! plus generation, coverage-guided mutation, and the corpus JSON codec.
//!
//! The codec is strict and total: any parsed input is [`DesignSpec::normalize`]d
//! and clamped onto the generator's grid, so a corpus file can never
//! build an out-of-family design no matter what edits it went through.

use telemetry::Json;

use crate::program::{gen_attack_op, gen_program, gen_programs, AttackOp, TenantProgram, MAX_OPS};
use crate::rng::FuzzRng;
use crate::spec::{gen_spec, DebugPort, DesignSpec};
use crate::surgery::{gen_op, gen_surgery, SurgeryOp};

/// One complete fuzz input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzInput {
    /// The draw seed this input descends from (provenance; reports print
    /// it so any corpus entry reproduces from the artifact alone).
    pub seed: u64,
    /// The generated design family member.
    pub spec: DesignSpec,
    /// Netlist surgery applied after generation.
    pub surgery: Vec<SurgeryOp>,
    /// One attack program per tenant.
    pub programs: Vec<TenantProgram>,
}

/// Draws a fresh input.
#[must_use]
pub fn gen_input(seed: u64) -> FuzzInput {
    let mut rng = FuzzRng::new(seed);
    let spec = gen_spec(&mut rng);
    let surgery = gen_surgery(&mut rng);
    let programs = gen_programs(&mut rng, usize::from(spec.tenants));
    FuzzInput {
        seed,
        spec,
        surgery,
        programs,
    }
}

/// Mutates an interesting input into a neighbour. Structure-aware: flips
/// one spec knob, edits the surgery list, or edits one tenant's program.
/// Never introduces the known-bad class (only the shrinker demo plants
/// it), but preserves it if the parent already carries it.
#[must_use]
pub fn mutate(parent: &FuzzInput, rng: &mut FuzzRng) -> FuzzInput {
    let mut child = parent.clone();
    child.seed = rng.next_u64();
    match rng.below(6) {
        // Flip one spec knob and renormalize.
        0 => {
            match rng.below(7) {
                0 => child.spec.width = *rng.pick(&crate::spec::WIDTHS),
                1 => child.spec.depth = rng.range(1, 4) as u8,
                2 => child.spec.key_cells = if rng.chance(1, 2) { 2 } else { 4 },
                3 => child.spec.guard_writes = !child.spec.guard_writes,
                4 => child.spec.declassify_out = !child.spec.declassify_out,
                5 => {
                    child.spec.debug_port = match rng.below(3) {
                        0 => DebugPort::None,
                        1 => DebugPort::Supervised,
                        _ => DebugPort::Open,
                    };
                }
                _ => {
                    if !child.spec.mix_ops.is_empty() {
                        let i = rng.below(child.spec.mix_ops.len());
                        child.spec.mix_ops[i] = rng.below(4) as u8;
                    }
                }
            }
            child.spec.normalize();
            // The program list tracks the tenant count.
            resize_programs(&mut child, rng);
        }
        // Append a surgery op.
        1 => {
            if child.surgery.len() < 6 {
                child.surgery.push(gen_op(rng));
            }
        }
        // Drop or replace a surgery op.
        2 => {
            if child.surgery.is_empty() {
                child.surgery.push(gen_op(rng));
            } else {
                let i = rng.below(child.surgery.len());
                if rng.chance(1, 2) {
                    child.surgery.remove(i);
                } else {
                    child.surgery[i] = gen_op(rng);
                }
            }
        }
        // Append an op to one tenant's program.
        3 => {
            if let Some(p) = pick_program(&mut child, rng) {
                if p.ops.len() < MAX_OPS {
                    p.ops.push(gen_attack_op(rng));
                }
            }
        }
        // Drop or replace one program op.
        4 => {
            if let Some(p) = pick_program(&mut child, rng) {
                if p.ops.is_empty() {
                    p.ops.push(gen_attack_op(rng));
                } else {
                    let i = rng.below(p.ops.len());
                    if rng.chance(1, 2) {
                        p.ops.remove(i);
                    } else {
                        p.ops[i] = gen_attack_op(rng);
                    }
                }
            }
        }
        // Regenerate one tenant's whole program.
        _ => {
            if let Some(p) = pick_program(&mut child, rng) {
                *p = gen_program(rng);
            }
        }
    }
    child
}

fn pick_program<'a>(input: &'a mut FuzzInput, rng: &mut FuzzRng) -> Option<&'a mut TenantProgram> {
    if input.programs.is_empty() {
        return None;
    }
    let i = rng.below(input.programs.len());
    input.programs.get_mut(i)
}

fn resize_programs(input: &mut FuzzInput, rng: &mut FuzzRng) {
    let want = usize::from(input.spec.tenants);
    while input.programs.len() < want {
        input.programs.push(gen_program(rng));
    }
    input.programs.truncate(want.max(1));
}

// ---------------------------------------------------------------------------
// JSON codec
// ---------------------------------------------------------------------------

fn op_to_json(op: &AttackOp) -> Json {
    match *op {
        AttackOp::Submit { slot, data } => Json::obj(vec![
            ("op", Json::Str("submit".into())),
            ("slot", Json::U64(u64::from(slot))),
            ("data", Json::U64(data)),
        ]),
        AttackOp::WriteKey {
            addr,
            data,
            supervisor,
        } => Json::obj(vec![
            ("op", Json::Str("write-key".into())),
            ("addr", Json::U64(u64::from(addr))),
            ("data", Json::U64(data)),
            ("supervisor", Json::Bool(supervisor)),
        ]),
        AttackOp::Alloc { cell } => Json::obj(vec![
            ("op", Json::Str("alloc".into())),
            ("cell", Json::U64(u64::from(cell))),
        ]),
        AttackOp::WriteCfg { value } => Json::obj(vec![
            ("op", Json::Str("write-cfg".into())),
            ("value", Json::U64(u64::from(value))),
        ]),
        AttackOp::ReadDebug { sel } => Json::obj(vec![
            ("op", Json::Str("read-debug".into())),
            ("sel", Json::U64(u64::from(sel))),
        ]),
        AttackOp::Idle { cycles } => Json::obj(vec![
            ("op", Json::Str("idle".into())),
            ("cycles", Json::U64(u64::from(cycles))),
        ]),
    }
}

fn surgery_to_json(op: &SurgeryOp) -> Json {
    match *op {
        SurgeryOp::StuckTagJoin { site, keep_b } => Json::obj(vec![
            ("class", Json::Str(op.class().into())),
            ("site", Json::U64(u64::from(site))),
            ("keep_b", Json::Bool(keep_b)),
        ]),
        SurgeryOp::ConstGuard { site, allow } => Json::obj(vec![
            ("class", Json::Str(op.class().into())),
            ("site", Json::U64(u64::from(site))),
            ("allow", Json::Bool(allow)),
        ]),
        SurgeryOp::WidenDeclassify { site } => Json::obj(vec![
            ("class", Json::Str(op.class().into())),
            ("site", Json::U64(u64::from(site))),
        ]),
        SurgeryOp::DropMux { site, keep_t } => Json::obj(vec![
            ("class", Json::Str(op.class().into())),
            ("site", Json::U64(u64::from(site))),
            ("keep_t", Json::Bool(keep_t)),
        ]),
        SurgeryOp::RerouteOutput { out, back } => Json::obj(vec![
            ("class", Json::Str(op.class().into())),
            ("out", Json::U64(u64::from(out))),
            ("back", Json::U64(u64::from(back))),
        ]),
        SurgeryOp::RelabelOutput { out } => Json::obj(vec![
            ("class", Json::Str(op.class().into())),
            ("out", Json::U64(u64::from(out))),
        ]),
        SurgeryOp::DeadConst { wide } => Json::obj(vec![
            ("class", Json::Str(op.class().into())),
            ("wide", Json::Bool(wide)),
        ]),
        SurgeryOp::SpoofInputLabel { input } => Json::obj(vec![
            ("class", Json::Str(op.class().into())),
            ("input", Json::U64(u64::from(input))),
        ]),
    }
}

impl FuzzInput {
    /// Renders the corpus JSON document.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("seed", Json::U64(self.seed)),
            (
                "spec",
                Json::obj(vec![
                    ("width", Json::U64(u64::from(self.spec.width))),
                    ("depth", Json::U64(u64::from(self.spec.depth))),
                    ("key_cells", Json::U64(u64::from(self.spec.key_cells))),
                    ("guard_writes", Json::Bool(self.spec.guard_writes)),
                    ("declassify_out", Json::Bool(self.spec.declassify_out)),
                    ("stall_gate", Json::Bool(self.spec.stall_gate)),
                    ("debug_port", Json::Str(self.spec.debug_port.key().into())),
                    ("cfg_reg", Json::Bool(self.spec.cfg_reg)),
                    (
                        "mix_ops",
                        Json::Arr(
                            self.spec
                                .mix_ops
                                .iter()
                                .map(|&op| Json::U64(u64::from(op)))
                                .collect(),
                        ),
                    ),
                    ("tenants", Json::U64(u64::from(self.spec.tenants))),
                ]),
            ),
            (
                "surgery",
                Json::Arr(self.surgery.iter().map(surgery_to_json).collect()),
            ),
            (
                "programs",
                Json::Arr(
                    self.programs
                        .iter()
                        .map(|p| Json::Arr(p.ops.iter().map(op_to_json).collect()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a corpus JSON document.
    ///
    /// # Errors
    ///
    /// Describes the first malformed field. A successfully parsed input
    /// is always normalized onto the generator grid.
    pub fn from_json(doc: &Json) -> Result<FuzzInput, String> {
        let seed = field_u64(doc, "seed")?;
        let spec_doc = doc.get("spec").ok_or("missing \"spec\"")?;
        let mut spec = DesignSpec {
            width: field_u64(spec_doc, "width")? as u16,
            depth: field_u64(spec_doc, "depth")? as u8,
            key_cells: field_u64(spec_doc, "key_cells")? as u8,
            guard_writes: field_bool(spec_doc, "guard_writes")?,
            declassify_out: field_bool(spec_doc, "declassify_out")?,
            stall_gate: field_bool(spec_doc, "stall_gate")?,
            debug_port: DebugPort::from_key(field_str(spec_doc, "debug_port")?)
                .ok_or("bad \"debug_port\"")?,
            cfg_reg: field_bool(spec_doc, "cfg_reg")?,
            mix_ops: field_arr(spec_doc, "mix_ops")?
                .iter()
                .map(|v| v.as_u64().map(|n| n as u8).ok_or("bad mix op"))
                .collect::<Result<Vec<u8>, &str>>()?,
            tenants: field_u64(spec_doc, "tenants")? as u8,
        };
        spec.normalize();

        let surgery = field_arr(doc, "surgery")?
            .iter()
            .map(surgery_from_json)
            .collect::<Result<Vec<SurgeryOp>, String>>()?;

        let mut programs = Vec::new();
        for p in field_arr(doc, "programs")? {
            let ops = p
                .as_arr()
                .ok_or("program is not an array")?
                .iter()
                .map(op_from_json)
                .collect::<Result<Vec<AttackOp>, String>>()?;
            if ops.len() > MAX_OPS {
                return Err(format!("program exceeds {MAX_OPS} ops"));
            }
            programs.push(TenantProgram { ops });
        }
        if programs.len() > usize::from(spec.tenants) {
            programs.truncate(usize::from(spec.tenants));
        }

        Ok(FuzzInput {
            seed,
            spec,
            surgery,
            programs,
        })
    }
}

fn field_u64(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer {key:?}"))
}

fn field_bool(doc: &Json, key: &str) -> Result<bool, String> {
    doc.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| format!("missing or non-bool {key:?}"))
}

fn field_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string {key:?}"))
}

fn field_arr<'a>(doc: &'a Json, key: &str) -> Result<&'a [Json], String> {
    doc.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing or non-array {key:?}"))
}

fn op_from_json(doc: &Json) -> Result<AttackOp, String> {
    match field_str(doc, "op")? {
        "submit" => Ok(AttackOp::Submit {
            slot: field_u64(doc, "slot")? as u8,
            data: field_u64(doc, "data")?,
        }),
        "write-key" => Ok(AttackOp::WriteKey {
            addr: field_u64(doc, "addr")? as u8,
            data: field_u64(doc, "data")?,
            supervisor: field_bool(doc, "supervisor")?,
        }),
        "alloc" => Ok(AttackOp::Alloc {
            cell: field_u64(doc, "cell")? as u8,
        }),
        "write-cfg" => Ok(AttackOp::WriteCfg {
            value: field_u64(doc, "value")? as u8,
        }),
        "read-debug" => Ok(AttackOp::ReadDebug {
            sel: field_u64(doc, "sel")? as u8,
        }),
        "idle" => Ok(AttackOp::Idle {
            cycles: (field_u64(doc, "cycles")?.clamp(1, 4)) as u8,
        }),
        other => Err(format!("unknown attack op {other:?}")),
    }
}

fn surgery_from_json(doc: &Json) -> Result<SurgeryOp, String> {
    match field_str(doc, "class")? {
        "stuck-tag-join" => Ok(SurgeryOp::StuckTagJoin {
            site: field_u64(doc, "site")? as u8,
            keep_b: field_bool(doc, "keep_b")?,
        }),
        "const-guard" => Ok(SurgeryOp::ConstGuard {
            site: field_u64(doc, "site")? as u8,
            allow: field_bool(doc, "allow")?,
        }),
        "widen-declassify" => Ok(SurgeryOp::WidenDeclassify {
            site: field_u64(doc, "site")? as u8,
        }),
        "drop-mux" => Ok(SurgeryOp::DropMux {
            site: field_u64(doc, "site")? as u8,
            keep_t: field_bool(doc, "keep_t")?,
        }),
        "reroute-output" => Ok(SurgeryOp::RerouteOutput {
            out: field_u64(doc, "out")? as u8,
            back: field_u64(doc, "back")? as u8,
        }),
        "relabel-output" => Ok(SurgeryOp::RelabelOutput {
            out: field_u64(doc, "out")? as u8,
        }),
        "dead-const" => Ok(SurgeryOp::DeadConst {
            wide: field_bool(doc, "wide")?,
        }),
        "spoof-input-label" => Ok(SurgeryOp::SpoofInputLabel {
            input: field_u64(doc, "input")? as u8,
        }),
        other => Err(format!("unknown surgery class {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inputs_round_trip_through_json() {
        for seed in [1u64, 99, 0xdead_beef] {
            let input = gen_input(seed);
            let doc = input.to_json();
            let text = doc.render();
            let back = FuzzInput::from_json(&Json::parse(&text).expect("parses")).expect("decodes");
            assert_eq!(back, input, "round trip changed the input");
        }
    }

    #[test]
    fn mutation_stays_on_the_grid() {
        let mut rng = FuzzRng::new(0x31337);
        let mut input = gen_input(5);
        for _ in 0..200 {
            input = mutate(&input, &mut rng);
            let mut renorm = input.spec.clone();
            renorm.normalize();
            assert_eq!(renorm, input.spec, "mutation left the spec grid");
            assert!(input.programs.len() <= 4);
            assert!(input.surgery.len() <= 6);
            assert!(input.surgery.iter().all(|op| !op.is_known_bad()));
        }
    }

    #[test]
    fn malformed_documents_are_rejected() {
        let good = gen_input(7).to_json().render();
        let parsed = Json::parse(&good).unwrap();
        assert!(FuzzInput::from_json(&parsed).is_ok());
        assert!(FuzzInput::from_json(&Json::obj(vec![])).is_err());
        assert!(FuzzInput::from_json(&Json::parse("{\"seed\":1}").unwrap()).is_err());
    }
}
