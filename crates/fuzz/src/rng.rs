//! The fuzzer's deterministic pseudo-random source.
//!
//! Everything the fuzzer does — spec generation, surgery site selection,
//! program synthesis, mutation choices — draws from one [`FuzzRng`]
//! seeded by the campaign seed, so a campaign is a pure function of that
//! seed and any CI failure replays locally from the seed printed in
//! `FUZZ_REPORT.json`. The generator is the same SplitMix64 the fleet's
//! deterministic workload derivation uses ([`accel::fleet::mix`]).

/// A SplitMix64 stream.
///
/// Small state, full 64-bit output avalanche, and — unlike the vendored
/// `rand` stand-in — trivially reconstructable from a printed seed, which
/// is the property the corpus format relies on.
#[derive(Debug, Clone)]
pub struct FuzzRng {
    state: u64,
}

impl FuzzRng {
    /// A stream seeded by `seed`.
    #[must_use]
    pub fn new(seed: u64) -> FuzzRng {
        FuzzRng {
            // Pre-scramble so nearby seeds (campaign seed ^ input index)
            // do not produce correlated first draws.
            state: accel::fleet::mix(seed ^ 0x9e37_79b9_7f4a_7c15),
        }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        accel::fleet::mix(self.state)
    }

    /// A draw uniform in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below() needs a non-empty range");
        (self.next_u64() % bound as u64) as usize
    }

    /// A draw uniform in `lo..=hi`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi - lo + 1)
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u32, den: u32) -> bool {
        (self.next_u64() % u64::from(den)) < u64::from(num)
    }

    /// A uniformly drawn element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = FuzzRng::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = FuzzRng::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = FuzzRng::new(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn bounded_draws_stay_in_range() {
        let mut r = FuzzRng::new(42);
        for _ in 0..200 {
            assert!(r.below(7) < 7);
            let x = r.range(3, 5);
            assert!((3..=5).contains(&x));
        }
        assert!((0..400).filter(|_| r.chance(1, 4)).count() < 200);
    }
}
