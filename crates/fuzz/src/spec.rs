//! The netlist generator: a parameterized family of AES-like tagged
//! engines.
//!
//! Each [`DesignSpec`] describes one member of the family: a keyed,
//! pipelined mixing datapath fed from a tag-checked key scratchpad, with
//! the same enforcement idioms the real accelerator uses — `FromTag`
//! input annotations, guarded-admission writes, a tag pipeline riding
//! next to the data pipeline, and (optionally) a nonmalleable declassify
//! at the output. The family deliberately includes *insecure* members
//! (an open debug tap, no write guard): the fuzzer's job is to confirm
//! the enforcement stack flags those somewhere (lint, static check,
//! runtime tracking), never to assume every generated design is safe.
//!
//! What every member guarantees by construction is the *environment
//! contract*: every input port is annotated, and the annotation is an
//! upper bound on the label the [`crate::exec`] executor will ever drive
//! on it. That contract is what makes fuzz invariant 1 (the static bound
//! plane dominates every observed runtime tag) a soundness statement
//! about the analysis rather than about the stimulus.

use hdl::{Design, LabelExpr, ModuleBuilder, Sig};
use ifc_lattice::{Label, SecurityTag};

use crate::rng::FuzzRng;

/// The datapath widths the generator draws from.
pub const WIDTHS: [u16; 3] = [8, 16, 32];

/// How the generated engine exposes its key scratchpad to debug probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DebugPort {
    /// No debug tap.
    None,
    /// A tap whose port is labelled `(S,U)` — only cleared principals
    /// may route to it (the protected accelerator's shape).
    Supervised,
    /// An *unlabelled* tap: the open interconnect. Reading a tagged key
    /// through it is a leak the stack must flag (static output check
    /// and/or a runtime `OutputLeak`).
    Open,
}

impl DebugPort {
    /// Stable key for serialization.
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            DebugPort::None => "none",
            DebugPort::Supervised => "supervised",
            DebugPort::Open => "open",
        }
    }

    /// Parses [`Self::key`].
    #[must_use]
    pub fn from_key(key: &str) -> Option<DebugPort> {
        match key {
            "none" => Some(DebugPort::None),
            "supervised" => Some(DebugPort::Supervised),
            "open" => Some(DebugPort::Open),
            _ => None,
        }
    }
}

/// One point in the generated design family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignSpec {
    /// Datapath width in bits (one of [`WIDTHS`]).
    pub width: u16,
    /// Pipeline depth in stages (1..=4).
    pub depth: u8,
    /// Key scratchpad cells (2 or 4; sets the address width).
    pub key_cells: u8,
    /// Gate scratchpad writes on the owner-tag admission check.
    pub guard_writes: bool,
    /// Release the output through a nonmalleable declassify (the
    /// protected shape); otherwise the output port carries a dependent
    /// `FromTag` label.
    pub declassify_out: bool,
    /// Gate `out_valid` on an `out_ready` receiver handshake.
    pub stall_gate: bool,
    /// Debug tap variant.
    pub debug_port: DebugPort,
    /// Include the tag-guarded configuration register.
    pub cfg_reg: bool,
    /// Per-stage mixing opcode (0 xor, 1 add, 2 rotate-xor, 3
    /// key-selected mux — a data-dependent select).
    pub mix_ops: Vec<u8>,
    /// Concurrent tenants the attack programs model (1..=4).
    pub tenants: u8,
}

impl DesignSpec {
    /// Scratchpad address width in bits.
    #[must_use]
    pub fn addr_bits(&self) -> u16 {
        if self.key_cells <= 2 {
            1
        } else {
            2
        }
    }

    /// Clamps every field onto the generator's supported grid, so specs
    /// arriving from mutation or a corpus file are always buildable.
    pub fn normalize(&mut self) {
        if !WIDTHS.contains(&self.width) {
            self.width = WIDTHS[self.width as usize % WIDTHS.len()];
        }
        self.depth = self.depth.clamp(1, 4);
        self.key_cells = if self.key_cells <= 2 { 2 } else { 4 };
        self.tenants = self.tenants.clamp(1, 4);
        self.mix_ops.resize(self.depth as usize, 0);
        for op in &mut self.mix_ops {
            *op %= 4;
        }
    }
}

/// Draws a random spec.
#[must_use]
pub fn gen_spec(rng: &mut FuzzRng) -> DesignSpec {
    let depth = rng.range(1, 4) as u8;
    let mut spec = DesignSpec {
        width: *rng.pick(&WIDTHS),
        depth,
        key_cells: if rng.chance(1, 2) { 2 } else { 4 },
        guard_writes: rng.chance(3, 4),
        declassify_out: rng.chance(3, 4),
        stall_gate: rng.chance(1, 2),
        debug_port: match rng.below(4) {
            0 => DebugPort::None,
            3 => DebugPort::Open,
            _ => DebugPort::Supervised,
        },
        cfg_reg: rng.chance(2, 3),
        mix_ops: (0..depth).map(|_| rng.below(4) as u8).collect(),
        tenants: rng.range(1, 4) as u8,
    };
    spec.normalize();
    spec
}

fn rotate1(m: &mut ModuleBuilder, d: Sig, width: u16) -> Sig {
    if width < 2 {
        return d;
    }
    let low = m.slice(d, width - 2, 0);
    let top = m.slice(d, width - 1, width - 1);
    m.cat(low, top)
}

fn mix_stage(m: &mut ModuleBuilder, op: u8, d: Sig, k: Sig, width: u16) -> Sig {
    match op % 4 {
        0 => m.xor(d, k),
        1 => m.add(d, k),
        2 => {
            let r = rotate1(m, d, width);
            m.xor(r, k)
        }
        _ => {
            // Key-dependent select: the round function's shape depends on
            // a key bit, so the mux select sits inside the secret cone —
            // the label planes must carry that implicit flow.
            let sel = m.slice(k, 0, 0);
            let a = m.add(d, k);
            let x = m.xor(d, k);
            m.mux(sel, a, x)
        }
    }
}

/// Builds the design a spec describes. Always lowers (the spec grid is
/// closed under [`DesignSpec::normalize`]); surgery applied afterwards
/// may of course break that.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn build_design(spec: &DesignSpec) -> Design {
    let pt = Label::PUBLIC_TRUSTED;
    let w = spec.width;
    let a = spec.addr_bits();
    let cells = usize::from(spec.key_cells);
    let mut m = ModuleBuilder::new("fuzz_engine");

    // ---- Request interface -------------------------------------------
    let in_valid = m.input("in_valid", 1);
    m.set_label(in_valid, pt);
    let in_tag = m.input("in_tag", 8);
    m.set_label(in_tag, pt);
    let in_data = m.input("in_data", w);
    m.set_label(in_data, LabelExpr::FromTag(in_tag.id()));
    let in_slot = m.input("in_slot", a);
    m.set_label(in_slot, pt);

    // ---- Key scratchpad with per-cell owner tags ---------------------
    let key_we = m.input("key_we", 1);
    m.set_label(key_we, pt);
    let key_addr = m.input("key_addr", a);
    m.set_label(key_addr, pt);
    let key_wr_tag = m.input("key_wr_tag", 8);
    m.set_label(key_wr_tag, pt);
    let key_data = m.input("key_data", w);
    m.set_label(key_data, LabelExpr::FromTag(key_wr_tag.id()));

    let pt_bits = u128::from(SecurityTag::from(pt).bits());
    let key_mem = m.mem("keys.cells", w, cells, vec![]);
    m.set_mem_label(key_mem, LabelExpr::FromTag(key_wr_tag.id()));
    let tag_mem = m.mem("keys.tags", 8, cells, vec![pt_bits; cells]);

    let cur_tag = m.mem_read(tag_mem, key_addr);
    let admit = if spec.guard_writes {
        // Owner check: the cell's current owner tag must flow to the
        // writer's — you may only overwrite what you dominate.
        m.tag_leq(cur_tag, key_wr_tag)
    } else {
        m.lit(1, 1)
    };
    let wr_en = m.and(key_we, admit);
    m.when(wr_en, |m| {
        m.mem_write(key_mem, key_addr, key_data);
        m.mem_write(tag_mem, key_addr, key_wr_tag);
    });

    // ---- Dispatch: join the request tag with the key owner's ---------
    let kval = m.mem_read(key_mem, in_slot);
    let ktag = m.mem_read(tag_mem, in_slot);
    let disp_tag = m.tag_join(in_tag, ktag);

    // ---- The mixing pipeline (data, tag, and valid pipes) ------------
    let mut d = mix_stage(&mut m, spec.mix_ops[0], in_data, kval, w);
    let mut t = disp_tag;
    let mut v = in_valid;
    for i in 0..spec.mix_ops.len() {
        let dr = m.reg(&format!("pipe.d{i}"), w, 0);
        let tr = m.reg(&format!("pipe.t{i}"), 8, pt_bits);
        let vr = m.reg(&format!("pipe.v{i}"), 1, 0);
        m.connect(dr, d);
        m.connect(tr, t);
        m.connect(vr, v);
        d = if i + 1 < spec.mix_ops.len() {
            mix_stage(&mut m, spec.mix_ops[i + 1], dr, kval, w)
        } else {
            dr
        };
        t = tr;
        v = vr;
    }

    // ---- Output release ----------------------------------------------
    let out_v = if spec.stall_gate {
        let out_ready = m.input("out_ready", 1);
        m.set_label(out_ready, pt);
        m.and(v, out_ready)
    } else {
        v
    };
    m.output("out_tag", t);
    if spec.declassify_out {
        // The protected shape: release through a nonmalleable declassify
        // whose principal is the request's own (joined) tag, with the
        // released value consumed only behind the nonmalleability gate —
        // the same mux-behind-`nm_declassify_ok` idiom the real
        // accelerator uses, which is what the downgrade-audit lint
        // recognises as an enforced release condition.
        let nm_ok = m.nm_declassify_ok(t, Label::PUBLIC_UNTRUSTED, t);
        let released = m.declassify(d, Label::PUBLIC_UNTRUSTED, t);
        let gate = m.and(out_v, nm_ok);
        let zero = m.lit(0, w);
        let gated = m.mux(gate, released, zero);
        m.output("out_valid", gate);
        m.output_labeled("out_data", gated, Label::PUBLIC_UNTRUSTED);
    } else {
        // The dependent-label shape: the port promises exactly what the
        // tag pipe claims, and the driving node carries the same
        // expression so the release lint sees a dependent-label
        // pass-through. Sound only while the tag pipe is faithful —
        // value-plane surgery on it shows up as runtime `OutputLeak`s.
        m.output("out_valid", out_v);
        m.set_label(d, LabelExpr::FromTag(t.id()));
        m.output_labeled("out_data", d, LabelExpr::FromTag(t.id()));
    }

    // ---- Tag-guarded configuration register --------------------------
    if spec.cfg_reg {
        let cfg_we = m.input("cfg_we", 1);
        m.set_label(cfg_we, pt);
        let cfg_wr_tag = m.input("cfg_wr_tag", 8);
        m.set_label(cfg_wr_tag, pt);
        let cfg_data = m.input("cfg_data", 8);
        m.set_label(cfg_data, LabelExpr::FromTag(cfg_wr_tag.id()));
        let cfg = m.reg("cfg", 8, 0);
        let limit = m.tag_lit(pt);
        let trusted = m.tag_leq(cfg_wr_tag, limit);
        let en = m.and(cfg_we, trusted);
        m.when(en, |m| m.connect(cfg, cfg_data));
        m.output_labeled("cfg_out", cfg, pt);
    }

    // ---- Debug tap ----------------------------------------------------
    if spec.debug_port != DebugPort::None {
        let dbg_sel = m.input("dbg_sel", a);
        m.set_label(dbg_sel, pt);
        let probed = m.mem_read(key_mem, dbg_sel);
        match spec.debug_port {
            DebugPort::Supervised => {
                m.output_labeled("dbg_out", probed, Label::SECRET_UNTRUSTED);
            }
            DebugPort::Open => m.output("dbg_out", probed),
            DebugPort::None => unreachable!(),
        }
    }

    m.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_grid_corner_lowers() {
        for width in WIDTHS {
            for depth in 1..=4u8 {
                for flags in 0..32u8 {
                    let mut spec = DesignSpec {
                        width,
                        depth,
                        key_cells: if flags & 1 == 0 { 2 } else { 4 },
                        guard_writes: flags & 2 != 0,
                        declassify_out: flags & 4 != 0,
                        stall_gate: flags & 8 != 0,
                        debug_port: if flags & 16 != 0 {
                            DebugPort::Open
                        } else {
                            DebugPort::Supervised
                        },
                        cfg_reg: flags & 1 != 0,
                        mix_ops: (0..depth).map(|i| i % 4).collect(),
                        tenants: 2,
                    };
                    spec.normalize();
                    let net = build_design(&spec).lower();
                    assert!(net.is_ok(), "{spec:?} failed to lower");
                }
            }
        }
    }

    #[test]
    fn gen_spec_is_deterministic() {
        let a = gen_spec(&mut FuzzRng::new(11));
        let b = gen_spec(&mut FuzzRng::new(11));
        assert_eq!(a, b);
    }
}
