//! The checked-in corpus: minimized witnesses replayed as a
//! deterministic regression suite.
//!
//! A corpus entry is one [`FuzzInput`] JSON document. The filename
//! carries the expectation:
//!
//! * `bad-*.json` — a minimized **known-bad witness** (e.g. the seeded
//!   annotation spoof). Replaying it must *still fail* invariant 1: if
//!   it ever passes, the cross-check lost the detection and the gate
//!   turns red.
//! * anything else — an interesting input that must keep **both**
//!   invariants while reproducing its recorded coverage.
//!
//! Entries replay in filename order, so corpus coverage fingerprints are
//! stable across machines.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use telemetry::Json;

use crate::coverage::CoverageMap;
use crate::input::FuzzInput;
use crate::pipeline::run_input;
use crate::replay::ProtectedReplayer;

/// One corpus entry.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Filename (relative, e.g. `bad-spoof.json`).
    pub name: String,
    /// The decoded input.
    pub input: FuzzInput,
}

impl CorpusEntry {
    /// Whether the filename marks this entry as a known-bad witness.
    #[must_use]
    pub fn expects_failure(&self) -> bool {
        self.name.starts_with("bad-")
    }
}

/// Loads every `*.json` entry of a corpus directory, sorted by name.
///
/// # Errors
///
/// I/O problems or the first malformed entry (with its filename).
pub fn load_corpus(dir: &Path) -> Result<Vec<CorpusEntry>, String> {
    let mut names: Vec<String> = fs::read_dir(dir)
        .map_err(|e| format!("reading corpus dir {}: {e}", dir.display()))?
        .filter_map(Result::ok)
        .filter_map(|entry| {
            let name = entry.file_name().to_string_lossy().into_owned();
            name.ends_with(".json").then_some(name)
        })
        .collect();
    names.sort();

    let mut entries = Vec::new();
    for name in names {
        let path = dir.join(&name);
        let text =
            fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        let doc = Json::parse(&text).map_err(|e| format!("{name}: {e}"))?;
        let input = FuzzInput::from_json(&doc).map_err(|e| format!("{name}: {e}"))?;
        entries.push(CorpusEntry { name, input });
    }
    Ok(entries)
}

/// Writes one witness into a corpus/witness directory (pretty-stable
/// compact JSON plus a trailing newline for clean diffs).
///
/// # Errors
///
/// I/O problems, with the path in the message.
pub fn store_entry(dir: &Path, name: &str, input: &FuzzInput) -> Result<(), String> {
    fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let path = dir.join(name);
    let mut text = input.to_json().render();
    text.push('\n');
    fs::write(&path, text).map_err(|e| format!("writing {}: {e}", path.display()))
}

/// The result of replaying a corpus.
#[derive(Debug, Clone)]
pub struct CorpusReplay {
    /// Entries replayed.
    pub entries: usize,
    /// Coverage the corpus alone reaches.
    pub coverage: CoverageMap,
    /// Kill-stage histogram over the corpus.
    pub kills: BTreeMap<String, usize>,
    /// Expectation mismatches: clean entries that broke an invariant, or
    /// known-bad witnesses the stack no longer catches.
    pub mismatches: Vec<String>,
}

impl CorpusReplay {
    /// Whether every entry matched its expectation.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Replays corpus entries through the full pipeline.
#[must_use]
pub fn replay_corpus(entries: &[CorpusEntry], replayer: &ProtectedReplayer) -> CorpusReplay {
    let mut replay = CorpusReplay {
        entries: entries.len(),
        coverage: CoverageMap::new(),
        kills: BTreeMap::new(),
        mismatches: Vec::new(),
    };
    for entry in entries {
        let report = run_input(&entry.input, replayer);
        replay.coverage.absorb(&report.coverage.events);
        *replay
            .kills
            .entry(report.kill.key().to_owned())
            .or_insert(0) += 1;
        if entry.expects_failure() {
            if report.invariant1.is_empty() {
                replay.mismatches.push(format!(
                    "{}: known-bad witness no longer fails the cross-check",
                    entry.name
                ));
            }
        } else if !report.invariants_hold() {
            replay.mismatches.push(format!(
                "{}: corpus entry broke an invariant: {:?} {:?}",
                entry.name, report.invariant1, report.invariant2
            ));
        }
    }
    replay
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::gen_input;

    #[test]
    fn store_and_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("fuzz-corpus-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let a = gen_input(11);
        let b = gen_input(22);
        store_entry(&dir, "b-entry.json", &b).expect("store");
        store_entry(&dir, "a-entry.json", &a).expect("store");
        let loaded = load_corpus(&dir).expect("load");
        assert_eq!(loaded.len(), 2);
        // Sorted by name, independent of store order.
        assert_eq!(loaded[0].name, "a-entry.json");
        assert_eq!(loaded[0].input, a);
        assert_eq!(loaded[1].input, b);
        assert!(!loaded[0].expects_failure());
        let _ = fs::remove_dir_all(&dir);
    }
}
