//! Fuzz invariant 2: no generated attack leaks on the protected build.
//!
//! Every fuzz input's tenant programs are replayed — interleaved on one
//! device, the multi-tenant reality — against the real *protected*
//! accelerator under each [`TrackMode`]. The oracle is **value-based**,
//! not violation-based: a `DowngradeRejected` on the protected design is
//! enforcement *working* (coverage signal), while an actual master-key
//! ciphertext landing in a non-supervisor's response queue, or the debug
//! tap answering a non-supervisor, is a leak no tracking mode may permit.
//!
//! The protected tape is compiled once per mode ([`CompiledSim`] is
//! cheap to clone once compiled — the fleet runner relies on the same
//! property), so a 500-input campaign pays for three compiles total.

use std::collections::VecDeque;

use accel::driver::{AccelDriver, Request};
use accel::{master_key_encrypt, supervisor_label, user_label, MASTER_KEY_SLOT};
use ifc_lattice::Label;
use sim::{CompiledSim, RuntimeViolation, SimBackend, TrackMode};

use crate::program::{AttackOp, TenantProgram};

/// Tracking modes invariant 2 quantifies over.
pub const REPLAY_MODES: [TrackMode; 3] =
    [TrackMode::Off, TrackMode::Conservative, TrackMode::Precise];

/// Stable key for a tracking mode (report and coverage vocabulary).
#[must_use]
pub fn mode_key(mode: TrackMode) -> &'static str {
    match mode {
        TrackMode::Off => "off",
        TrackMode::Conservative => "conservative",
        TrackMode::Precise => "precise",
    }
}

/// One tracking mode's replay of one fuzz input.
#[derive(Debug, Clone)]
pub struct ModeReplay {
    /// The mode replayed.
    pub mode: TrackMode,
    /// Invariant-2 failures: each string describes one observed leak.
    pub leaks: Vec<String>,
    /// Violations the runtime tracking raised (coverage, not failures).
    pub violations: Vec<RuntimeViolation>,
    /// Completed encryptions.
    pub responses: usize,
    /// Release-gate rejections (the nonmalleable check firing).
    pub rejections: usize,
    /// Submits abandoned after the stall-retry budget.
    pub stalled_submits: u32,
    /// Whether every in-flight request completed within the drain bound.
    pub drained: bool,
}

/// All modes' replays of one fuzz input.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// One entry per [`REPLAY_MODES`] element, in that order.
    pub modes: Vec<ModeReplay>,
}

impl ReplayOutcome {
    /// Every leak across all modes, as `"mode: description"` lines.
    #[must_use]
    pub fn leaks(&self) -> Vec<String> {
        self.modes
            .iter()
            .flat_map(|m| m.leaks.iter().map(|l| format!("{}: {l}", mode_key(m.mode))))
            .collect()
    }
}

/// Compiles the protected accelerator once per tracking mode and replays
/// fuzz inputs against clones.
#[derive(Debug)]
pub struct ProtectedReplayer {
    prototypes: Vec<(TrackMode, CompiledSim)>,
}

impl Default for ProtectedReplayer {
    fn default() -> ProtectedReplayer {
        ProtectedReplayer::new()
    }
}

impl ProtectedReplayer {
    /// Builds and compiles the protected design under every replay mode.
    ///
    /// # Panics
    ///
    /// Panics if the shipped protected design fails to lower (it never
    /// does).
    #[must_use]
    pub fn new() -> ProtectedReplayer {
        let net = accel::protected().lower().expect("protected design lowers");
        ProtectedReplayer {
            prototypes: REPLAY_MODES
                .iter()
                .map(|&mode| {
                    (
                        mode,
                        <CompiledSim as SimBackend>::from_netlist(net.clone(), mode),
                    )
                })
                .collect(),
        }
    }

    /// Replays one input's tenant programs under every tracking mode.
    #[must_use]
    pub fn replay(&self, programs: &[TenantProgram]) -> ReplayOutcome {
        ReplayOutcome {
            modes: self
                .prototypes
                .iter()
                .map(|(mode, proto)| replay_one(*mode, proto.clone(), programs))
                .collect(),
        }
    }
}

struct Tenant<'p> {
    user: Label,
    ops: VecDeque<&'p AttackOp>,
    /// Expected master-key ciphertexts of this tenant's own master-slot
    /// submissions: delivery of any of them to this (non-supervisor)
    /// tenant is the leak invariant 2 watches for.
    forbidden: Vec<[u8; 16]>,
}

fn replay_one(mode: TrackMode, sim: CompiledSim, programs: &[TenantProgram]) -> ModeReplay {
    let mut driver: AccelDriver<CompiledSim> = AccelDriver::from_backend(sim);
    let mut tenants: Vec<Tenant<'_>> = programs
        .iter()
        .enumerate()
        .map(|(k, p)| Tenant {
            user: user_label(k % 4),
            ops: p.ops.iter().collect(),
            forbidden: Vec::new(),
        })
        .collect();

    let mut leaks = Vec::new();
    let mut stalled_submits = 0u32;

    // Round-robin, one op per tenant per turn: the interleaving a real
    // multi-tenant device sees.
    let mut remaining = tenants.iter().map(|t| t.ops.len()).sum::<usize>();
    while remaining > 0 {
        for tenant in &mut tenants {
            let Some(op) = tenant.ops.pop_front() else {
                continue;
            };
            remaining -= 1;
            let me = tenant.user;
            match *op {
                AttackOp::Submit { slot, data } => {
                    let block = accel::fleet::block_from(data, 0);
                    let key_slot = usize::from(slot) % 4;
                    if key_slot == MASTER_KEY_SLOT {
                        tenant.forbidden.push(master_key_encrypt(block));
                    }
                    let req = Request {
                        block,
                        key_slot,
                        user: me,
                    };
                    let mut accepted = false;
                    for _ in 0..64 {
                        if driver.try_submit(&req) {
                            accepted = true;
                            break;
                        }
                    }
                    if !accepted {
                        stalled_submits += 1;
                    }
                }
                AttackOp::WriteKey {
                    addr,
                    data,
                    supervisor,
                } => {
                    let writer = if supervisor { supervisor_label() } else { me };
                    driver.write_key_cell(usize::from(addr) % 8, data, writer);
                }
                AttackOp::Alloc { cell } => {
                    driver.alloc_cell(usize::from(cell) % 8, me);
                }
                AttackOp::WriteCfg { value } => {
                    driver.write_cfg(value, me);
                }
                AttackOp::ReadDebug { sel } => {
                    if driver.read_debug(u32::from(sel) % 8, me).is_some() {
                        leaks.push(format!(
                            "debug tap answered non-supervisor {me} at sel {sel}"
                        ));
                    }
                }
                AttackOp::Idle { cycles } => {
                    driver.idle(u64::from(cycles.max(1)));
                }
            }
        }
    }

    // Bounded drain — no panic on a wedged pipeline, just a recorded
    // replay-blocked condition.
    let mut budget = 2_000u32;
    while driver.in_flight() > 0 && budget > 0 {
        driver.idle_cycle();
        budget -= 1;
    }
    let drained = driver.in_flight() == 0;

    // The value oracle: did any tenant actually receive a master-key
    // ciphertext of one of their own master-slot submissions?
    let supervisor = supervisor_label();
    for resp in &driver.responses {
        if resp.user == supervisor {
            continue;
        }
        let hit = tenants
            .iter()
            .any(|t| t.user == resp.user && t.forbidden.contains(&resp.block));
        if hit {
            leaks.push(format!(
                "master-key ciphertext delivered to {} at cycle {}",
                resp.user, resp.completed
            ));
        }
    }

    ModeReplay {
        mode,
        leaks,
        violations: driver.violations().to_vec(),
        responses: driver.responses.len(),
        rejections: driver.rejections.len(),
        stalled_submits,
        drained,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::gen_programs;
    use crate::rng::FuzzRng;

    #[test]
    fn random_programs_never_leak_on_protected() {
        let replayer = ProtectedReplayer::new();
        let mut rng = FuzzRng::new(0x5ea1);
        for _ in 0..3 {
            let programs = gen_programs(&mut rng, 2);
            let outcome = replayer.replay(&programs);
            assert_eq!(outcome.modes.len(), REPLAY_MODES.len());
            assert!(
                outcome.leaks().is_empty(),
                "protected build leaked: {:?}",
                outcome.leaks()
            );
        }
    }
}
