//! Random netlist surgery: the fault model the fuzzer drives through
//! [`hdl::Rewriter`].
//!
//! Every op is *site-relative* — it names the k-th matching node at
//! apply time rather than a raw [`NodeId`] — so the same op list stays
//! applicable while the shrinker reshapes the spec underneath it. An op
//! whose site does not exist in the current design is a no-op, which
//! keeps shrinking monotone (dropping spec features can only disable
//! ops, never invalidate the input).
//!
//! All the random classes are **value-path** edits (the silicon
//! misbehaves; the annotations still describe the intended contract) or
//! annotation-strips on *output* ports. Neither can break fuzz
//! invariant 1: the bound plane is recomputed on the mutated netlist,
//! and the runtime label planes propagate along the same mutated edges.
//! The one class that does break it — [`SurgeryOp::SpoofInputLabel`],
//! which makes an input annotation *lie about the environment* — is the
//! seeded known-bad class: [`gen_surgery`] never draws it, the shrinker
//! demo plants it deliberately.

use hdl::{BinOp, Design, LabelExpr, Node, NodeId, Rewriter};
use ifc_lattice::{Label, SecurityTag};

use crate::rng::FuzzRng;

/// One surgical edit, in the order the list is applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SurgeryOp {
    /// Replace every use of the site-th `TagJoin` with one operand: a
    /// stuck tag-combine unit that forgets one side's provenance.
    StuckTagJoin {
        /// Which `TagJoin` (ordinal over the node list).
        site: u8,
        /// Keep operand `b` (else `a`).
        keep_b: bool,
    },
    /// Replace every use of the site-th `TagLeq` with a constant:
    /// an admission / release guard stuck allow (1) or deny (0).
    ConstGuard {
        /// Which `TagLeq` (ordinal).
        site: u8,
        /// Stuck-at value.
        allow: bool,
    },
    /// Retarget the site-th `Declassify` to release at `(P,T)` instead
    /// of its intended level — a downgrade that also endorses.
    WidenDeclassify {
        /// Which `Declassify` (ordinal).
        site: u8,
    },
    /// Bypass the site-th `Mux` with one of its arms (a select stuck
    /// open: drops a tag-guarded path or a stall gate).
    DropMux {
        /// Which `Mux` (ordinal).
        site: u8,
        /// Keep the true arm (else the false arm).
        keep_t: bool,
    },
    /// Re-drive the site-th output port from an earlier node of the same
    /// width (an internal, possibly pre-release value escapes).
    RerouteOutput {
        /// Which output port (ordinal).
        out: u8,
        /// How many same-width candidates to step back from the port's
        /// current driver.
        back: u8,
    },
    /// Strip the site-th output port's label annotation: the port
    /// becomes the open interconnect and releases at `(P,U)`.
    RelabelOutput {
        /// Which *labelled* output port (ordinal).
        out: u8,
    },
    /// Append an unused constant node (dead logic the lint should call
    /// out, and a cheap way to shift node ids for downstream ops).
    DeadConst {
        /// Constant width selector.
        wide: bool,
    },
    /// **Known-bad (seeded only):** re-annotate the site-th
    /// `FromTag`-labelled *data input* as `Const (P,T)`. The executor
    /// keeps driving real tenant labels on it (it follows the port's
    /// role, not the annotation), so the static bound plane now sits
    /// below what the runtime observes — a deliberate fuzz-invariant-1
    /// witness for the shrinker to minimize.
    SpoofInputLabel {
        /// Which `FromTag`-annotated input (ordinal).
        input: u8,
    },
}

impl SurgeryOp {
    /// The op's fault-class key (coverage and report vocabulary).
    #[must_use]
    pub fn class(&self) -> &'static str {
        match self {
            SurgeryOp::StuckTagJoin { .. } => "stuck-tag-join",
            SurgeryOp::ConstGuard { .. } => "const-guard",
            SurgeryOp::WidenDeclassify { .. } => "widen-declassify",
            SurgeryOp::DropMux { .. } => "drop-mux",
            SurgeryOp::RerouteOutput { .. } => "reroute-output",
            SurgeryOp::RelabelOutput { .. } => "relabel-output",
            SurgeryOp::DeadConst { .. } => "dead-const",
            SurgeryOp::SpoofInputLabel { .. } => "spoof-input-label",
        }
    }

    /// Whether this class is the seeded invariant-breaking one.
    #[must_use]
    pub fn is_known_bad(&self) -> bool {
        matches!(self, SurgeryOp::SpoofInputLabel { .. })
    }
}

fn nth_matching(design: &Design, site: u8, pred: impl Fn(&Node) -> bool) -> Option<NodeId> {
    let sites: Vec<NodeId> = design
        .node_ids()
        .filter(|&id| pred(design.node(id)))
        .collect();
    if sites.is_empty() {
        return None;
    }
    Some(sites[usize::from(site) % sites.len()])
}

/// Applies one op to a design. Returns the (possibly identical) result;
/// an op with no matching site leaves the design untouched.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn apply_op(design: &Design, op: &SurgeryOp) -> Design {
    let mut rw = Rewriter::new(design);
    match *op {
        SurgeryOp::StuckTagJoin { site, keep_b } => {
            let Some(id) = nth_matching(design, site, |n| {
                matches!(
                    n,
                    Node::Binary {
                        op: BinOp::TagJoin,
                        ..
                    }
                )
            }) else {
                return design.clone();
            };
            let Node::Binary { a, b, .. } = *design.node(id) else {
                unreachable!()
            };
            rw.replace_uses(id, if keep_b { b } else { a });
        }
        SurgeryOp::ConstGuard { site, allow } => {
            let Some(id) = nth_matching(design, site, |n| {
                matches!(
                    n,
                    Node::Binary {
                        op: BinOp::TagLeq,
                        ..
                    }
                )
            }) else {
                return design.clone();
            };
            let stuck = rw.add_const(1, u128::from(allow));
            rw.replace_uses(id, stuck);
        }
        SurgeryOp::WidenDeclassify { site } => {
            let Some(id) = nth_matching(design, site, |n| matches!(n, Node::Declassify { .. }))
            else {
                return design.clone();
            };
            let Node::Declassify {
                data, principal, ..
            } = *design.node(id)
            else {
                unreachable!()
            };
            rw.replace_node(
                id,
                Node::Declassify {
                    data,
                    to_tag: SecurityTag::from(Label::PUBLIC_TRUSTED).bits(),
                    principal,
                },
            );
        }
        SurgeryOp::DropMux { site, keep_t } => {
            let Some(id) = nth_matching(design, site, |n| matches!(n, Node::Mux { .. })) else {
                return design.clone();
            };
            let Node::Mux { t, f, .. } = *design.node(id) else {
                unreachable!()
            };
            rw.replace_uses(id, if keep_t { t } else { f });
        }
        SurgeryOp::RerouteOutput { out, back } => {
            if design.outputs().is_empty() {
                return design.clone();
            }
            let port = &design.outputs()[usize::from(out) % design.outputs().len()];
            let width = design.width_of(port.node);
            // Same-width candidates strictly before the current driver,
            // nearest first.
            let candidates: Vec<NodeId> = design
                .node_ids()
                .filter(|&id| id.index() < port.node.index() && design.width_of(id) == width)
                .collect();
            if candidates.is_empty() {
                return design.clone();
            }
            let pick = candidates[candidates.len() - 1 - usize::from(back) % candidates.len()];
            let name = port.name.clone();
            rw.set_output_node(&name, pick);
        }
        SurgeryOp::RelabelOutput { out } => {
            let labelled: Vec<&hdl::PortInfo> = design
                .outputs()
                .iter()
                .filter(|p| p.label.is_some())
                .collect();
            if labelled.is_empty() {
                return design.clone();
            }
            let name = labelled[usize::from(out) % labelled.len()].name.clone();
            rw.set_output_label(&name, None);
        }
        SurgeryOp::DeadConst { wide } => {
            rw.add_const(if wide { 32 } else { 8 }, 0x5a);
        }
        SurgeryOp::SpoofInputLabel { input } => {
            // Input annotations live in the node-label table (the port
            // info's `label` field stays `None` for inputs).
            let spoofable: Vec<&hdl::PortInfo> = design
                .inputs()
                .iter()
                .filter(|p| matches!(design.label_of(p.node), Some(LabelExpr::FromTag(_))))
                .collect();
            if spoofable.is_empty() {
                return design.clone();
            }
            let name = spoofable[usize::from(input) % spoofable.len()].name.clone();
            rw.set_input_label(&name, Some(LabelExpr::Const(Label::PUBLIC_TRUSTED)));
        }
    }
    rw.finish()
}

/// Applies a whole op list in order.
#[must_use]
pub fn apply_surgery(design: &Design, ops: &[SurgeryOp]) -> Design {
    let mut d = design.clone();
    for op in ops {
        d = apply_op(&d, op);
    }
    d
}

/// Draws a random op from the *campaign* classes (never the known-bad
/// annotation spoof).
#[must_use]
pub fn gen_op(rng: &mut FuzzRng) -> SurgeryOp {
    match rng.below(7) {
        0 => SurgeryOp::StuckTagJoin {
            site: rng.below(8) as u8,
            keep_b: rng.chance(1, 2),
        },
        1 => SurgeryOp::ConstGuard {
            site: rng.below(8) as u8,
            allow: rng.chance(2, 3),
        },
        2 => SurgeryOp::WidenDeclassify {
            site: rng.below(4) as u8,
        },
        3 => SurgeryOp::DropMux {
            site: rng.below(16) as u8,
            keep_t: rng.chance(1, 2),
        },
        4 => SurgeryOp::RerouteOutput {
            out: rng.below(8) as u8,
            back: rng.below(12) as u8,
        },
        5 => SurgeryOp::RelabelOutput {
            out: rng.below(8) as u8,
        },
        _ => SurgeryOp::DeadConst {
            wide: rng.chance(1, 2),
        },
    }
}

/// Draws a random op list (possibly empty: clean designs are as
/// interesting to the coverage map as faulted ones).
#[must_use]
pub fn gen_surgery(rng: &mut FuzzRng) -> Vec<SurgeryOp> {
    let n = match rng.below(8) {
        0 | 1 => 0,
        2..=4 => 1,
        5 | 6 => 2,
        _ => 3,
    };
    (0..n).map(|_| gen_op(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{build_design, gen_spec};

    #[test]
    fn random_surgery_keeps_designs_lowerable() {
        let mut rng = FuzzRng::new(0xfa22);
        for _ in 0..64 {
            let spec = gen_spec(&mut rng);
            let ops = gen_surgery(&mut rng);
            let mutated = apply_surgery(&build_design(&spec), &ops);
            assert!(
                mutated.lower().is_ok(),
                "surgery {ops:?} on {spec:?} broke lowering"
            );
        }
    }

    #[test]
    fn missing_sites_are_noops() {
        let mut rng = FuzzRng::new(1);
        let mut spec = gen_spec(&mut rng);
        spec.declassify_out = false;
        spec.normalize();
        let base = build_design(&spec);
        let out = apply_op(&base, &SurgeryOp::WidenDeclassify { site: 3 });
        assert_eq!(out.node_count(), base.node_count());
    }
}
