//! The coverage map that guides the fuzzer.
//!
//! Coverage is a set of discrete *events*, not edge counters: which lint
//! passes fired at which severity, which static violation kinds landed at
//! which sites, which runtime violation kinds fired where under which
//! tracking mode, which region × tag-bits states the observed label
//! plane reached, which `out_tag` values escaped, and which kill stage
//! ended the input. An input that contributes any event the map has not
//! seen is *interesting* and gets mutated and re-queued.
//!
//! Events are hashed (FNV-64 over their canonical string) into a
//! [`BTreeSet<u64>`], so the map's fingerprint — and therefore the whole
//! campaign — is a deterministic function of the seed.

use std::collections::BTreeSet;

use hdl::Netlist;
use ifc_check::dataflow::LintReport;
use ifc_check::{CheckReport, ObservedPlane, ViolationKind};
use ifc_lattice::SecurityTag;
use sim::RuntimeViolation;

use crate::exec::SeenViolation;
use crate::replay::{mode_key, ReplayOutcome};

/// FNV-1a over a canonical event string.
#[must_use]
pub fn fnv64(text: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Which stage of the pipeline killed (or passed) an input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum KillStage {
    /// A lint pass reported an error.
    Lint,
    /// The static information-flow checker refused the design.
    Static,
    /// The noninterference prover found an oracle-confirmed two-run
    /// counterexample (sits between the static stages and runtime: a
    /// proof-level objection, no execution needed to convict).
    Counterexample,
    /// Runtime tracking raised violations on an otherwise-clean design.
    Runtime,
    /// The protected replay could not complete (wedged pipeline or
    /// abandoned submits) — the attack was blocked rather than detected.
    ReplayBlocked,
    /// Every stage passed clean.
    Clean,
}

impl KillStage {
    /// Stable key for reports and coverage.
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            KillStage::Lint => "lint",
            KillStage::Static => "static",
            KillStage::Counterexample => "counterexample",
            KillStage::Runtime => "runtime",
            KillStage::ReplayBlocked => "replay-blocked",
            KillStage::Clean => "clean",
        }
    }
}

/// The campaign-wide coverage set.
#[derive(Debug, Clone, Default)]
pub struct CoverageMap {
    events: BTreeSet<u64>,
}

impl CoverageMap {
    /// An empty map.
    #[must_use]
    pub fn new() -> CoverageMap {
        CoverageMap::default()
    }

    /// Number of distinct events seen.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been observed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Order-independent fingerprint of the whole map.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.events.iter().fold(0xcbf2_9ce4_8422_2325u64, |acc, e| {
            acc.rotate_left(5) ^ e.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        })
    }

    /// Merges an input's events in; returns how many were new.
    pub fn absorb(&mut self, events: &BTreeSet<u64>) -> usize {
        let before = self.events.len();
        self.events.extend(events.iter().copied());
        self.events.len() - before
    }
}

/// One fuzz input's coverage events, accumulated stage by stage.
#[derive(Debug, Clone, Default)]
pub struct InputCoverage {
    /// The hashed events.
    pub events: BTreeSet<u64>,
}

fn region_of(net: &Netlist, index: usize) -> &'static str {
    let name = net
        .names
        .get(index)
        .and_then(Option::as_deref)
        .unwrap_or("");
    if name.starts_with("pipe.") {
        "pipe"
    } else if name.starts_with("keys.") || name.starts_with("cfg") {
        "state"
    } else if name.starts_with("in_") || name.starts_with("key_") || name.starts_with("dbg_") {
        "input"
    } else if name.starts_with("out_") {
        "output"
    } else {
        "comb"
    }
}

fn violation_kind_key(kind: &ViolationKind) -> String {
    match kind {
        ViolationKind::Flow { dst, .. } => format!("flow@{}", dst.index()),
        ViolationKind::MemWrite { mem, .. } => format!("mem-write@{mem}"),
        ViolationKind::Output { port, .. } => format!("output@{port}"),
        ViolationKind::Downgrade { node, .. } => format!("downgrade@{}", node.index()),
    }
}

fn runtime_key(v: &RuntimeViolation) -> String {
    match v {
        RuntimeViolation::DowngradeRejected { node, .. } => {
            format!("downgrade-rejected@{}", node.index())
        }
        RuntimeViolation::OutputLeak { port, .. } => format!("output-leak@{port}"),
    }
}

impl InputCoverage {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> InputCoverage {
        InputCoverage::default()
    }

    fn add(&mut self, text: &str) {
        self.events.insert(fnv64(text));
    }

    /// Records which lint passes fired, at which severity, where.
    pub fn lint(&mut self, report: &LintReport) {
        for f in &report.findings {
            self.add(&format!(
                "lint:{}:{}:{}",
                f.pass,
                f.severity.key(),
                f.node.as_deref().unwrap_or("-")
            ));
        }
    }

    /// Records the static checker's violation sites and warning count.
    pub fn static_check(&mut self, report: &CheckReport) {
        for v in &report.violations {
            self.add(&format!("static:{}", violation_kind_key(&v.kind)));
        }
        if !report.warnings.is_empty() {
            self.add("static:warnings");
        }
    }

    /// Records runtime violations (kind, site, mode, tenant parity).
    pub fn runtime(&mut self, seen: &[SeenViolation]) {
        for s in seen {
            self.add(&format!(
                "runtime:{}:{}",
                mode_key(s.mode),
                runtime_key(&s.violation)
            ));
        }
    }

    /// Records which region × tag-bits states the observed plane reached.
    pub fn plane(&mut self, net: &Netlist, observed: &ObservedPlane) {
        for (index, label) in observed.nodes.iter().enumerate() {
            self.add(&format!(
                "plane:{}:{:#04x}",
                region_of(net, index),
                SecurityTag::from(*label).bits()
            ));
        }
        for (mem, label) in observed.mems.iter().enumerate() {
            let name = net.mems.get(mem).map(|m| m.name.as_str()).unwrap_or("-");
            self.add(&format!(
                "plane:mem:{name}:{:#04x}",
                SecurityTag::from(*label).bits()
            ));
        }
    }

    /// Records the escaped `out_tag` values.
    pub fn out_tags(&mut self, tags: &BTreeSet<u8>) {
        for t in tags {
            self.add(&format!("out-tag:{t:#04x}"));
        }
    }

    /// Records the protected replay's observable conditions.
    pub fn replay(&mut self, outcome: &ReplayOutcome) {
        for m in &outcome.modes {
            let key = mode_key(m.mode);
            if m.rejections > 0 {
                self.add(&format!("replay:{key}:rejected"));
            }
            if m.stalled_submits > 0 {
                self.add(&format!("replay:{key}:stalled"));
            }
            if !m.drained {
                self.add(&format!("replay:{key}:wedged"));
            }
            for v in &m.violations {
                self.add(&format!("replay:{key}:{}", runtime_key(v)));
            }
        }
    }

    /// Records the prover's per-observable verdicts (name × verdict
    /// key, plus whether a counterexample replayed on the oracle).
    pub fn prove(&mut self, report: &ifc_check::prover::ProveReport) {
        for r in &report.results {
            self.add(&format!("prove:{}:{}", r.name, r.verdict.key()));
            if let ifc_check::prover::Verdict::Counterexample(cex) = &r.verdict {
                let fate = if cex.confirmed {
                    "confirmed"
                } else {
                    "unreplayed"
                };
                self.add(&format!("prove:{}:{fate}", r.name));
            }
        }
    }

    /// Records which stage killed the input.
    pub fn kill(&mut self, stage: KillStage) {
        self.add(&format!("kill:{}", stage.key()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_order_independent_and_content_sensitive() {
        let mut a = CoverageMap::new();
        let mut b = CoverageMap::new();
        let x: BTreeSet<u64> = [fnv64("one"), fnv64("two")].into_iter().collect();
        let y: BTreeSet<u64> = [fnv64("two")].into_iter().collect();
        a.absorb(&x);
        b.absorb(&y);
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut c = CoverageMap::new();
        assert_eq!(c.absorb(&x), 2);
        assert_eq!(c.absorb(&y), 0);
        assert_eq!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn kill_stages_hash_distinctly() {
        let stages = [
            KillStage::Lint,
            KillStage::Static,
            KillStage::Counterexample,
            KillStage::Runtime,
            KillStage::ReplayBlocked,
            KillStage::Clean,
        ];
        let keys: BTreeSet<u64> = stages
            .iter()
            .map(|s| fnv64(&format!("kill:{}", s.key())))
            .collect();
        assert_eq!(keys.len(), stages.len());
    }
}
