//! The coverage-guided campaign loop.
//!
//! Fresh inputs are drawn from the campaign seed; any input that
//! contributes a coverage event the map has not seen is *interesting*
//! and spawns mutated children onto the queue. The whole campaign —
//! queue order, mutation choices, coverage fingerprint — is a pure
//! function of [`CampaignConfig::seed`], so a CI failure replays locally
//! from the seed printed in the report artifact.

use std::collections::{BTreeMap, VecDeque};

use telemetry::Json;

use crate::coverage::CoverageMap;
use crate::input::{gen_input, mutate, FuzzInput};
use crate::pipeline::{run_input, InputReport};
use crate::replay::ProtectedReplayer;
use crate::rng::FuzzRng;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// The deterministic seed everything derives from.
    pub seed: u64,
    /// How many inputs to execute (fresh + mutated).
    pub inputs: usize,
    /// Mutated children spawned per interesting input.
    pub children: usize,
    /// Queue bound (drops oldest queued mutants beyond it).
    pub max_queue: usize,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            seed: 0xf022_2019,
            inputs: 64,
            children: 2,
            max_queue: 256,
        }
    }
}

/// One executed input the campaign found interesting or failing.
#[derive(Debug, Clone)]
pub struct Witness {
    /// The input.
    pub input: FuzzInput,
    /// Which invariant broke (`1`, `2`) — `0` for merely interesting.
    pub invariant: u8,
    /// The failure descriptions (empty for interesting inputs).
    pub details: Vec<String>,
}

/// The campaign's aggregate result.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// The seed the campaign ran from.
    pub seed: u64,
    /// Inputs executed.
    pub executed: usize,
    /// Of those, how many were mutated children of interesting inputs.
    pub mutated: usize,
    /// The final coverage map.
    pub coverage: CoverageMap,
    /// Kill-stage histogram, keyed by [`KillStage::key`].
    ///
    /// [`KillStage::key`]: crate::coverage::KillStage::key
    pub kills: BTreeMap<String, usize>,
    /// Inputs that broke a fuzz invariant (the campaign's real findings).
    pub failures: Vec<Witness>,
    /// Inputs that reached new coverage, in discovery order.
    pub interesting: Vec<FuzzInput>,
}

impl CampaignResult {
    /// Whether both invariants held across the whole campaign.
    #[must_use]
    pub fn invariants_hold(&self) -> bool {
        self.failures.is_empty()
    }

    /// The report fragment the guard binary embeds, with the seed first
    /// so a failure reproduces from the artifact alone.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("seed", Json::U64(self.seed)),
            ("executed", Json::U64(self.executed as u64)),
            ("mutated", Json::U64(self.mutated as u64)),
            ("coverage_events", Json::U64(self.coverage.len() as u64)),
            (
                "coverage_fingerprint",
                Json::Str(format!("{:#018x}", self.coverage.fingerprint())),
            ),
            (
                "kills",
                Json::Obj(
                    self.kills
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::U64(*v as u64)))
                        .collect(),
                ),
            ),
            (
                "invariant_failures",
                Json::Arr(
                    self.failures
                        .iter()
                        .map(|w| {
                            Json::obj(vec![
                                ("invariant", Json::U64(u64::from(w.invariant))),
                                (
                                    "details",
                                    Json::Arr(
                                        w.details.iter().map(|d| Json::Str(d.clone())).collect(),
                                    ),
                                ),
                                ("input", w.input.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("interesting", Json::U64(self.interesting.len() as u64)),
        ])
    }
}

fn record(result: &mut CampaignResult, input: &FuzzInput, report: &InputReport) {
    *result
        .kills
        .entry(report.kill.key().to_owned())
        .or_insert(0) += 1;
    if !report.invariant1.is_empty() {
        result.failures.push(Witness {
            input: input.clone(),
            invariant: 1,
            details: report.invariant1.clone(),
        });
    }
    if !report.invariant2.is_empty() {
        result.failures.push(Witness {
            input: input.clone(),
            invariant: 2,
            details: report.invariant2.clone(),
        });
    }
}

/// Runs a coverage-guided campaign.
#[must_use]
pub fn run_campaign(cfg: &CampaignConfig, replayer: &ProtectedReplayer) -> CampaignResult {
    let mut rng = FuzzRng::new(cfg.seed);
    let mut queue: VecDeque<(FuzzInput, bool)> = VecDeque::new();
    let mut result = CampaignResult {
        seed: cfg.seed,
        executed: 0,
        mutated: 0,
        coverage: CoverageMap::new(),
        kills: BTreeMap::new(),
        failures: Vec::new(),
        interesting: Vec::new(),
    };

    while result.executed < cfg.inputs {
        let (input, was_mutant) = queue
            .pop_front()
            .unwrap_or_else(|| (gen_input(rng.next_u64()), false));
        let report = run_input(&input, replayer);
        result.executed += 1;
        result.mutated += usize::from(was_mutant);
        record(&mut result, &input, &report);

        let new_events = result.coverage.absorb(&report.coverage.events);
        if new_events > 0 {
            result.interesting.push(input.clone());
            for _ in 0..cfg.children {
                if queue.len() >= cfg.max_queue {
                    break;
                }
                queue.push_back((mutate(&input, &mut rng), true));
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaigns_are_deterministic_and_coverage_guided() {
        let replayer = ProtectedReplayer::new();
        let cfg = CampaignConfig {
            seed: 7,
            inputs: 6,
            ..CampaignConfig::default()
        };
        let a = run_campaign(&cfg, &replayer);
        let b = run_campaign(&cfg, &replayer);
        assert_eq!(a.coverage.fingerprint(), b.coverage.fingerprint());
        assert_eq!(a.kills, b.kills);
        assert_eq!(a.executed, 6);
        assert!(a.invariants_hold(), "failures: {:?}", a.failures.len());
        // The very first input always contributes new coverage, so the
        // campaign must have mutated something.
        assert!(!a.interesting.is_empty());
        assert!(a.mutated > 0, "coverage guidance never requeued a mutant");
    }
}
