//! Coverage-guided netlist/attack fuzzer for the IFC enforcement stack.
//!
//! The fuzzer closes the loop the rest of the repo leaves open: the lint
//! passes, the static checker, and the runtime tracking logic are each
//! tested against *hand-written* designs and attacks; this crate feeds
//! them a generated, mutated stream of both and holds the whole stack to
//! two invariants on every input:
//!
//! 1. **Bound-plane domination** — the static bound plane recomputed on
//!    the (possibly fault-injected) netlist dominates every runtime
//!    label either simulator surface observes. The executor only drives
//!    labels inside each port's annotated contract, so a violation here
//!    means the *analysis* is unsound, not the stimulus.
//! 2. **No protected leak** — replaying the input's attack programs on
//!    the real protected accelerator never delivers master-key
//!    ciphertext (or a debug read) to a tenant, under any tracking mode.
//!
//! A coverage map over lint findings, static violation sites, runtime
//! violation sites, observed tag-plane states, and kill stages guides
//! mutation ([`campaign`]); failures shrink to minimal witnesses
//! ([`shrink`]); minimized witnesses live in the checked-in corpus and
//! replay as a deterministic regression gate ([`corpus`], exercised by
//! the `fuzz_guard` benchmark binary and CI job).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod corpus;
pub mod coverage;
pub mod exec;
pub mod input;
pub mod pipeline;
pub mod program;
pub mod prove;
pub mod replay;
pub mod rng;
pub mod shrink;
pub mod spec;
pub mod surgery;

pub use campaign::{run_campaign, CampaignConfig, CampaignResult, Witness};
pub use corpus::{load_corpus, replay_corpus, store_entry, CorpusEntry, CorpusReplay};
pub use coverage::{CoverageMap, InputCoverage, KillStage};
pub use exec::{run_generated, ExecOutcome, SeenViolation};
pub use input::{gen_input, mutate, FuzzInput};
pub use pipeline::{run_input, run_input_with, InputReport, PipelineConfig};
pub use program::{gen_programs, AttackOp, TenantProgram};
pub use prove::{fuzz_prove_options, prove_stage, role_env};
pub use replay::{mode_key, ProtectedReplayer, ReplayOutcome, REPLAY_MODES};
pub use rng::FuzzRng;
pub use shrink::{is_one_minimal, shrink, size};
pub use spec::{build_design, gen_spec, DebugPort, DesignSpec};
pub use surgery::{apply_surgery, gen_surgery, SurgeryOp};
