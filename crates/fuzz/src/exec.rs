//! The non-panicking executor for generated engines.
//!
//! Runs every tenant's attack program against the (possibly mutated)
//! generated netlist on two surfaces at once:
//!
//! * a [`BatchedSim`] with one lane per tenant, running
//!   [`TrackMode::Precise`] — the batched-fleet style of runtime
//!   tracking;
//! * a plain [`Simulator`] (through the [`SimBackend`] trait) replaying
//!   tenant 0 under [`TrackMode::Conservative`] — the reference oracle.
//!
//! Both surfaces fold their per-cycle runtime label planes
//! ([`SimBackend::fold_label_plane`] / [`LaneBackend::fold_label_plane`])
//! into one [`ObservedPlane`], which fuzz invariant 1 later cross-checks
//! against the static bound plane. Runtime violations are *recorded*,
//! never treated as failures here: a `DowngradeRejected` on a faulted
//! netlist is enforcement working as intended, and is coverage signal.
//!
//! The executor drives input labels by port **role** (tenant data wears
//! the tenant's label, supervisor key writes wear `(S,T)`, control wears
//! `(P,T)`), never by reading the netlist's annotations — that is what
//! lets the seeded annotation-spoof class produce a genuine invariant-1
//! violation while ordinary value-path surgery cannot.

use std::collections::BTreeSet;

use hdl::{Netlist, Value};
use ifc_check::ObservedPlane;
use ifc_lattice::{Label, SecurityTag};
use sim::{BatchedSim, LaneBackend, OptConfig, RuntimeViolation, SimBackend, Simulator, TrackMode};

use crate::program::{AttackOp, TenantProgram};
use crate::spec::{DebugPort, DesignSpec};

/// One runtime violation with its observation context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeenViolation {
    /// Tracking mode of the surface that raised it.
    pub mode: TrackMode,
    /// Which tenant's lane (or replay) raised it.
    pub tenant: usize,
    /// The event itself.
    pub violation: RuntimeViolation,
}

/// Everything the pipeline wants to know about one execution.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// Runtime labels joined over every cycle, lane, and surface.
    pub observed: ObservedPlane,
    /// Violations from every surface, in deterministic order.
    pub violations: Vec<SeenViolation>,
    /// Every `out_tag` value sampled while `out_valid` was high.
    pub out_tag_bits: BTreeSet<u8>,
    /// Cycles each surface ran.
    pub cycles: u64,
}

/// Per-cycle drive for one tenant: `(port, value, label)` triples. The
/// defaults come first so an op override later in the list wins.
type Drives = Vec<(&'static str, Value, Label)>;

fn mask(value: u64, width: u16) -> Value {
    u128::from(value) & ((1u128 << width) - 1)
}

fn tag_bits(label: Label) -> Value {
    u128::from(SecurityTag::from(label).bits())
}

fn cycle_drives(spec: &DesignSpec, tenant: usize, op: Option<&AttackOp>, cycle: u64) -> Drives {
    let pt = Label::PUBLIC_TRUSTED;
    let me = accel::user_label(tenant % 4);
    let w = spec.width;
    let cells = u64::from(spec.key_cells);

    let mut d: Drives = vec![
        ("in_valid", 0, pt),
        ("in_tag", tag_bits(pt), pt),
        ("in_data", 0, pt),
        ("in_slot", 0, pt),
        ("key_we", 0, pt),
        ("key_addr", 0, pt),
        ("key_wr_tag", tag_bits(pt), pt),
        ("key_data", 0, pt),
    ];
    if spec.stall_gate {
        // Deassert ready periodically so the stall path is exercised.
        d.push(("out_ready", Value::from(cycle % 5 != 3), pt));
    }
    if spec.cfg_reg {
        d.push(("cfg_we", 0, pt));
        d.push(("cfg_wr_tag", tag_bits(pt), pt));
        d.push(("cfg_data", 0, pt));
    }
    if spec.debug_port != DebugPort::None {
        d.push(("dbg_sel", 0, pt));
    }

    match op {
        Some(AttackOp::Submit { slot, data }) => {
            d.push(("in_valid", 1, pt));
            d.push(("in_tag", tag_bits(me), pt));
            d.push(("in_data", mask(*data, w), me));
            d.push(("in_slot", u128::from(u64::from(*slot) % cells), pt));
        }
        Some(AttackOp::WriteKey {
            addr,
            data,
            supervisor,
        }) => {
            let writer = if *supervisor {
                accel::supervisor_label()
            } else {
                me
            };
            d.push(("key_we", 1, pt));
            d.push(("key_addr", u128::from(u64::from(*addr) % cells), pt));
            d.push(("key_wr_tag", tag_bits(writer), pt));
            d.push(("key_data", mask(*data, w), writer));
        }
        Some(AttackOp::WriteCfg { value }) => {
            if spec.cfg_reg {
                // Even values write as the trusted supervisor-of-config
                // (admitted); odd values as the tenant (denied). Both
                // guard outcomes stay reachable, and the driven label
                // always matches the driven tag, keeping the `FromTag`
                // annotation exact.
                let writer = if value % 2 == 0 { pt } else { me };
                d.push(("cfg_we", 1, pt));
                d.push(("cfg_wr_tag", tag_bits(writer), pt));
                d.push(("cfg_data", u128::from(*value), writer));
            }
        }
        Some(AttackOp::ReadDebug { sel }) => {
            if spec.debug_port != DebugPort::None {
                d.push(("dbg_sel", u128::from(u64::from(*sel) % cells), pt));
            }
        }
        // Alloc has no port on this surface; Idle is the default drive.
        Some(AttackOp::Alloc { .. } | AttackOp::Idle { .. }) | None => {}
    }
    d
}

/// Expands a program into one op slot per cycle (`None` = idle drive).
fn schedule(program: &TenantProgram) -> Vec<Option<AttackOp>> {
    let mut slots = Vec::new();
    for op in &program.ops {
        match op {
            AttackOp::Idle { cycles } => {
                slots.extend(std::iter::repeat_n(None, usize::from((*cycles).max(1))));
            }
            other => slots.push(Some(*other)),
        }
    }
    slots
}

fn record_violations(
    out: &mut Vec<SeenViolation>,
    mode: TrackMode,
    tenant: usize,
    violations: &[RuntimeViolation],
) {
    out.extend(violations.iter().map(|v| SeenViolation {
        mode,
        tenant,
        violation: v.clone(),
    }));
}

/// Runs every tenant program against the netlist on both surfaces and
/// accumulates the observed label plane. Never panics for any generated
/// or surgically mutated member of the spec family.
#[must_use]
pub fn run_generated(net: &Netlist, spec: &DesignSpec, programs: &[TenantProgram]) -> ExecOutcome {
    let tenants = programs.len().max(1);
    let schedules: Vec<Vec<Option<AttackOp>>> = programs.iter().map(schedule).collect();
    let body = schedules.iter().map(Vec::len).max().unwrap_or(0) as u64;
    // Tail drain: flush the pipeline (and the stall gate) after the last
    // op so late releases still land in the observed plane.
    let total = body + u64::from(spec.depth) + 4;

    let mut observed = ObservedPlane::new(net);
    let mut violations = Vec::new();
    let mut out_tag_bits = BTreeSet::new();

    // ---- Surface 1: one lane per tenant, precise tracking ------------
    let lanes = tenants.next_power_of_two();
    let mut batch = <BatchedSim as LaneBackend>::with_tracking_opt(
        net.clone(),
        TrackMode::Precise,
        lanes,
        &OptConfig::default(),
    );
    for cycle in 0..total {
        for (tenant, sched) in schedules.iter().enumerate() {
            let op = sched.get(cycle as usize).and_then(Option::as_ref);
            for (port, value, label) in cycle_drives(spec, tenant, op, cycle) {
                batch.set(tenant, port, value);
                batch.set_label(tenant, port, label);
            }
        }
        batch.eval();
        for tenant in 0..tenants {
            if batch.peek(tenant, "out_valid") != 0 {
                out_tag_bits.insert((batch.peek(tenant, "out_tag") & 0xff) as u8);
            }
            batch.fold_label_plane(tenant, &mut observed.nodes);
            batch.fold_mem_labels(tenant, &mut observed.mems);
        }
        batch.tick();
    }
    for tenant in 0..tenants {
        record_violations(
            &mut violations,
            TrackMode::Precise,
            tenant,
            batch.violations(tenant),
        );
    }

    // ---- Surface 2: the reference oracle replays tenant 0 ------------
    let mut oracle = <Simulator as SimBackend>::from_netlist(net.clone(), TrackMode::Conservative);
    for cycle in 0..total {
        let op = schedules
            .first()
            .and_then(|s| s.get(cycle as usize))
            .and_then(Option::as_ref);
        for (port, value, label) in cycle_drives(spec, 0, op, cycle) {
            SimBackend::set(&mut oracle, port, value);
            SimBackend::set_label(&mut oracle, port, label);
        }
        oracle.eval();
        if SimBackend::peek(&mut oracle, "out_valid") != 0 {
            out_tag_bits.insert((SimBackend::peek(&mut oracle, "out_tag") & 0xff) as u8);
        }
        oracle.fold_label_plane(&mut observed.nodes);
        oracle.fold_mem_labels(&mut observed.mems);
        SimBackend::tick(&mut oracle);
    }
    record_violations(
        &mut violations,
        TrackMode::Conservative,
        0,
        SimBackend::violations(&oracle),
    );

    ExecOutcome {
        observed,
        violations,
        out_tag_bits,
        cycles: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::gen_programs;
    use crate::rng::FuzzRng;
    use crate::spec::{build_design, gen_spec};

    #[test]
    fn execution_is_deterministic_and_never_panics() {
        let mut rng = FuzzRng::new(0xe0e0);
        for _ in 0..8 {
            let spec = gen_spec(&mut rng);
            let net = build_design(&spec).lower().expect("spec family lowers");
            let programs = gen_programs(&mut rng, usize::from(spec.tenants));
            let a = run_generated(&net, &spec, &programs);
            let b = run_generated(&net, &spec, &programs);
            assert_eq!(a.out_tag_bits, b.out_tag_bits);
            assert_eq!(a.violations, b.violations);
            assert_eq!(a.cycles, b.cycles);
            for (x, y) in a.observed.nodes.iter().zip(&b.observed.nodes) {
                assert_eq!(x, y);
            }
        }
    }

    #[test]
    fn clean_designs_respect_the_bound_plane() {
        // Invariant 1 on unmutated members: the executor honours every
        // annotation, so no observed label may exceed the static bound.
        let mut rng = FuzzRng::new(0x1b0b);
        for _ in 0..6 {
            let spec = gen_spec(&mut rng);
            let net = build_design(&spec).lower().expect("spec family lowers");
            let programs = gen_programs(&mut rng, usize::from(spec.tenants));
            let outcome = run_generated(&net, &spec, &programs);
            let bound = ifc_check::dataflow::bound_plane(&net);
            let cfg = ifc_check::LintConfig::new();
            let findings = ifc_check::dataflow::passes::crosscheck_findings(
                &net,
                &bound,
                &outcome.observed,
                &cfg,
            );
            assert!(
                findings.is_empty(),
                "clean {spec:?} broke the bound plane: {findings:?}"
            );
        }
    }
}
