//! The prover kill stage: a self-composition noninterference check on
//! the (possibly mutated) generated netlist, under the **role-based**
//! environment contract.
//!
//! Like the executor ([`crate::exec`]), this stage never trusts the
//! netlist's annotations for the environment: tenant data rides under
//! `in_tag`, key writes under `key_wr_tag`, config writes under
//! `cfg_wr_tag`, and every control port is attacker-chosen public. The
//! gap between the role contract and the annotations is exactly what the
//! seeded annotation-spoof fault class opens — and the prover's
//! claimed-public observable turns that gap into a concrete two-run
//! counterexample, replayed on the interpreter oracle.

use hdl::Netlist;
use ifc_check::prover::{prove, InputClass, ProveEnv, ProveOptions, ProveReport};

/// `(data port, tag port)` role pairs of the generated design family:
/// the data port is driven equal across two runs exactly when its tag
/// carries a publicly-confidential label.
const TAGGED_CHANNELS: [(&str, &str); 3] = [
    ("in_data", "in_tag"),
    ("key_data", "key_wr_tag"),
    ("cfg_data", "cfg_wr_tag"),
];

/// Builds the role-based environment contract for a generated netlist,
/// mirroring the executor's `cycle_drives`: tagged channels are
/// conditionally secret, everything else is public.
#[must_use]
pub fn role_env(net: &Netlist) -> ProveEnv {
    let mut env = ProveEnv::new();
    let node_of = |name: &str| net.inputs.iter().find(|p| p.name == name).map(|p| p.node);
    for (data, tag) in TAGGED_CHANNELS {
        if let (Some(d), Some(t)) = (node_of(data), node_of(tag)) {
            env.classify(d, InputClass::CondTag(t));
        }
    }
    env
}

/// Prover options tuned for the fuzz loop: shallow unrolling and tight
/// budgets — the stage must stay cheap per input, and an `unknown`
/// verdict is just a non-event (later stages still run).
#[must_use]
pub fn fuzz_prove_options() -> ProveOptions {
    ProveOptions {
        k: 3,
        max_nodes: 400_000,
        max_conflicts: 20_000,
        induction: false,
        write_enables: true,
        oracle_replay: true,
        targets: None,
    }
}

/// Runs the prover stage over a generated netlist under the role
/// contract.
#[must_use]
pub fn prove_stage(net: &Netlist, opts: &ProveOptions) -> ProveReport {
    prove(net, &role_env(net), opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::gen_input;
    use crate::spec::build_design;
    use crate::surgery::{apply_surgery, SurgeryOp};
    use ifc_check::prover::Verdict;

    #[test]
    fn spoofed_input_label_yields_replayable_counterexample() {
        let input = gen_input(0x5eed);
        let design = apply_surgery(
            &build_design(&input.spec),
            &[SurgeryOp::SpoofInputLabel { input: 0 }],
        );
        let net = design.lower().expect("spoofed design lowers");
        let report = prove_stage(&net, &fuzz_prove_options());
        let cex = report
            .counterexamples()
            .into_iter()
            .find(|r| r.kind == ifc_check::prover::ObsKind::ClaimedPublic)
            .expect("spoofed annotation must produce a claimed-public counterexample");
        let Verdict::Counterexample(cex) = &cex.verdict else {
            unreachable!();
        };
        assert!(
            cex.confirmed,
            "the counterexample must replay on the interpreter oracle"
        );
    }

    #[test]
    fn unmutated_design_has_no_confirmed_counterexample() {
        let input = gen_input(0x5eed);
        let net = build_design(&input.spec).lower().expect("design lowers");
        let report = prove_stage(&net, &fuzz_prove_options());
        for r in report.counterexamples() {
            let Verdict::Counterexample(cex) = &r.verdict else {
                unreachable!();
            };
            assert!(
                !cex.confirmed,
                "{} leaked on an unmutated design: {}",
                r.name,
                report.to_json()
            );
        }
    }
}
