//! Greedy witness minimization.
//!
//! Given a failing input and a predicate that re-runs the failure, the
//! shrinker walks a deterministic candidate list — drop a program op,
//! drop a tenant, drop a surgery op, simplify the spec — accepting any
//! candidate that still fails, until a whole sweep accepts nothing. The
//! fault model's site-relative addressing ([`crate::surgery`]) is what
//! makes this monotone: shrinking the spec can only turn surgery ops
//! into no-ops, never invalidate them.
//!
//! Every candidate evaluation is one full pipeline run, so the shrinker
//! carries an evaluation budget; hitting it returns the best witness so
//! far (still failing, just possibly not 1-minimal).

use crate::input::FuzzInput;
use crate::spec::{DebugPort, DesignSpec};

/// A size measure for shrink progress and 1-minimality assertions:
/// program ops + surgery ops + how far the spec sits from the minimal
/// corner of the grid.
#[must_use]
pub fn size(input: &FuzzInput) -> usize {
    let ops: usize = input.programs.iter().map(|p| p.ops.len()).sum();
    let spec = &input.spec;
    let spec_weight = usize::from(spec.depth)
        + usize::from(spec.width > 8)
        + usize::from(spec.key_cells > 2)
        + usize::from(spec.cfg_reg)
        + usize::from(spec.stall_gate)
        + usize::from(spec.debug_port != DebugPort::None)
        + usize::from(spec.tenants);
    ops + input.surgery.len() + spec_weight
}

fn spec_simplifications(spec: &DesignSpec) -> Vec<DesignSpec> {
    let mut out = Vec::new();
    let mut push = |f: &dyn Fn(&mut DesignSpec)| {
        let mut s = spec.clone();
        f(&mut s);
        s.normalize();
        if s != *spec {
            out.push(s);
        }
    };
    push(&|s| s.depth = 1);
    push(&|s| s.width = 8);
    push(&|s| s.key_cells = 2);
    push(&|s| s.cfg_reg = false);
    push(&|s| s.stall_gate = false);
    push(&|s| s.debug_port = DebugPort::None);
    push(&|s| s.guard_writes = true);
    push(&|s| s.declassify_out = true);
    push(&|s| s.mix_ops = vec![0; s.mix_ops.len()]);
    push(&|s| s.tenants = 1);
    out
}

fn candidates(input: &FuzzInput) -> Vec<FuzzInput> {
    let mut out = Vec::new();

    // Drop one program op.
    for (t, program) in input.programs.iter().enumerate() {
        for i in 0..program.ops.len() {
            let mut c = input.clone();
            c.programs[t].ops.remove(i);
            out.push(c);
        }
    }
    // Drop one whole tenant program.
    if input.programs.len() > 1 {
        for t in 0..input.programs.len() {
            let mut c = input.clone();
            c.programs.remove(t);
            c.spec.tenants = c.programs.len().max(1) as u8;
            c.spec.normalize();
            out.push(c);
        }
    }
    // Drop one surgery op.
    for i in 0..input.surgery.len() {
        let mut c = input.clone();
        c.surgery.remove(i);
        out.push(c);
    }
    // Simplify the spec.
    for spec in spec_simplifications(&input.spec) {
        let mut c = input.clone();
        c.spec = spec;
        c.programs.truncate(usize::from(c.spec.tenants).max(1));
        out.push(c);
    }
    out
}

/// Shrinks a failing input to a (budget-bounded) local minimum of the
/// predicate. `fails` must return `true` for `input` itself; the result
/// is always an input for which `fails` returned `true`.
pub fn shrink(
    input: &FuzzInput,
    budget: usize,
    fails: &mut dyn FnMut(&FuzzInput) -> bool,
) -> FuzzInput {
    let mut best = input.clone();
    let mut evals = 0usize;
    loop {
        let mut improved = false;
        for candidate in candidates(&best) {
            if evals >= budget {
                return best;
            }
            if size(&candidate) >= size(&best) {
                continue;
            }
            evals += 1;
            if fails(&candidate) {
                best = candidate;
                improved = true;
                break; // restart the sweep from the smaller witness
            }
        }
        if !improved {
            return best;
        }
    }
}

/// Whether a witness is 1-minimal under the predicate: removing any
/// single program op or surgery op makes the failure disappear.
pub fn is_one_minimal(input: &FuzzInput, fails: &mut dyn FnMut(&FuzzInput) -> bool) -> bool {
    for (t, program) in input.programs.iter().enumerate() {
        for i in 0..program.ops.len() {
            let mut c = input.clone();
            c.programs[t].ops.remove(i);
            if fails(&c) {
                return false;
            }
        }
    }
    for i in 0..input.surgery.len() {
        let mut c = input.clone();
        c.surgery.remove(i);
        if fails(&c) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::gen_input;
    use crate::program::AttackOp;
    use crate::surgery::SurgeryOp;

    #[test]
    fn shrinking_a_synthetic_predicate_reaches_the_core() {
        // The "failure" needs one spoof op and at least one submit:
        // exactly the shape of the real known-bad class, evaluated with a
        // cheap structural predicate so the test stays fast.
        let mut fails = |c: &FuzzInput| {
            c.surgery.iter().any(SurgeryOp::is_known_bad)
                && c.programs
                    .iter()
                    .any(|p| p.ops.iter().any(|op| matches!(op, AttackOp::Submit { .. })))
        };
        let mut noisy = gen_input(0xabcd);
        noisy.surgery.push(SurgeryOp::SpoofInputLabel { input: 0 });
        noisy.programs[0]
            .ops
            .push(AttackOp::Submit { slot: 0, data: 9 });

        assert!(fails(&noisy));
        let minimal = shrink(&noisy, 10_000, &mut fails);
        assert!(fails(&minimal));
        assert_eq!(minimal.surgery.len(), 1);
        assert_eq!(
            minimal.programs.iter().map(|p| p.ops.len()).sum::<usize>(),
            1
        );
        assert!(is_one_minimal(&minimal, &mut fails));
        assert_eq!(minimal.spec.depth, 1);
        assert_eq!(minimal.spec.width, 8);
    }
}
