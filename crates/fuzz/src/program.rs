//! Random attacker port-programs, one per tenant.
//!
//! A program is a straight-line op list in *accelerator-protocol*
//! vocabulary, so the same program drives both execution surfaces:
//!
//! * the generated mini-engine, one tenant per lane of the batched
//!   simulator ([`crate::exec`]);
//! * the real protected accelerator, tenants interleaved on one device
//!   through [`accel::driver::AccelDriver`] ([`crate::replay`] — fuzz
//!   invariant 2).
//!
//! Ops that have no port on one surface (e.g. [`AttackOp::Alloc`] on the
//! mini-engine, or a debug read on a spec without a tap) degrade to an
//! idle cycle there; the op list itself never becomes invalid, which the
//! shrinker relies on.

use crate::rng::FuzzRng;

/// One attacker action. Field meanings are surface-relative (addresses
/// and slots are taken modulo the surface's actual geometry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackOp {
    /// Submit a block for encryption through `slot`.
    Submit {
        /// Key slot (modulo the surface's slot count; on the protected
        /// build slot 3 is the master-key slot — a misuse attempt).
        slot: u8,
        /// Seed for the submitted block's bytes.
        data: u64,
    },
    /// Write one key cell.
    WriteKey {
        /// Cell address.
        addr: u8,
        /// Seed for the written data.
        data: u64,
        /// Write as the supervisor (else as the tenant).
        supervisor: bool,
    },
    /// Re-tag a scratchpad cell to this tenant (protected build only).
    Alloc {
        /// Cell address.
        cell: u8,
    },
    /// Write the configuration register.
    WriteCfg {
        /// The value.
        value: u8,
    },
    /// Probe the debug tap.
    ReadDebug {
        /// Probe select.
        sel: u8,
    },
    /// Do nothing for `cycles` cycles.
    Idle {
        /// 1..=4.
        cycles: u8,
    },
}

impl AttackOp {
    /// Stable key for serialization and coverage.
    #[must_use]
    pub fn key(&self) -> &'static str {
        match self {
            AttackOp::Submit { .. } => "submit",
            AttackOp::WriteKey { .. } => "write-key",
            AttackOp::Alloc { .. } => "alloc",
            AttackOp::WriteCfg { .. } => "write-cfg",
            AttackOp::ReadDebug { .. } => "read-debug",
            AttackOp::Idle { .. } => "idle",
        }
    }
}

/// One tenant's straight-line program.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TenantProgram {
    /// The ops, executed in order.
    pub ops: Vec<AttackOp>,
}

impl TenantProgram {
    /// Total cycles the program occupies on the mini-engine surface.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                AttackOp::Idle { cycles } => u64::from((*cycles).max(1)),
                _ => 1,
            })
            .sum()
    }
}

/// Upper bound on ops per tenant program (generation and mutation both
/// respect it; shrinking only goes down).
pub const MAX_OPS: usize = 24;

/// Draws one random op.
#[must_use]
pub fn gen_attack_op(rng: &mut FuzzRng) -> AttackOp {
    match rng.below(20) {
        0..=7 => AttackOp::Submit {
            slot: rng.below(4) as u8,
            data: rng.next_u64(),
        },
        8..=11 => AttackOp::WriteKey {
            addr: rng.below(8) as u8,
            data: rng.next_u64(),
            supervisor: rng.chance(1, 8),
        },
        12 => AttackOp::Alloc {
            cell: rng.below(8) as u8,
        },
        13 | 14 => AttackOp::WriteCfg {
            value: (rng.next_u64() & 0xff) as u8,
        },
        15 | 16 => AttackOp::ReadDebug {
            sel: rng.below(8) as u8,
        },
        _ => AttackOp::Idle {
            cycles: rng.range(1, 4) as u8,
        },
    }
}

/// Draws one tenant program: usually a key load followed by traffic, so
/// the interesting paths (dispatch joins, releases) actually light up.
#[must_use]
pub fn gen_program(rng: &mut FuzzRng) -> TenantProgram {
    let mut ops = Vec::new();
    if rng.chance(5, 6) {
        ops.push(AttackOp::WriteKey {
            addr: rng.below(4) as u8,
            data: rng.next_u64(),
            supervisor: false,
        });
    }
    let extra = rng.range(1, 11);
    ops.extend((0..extra).map(|_| gen_attack_op(rng)));
    ops.truncate(MAX_OPS);
    TenantProgram { ops }
}

/// Draws one program per tenant.
#[must_use]
pub fn gen_programs(rng: &mut FuzzRng, tenants: usize) -> Vec<TenantProgram> {
    (0..tenants).map(|_| gen_program(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programs_are_bounded_and_deterministic() {
        let a = gen_programs(&mut FuzzRng::new(3), 4);
        let b = gen_programs(&mut FuzzRng::new(3), 4);
        assert_eq!(a, b);
        for p in &a {
            assert!(!p.ops.is_empty() && p.ops.len() <= MAX_OPS);
            assert!(p.cycles() >= p.ops.len() as u64);
        }
    }
}
