//! The concrete mutation classes. Each struct is one curated fault
//! template; `catalog::enumerate` instantiates them over the sites found
//! by `sites`.
//!
//! Curation rules: every mutant must lower, must not be behaviourally
//! equivalent to the intact design (no wasted campaign slots), and where
//! a fault is expected to slip past stages 1–2 it names the stage-3
//! adversary that exercises it. Deliberately *excluded* near-variants
//! (fail-closed stuck bits, label removals the inference re-derives) are
//! documented next to each class.

use hdl::{BinOp, Design, LabelExpr, Node, NodeId, Rewriter};
use ifc_lattice::{Label, SecurityTag};

use super::{Mutation, MutationClass, Probe};
use crate::lesion::Lesion;
use crate::scenarios::AttackKind;

/// Forces one `TagLeq` runtime check to a constant. `force = true` is the
/// classic fail-open bypass (the check always passes); `force = false`
/// fails closed and is kept because it must *still* be caught — the
/// static checker loses the discharge permission either way.
pub struct CheckBypass {
    pub(super) node: NodeId,
    pub(super) check: &'static str,
    pub(super) force: bool,
    pub(super) guards_config: bool,
}

impl Mutation for CheckBypass {
    fn class(&self) -> MutationClass {
        MutationClass::CheckBypass
    }
    fn site(&self) -> String {
        format!("{}={}", self.check, u8::from(self.force))
    }
    fn description(&self) -> String {
        format!(
            "tie the '{}' TagLeq check to constant {}",
            self.check,
            u8::from(self.force)
        )
    }
    fn apply(&self, base: &Design) -> Design {
        let mut rw = Rewriter::new(base);
        rw.replace_node(
            self.node,
            Node::Const {
                width: 1,
                value: u128::from(self.force),
            },
        );
        rw.set_name(format!("{}~{}", base.name(), self.id()));
        rw.finish()
    }
    fn probes(&self) -> Vec<Probe> {
        if !self.force {
            return Vec::new();
        }
        if self.guards_config {
            vec![
                Probe::Scenario(AttackKind::ConfigTamper),
                Probe::Scenario(AttackKind::DebugKeyDisclosure),
            ]
        } else {
            vec![Probe::Scenario(AttackKind::ScratchpadOverrun)]
        }
    }
}

/// Breaks the Fig. 8 stall guard so that *any* backpressure stalls the
/// shared pipeline again — the timing channel the guard exists to close.
/// Timing-only: invisible to the static checker and to value tracking;
/// the noninterference probe is the judge.
pub struct StallGuardBreak {
    pub(super) node: NodeId,
    pub(super) which: &'static str,
    pub(super) width: u16,
    pub(super) value: u128,
}

impl Mutation for StallGuardBreak {
    fn class(&self) -> MutationClass {
        MutationClass::StallGuard
    }
    fn site(&self) -> String {
        self.which.to_string()
    }
    fn description(&self) -> String {
        format!(
            "tie stall-guard signal '{}' to {:#x} (stall permitted regardless of stage labels)",
            self.which, self.value
        )
    }
    fn apply(&self, base: &Design) -> Design {
        let mut rw = Rewriter::new(base);
        rw.replace_node(
            self.node,
            Node::Const {
                width: self.width,
                value: self.value,
            },
        );
        rw.set_name(format!("{}~{}", base.name(), self.id()));
        rw.finish()
    }
    fn probes(&self) -> Vec<Probe> {
        vec![
            Probe::Interference,
            Probe::Scenario(AttackKind::TimingChannel),
        ]
    }
}

/// Stuck-at fault on one integrity bit of a tag distribution wire. The
/// patch (`or`/`and` with a mask) rewrites every *consumer* of the signal
/// while the `FromTag` annotations keep pointing at the architected
/// register — the checker's view of the design stays intact while the
/// silicon misbehaves, so these must be killed dynamically.
///
/// Excluded as behaviourally equivalent or fail-closed: all
/// confidentiality bits (stuck-low = leak-free over-classification caught
/// nowhere because nothing changes observably for fleet users; stuck-high
/// rejects lawful traffic), and stuck-at-1 on integrity bits 0/1/3 (no
/// user's integrity crosses an authority threshold through them).
pub struct StuckTagBit {
    pub(super) node: NodeId,
    pub(super) signal: &'static str,
    pub(super) bit: u8,
    pub(super) stuck_one: bool,
}

impl Mutation for StuckTagBit {
    fn class(&self) -> MutationClass {
        MutationClass::StuckTagBit
    }
    fn site(&self) -> String {
        format!("{}.b{}s{}", self.signal, self.bit, u8::from(self.stuck_one))
    }
    fn description(&self) -> String {
        format!(
            "stuck-at-{} fault on tag bit {} of '{}' (annotations untouched)",
            u8::from(self.stuck_one),
            self.bit,
            self.signal
        )
    }
    fn apply(&self, base: &Design) -> Design {
        let mut rw = Rewriter::new(base);
        let (op, mask) = if self.stuck_one {
            (BinOp::Or, 1u128 << self.bit)
        } else {
            (BinOp::And, !(1u128 << self.bit) & 0xFF)
        };
        let mask = rw.add_const(8, mask);
        let patched = rw.add_node(Node::Binary {
            op,
            a: self.node,
            b: mask,
        });
        rw.replace_uses(self.node, patched);
        rw.set_name(format!("{}~{}", base.name(), self.id()));
        rw.finish()
    }
    fn probes(&self) -> Vec<Probe> {
        if self.stuck_one {
            // Integrity bit 2 stuck high inflates user 3 (integ 0b1011) to
            // full supervisor integrity 0b1111 — the master key opens to
            // that one user while Eve stays blocked.
            vec![Probe::MasterKeyAs(3)]
        } else {
            Vec::new()
        }
    }
}

/// What to do to the output declassification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeclassifySwapKind {
    /// Replace the `Declassify` node with a raw passthrough (`data | 0`).
    RawConnect,
    /// Widen the release target from `(P,U)` to `(S,U)` — the release no
    /// longer actually downgrades, so the public port leaks.
    WidenTarget,
    /// Tie the `nm_ok` authority gate high: hardware releases regardless
    /// of the requester's integrity.
    ForceGate,
}

/// Tampers with the nonmalleable output release (Section 3.2.2).
pub struct DeclassifySwap {
    pub(super) node: NodeId,
    pub(super) kind: DeclassifySwapKind,
}

impl Mutation for DeclassifySwap {
    fn class(&self) -> MutationClass {
        MutationClass::DeclassifySwap
    }
    fn site(&self) -> String {
        match self.kind {
            DeclassifySwapKind::RawConnect => "raw-connect".into(),
            DeclassifySwapKind::WidenTarget => "widen-target-su".into(),
            DeclassifySwapKind::ForceGate => "nm-gate=1".into(),
        }
    }
    fn description(&self) -> String {
        match self.kind {
            DeclassifySwapKind::RawConnect => {
                "replace the output declassify with a raw connect (no release point)".into()
            }
            DeclassifySwapKind::WidenTarget => {
                "widen the declassify target label from (P,U) to (S,U)".into()
            }
            DeclassifySwapKind::ForceGate => {
                "tie the nm_ok nonmalleability gate to constant 1".into()
            }
        }
    }
    fn apply(&self, base: &Design) -> Design {
        let mut rw = Rewriter::new(base);
        match self.kind {
            DeclassifySwapKind::RawConnect => {
                let Node::Declassify { data, .. } = *rw.node(self.node) else {
                    unreachable!("site finder located a Declassify node");
                };
                let zero = rw.add_const(128, 0);
                rw.replace_node(
                    self.node,
                    Node::Binary {
                        op: BinOp::Or,
                        a: data,
                        b: zero,
                    },
                );
            }
            DeclassifySwapKind::WidenTarget => {
                let Node::Declassify {
                    data, principal, ..
                } = *rw.node(self.node)
                else {
                    unreachable!("site finder located a Declassify node");
                };
                rw.replace_node(
                    self.node,
                    Node::Declassify {
                        data,
                        to_tag: SecurityTag::from(Label::SECRET_UNTRUSTED).bits(),
                        principal,
                    },
                );
            }
            DeclassifySwapKind::ForceGate => {
                rw.replace_node(self.node, Node::Const { width: 1, value: 1 });
            }
        }
        rw.set_name(format!("{}~{}", base.name(), self.id()));
        rw.finish()
    }
    fn probes(&self) -> Vec<Probe> {
        match self.kind {
            // The gate is pure hardware: tracking stays clean on lawful
            // traffic, so only the misuse adversary exposes it.
            DeclassifySwapKind::ForceGate => vec![Probe::Scenario(AttackKind::MasterKeyMisuse)],
            _ => Vec::new(),
        }
    }
}

/// Rewrites the debug port's release label.
pub struct PortLabelMutant {
    pub(super) port: &'static str,
    pub(super) variant: &'static str,
    pub(super) label: Option<Label>,
}

impl Mutation for PortLabelMutant {
    fn class(&self) -> MutationClass {
        MutationClass::PortLabel
    }
    fn site(&self) -> String {
        format!("{}-{}", self.port, self.variant)
    }
    fn description(&self) -> String {
        match self.label {
            Some(l) => format!("re-label output port '{}' as {l}", self.port),
            None => format!("drop the label annotation on output port '{}'", self.port),
        }
    }
    fn apply(&self, base: &Design) -> Design {
        let mut rw = Rewriter::new(base);
        assert!(
            rw.set_output_label(self.port, self.label.map(LabelExpr::Const)),
            "output port {} exists",
            self.port
        );
        rw.set_name(format!("{}~{}", base.name(), self.id()));
        rw.finish()
    }
    fn probes(&self) -> Vec<Probe> {
        vec![Probe::Scenario(AttackKind::DebugKeyDisclosure)]
    }
}

/// Rewrites a memory's label annotation.
pub struct MemLabelMutant {
    pub(super) mem: &'static str,
    pub(super) variant: &'static str,
    pub(super) label: Label,
}

impl Mutation for MemLabelMutant {
    fn class(&self) -> MutationClass {
        MutationClass::MemLabel
    }
    fn site(&self) -> String {
        format!("{}-{}", self.mem, self.variant)
    }
    fn description(&self) -> String {
        format!("re-label memory '{}' as {}", self.mem, self.label)
    }
    fn apply(&self, base: &Design) -> Design {
        let mut rw = Rewriter::new(base);
        assert!(
            rw.set_mem_label(self.mem, Some(LabelExpr::Const(self.label))),
            "memory {} exists",
            self.mem
        );
        rw.set_name(format!("{}~{}", base.name(), self.id()));
        rw.finish()
    }
    fn probes(&self) -> Vec<Probe> {
        if self.mem == "scratchpad.cells" {
            vec![Probe::Scenario(AttackKind::ScratchpadOverrun)]
        } else {
            Vec::new()
        }
    }
}

/// How to re-route a port past its label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortRerouteKind {
    /// Drive `dbg_out` from the raw probe mux, bypassing the unlock gate,
    /// and solder past the label (an unlabelled tap).
    DebugUnguarded,
    /// Add a brand-new unlabelled output mirroring the probe mux.
    DebugMirror,
    /// Drive the public `out_tag` side channel from a key-register byte.
    OutTagTapsKey,
}

/// Re-routes an output port past its label (the "debug header soldered
/// onto an internal net" fault).
pub struct PortReroute {
    pub(super) kind: PortRerouteKind,
}

impl Mutation for PortReroute {
    fn class(&self) -> MutationClass {
        MutationClass::PortReroute
    }
    fn site(&self) -> String {
        match self.kind {
            PortRerouteKind::DebugUnguarded => "dbg-unguarded".into(),
            PortRerouteKind::DebugMirror => "dbg-mirror".into(),
            PortRerouteKind::OutTagTapsKey => "out-tag-taps-key".into(),
        }
    }
    fn description(&self) -> String {
        match self.kind {
            PortRerouteKind::DebugUnguarded => {
                "drive dbg_out from the raw probe mux with no label".into()
            }
            PortRerouteKind::DebugMirror => {
                "add an unlabelled dbg_mirror output on the probe mux".into()
            }
            PortRerouteKind::OutTagTapsKey => {
                "drive the public out_tag port from a key-register byte".into()
            }
        }
    }
    fn apply(&self, base: &Design) -> Design {
        let mut rw = Rewriter::new(base);
        match self.kind {
            PortRerouteKind::DebugUnguarded | PortRerouteKind::DebugMirror => {
                let dbg = base
                    .outputs()
                    .iter()
                    .find(|p| p.name == "dbg_out")
                    .expect("dbg_out port");
                let Node::Mux { t: probe, .. } = *base.node(dbg.node) else {
                    panic!("dbg_out is the unlock mux");
                };
                if self.kind == PortRerouteKind::DebugUnguarded {
                    rw.set_output_node("dbg_out", probe);
                    rw.set_output_label("dbg_out", None);
                } else {
                    rw.add_output("dbg_mirror", probe, None);
                }
            }
            PortRerouteKind::OutTagTapsKey => {
                let kreg = super::sites::named_node(base, "pipe.key29").expect("pipe.key29");
                let byte = rw.add_node(Node::Slice {
                    a: kreg,
                    hi: 7,
                    lo: 0,
                });
                rw.set_output_node("out_tag", byte);
            }
        }
        rw.set_name(format!("{}~{}", base.name(), self.id()));
        rw.finish()
    }
    fn probes(&self) -> Vec<Probe> {
        match self.kind {
            PortRerouteKind::OutTagTapsKey => Vec::new(),
            _ => vec![Probe::Scenario(AttackKind::DebugKeyDisclosure)],
        }
    }
}

/// Corrupts a pipeline register's `FromTag` annotation into a static
/// `(P,T)` claim — the designer asserting "this stage is public".
///
/// Excluded near-variant: *removing* the annotation entirely, which the
/// checker's inference re-derives from the dataflow (an equivalent
/// mutant, not a hole).
pub struct TagAnnotationMutant {
    pub(super) node: NodeId,
    pub(super) reg: String,
}

impl Mutation for TagAnnotationMutant {
    fn class(&self) -> MutationClass {
        MutationClass::TagAnnotation
    }
    fn site(&self) -> String {
        format!("{}=pt", self.reg)
    }
    fn description(&self) -> String {
        format!(
            "replace the FromTag annotation on '{}' with a static (P,T) claim",
            self.reg
        )
    }
    fn apply(&self, base: &Design) -> Design {
        let mut rw = Rewriter::new(base);
        rw.set_node_label(self.node, Some(LabelExpr::Const(Label::PUBLIC_TRUSTED)));
        rw.set_name(format!("{}~{}", base.name(), self.id()));
        rw.finish()
    }
}

/// Which `DL(way)` table entry of the Fig. 3 shared response-tag store to
/// corrupt, and where.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DlTableKind {
    /// `ctag.out` wire annotation, entry 0: trusted way claimed untrusted.
    WireEntry0Pu,
    /// `ctag.out` wire annotation, entry 1: untrusted way claimed trusted.
    WireEntry1Pt,
    /// `ctag_out` port label, entry 1: untrusted way released as trusted.
    PortEntry1Pt,
    /// `ctag_in` input label, entry 0: untrusted data admitted to the
    /// trusted way.
    InputEntry0Pu,
}

/// Corrupts one dependent-label table entry.
///
/// Excluded near-variants that are sound label *weakenings* rather than
/// holes: widening the output port's entry 0 (`PT → PU` on a release
/// label only loosens what readers may assume) and narrowing the input
/// port's entry 1 (`PU → PT` on an input only over-constrains writers).
pub struct DlTableMutant {
    pub(super) kind: DlTableKind,
}

impl DlTableMutant {
    fn table(&self, sel: NodeId) -> LabelExpr {
        let (e0, e1) = match self.kind {
            DlTableKind::WireEntry0Pu | DlTableKind::InputEntry0Pu => {
                (Label::PUBLIC_UNTRUSTED, Label::PUBLIC_UNTRUSTED)
            }
            DlTableKind::WireEntry1Pt | DlTableKind::PortEntry1Pt => {
                (Label::PUBLIC_TRUSTED, Label::PUBLIC_TRUSTED)
            }
        };
        LabelExpr::Table {
            sel,
            entries: vec![e0, e1],
        }
    }
}

impl Mutation for DlTableMutant {
    fn class(&self) -> MutationClass {
        MutationClass::DlTable
    }
    fn site(&self) -> String {
        match self.kind {
            DlTableKind::WireEntry0Pu => "ctag.out-e0=pu".into(),
            DlTableKind::WireEntry1Pt => "ctag.out-e1=pt".into(),
            DlTableKind::PortEntry1Pt => "ctag_out-e1=pt".into(),
            DlTableKind::InputEntry0Pu => "ctag_in-e0=pu".into(),
        }
    }
    fn description(&self) -> String {
        match self.kind {
            DlTableKind::WireEntry0Pu => {
                "DL(way) on the ctag.out wire: trusted way 0 entry corrupted to (P,U)".into()
            }
            DlTableKind::WireEntry1Pt => {
                "DL(way) on the ctag.out wire: untrusted way 1 entry corrupted to (P,T)".into()
            }
            DlTableKind::PortEntry1Pt => {
                "DL(way) on the ctag_out port: untrusted way 1 entry corrupted to (P,T)".into()
            }
            DlTableKind::InputEntry0Pu => {
                "DL(way) on the ctag_in input: trusted way 0 entry corrupted to (P,U)".into()
            }
        }
    }
    fn apply(&self, base: &Design) -> Design {
        let sel = base.input("ctag_way").expect("ctag_way input");
        let table = self.table(sel);
        let mut rw = Rewriter::new(base);
        match self.kind {
            DlTableKind::WireEntry0Pu | DlTableKind::WireEntry1Pt => {
                let wire = super::sites::named_node(base, "ctag.out").expect("ctag.out wire");
                rw.set_node_label(wire, Some(table));
            }
            DlTableKind::PortEntry1Pt => {
                assert!(rw.set_output_label("ctag_out", Some(table)));
            }
            DlTableKind::InputEntry0Pu => {
                assert!(rw.set_input_label("ctag_in", Some(table)));
            }
        }
        rw.set_name(format!("{}~{}", base.name(), self.id()));
        rw.finish()
    }
}

/// The `mechanism-drop` site key for a lesion (also used by
/// `lesion_study` to restore presentation order).
#[must_use]
pub fn mechanism_site(lesion: Lesion) -> &'static str {
    match lesion {
        Lesion::ScratchpadCheck => "scratchpad-check",
        Lesion::StallPolicy => "stall-policy",
        Lesion::NmRelease => "nm-release",
        Lesion::CfgCheck => "cfg-check",
        Lesion::SupervisorDebug => "supervisor-debug",
    }
}

/// Drops one whole protection mechanism — the old lesion study, now one
/// class among ten. Rebuilds via `protected_with` rather than netlist
/// surgery, so it exercises the builder's own ablation switches.
pub struct MechanismDrop {
    pub(super) lesion: Lesion,
}

impl Mutation for MechanismDrop {
    fn class(&self) -> MutationClass {
        MutationClass::MechanismDrop
    }
    fn site(&self) -> String {
        mechanism_site(self.lesion).into()
    }
    fn description(&self) -> String {
        self.lesion.to_string()
    }
    fn apply(&self, _base: &Design) -> Design {
        self.lesion.design()
    }
    fn probes(&self) -> Vec<Probe> {
        match self.lesion {
            Lesion::StallPolicy => vec![Probe::Interference],
            l => vec![Probe::Scenario(l.guarded_attack())],
        }
    }
}
