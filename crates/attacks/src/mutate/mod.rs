//! The security mutation campaign: prove the enforcement catches what it
//! claims to catch.
//!
//! The attack matrix validates six hand-written scenarios; a regression
//! that silently weakens one tag check or one label annotation would slip
//! past it as long as those six still pass. This module closes the gap by
//! mutation-testing the *verifier*: inject a curated catalogue of faults
//! into the protected design — a bypassed `TagLeq` check, a stuck-at tag
//! bit, a widened port label, a corrupted `DL(sel)` table entry — and
//! require that every mutant is **killed** by one of three stages:
//!
//! 1. **static** — `ifc_check::check` flags the mutant at design time;
//! 2. **runtime** — the PR-2 batched fleet raises a tracking violation
//!    (`DowngradeRejected` / `OutputLeak`) while serving ordinary
//!    multi-user traffic;
//! 3. **attack** — one of the `attacks::scenarios` adversaries, blocked on
//!    the intact design, now succeeds.
//!
//! A mutant surviving all three stages is a hole in the enforcement and
//! fails the build (`mutation_guard` in CI). The **control arm** runs the
//! same catalogue against the unprotected evaluation of each mutant
//! (labels stripped, tracking off): there the only detection left is
//! functional testing, and every class is expected to show at least one
//! silent survivor — the measured value of the enforcement.

mod catalog;
mod classes;
mod pipeline;
mod report;
mod sites;

pub use catalog::enumerate;
pub use classes::mechanism_site;
pub use pipeline::{run_campaign, run_mutant, CampaignConfig, FleetBackend};
pub use report::{KillStage, MutantOutcome, MutationReport};

use hdl::Design;

use crate::scenarios::{run_scenario_on, AttackKind, AttackResult};

/// The fault classes the campaign injects, each mapped to the enforcement
/// mechanism it tries to break (see DESIGN.md for the paper-figure map).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MutationClass {
    /// Force a `TagLeq` runtime check node to a constant (Fig. 5/6 write
    /// guards, decrypt-table read guards, config integrity check).
    CheckBypass,
    /// Break the Fig. 8 confidentiality-meet stall guard so any
    /// backpressure stalls the shared pipeline again.
    StallGuard,
    /// Stuck-at fault on an individual bit of a tag distribution wire;
    /// annotations keep pointing at the architected register.
    StuckTagBit,
    /// Swap the nonmalleable output declassification for a raw connect,
    /// widen its target label, or force its authority gate open.
    DeclassifySwap,
    /// Widen, narrow, or drop the debug port's release label.
    PortLabel,
    /// Widen or narrow a memory label annotation.
    MemLabel,
    /// Re-route an output port past its label (debug tap, tag channel).
    PortReroute,
    /// Corrupt a pipeline register's `FromTag` label annotation.
    TagAnnotation,
    /// Corrupt one entry of a dependent-label `DL(sel)` table (the Fig. 3
    /// shared cache-tag store).
    DlTable,
    /// Drop a whole protection mechanism (the old lesion study, folded
    /// into the campaign).
    MechanismDrop,
}

impl MutationClass {
    /// Every class, in catalogue order.
    pub const ALL: [MutationClass; 10] = [
        MutationClass::CheckBypass,
        MutationClass::StallGuard,
        MutationClass::StuckTagBit,
        MutationClass::DeclassifySwap,
        MutationClass::PortLabel,
        MutationClass::MemLabel,
        MutationClass::PortReroute,
        MutationClass::TagAnnotation,
        MutationClass::DlTable,
        MutationClass::MechanismDrop,
    ];

    /// Stable kebab-case key used in mutant ids and the JSON report.
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            MutationClass::CheckBypass => "check-bypass",
            MutationClass::StallGuard => "stall-guard",
            MutationClass::StuckTagBit => "stuck-tag-bit",
            MutationClass::DeclassifySwap => "declassify-swap",
            MutationClass::PortLabel => "port-label",
            MutationClass::MemLabel => "mem-label",
            MutationClass::PortReroute => "port-reroute",
            MutationClass::TagAnnotation => "tag-annotation",
            MutationClass::DlTable => "dl-table",
            MutationClass::MechanismDrop => "mechanism-drop",
        }
    }

    /// Parses a key back (for JSON round-tripping).
    #[must_use]
    pub fn from_key(key: &str) -> Option<MutationClass> {
        MutationClass::ALL.into_iter().find(|c| c.key() == key)
    }
}

impl std::fmt::Display for MutationClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.key())
    }
}

/// A stage-3 probe: which adversary to replay against a mutant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// One of the six scenario adversaries.
    Scenario(AttackKind),
    /// Master-key misuse attempted *as* a specific user index — used for
    /// integrity-inflating faults that open the master key to one user
    /// while Eve (user 0) stays blocked.
    MasterKeyAs(usize),
    /// The noninterference experiment: Eve's observable trace must not
    /// depend on the victim's activity. This is the judge for timing-only
    /// faults, which no value-flow check can see.
    Interference,
}

impl Probe {
    /// Runs the probe; `succeeded` means the adversary got through.
    #[must_use]
    pub fn run(&self, design: &Design) -> AttackResult {
        use crate::noninterference::eve_trace_on;
        use crate::scenarios::{master_key_misuse_as_on, AttackOutcome};
        match *self {
            Probe::Scenario(kind) => run_scenario_on(kind, design),
            Probe::MasterKeyAs(user) => master_key_misuse_as_on(design, accel::user_label(user)),
            Probe::Interference => {
                let quiet = eve_trace_on(design, 0);
                let noisy = eve_trace_on(design, 1);
                let leaks = quiet != noisy;
                AttackResult {
                    name: "noninterference probe",
                    outcome: if leaks {
                        AttackOutcome::Succeeded
                    } else {
                        AttackOutcome::Blocked
                    },
                    detail: if leaks {
                        "Eve's observable trace depends on the victim's activity".into()
                    } else {
                        "Eve's trace is identical with and without the victim".into()
                    },
                }
            }
        }
    }
}

/// One injectable fault. Implementations are curated: every mutant must
/// lower, must not be behaviourally equivalent to the intact design, and
/// names the stage-3 adversaries that exercise its hole.
pub trait Mutation {
    /// The fault class.
    fn class(&self) -> MutationClass;
    /// Stable site identifier (node / port / memory the fault hits).
    fn site(&self) -> String;
    /// What the fault does, for the report.
    fn description(&self) -> String;
    /// Builds the faulted design.
    fn apply(&self, base: &Design) -> Design;
    /// Stage-3 adversaries worth replaying against this mutant (empty when
    /// the fault is expected to die in stages 1–2).
    fn probes(&self) -> Vec<Probe> {
        Vec::new()
    }
    /// Stable mutant id: `class/site`.
    fn id(&self) -> String {
        format!("{}/{}", self.class().key(), self.site())
    }
}

/// A boxed catalogue entry.
pub type BoxedMutation = Box<dyn Mutation>;
