//! Machine-readable campaign results: `MutationReport` and its JSON
//! encoding. No serde in the vendored dependency set, so the emitter and
//! the (small, strict-enough) parser are hand-rolled here; the proptest
//! suite round-trips arbitrary reports through both.

use std::collections::BTreeMap;
use std::fmt;

use super::MutationClass;

/// Which pipeline stage killed a mutant. The derived order is pipeline
/// order: earlier variants are earlier (cheaper, more diagnosable)
/// detection points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum KillStage {
    /// The static netlist verification suite
    /// (`ifc_check::dataflow::run_static_passes`) raised an error-severity
    /// finding on the lowered mutant, before any simulation.
    Lint,
    /// `ifc_check::check` flagged the faulted design at design time.
    Static,
    /// The noninterference prover found an oracle-confirmed two-run
    /// counterexample on the lowered mutant — a proof-level conviction,
    /// still before any fleet simulation.
    Counterexample,
    /// The batched fleet raised a tracking violation under ordinary
    /// multi-user traffic.
    Runtime,
    /// A scenario adversary, blocked on the intact design, now succeeds.
    Attack,
    /// Control arm only: plain functional testing (wrong or missing
    /// ciphertexts) catches the fault even with enforcement off.
    Functional,
}

impl KillStage {
    /// Stable key used in the JSON report.
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            KillStage::Lint => "lint",
            KillStage::Static => "static",
            KillStage::Counterexample => "counterexample",
            KillStage::Runtime => "runtime",
            KillStage::Attack => "attack",
            KillStage::Functional => "functional",
        }
    }

    /// Parses a key back.
    #[must_use]
    pub fn from_key(key: &str) -> Option<KillStage> {
        [
            KillStage::Lint,
            KillStage::Static,
            KillStage::Counterexample,
            KillStage::Runtime,
            KillStage::Attack,
            KillStage::Functional,
        ]
        .into_iter()
        .find(|s| s.key() == key)
    }

    /// The report's derived `killed_by` category: `"static"` for kills
    /// that needed no simulation (netlist lint, design-time checker),
    /// `"dynamic"` for execution-based kills (tracked fleet traffic,
    /// replayed adversaries), `"functional"` for the control arm's plain
    /// functional testing.
    #[must_use]
    pub fn killed_by(self) -> &'static str {
        match self {
            KillStage::Lint | KillStage::Static | KillStage::Counterexample => "static",
            KillStage::Runtime | KillStage::Attack => "dynamic",
            KillStage::Functional => "functional",
        }
    }
}

impl fmt::Display for KillStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// The fate of one mutant.
#[derive(Debug, Clone, PartialEq)]
pub struct MutantOutcome {
    /// Stable mutant id (`class/site`).
    pub id: String,
    /// The fault class.
    pub class: MutationClass,
    /// The site the fault hit.
    pub site: String,
    /// What the fault did.
    pub description: String,
    /// The killing stage, or `None` for a survivor.
    pub kill: Option<KillStage>,
    /// Kill attribution: the static checker's blame message, the number of
    /// runtime violations, or the succeeding adversary's evidence.
    pub detail: String,
    /// For runtime kills: simulation cycle of the first violation.
    pub cycles_to_kill: Option<u64>,
}

impl MutantOutcome {
    /// Whether the mutant survived every stage.
    #[must_use]
    pub fn survived(&self) -> bool {
        self.kill.is_none()
    }
}

/// The whole campaign's result.
#[derive(Debug, Clone, PartialEq)]
pub struct MutationReport {
    /// Name of the design the catalogue was enumerated against.
    pub design: String,
    /// Whether this is the enforcement-ablated control arm.
    pub control: bool,
    /// Enumeration seed.
    pub seed: u64,
    /// One entry per mutant, in campaign order.
    pub outcomes: Vec<MutantOutcome>,
}

impl MutationReport {
    /// All surviving mutants.
    #[must_use]
    pub fn survivors(&self) -> Vec<&MutantOutcome> {
        self.outcomes.iter().filter(|o| o.survived()).collect()
    }

    /// Kills per stage.
    #[must_use]
    pub fn kills_at(&self, stage: KillStage) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.kill == Some(stage))
            .count()
    }

    /// Distinct classes present in the campaign.
    #[must_use]
    pub fn classes(&self) -> Vec<MutationClass> {
        let set: std::collections::BTreeSet<_> = self.outcomes.iter().map(|o| o.class).collect();
        set.into_iter().collect()
    }

    /// Classes whose every mutant was killed before any simulation ran —
    /// at the [`KillStage::Lint`] or [`KillStage::Static`] stage.
    #[must_use]
    pub fn classes_killed_statically(&self) -> Vec<MutationClass> {
        self.classes()
            .into_iter()
            .filter(|c| {
                self.outcomes
                    .iter()
                    .filter(|o| o.class == *c)
                    .all(|o| o.kill.is_some_and(|k| k.killed_by() == "static"))
            })
            .collect()
    }

    /// Survivor count per class (classes with zero survivors included).
    #[must_use]
    pub fn survivors_by_class(&self) -> BTreeMap<MutationClass, usize> {
        let mut map: BTreeMap<MutationClass, usize> =
            self.classes().into_iter().map(|c| (c, 0)).collect();
        for o in &self.outcomes {
            if o.survived() {
                *map.entry(o.class).or_insert(0) += 1;
            }
        }
        map
    }

    /// Serialises to JSON (stable field order, arbitrary strings escaped).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"design\": \"{}\",\n", esc(&self.design)));
        s.push_str(&format!("  \"control\": {},\n", self.control));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"mutants\": {},\n", self.outcomes.len()));
        s.push_str(&format!("  \"survivors\": {},\n", self.survivors().len()));
        s.push_str("  \"outcomes\": [\n");
        for (i, o) in self.outcomes.iter().enumerate() {
            s.push_str("    {");
            s.push_str(&format!("\"id\": \"{}\", ", esc(&o.id)));
            s.push_str(&format!("\"class\": \"{}\", ", o.class.key()));
            s.push_str(&format!("\"site\": \"{}\", ", esc(&o.site)));
            s.push_str(&format!("\"description\": \"{}\", ", esc(&o.description)));
            match o.kill {
                Some(k) => s.push_str(&format!(
                    "\"kill_stage\": \"{}\", \"killed_by\": \"{}\", ",
                    k.key(),
                    k.killed_by()
                )),
                None => s.push_str("\"kill_stage\": null, \"killed_by\": null, "),
            }
            match o.cycles_to_kill {
                Some(c) => s.push_str(&format!("\"cycles_to_kill\": {c}, ")),
                None => s.push_str("\"cycles_to_kill\": null, "),
            }
            s.push_str(&format!("\"detail\": \"{}\"", esc(&o.detail)));
            s.push_str(if i + 1 == self.outcomes.len() {
                "}\n"
            } else {
                "},\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parses a report back from JSON.
    ///
    /// # Errors
    ///
    /// On malformed JSON or missing/ill-typed fields.
    pub fn from_json(text: &str) -> Result<MutationReport, String> {
        let value = Json::parse(text)?;
        let obj = value.as_obj().ok_or("top level must be an object")?;
        let design = get_str(obj, "design")?;
        let control = match field(obj, "control")? {
            Json::Bool(b) => *b,
            _ => return Err("'control' must be a bool".into()),
        };
        let seed = match field(obj, "seed")? {
            Json::Num(n) => *n,
            _ => return Err("'seed' must be a number".into()),
        };
        let Json::Arr(items) = field(obj, "outcomes")? else {
            return Err("'outcomes' must be an array".into());
        };
        let mut outcomes = Vec::with_capacity(items.len());
        for item in items {
            let o = item.as_obj().ok_or("outcome must be an object")?;
            let class_key = get_str(o, "class")?;
            let class = MutationClass::from_key(&class_key)
                .ok_or_else(|| format!("unknown class '{class_key}'"))?;
            let kill = match field(o, "kill_stage")? {
                Json::Null => None,
                Json::Str(s) => Some(
                    KillStage::from_key(s).ok_or_else(|| format!("unknown kill stage '{s}'"))?,
                ),
                _ => return Err("'kill_stage' must be a string or null".into()),
            };
            let cycles_to_kill = match field(o, "cycles_to_kill")? {
                Json::Null => None,
                Json::Num(n) => Some(*n),
                _ => return Err("'cycles_to_kill' must be a number or null".into()),
            };
            outcomes.push(MutantOutcome {
                id: get_str(o, "id")?,
                class,
                site: get_str(o, "site")?,
                description: get_str(o, "description")?,
                kill,
                detail: get_str(o, "detail")?,
                cycles_to_kill,
            });
        }
        Ok(MutationReport {
            design,
            control,
            seed,
            outcomes,
        })
    }
}

/// Escapes a string for a JSON literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn field<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field '{key}'"))
}

fn get_str(obj: &[(String, Json)], key: &str) -> Result<String, String> {
    match field(obj, key)? {
        Json::Str(s) => Ok(s.clone()),
        _ => Err(format!("'{key}' must be a string")),
    }
}

/// A minimal JSON value and recursive-descent parser — enough for the
/// report schema (and strict on what it accepts).
enum Json {
    Null,
    Bool(bool),
    // The report schema only carries non-negative integers (seeds, cycle
    // and mutant counts); parsing them exactly — not via f64 — keeps u64
    // seeds round-trippable.
    Num(u64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut obj = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(obj));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                obj.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(obj));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(arr));
            }
            loop {
                arr.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(arr));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len() && b[*pos].is_ascii_digit() {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = Vec::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => {
                return String::from_utf8(out).map_err(|_| "invalid UTF-8 in string".into());
            }
            b'\\' => {
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b'r' => out.push(b'\r'),
                    b't' => out.push(b'\t'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        *pos += 4;
                        let ch = char::from_u32(code).ok_or("bad \\u code point")?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                    }
                    _ => return Err(format!("unknown escape '\\{}'", esc as char)),
                }
            }
            c => out.push(c),
        }
    }
    Err("unterminated string".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MutationReport {
        MutationReport {
            design: "protected".into(),
            control: false,
            seed: 2019,
            outcomes: vec![
                MutantOutcome {
                    id: "check-bypass/scratchpad-wr=1".into(),
                    class: MutationClass::CheckBypass,
                    site: "scratchpad-wr=1".into(),
                    description: "tie the check high".into(),
                    kill: Some(KillStage::Static),
                    detail: "cannot write \"key\" into memory [via a → b]".into(),
                    cycles_to_kill: None,
                },
                MutantOutcome {
                    id: "stall-guard/permitted=1".into(),
                    class: MutationClass::StallGuard,
                    site: "permitted=1".into(),
                    description: "tie stall permitted\nhigh".into(),
                    kill: None,
                    detail: String::new(),
                    cycles_to_kill: Some(137),
                },
            ],
        }
    }

    #[test]
    fn json_round_trips() {
        let report = sample();
        let json = report.to_json();
        let back = MutationReport::from_json(&json).expect("parses");
        assert_eq!(report, back);
    }

    #[test]
    fn escaping_survives_awkward_strings() {
        let mut report = sample();
        report.outcomes[0].detail = "quote \" backslash \\ tab \t ctrl \u{1} arrow →".into();
        let back = MutationReport::from_json(&report.to_json()).expect("parses");
        assert_eq!(report, back);
    }

    #[test]
    fn survivor_accounting() {
        let report = sample();
        assert_eq!(report.survivors().len(), 1);
        assert_eq!(report.kills_at(KillStage::Static), 1);
        assert_eq!(report.survivors_by_class()[&MutationClass::StallGuard], 1);
        assert_eq!(report.survivors_by_class()[&MutationClass::CheckBypass], 0);
    }

    #[test]
    fn killed_by_categories_and_static_classes() {
        assert_eq!(KillStage::Lint.killed_by(), "static");
        assert_eq!(KillStage::Static.killed_by(), "static");
        assert_eq!(KillStage::Counterexample.killed_by(), "static");
        assert_eq!(KillStage::Runtime.killed_by(), "dynamic");
        assert_eq!(KillStage::Attack.killed_by(), "dynamic");
        assert_eq!(KillStage::Functional.killed_by(), "functional");

        let mut report = sample();
        // CheckBypass has its sole mutant killed statically; StallGuard's
        // survived, so only CheckBypass counts.
        assert_eq!(
            report.classes_killed_statically(),
            vec![MutationClass::CheckBypass]
        );
        report.outcomes[1].kill = Some(KillStage::Lint);
        assert_eq!(
            report.classes_killed_statically(),
            vec![MutationClass::CheckBypass, MutationClass::StallGuard]
        );
        report.outcomes[1].kill = Some(KillStage::Runtime);
        assert_eq!(
            report.classes_killed_statically(),
            vec![MutationClass::CheckBypass]
        );
    }

    #[test]
    fn killed_by_column_appears_in_json() {
        let json = sample().to_json();
        assert!(json.contains("\"killed_by\": \"static\""));
        assert!(json.contains("\"killed_by\": null"));
        let back = MutationReport::from_json(&json).expect("parses");
        assert_eq!(back, sample());
    }
}
