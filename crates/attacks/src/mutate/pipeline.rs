//! The four-stage kill pipeline and the campaign runner.

use accel::fleet::{run_fleet_batched, run_fleet_native, FleetConfig};
use hdl::{Design, Rewriter};
use ifc_check::{run_static_passes, LintConfig, Severity};
use sim::TrackMode;

use super::report::{KillStage, MutantOutcome, MutationReport};
use super::{catalog, Mutation};

/// Which lane-parallel executor serves the runtime (stage-3) fleet
/// traffic.
///
/// The batched interpreter is the default: it starts instantly, which
/// matters when the campaign pushes dozens of *distinct* mutant netlists
/// through the fleet. The native-codegen backend routes the same traffic
/// through `rustc`-compiled executors instead — every kill must hold
/// there too, but each mutant netlist is a fresh compile-cache key, so a
/// full-catalogue native run pays one `rustc` invocation per (mutant,
/// lane width) and is an explicit opt-in (`mutation_guard --backend
/// native`), not the CI default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FleetBackend {
    /// The lane-batched interpreter ([`sim::BatchedSim`]).
    #[default]
    Batched,
    /// The native-codegen executor ([`sim::NativeSim`]).
    Native,
}

/// Campaign parameters.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Enumeration-order seed (also the fleet's traffic seed).
    pub seed: u64,
    /// Tracking mode for the runtime stage.
    pub mode: TrackMode,
    /// Fleet sessions. Four covers all user labels — their integrity
    /// values {2, 5, 8, 11} together exercise every integrity tag bit,
    /// which is what makes the stuck-bit class killable by traffic alone.
    pub sessions: usize,
    /// Encryptions per session in the runtime stage.
    pub blocks_per_session: usize,
    /// Control arm: skip the static stage, strip every label, track
    /// nothing — the unprotected evaluation of the same fault.
    pub control: bool,
    /// Run the noninterference prover (stage 2½) on each mutant between
    /// the static check and the fleet: an oracle-confirmed two-run
    /// counterexample kills at [`KillStage::Counterexample`]. Opt-in —
    /// prover cost is mutant-shaped, and attribution-sensitive
    /// consumers enable it explicitly.
    pub prove: bool,
    /// Lane-parallel executor for the runtime stage.
    pub backend: FleetBackend,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            seed: 2019,
            mode: TrackMode::Precise,
            sessions: 4,
            blocks_per_session: 4,
            control: false,
            prove: false,
            backend: FleetBackend::Batched,
        }
    }
}

impl CampaignConfig {
    /// The enforcement-ablated control arm of the same campaign.
    #[must_use]
    pub fn control_arm(self) -> CampaignConfig {
        CampaignConfig {
            control: true,
            ..self
        }
    }
}

/// Pushes one mutant through the kill pipeline.
///
/// Protected arm: netlist lint → static check → fleet traffic under
/// tracking → stage-4 adversaries. Control arm: labels stripped, tracking
/// off; the only detector left is functional verification of the fleet's
/// ciphertexts — exactly what a test suite without IFC would see.
///
/// A mutant that fails to lower is reported as a *survivor* with a
/// curation-error detail: the guard must fail loudly on a broken
/// catalogue rather than count a build error as a kill.
#[must_use]
pub fn run_mutant(base: &Design, mutation: &dyn Mutation, cfg: &CampaignConfig) -> MutantOutcome {
    let design = mutation.apply(base);
    let mut outcome = MutantOutcome {
        id: mutation.id(),
        class: mutation.class(),
        site: mutation.site(),
        description: mutation.description(),
        kill: None,
        detail: String::new(),
        cycles_to_kill: None,
    };

    // Lower once up front: the netlist feeds the lint stage and the fleet.
    let sim_design = if cfg.control {
        let mut rw = Rewriter::new(&design);
        rw.strip_labels();
        rw.finish()
    } else {
        design.clone()
    };
    let net = match sim_design.lower() {
        Ok(net) => net,
        Err(e) => {
            outcome.detail = format!("curation error: mutant does not lower: {e:?}");
            return outcome;
        }
    };

    // Stages 1–2 are pre-execution and skipped in the control arm — an
    // unprotected flow has neither a netlist lint nor a checker.
    if !cfg.control {
        // Stage 1: the static netlist verification suite on the lowered
        // mutant, before any simulation.
        let lint = run_static_passes(Some(&design), &net, &LintConfig::new());
        let errors: Vec<_> = lint
            .findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .collect();
        if let Some(first) = errors.first() {
            outcome.kill = Some(KillStage::Lint);
            outcome.detail = format!("{} lint error(s); first: {first}", errors.len());
            return outcome;
        }

        // Stage 2: design-time verification.
        let report = ifc_check::check(&design);
        if let Some(first) = report.violations.first() {
            outcome.kill = Some(KillStage::Static);
            outcome.detail = format!(
                "{} static violation(s); first: {first}",
                report.violations.len()
            );
            return outcome;
        }

        // Stage 2½ (opt-in): the noninterference prover. Shallow
        // unrolling with tight budgets — only an oracle-confirmed
        // counterexample convicts, so `unknown` just falls through to
        // the fleet.
        if cfg.prove {
            let opts = ifc_check::prover::ProveOptions {
                k: 4,
                max_nodes: 400_000,
                max_conflicts: 20_000,
                ..ifc_check::prover::ProveOptions::default()
            };
            let prove_report = ifc_check::prover::prove_annotated(&net, &opts);
            let confirmed: Vec<_> = prove_report
                .results
                .iter()
                .filter_map(|r| match &r.verdict {
                    ifc_check::prover::Verdict::Counterexample(cex) if cex.confirmed => {
                        Some((r.name.clone(), cex.cycle))
                    }
                    _ => None,
                })
                .collect();
            if let Some((name, cycle)) = confirmed.first() {
                outcome.kill = Some(KillStage::Counterexample);
                outcome.cycles_to_kill = Some(u64::from(*cycle));
                outcome.detail = format!(
                    "{} oracle-confirmed noninterference counterexample(s); \
                     first: {name} differs at cycle {cycle}",
                    confirmed.len()
                );
                return outcome;
            }
        }
    }

    // Stage 3: ordinary multi-user fleet traffic.
    let fleet_cfg = FleetConfig {
        sessions: cfg.sessions,
        blocks_per_session: cfg.blocks_per_session,
        mode: if cfg.control {
            TrackMode::Off
        } else {
            cfg.mode
        },
        seed: cfg.seed,
    };
    let stats = match cfg.backend {
        FleetBackend::Batched => run_fleet_batched(&net, fleet_cfg),
        FleetBackend::Native => run_fleet_native(&net, fleet_cfg),
    };
    if cfg.control {
        // No tracking, no checker: only functional testing is left.
        if !stats.functionally_clean(cfg.blocks_per_session) {
            outcome.kill = Some(KillStage::Functional);
            outcome.detail =
                "functional testing catches the fault (missing or wrong ciphertexts)".into();
        } else {
            outcome.detail = "functionally clean — invisible without enforcement".into();
        }
        return outcome;
    }
    if stats.total_violations() > 0 {
        outcome.kill = Some(KillStage::Runtime);
        outcome.cycles_to_kill = stats.first_violation_cycle();
        outcome.detail = format!(
            "{} tracking violation(s) raised by ordinary fleet traffic",
            stats.total_violations()
        );
        return outcome;
    }

    // Stage 4: replay the adversaries this fault should re-enable.
    for probe in mutation.probes() {
        let result = probe.run(&design);
        if result.succeeded() {
            outcome.kill = Some(KillStage::Attack);
            outcome.detail = format!("{}: {}", result.name, result.detail);
            return outcome;
        }
    }

    outcome.detail = "survived lint, static, runtime, and attack stages".into();
    outcome
}

/// Runs the whole campaign: enumerate the catalogue against `base` and
/// push every mutant through the pipeline.
#[must_use]
pub fn run_campaign(base: &Design, cfg: &CampaignConfig) -> MutationReport {
    let mutants = catalog::enumerate(base, cfg.seed);
    MutationReport {
        design: if cfg.control {
            format!("{} (control: enforcement ablated)", base.name())
        } else {
            base.name().to_string()
        },
        control: cfg.control,
        seed: cfg.seed,
        outcomes: mutants
            .iter()
            .map(|m| run_mutant(base, m.as_ref(), cfg))
            .collect(),
    }
}
