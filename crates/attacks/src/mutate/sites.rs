//! Structural site finders: locate the enforcement hardware inside the
//! protected design by shape and name, not by hard-coded node ids, so the
//! catalogue survives unrelated builder changes.

use hdl::{BinOp, Design, Node, NodeId};

/// A located `TagLeq` runtime check.
#[derive(Debug, Clone)]
pub struct TagCheck {
    /// The check node.
    pub node: NodeId,
    /// Stable site name derived from what the check guards.
    pub site: &'static str,
    /// Whether this is the configuration-integrity check (drives the
    /// config-tamper / debug probes rather than the scratchpad ones).
    pub guards_config: bool,
}

/// Every `TagLeq` check node, classified by the memory whose tags it
/// reads: the Fig. 5 scratchpad write guard, the two decrypt-table read
/// guards, and the config-integrity check (no memory operand).
#[must_use]
pub fn tag_checks(design: &Design) -> Vec<TagCheck> {
    let mem_name = |id: NodeId| -> Option<&str> {
        match *design.node(id) {
            Node::MemRead { mem, .. } => Some(design.mems()[mem.index()].name.as_str()),
            _ => None,
        }
    };
    let mut decpad_seen = 0usize;
    design
        .node_ids()
        .filter_map(|id| {
            let Node::Binary {
                op: BinOp::TagLeq,
                b,
                ..
            } = *design.node(id)
            else {
                return None;
            };
            let (site, guards_config) = match mem_name(b) {
                Some("scratchpad.tags") => ("scratchpad-wr", false),
                Some("decpad.tags") => {
                    decpad_seen += 1;
                    (
                        if decpad_seen == 1 {
                            "decpad-rd-hi"
                        } else {
                            "decpad-rd-lo"
                        },
                        false,
                    )
                }
                _ => ("cfg-integrity", true),
            };
            Some(TagCheck {
                node: id,
                site,
                guards_config,
            })
        })
        .collect()
}

/// The Fig. 8 stall guard, located by shape: `permitted = (meet_conf >=
/// req_conf)` is the unique `Ge` whose operands are both `Slice{7,4}` of
/// 8-bit tags.
#[derive(Debug, Clone, Copy)]
pub struct StallGuard {
    /// The `permitted` comparison node.
    pub permitted: NodeId,
    /// The `req_conf` slice operand.
    pub req_conf: NodeId,
    /// The root of the pipeline-wide `TagMeet` reduction tree.
    pub meet_root: NodeId,
}

/// Finds the stall guard; `None` on designs built without it.
#[must_use]
pub fn stall_guard(design: &Design) -> Option<StallGuard> {
    let conf_slice = |id: NodeId| matches!(*design.node(id), Node::Slice { hi: 7, lo: 4, .. });
    design.node_ids().find_map(|id| {
        let Node::Binary {
            op: BinOp::Ge,
            a,
            b,
        } = *design.node(id)
        else {
            return None;
        };
        if !(conf_slice(a) && conf_slice(b)) {
            return None;
        }
        let Node::Slice { a: meet_root, .. } = *design.node(a) else {
            return None;
        };
        Some(StallGuard {
            permitted: id,
            req_conf: b,
            meet_root,
        })
    })
}

/// The nonmalleable-release authority gate `nm_ok`, located by shape: the
/// final `Ge` whose left operand is the authority mux and whose right is a
/// `Slice{7,4}` confidentiality extract.
#[must_use]
pub fn nm_gate(design: &Design) -> Option<NodeId> {
    design.node_ids().find(|&id| {
        let Node::Binary {
            op: BinOp::Ge,
            a,
            b,
        } = *design.node(id)
        else {
            return false;
        };
        matches!(*design.node(a), Node::Mux { .. })
            && matches!(*design.node(b), Node::Slice { hi: 7, lo: 4, .. })
    })
}

/// The output declassification node (`released`).
#[must_use]
pub fn declassify_node(design: &Design) -> Option<NodeId> {
    design
        .node_ids()
        .find(|&id| matches!(design.node(id), Node::Declassify { .. }))
}

/// A node found by its builder-assigned name.
#[must_use]
pub fn named_node(design: &Design, name: &str) -> Option<NodeId> {
    design
        .node_ids()
        .find(|&id| design.name_of(id) == Some(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel::{baseline, protected};

    #[test]
    fn protected_design_has_every_site() {
        let d = protected();
        let checks = tag_checks(&d);
        assert_eq!(checks.len(), 4, "{checks:?}");
        assert_eq!(checks.iter().filter(|c| c.guards_config).count(), 1);
        let sg = stall_guard(&d).expect("stall guard");
        assert!(matches!(
            d.node(sg.meet_root),
            Node::Binary {
                op: BinOp::TagMeet,
                ..
            }
        ));
        assert!(nm_gate(&d).is_some());
        assert!(declassify_node(&d).is_some());
        assert!(named_node(&d, "pipe.tag0").is_some());
        assert!(named_node(&d, "ctag.out").is_some());
    }

    #[test]
    fn baseline_has_no_enforcement_sites() {
        let d = baseline();
        assert!(tag_checks(&d).is_empty());
        assert!(stall_guard(&d).is_none());
        assert!(declassify_node(&d).is_none());
    }
}
