//! Deterministic seeded mutant enumeration.
//!
//! The catalogue is assembled in a fixed canonical order from the sites
//! the finders locate, then permuted by a seeded Fisher–Yates shuffle so
//! campaigns can randomise execution order (useful for shard-splitting in
//! CI) while staying exactly reproducible: the same design and seed
//! always yield the same mutant id sequence.

use hdl::Design;

use super::classes::{
    CheckBypass, DeclassifySwap, DeclassifySwapKind, DlTableKind, DlTableMutant, MechanismDrop,
    MemLabelMutant, PortLabelMutant, PortReroute, PortRerouteKind, StallGuardBreak, StuckTagBit,
    TagAnnotationMutant,
};
use super::{sites, BoxedMutation};
use crate::lesion::Lesion;
use ifc_lattice::Label;

/// SplitMix64: tiny, seedable, and good enough for a permutation.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn shuffle<T>(items: &mut [T], seed: u64) {
    let mut rng = SplitMix64(seed);
    for i in (1..items.len()).rev() {
        #[allow(clippy::cast_possible_truncation)]
        let j = (rng.next() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

/// Enumerates the full curated catalogue against `design` (the protected
/// accelerator), in a seed-determined order.
#[must_use]
pub fn enumerate(design: &Design, seed: u64) -> Vec<BoxedMutation> {
    let mut out: Vec<BoxedMutation> = Vec::new();

    // -- check-bypass: every TagLeq × {tie-low, tie-high} ------------------
    for check in sites::tag_checks(design) {
        for force in [false, true] {
            out.push(Box::new(CheckBypass {
                node: check.node,
                check: check.site,
                force,
                guards_config: check.guards_config,
            }));
        }
    }

    // -- stall-guard: three ways to make "stall permitted" unconditional --
    if let Some(sg) = sites::stall_guard(design) {
        out.push(Box::new(StallGuardBreak {
            node: sg.permitted,
            which: "permitted=1",
            width: 1,
            value: 1,
        }));
        out.push(Box::new(StallGuardBreak {
            node: sg.meet_root,
            which: "meet=top",
            width: 8,
            value: 0xFF,
        }));
        out.push(Box::new(StallGuardBreak {
            node: sg.req_conf,
            which: "req-conf=0",
            width: 4,
            value: 0,
        }));
    }

    // -- stuck-tag-bit: five tag signals × {4 integ bits stuck low,
    //    authority-crossing bit 2 stuck high} ------------------------------
    let tag_signals: [(&str, Option<hdl::NodeId>); 5] = [
        ("in_tag", design.input("in_tag")),
        ("pipe.tag0", sites::named_node(design, "pipe.tag0")),
        ("pipe.tag9", sites::named_node(design, "pipe.tag9")),
        ("pipe.tag19", sites::named_node(design, "pipe.tag19")),
        ("pipe.tag29", sites::named_node(design, "pipe.tag29")),
    ];
    for (signal, node) in tag_signals {
        let Some(node) = node else { continue };
        for bit in 0..4u8 {
            out.push(Box::new(StuckTagBit {
                node,
                signal,
                bit,
                stuck_one: false,
            }));
        }
        out.push(Box::new(StuckTagBit {
            node,
            signal,
            bit: 2,
            stuck_one: true,
        }));
    }

    // -- declassify-swap ---------------------------------------------------
    if let Some(decl) = sites::declassify_node(design) {
        for kind in [
            DeclassifySwapKind::RawConnect,
            DeclassifySwapKind::WidenTarget,
        ] {
            out.push(Box::new(DeclassifySwap { node: decl, kind }));
        }
    }
    if let Some(gate) = sites::nm_gate(design) {
        out.push(Box::new(DeclassifySwap {
            node: gate,
            kind: DeclassifySwapKind::ForceGate,
        }));
    }

    // -- port-label: widen / narrow / drop the debug release --------------
    for (variant, label) in [
        ("widen-pu", Some(Label::PUBLIC_UNTRUSTED)),
        ("narrow-st", Some(Label::SECRET_TRUSTED)),
        ("drop", None),
    ] {
        out.push(Box::new(PortLabelMutant {
            port: "dbg_out",
            variant,
            label,
        }));
    }

    // -- mem-label ---------------------------------------------------------
    for (mem, variant, label) in [
        ("scratchpad.cells", "pt", Label::PUBLIC_TRUSTED),
        ("scratchpad.cells", "st", Label::SECRET_TRUSTED),
        ("decpad.cells", "pt", Label::PUBLIC_TRUSTED),
        ("decpad.cells", "st", Label::SECRET_TRUSTED),
        ("ctag.way0", "widen-pu", Label::PUBLIC_UNTRUSTED),
        ("ctag.way1", "narrow-pt", Label::PUBLIC_TRUSTED),
    ] {
        out.push(Box::new(MemLabelMutant {
            mem,
            variant,
            label,
        }));
    }

    // -- port-reroute ------------------------------------------------------
    for kind in [
        PortRerouteKind::DebugUnguarded,
        PortRerouteKind::DebugMirror,
        PortRerouteKind::OutTagTapsKey,
    ] {
        out.push(Box::new(PortReroute { kind }));
    }

    // -- tag-annotation: data and key registers at four pipeline depths ---
    for stage in [0usize, 9, 19, 29] {
        for kind in ["data", "key"] {
            let reg = format!("pipe.{kind}{stage}");
            if let Some(node) = sites::named_node(design, &reg) {
                out.push(Box::new(TagAnnotationMutant { node, reg }));
            }
        }
    }

    // -- dl-table ----------------------------------------------------------
    if design.input("ctag_way").is_some() {
        for kind in [
            DlTableKind::WireEntry0Pu,
            DlTableKind::WireEntry1Pt,
            DlTableKind::PortEntry1Pt,
            DlTableKind::InputEntry0Pu,
        ] {
            out.push(Box::new(DlTableMutant { kind }));
        }
    }

    // -- mechanism-drop: the folded-in lesion study ------------------------
    for lesion in Lesion::ALL {
        out.push(Box::new(MechanismDrop { lesion }));
    }

    shuffle(&mut out, seed);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel::protected;

    #[test]
    fn catalogue_size_and_class_spread() {
        let d = protected();
        let muts = enumerate(&d, 7);
        assert!(muts.len() >= 60, "only {} mutants", muts.len());
        let classes: std::collections::BTreeSet<_> = muts.iter().map(|m| m.class()).collect();
        assert!(classes.len() >= 6, "only {} classes", classes.len());
        // Ids are unique.
        let ids: std::collections::BTreeSet<_> = muts.iter().map(|m| m.id()).collect();
        assert_eq!(ids.len(), muts.len());
    }

    #[test]
    fn enumeration_is_deterministic_per_seed() {
        let d = protected();
        let a: Vec<String> = enumerate(&d, 42).iter().map(|m| m.id()).collect();
        let b: Vec<String> = enumerate(&d, 42).iter().map(|m| m.id()).collect();
        let c: Vec<String> = enumerate(&d, 43).iter().map(|m| m.id()).collect();
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should permute differently");
    }
}
