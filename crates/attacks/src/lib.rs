//! Attack scenarios against the AES accelerator.
//!
//! Each scenario models one of the vulnerability classes the paper
//! discusses (Sections 2.1 and 3.1) as an executable adversary program
//! driving the simulated hardware:
//!
//! | scenario | paper reference | baseline | protected |
//! |---|---|---|---|
//! | [`timing_channel`] | pipeline-sharing covert channel \[20\] | succeeds | blocked by Fig. 8 stall policy |
//! | [`scratchpad_overrun`] | buffer error over the key scratchpad (Fig. 5) | succeeds | blocked by tag check |
//! | [`debug_key_disclosure`] | trace-buffer attack on AES \[10\] | succeeds | blocked by port label + config integrity |
//! | [`partial_result_disclosure`] | publicly visible partial result \[6\] | succeeds | blocked by port label |
//! | [`master_key_misuse`] | inappropriate key use (Section 3.2.2) | succeeds | blocked by nonmalleable declassification |
//! | [`config_tamper`] | debug peripheral unlock via config | succeeds | blocked by integrity check |
//!
//! [`attack_matrix`] runs every scenario against both designs and is the
//! data source for the `attack_matrix` benchmark binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
mod keysched;
pub mod lesion;
mod matrix;
pub mod mutate;
pub mod noninterference;
mod scenarios;
pub mod trojan;

pub use keysched::invert_key_expansion;
pub use lesion::{lesion_study, Lesion};
pub use matrix::{attack_matrix, static_findings, usability_checks, AttackReport};
pub use mutate::{
    enumerate, run_campaign, run_mutant, CampaignConfig, KillStage, MutantOutcome, Mutation,
    MutationClass, MutationReport,
};
pub use noninterference::{eve_trace, eve_trace_on, noninterference_holds, EveTrace};
pub use scenarios::{
    config_tamper, debug_key_disclosure, design_for, master_key_misuse, master_key_misuse_as_on,
    partial_result_disclosure, run_scenario_on, scratchpad_overrun, supervisor_master_key_use,
    timing_channel, AttackKind, AttackOutcome, AttackResult,
};
pub use trojan::{trojan_exfiltration, trojan_static_detection};
