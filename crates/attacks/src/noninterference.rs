//! Experimental noninterference testing.
//!
//! The gold-standard check for the paper's isolation claims: run the
//! *same* attacker workload twice while varying only the victim's secrets
//! (her plaintext and her secret-dependent behaviour), and compare the
//! attacker's complete observable trace bit by bit. If the traces are
//! identical for every secret, the attacker learns nothing — by
//! *experiment*, complementing the checker's static argument.
//!
//! The victim's secret influences two things, mirroring the paper's
//! Section 3.1 covert channel: the plaintext she encrypts, and whether
//! her receiver performs a slow DMA (stalling her output) during a fixed
//! window.

use accel::driver::{AccelDriver, Request};
use accel::{user_label, Protection};

/// Everything the attacker (Eve) can observe across one run: the arbiter
/// grant (`in_ready`) on every cycle she probes, and her own responses
/// with their completion cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EveTrace {
    /// Per-probe `in_ready` observations (cycle, value).
    pub in_ready: Vec<(u64, bool)>,
    /// Eve's own completions: (cycle, ciphertext).
    pub responses: Vec<(u64, [u8; 16])>,
}

/// Runs the fixed attacker workload while the victim behaves according to
/// `secret`, returning Eve's observable trace.
///
/// Schedule (cycles relative to start): Alice submits a secret-dependent
/// block at t=10 (due out t=40); if the secret's low bit is set her
/// receiver blocks over t ∈ \[38, 58\]; Eve submits a fixed block at t=35
/// (due out t=65, after the window) and probes `in_ready` on every other
/// cycle.
#[must_use]
pub fn eve_trace(protection: Protection, secret: u8) -> EveTrace {
    eve_trace_on(&crate::scenarios::design_for(protection), secret)
}

/// [`eve_trace`] against an arbitrary (e.g. lesioned) design.
#[must_use]
pub fn eve_trace_on(design: &hdl::Design, secret: u8) -> EveTrace {
    let mut drv = AccelDriver::from_design(design, sim::TrackMode::Precise);
    let alice = user_label(1);
    let eve = user_label(0);
    drv.load_key(0, [0xA1; 16], alice);
    drv.load_key(1, [0xE5; 16], eve);

    let victim_blocks_receiver = secret & 1 == 1;
    let victim_plaintext = [secret; 16];

    let start = drv.cycle();
    let mut trace = EveTrace {
        in_ready: Vec::new(),
        responses: Vec::new(),
    };
    let mut alice_sent = false;
    let mut eve_sent = false;
    while drv.cycle() - start < 130 {
        let t = drv.cycle() - start;
        drv.set_receiver_ready(!(victim_blocks_receiver && (38..=58).contains(&t)));
        if !alice_sent && t >= 10 {
            alice_sent = drv.try_submit(&Request {
                block: victim_plaintext,
                key_slot: 0,
                user: alice,
            });
        } else if !eve_sent && t >= 35 {
            eve_sent = drv.try_submit(&Request {
                block: [0xEE; 16],
                key_slot: 1,
                user: eve,
            });
        } else {
            let ready = drv.probe_in_ready();
            trace.in_ready.push((t, ready));
        }
    }
    for r in &drv.responses {
        if r.user == eve {
            trace.responses.push((r.completed - start, r.block));
        }
    }
    trace
}

/// Whether the attacker's trace is independent of the victim's secret —
/// compared across a spread of secret values.
#[must_use]
pub fn noninterference_holds(protection: Protection) -> bool {
    let reference = eve_trace(protection, 0);
    [1u8, 2, 3, 0x80, 0xff]
        .iter()
        .all(|&s| eve_trace(protection, s) == reference)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protected_design_is_experimentally_noninterferent() {
        assert!(
            noninterference_holds(Protection::Full),
            "Eve's trace must not depend on Alice's secret"
        );
    }

    #[test]
    fn baseline_interferes_through_the_stall() {
        let quiet = eve_trace(Protection::Off, 0);
        let noisy = eve_trace(Protection::Off, 1);
        assert_ne!(
            quiet, noisy,
            "the baseline's shared stall leaks the victim's behaviour"
        );
        // Specifically: Eve's completion time moves.
        assert_ne!(quiet.responses[0].0, noisy.responses[0].0);
    }

    #[test]
    fn secret_values_alone_do_not_change_eve_values() {
        // Even on the baseline, varying only the *plaintext* (secret bit
        // clear, so no stall behaviour change) leaves Eve's own ciphertext
        // unchanged — the leak is through timing/behaviour, which is
        // exactly what the protected design removes.
        let a = eve_trace(Protection::Off, 0);
        let b = eve_trace(Protection::Off, 2);
        assert_eq!(a.responses, b.responses);
    }

    #[test]
    fn eve_still_gets_her_answer() {
        let t = eve_trace(Protection::Full, 1);
        assert_eq!(t.responses.len(), 1, "usability: Eve's work completes");
    }
}
