//! Key-schedule inversion: why leaking *any* round key leaks the key.

use aes_core::SBOX;

/// AES round constants.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// Inverts one AES-128 key-expansion step: given round key `r + 1` (and
/// `r`'s round-constant index), recovers round key `r`.
///
/// This is what makes the debug-peripheral attack devastating: the
/// key-expansion pipeline registers hold round keys, and every round key
/// walks back to the cipher key.
#[must_use]
pub fn invert_key_expansion(next: [u8; 16], rcon_index: usize) -> [u8; 16] {
    let w = |rk: &[u8; 16], i: usize| -> [u8; 4] {
        [rk[4 * i], rk[4 * i + 1], rk[4 * i + 2], rk[4 * i + 3]]
    };
    let xor4 = |a: [u8; 4], b: [u8; 4]| -> [u8; 4] {
        [a[0] ^ b[0], a[1] ^ b[1], a[2] ^ b[2], a[3] ^ b[3]]
    };
    let n0 = w(&next, 0);
    let n1 = w(&next, 1);
    let n2 = w(&next, 2);
    let n3 = w(&next, 3);
    // Forward: n0 = w0 ^ g(w3), n1 = w1 ^ n0, n2 = w2 ^ n1, n3 = w3 ^ n2.
    let w3 = xor4(n3, n2);
    let w2 = xor4(n2, n1);
    let w1 = xor4(n1, n0);
    let mut g = [w3[1], w3[2], w3[3], w3[0]].map(|b| SBOX[b as usize]);
    g[0] ^= RCON[rcon_index];
    let w0 = xor4(n0, g);
    let mut prev = [0u8; 16];
    prev[0..4].copy_from_slice(&w0);
    prev[4..8].copy_from_slice(&w1);
    prev[8..12].copy_from_slice(&w2);
    prev[12..16].copy_from_slice(&w3);
    prev
}

/// Walks a leaked round key all the way back to the cipher key.
#[must_use]
pub fn recover_cipher_key(mut round_key: [u8; 16], round: usize) -> [u8; 16] {
    for r in (0..round).rev() {
        round_key = invert_key_expansion(round_key, r);
    }
    round_key
}

#[cfg(test)]
mod tests {
    use super::*;
    use aes_core::KeySchedule;

    #[test]
    fn inverts_every_expansion_step() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let ks = KeySchedule::expand(&key).unwrap();
        for r in 0..10 {
            assert_eq!(
                invert_key_expansion(ks.round_key(r + 1), r),
                ks.round_key(r),
                "round {r}"
            );
        }
    }

    #[test]
    fn recovers_cipher_key_from_any_round_key() {
        let key = [0x42u8; 16];
        let ks = KeySchedule::expand(&key).unwrap();
        for r in 1..=10 {
            assert_eq!(recover_cipher_key(ks.round_key(r), r), key);
        }
    }
}
