//! Shared scenario-driving harness.
//!
//! The attack matrix is consumed from three places — the integration
//! tests, the `attack_demo` example, and the bench binaries — and each
//! used to carry its own copy of the row-checking and row-rendering
//! loops. They live here once instead. The mutation campaign
//! (`crate::mutate`) reuses [`encrypts_correctly`] as its functional
//! screen.

use accel::driver::{AccelDriver, Request};
use accel::user_label;
use aes_core::Aes;
use hdl::Design;
use sim::TrackMode;

use crate::matrix::AttackReport;

/// Checks the real-vulnerability pattern on every matrix row: the attack
/// succeeds on the baseline and is blocked on the protected design.
/// Returns the first offending row as an error message.
///
/// # Errors
///
/// When a scenario is not exploitable on the baseline or not blocked on
/// the protected design.
pub fn verify_matrix(rows: &[AttackReport]) -> Result<(), String> {
    for row in rows {
        if !row.baseline.succeeded() {
            return Err(format!(
                "{} must be exploitable on the baseline: {}",
                row.name(),
                row.baseline.detail
            ));
        }
        if row.protected.succeeded() {
            return Err(format!(
                "{} must be blocked on the protected design: {}",
                row.name(),
                row.protected.detail
            ));
        }
    }
    Ok(())
}

/// Checks the usability pattern: the legitimate flow succeeds on *both*
/// designs (the protection must not break lawful use).
///
/// # Errors
///
/// When a legitimate flow fails on either design.
pub fn verify_usability(rows: &[AttackReport]) -> Result<(), String> {
    for row in rows {
        if !row.baseline.succeeded() {
            return Err(format!(
                "{} (baseline): {}",
                row.name(),
                row.baseline.detail
            ));
        }
        if !row.protected.succeeded() {
            return Err(format!(
                "{} (protected): {}",
                row.name(),
                row.protected.detail
            ));
        }
    }
    Ok(())
}

/// Renders one matrix row the way the demo and bench binaries print it.
#[must_use]
pub fn render_matrix_row(row: &AttackReport) -> String {
    format!(
        "== {} ==\n  baseline : {:?} — {}\n  protected: {:?} — {}\n",
        row.name(),
        row.baseline.outcome,
        row.baseline.detail,
        row.protected.outcome,
        row.protected.detail
    )
}

/// Drives one single-block encryption through `design` with tracking off
/// and compares the response against the software AES oracle — the
/// functional screen shared by the lesion test ("a lesion is a security
/// hole, not a functional bug") and the mutation campaign's control arm.
///
/// # Errors
///
/// When the design produces no response or the wrong ciphertext.
pub fn encrypts_correctly(design: &Design) -> Result<(), String> {
    let mut drv = AccelDriver::from_design(design, TrackMode::Off);
    let alice = user_label(1);
    let key = [0x42u8; 16];
    drv.load_key(0, key, alice);
    let pt = [7u8; 16];
    drv.submit(&Request {
        block: pt,
        key_slot: 0,
        user: alice,
    });
    drv.drain(100);
    let expected = Aes::new_128(key).encrypt_block(pt);
    match drv.responses.first() {
        None => Err("no response within 100 cycles".into()),
        Some(r) if r.block == expected => Ok(()),
        Some(r) => Err(format!(
            "wrong ciphertext: got {:02x?}, want {expected:02x?}",
            r.block
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel::{baseline, protected};

    #[test]
    fn protected_design_passes_the_functional_screen() {
        encrypts_correctly(&protected()).expect("protected encrypts");
        encrypts_correctly(&baseline()).expect("baseline encrypts");
    }
}
