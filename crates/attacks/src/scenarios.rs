//! The attack scenarios, each runnable against any protection level or
//! any concrete design (including the lesioned variants).

use accel::driver::{AccelDriver, Request};
use accel::{
    baseline, baseline_annotated, master_key_encrypt, protected, supervisor_label, user_label,
    Protection,
};
use aes_core::Aes;
use hdl::Design;
use sim::TrackMode;

use crate::keysched::recover_cipher_key;

/// Whether the adversary achieved its goal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackOutcome {
    /// The adversary obtained the secret / corrupted the state.
    Succeeded,
    /// The hardware enforcement stopped the attack.
    Blocked,
}

/// The adversarial scenario classes (one per vulnerability the paper
/// discusses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// Pipeline-sharing covert timing channel.
    TimingChannel,
    /// Key scratchpad buffer overrun.
    ScratchpadOverrun,
    /// Trace-buffer/debug-peripheral key disclosure.
    DebugKeyDisclosure,
    /// Publicly visible partial-result disclosure.
    PartialResultDisclosure,
    /// Master-key misuse by an unprivileged user.
    MasterKeyMisuse,
    /// Configuration-register tampering.
    ConfigTamper,
}

/// The result of one scenario run.
#[derive(Debug, Clone)]
pub struct AttackResult {
    /// Scenario name.
    pub name: &'static str,
    /// Outcome for the adversary.
    pub outcome: AttackOutcome,
    /// Human-readable evidence (measurements, recovered values).
    pub detail: String,
}

impl AttackResult {
    /// Convenience predicate.
    #[must_use]
    pub fn succeeded(&self) -> bool {
        self.outcome == AttackOutcome::Succeeded
    }
}

const ALICE_KEY: [u8; 16] = [0xa1; 16];
const EVE_KEY: [u8; 16] = [0xe5; 16];

/// Builds the canonical design for a protection level.
#[must_use]
pub fn design_for(protection: Protection) -> Design {
    match protection {
        Protection::Off => baseline(),
        Protection::Annotated => baseline_annotated(),
        Protection::Full => protected(),
    }
}

fn setup_on(design: &Design) -> AccelDriver {
    let mut drv = AccelDriver::from_design(design, TrackMode::Precise);
    let alice = user_label(1);
    let eve = user_label(0);
    drv.load_key(0, ALICE_KEY, alice);
    drv.load_key(1, EVE_KEY, eve);
    drv
}

/// Runs a scenario class against an arbitrary design.
#[must_use]
pub fn run_scenario_on(kind: AttackKind, design: &Design) -> AttackResult {
    match kind {
        AttackKind::TimingChannel => timing_channel_on(design),
        AttackKind::ScratchpadOverrun => scratchpad_overrun_on(design),
        AttackKind::DebugKeyDisclosure => debug_key_disclosure_on(design),
        AttackKind::PartialResultDisclosure => partial_result_disclosure_on(design),
        AttackKind::MasterKeyMisuse => master_key_misuse_on(design),
        AttackKind::ConfigTamper => config_tamper_on(design),
    }
}

/// **Pipeline timing channel** (Section 3.1, \[20\]): Alice's slow
/// receiver stalls the shared pipeline in the baseline, delaying Eve's
/// in-flight encryption; the protected design's Fig. 8 stall policy routes
/// Alice's output to the holding buffer instead, leaving Eve's latency
/// untouched.
#[must_use]
pub fn timing_channel(protection: Protection) -> AttackResult {
    timing_channel_on(&design_for(protection))
}

/// [`timing_channel`] against an arbitrary design.
#[must_use]
pub fn timing_channel_on(design: &Design) -> AttackResult {
    let eve_latency = |with_victim: bool| -> u64 {
        let mut drv = setup_on(design);
        let alice = user_label(1);
        let eve = user_label(0);
        let start = drv.cycle();
        // Cycle-accurate schedule relative to `start`:
        //   t=10: Alice submits (due out at t=40).
        //   t in [38, 58]: the receiver is not ready (Alice's stalling DMA).
        //   t=35: Eve submits (due out at t=65, after the window).
        let mut alice_sent = !with_victim;
        let mut eve_sent = false;
        while drv.cycle() - start < 120 {
            let t = drv.cycle() - start;
            drv.set_receiver_ready(!(38..=58).contains(&t));
            if !alice_sent && t >= 10 {
                alice_sent = drv.try_submit(&Request {
                    block: [0xAA; 16],
                    key_slot: 0,
                    user: alice,
                });
                continue;
            }
            if !eve_sent && t >= 35 {
                eve_sent = drv.try_submit(&Request {
                    block: [0xEE; 16],
                    key_slot: 1,
                    user: eve,
                });
                continue;
            }
            drv.idle_cycle();
        }
        drv.responses
            .iter()
            .find(|r| r.user == eve)
            .map(|r| r.completed - r.submitted)
            .expect("Eve's block completes within the horizon")
    };

    let quiet = eve_latency(false);
    let loaded = eve_latency(true);
    let delta = loaded.abs_diff(quiet);
    let outcome = if delta >= 3 {
        AttackOutcome::Succeeded
    } else {
        AttackOutcome::Blocked
    };
    AttackResult {
        name: "pipeline timing channel",
        outcome,
        detail: format!(
            "Eve's latency: {quiet} cycles alone, {loaded} cycles with victim (delta {delta})"
        ),
    }
}

/// **Scratchpad overrun** (Fig. 5): Eve writes past her allocation into
/// Alice's key cells. In the baseline the write lands and Alice's next
/// ciphertext is silently wrong; the protected scratchpad's tag check
/// blocks the write.
#[must_use]
pub fn scratchpad_overrun(protection: Protection) -> AttackResult {
    scratchpad_overrun_on(&design_for(protection))
}

/// [`scratchpad_overrun`] against an arbitrary design.
#[must_use]
pub fn scratchpad_overrun_on(design: &Design) -> AttackResult {
    let mut drv = setup_on(design);
    let alice = user_label(1);
    let eve = user_label(0);
    // Eve overruns her slot-1 buffer (cells 2,3) into Alice's cell 0.
    drv.write_key_cell(0, 0xdead_beef_dead_beef, eve);
    // Alice then encrypts with what she believes is her key.
    let pt = [0x11u8; 16];
    drv.submit(&Request {
        block: pt,
        key_slot: 0,
        user: alice,
    });
    drv.drain(100);
    let expected = Aes::new_128(ALICE_KEY).encrypt_block(pt);
    let got = drv.responses.first().map(|r| r.block);
    let outcome = if got == Some(expected) {
        AttackOutcome::Blocked
    } else {
        AttackOutcome::Succeeded
    };
    AttackResult {
        name: "scratchpad overrun",
        outcome,
        detail: format!(
            "Alice's ciphertext {} the reference after Eve's out-of-bounds write",
            if got == Some(expected) {
                "matches"
            } else {
                "DIFFERS from"
            }
        ),
    }
}

/// **Debug-peripheral key disclosure** (\[10\]): Eve unlocks the debug
/// port through the configuration register and dumps a key-expansion
/// pipeline register while Alice's encryption is in flight; inverting the
/// key schedule yields Alice's cipher key.
#[must_use]
pub fn debug_key_disclosure(protection: Protection) -> AttackResult {
    debug_key_disclosure_on(&design_for(protection))
}

/// [`debug_key_disclosure`] against an arbitrary design.
#[must_use]
pub fn debug_key_disclosure_on(design: &Design) -> AttackResult {
    let mut drv = setup_on(design);
    let alice = user_label(1);
    let eve = user_label(0);
    // Step 1: Eve tries to unlock debug herself (works on the baseline);
    // independently, the supervisor has debug enabled for bring-up, so the
    // port's *label* is what must protect live key material.
    drv.write_cfg(0x01, eve);
    if drv.cfg() & 1 == 0 {
        drv.write_cfg(0x01, supervisor_label());
    }
    // Step 2: Alice starts an encryption.
    drv.submit(&Request {
        block: [0x22u8; 16],
        key_slot: 0,
        user: alice,
    });
    // Step 3: Eve probes the key pipeline register of stage 0, which now
    // holds Alice's round key 1 (debug space: 32 + stage index).
    let probe = drv.read_debug(32, eve);
    let recovered = probe.map(|rk1| recover_cipher_key(rk1, 1));
    let outcome = if recovered == Some(ALICE_KEY) {
        AttackOutcome::Succeeded
    } else {
        AttackOutcome::Blocked
    };
    AttackResult {
        name: "debug-peripheral key disclosure",
        outcome,
        detail: match recovered {
            Some(k) if k == ALICE_KEY => {
                format!("recovered Alice's key {k:02x?} from the key pipeline")
            }
            Some(_) => "debug port readable but key material not exposed".into(),
            None => "debug port not readable at Eve's clearance".into(),
        },
    }
}

/// **Partial-result disclosure** (\[6\]): the whitening stage holds
/// `plaintext ⊕ key`, so one debug probe of stage 0 with a known plaintext
/// reveals the key directly.
#[must_use]
pub fn partial_result_disclosure(protection: Protection) -> AttackResult {
    partial_result_disclosure_on(&design_for(protection))
}

/// [`partial_result_disclosure`] against an arbitrary design.
#[must_use]
pub fn partial_result_disclosure_on(design: &Design) -> AttackResult {
    let mut drv = setup_on(design);
    let alice = user_label(1);
    let eve = user_label(0);
    drv.write_cfg(0x01, eve);
    if drv.cfg() & 1 == 0 {
        drv.write_cfg(0x01, supervisor_label());
    }
    let pt = [0x33u8; 16];
    drv.submit(&Request {
        block: pt,
        key_slot: 0,
        user: alice,
    });
    let probe = drv.read_debug(0, eve);
    let recovered = probe.map(|stage0| {
        let mut key = [0u8; 16];
        for i in 0..16 {
            key[i] = stage0[i] ^ pt[i];
        }
        key
    });
    let outcome = if recovered == Some(ALICE_KEY) {
        AttackOutcome::Succeeded
    } else {
        AttackOutcome::Blocked
    };
    AttackResult {
        name: "partial-result disclosure",
        outcome,
        detail: match recovered {
            Some(k) if k == ALICE_KEY => {
                format!("stage-0 partial result revealed Alice's key {k:02x?}")
            }
            Some(_) => "intermediate state not exposed".into(),
            None => "debug port not readable at Eve's clearance".into(),
        },
    }
}

/// **Master-key misuse** (Section 3.2.2): Eve submits an encryption that
/// selects the `(⊤,⊤)` master key. The baseline happily returns the
/// ciphertext; the protected design's nonmalleable declassification
/// refuses the release (only the supervisor has the integrity to
/// declassify master-key ciphertexts).
#[must_use]
pub fn master_key_misuse(protection: Protection) -> AttackResult {
    master_key_misuse_on(&design_for(protection))
}

/// [`master_key_misuse`] against an arbitrary design.
#[must_use]
pub fn master_key_misuse_on(design: &Design) -> AttackResult {
    master_key_misuse_as_on(design, user_label(0))
}

/// [`master_key_misuse`] attempted by an arbitrary (non-supervisor)
/// principal. The mutation campaign uses this to probe stuck-at-1 tag
/// faults: a fault that inflates a particular user's integrity bits may
/// open the master key to that user while Eve (user 0) stays blocked.
#[must_use]
pub fn master_key_misuse_as_on(design: &Design, user: ifc_lattice::Label) -> AttackResult {
    let mut drv = setup_on(design);
    let eve = user;
    let pt = [0x44u8; 16];
    drv.submit(&Request {
        block: pt,
        key_slot: accel::MASTER_KEY_SLOT,
        user: eve,
    });
    drv.drain(100);
    let got = drv.responses.first().map(|r| r.block);
    let oracle = master_key_encrypt(pt);
    let outcome = if got == Some(oracle) {
        AttackOutcome::Succeeded
    } else {
        AttackOutcome::Blocked
    };
    AttackResult {
        name: "master-key misuse",
        outcome,
        detail: match got {
            Some(_) => "Eve obtained a master-key ciphertext".into(),
            None => format!(
                "release refused ({} nonmalleable rejection(s) recorded)",
                drv.rejections.len()
            ),
        },
    }
}

/// The supervisor's legitimate master-key encryption — the usability
/// counterpart of [`master_key_misuse`]; must succeed on every design.
#[must_use]
pub fn supervisor_master_key_use(protection: Protection) -> AttackResult {
    let mut drv = setup_on(&design_for(protection));
    let pt = [0x55u8; 16];
    drv.submit(&Request {
        block: pt,
        key_slot: accel::MASTER_KEY_SLOT,
        user: supervisor_label(),
    });
    drv.drain(100);
    let ok = drv.responses.first().map(|r| r.block) == Some(master_key_encrypt(pt));
    AttackResult {
        name: "supervisor master-key use (legitimate)",
        outcome: if ok {
            AttackOutcome::Succeeded
        } else {
            AttackOutcome::Blocked
        },
        detail: if ok {
            "supervisor obtained the master-key ciphertext".into()
        } else {
            "supervisor was incorrectly refused".into()
        },
    }
}

/// **Configuration tampering**: Eve flips configuration bits (including
/// the debug unlock). Blocked by the `(⊥,⊤)` integrity label in the
/// protected design.
#[must_use]
pub fn config_tamper(protection: Protection) -> AttackResult {
    config_tamper_on(&design_for(protection))
}

/// [`config_tamper`] against an arbitrary design.
#[must_use]
pub fn config_tamper_on(design: &Design) -> AttackResult {
    let mut drv = setup_on(design);
    let eve = user_label(0);
    drv.write_cfg(0xa5, eve);
    let cfg = drv.cfg();
    let outcome = if cfg == 0xa5 {
        AttackOutcome::Succeeded
    } else {
        AttackOutcome::Blocked
    };
    AttackResult {
        name: "configuration tampering",
        outcome,
        detail: format!("config register reads {cfg:#04x} after Eve's write"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_attack_succeeds_on_baseline() {
        for attack in [
            timing_channel,
            scratchpad_overrun,
            debug_key_disclosure,
            partial_result_disclosure,
            master_key_misuse,
            config_tamper,
        ] {
            let r = attack(Protection::Off);
            assert!(r.succeeded(), "{}: {}", r.name, r.detail);
        }
    }

    #[test]
    fn every_attack_is_blocked_on_protected() {
        for attack in [
            timing_channel,
            scratchpad_overrun,
            debug_key_disclosure,
            partial_result_disclosure,
            master_key_misuse,
            config_tamper,
        ] {
            let r = attack(Protection::Full);
            assert!(!r.succeeded(), "{}: {}", r.name, r.detail);
        }
    }

    #[test]
    fn supervisor_retains_master_key_usability() {
        for p in [Protection::Off, Protection::Full] {
            let r = supervisor_master_key_use(p);
            assert!(r.succeeded(), "{:?}: {}", p, r.detail);
        }
    }
}
