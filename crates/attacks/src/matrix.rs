//! The full attack matrix: every scenario against both designs, plus the
//! design-time detection column.

use accel::{baseline_annotated, Protection};

use crate::scenarios::{
    config_tamper, debug_key_disclosure, master_key_misuse, partial_result_disclosure,
    scratchpad_overrun, supervisor_master_key_use, timing_channel, AttackResult,
};

/// One row of the attack matrix.
#[derive(Debug, Clone)]
pub struct AttackReport {
    /// Outcome against the unprotected baseline.
    pub baseline: AttackResult,
    /// Outcome against the protected design.
    pub protected: AttackResult,
}

impl AttackReport {
    /// The scenario name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.baseline.name
    }

    /// The expected pattern for a real vulnerability: exploitable on the
    /// baseline, stopped by the protection.
    #[must_use]
    pub fn protection_effective(&self) -> bool {
        self.baseline.succeeded() && !self.protected.succeeded()
    }
}

/// Runs every adversarial scenario against both designs.
///
/// The hardware-Trojan row pairs the dynamic exploit on the trojaned
/// baseline with the design-time detection on the trojaned annotated
/// structure — the enforcement there is the verification flow itself.
#[must_use]
pub fn attack_matrix() -> Vec<AttackReport> {
    let scenarios: [fn(Protection) -> AttackResult; 6] = [
        timing_channel,
        scratchpad_overrun,
        debug_key_disclosure,
        partial_result_disclosure,
        master_key_misuse,
        config_tamper,
    ];
    let mut rows: Vec<AttackReport> = scenarios
        .iter()
        .map(|f| AttackReport {
            baseline: f(Protection::Off),
            protected: f(Protection::Full),
        })
        .collect();
    rows.push(AttackReport {
        baseline: crate::trojan::trojan_exfiltration(),
        protected: crate::trojan::trojan_static_detection(),
    });
    rows
}

/// The usability counterpart: legitimate supervisor flows that must keep
/// working on the protected design.
#[must_use]
pub fn usability_checks() -> Vec<AttackReport> {
    vec![AttackReport {
        baseline: supervisor_master_key_use(Protection::Off),
        protected: supervisor_master_key_use(Protection::Full),
    }]
}

/// The design-time column: how many label errors the static verifier
/// raises on the annotated baseline (the paper: "All previously-mentioned
/// vulnerabilities in the baseline are flagged").
#[must_use]
pub fn static_findings() -> ifc_check::CheckReport {
    ifc_check::check(&baseline_annotated())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_shows_protection_effective_everywhere() {
        for row in attack_matrix() {
            assert!(
                row.protection_effective(),
                "{}: baseline={:?} protected={:?}",
                row.name(),
                row.baseline.outcome,
                row.protected.outcome
            );
        }
    }

    #[test]
    fn static_analysis_flags_the_baseline() {
        let report = static_findings();
        assert!(!report.is_secure());
    }
}
