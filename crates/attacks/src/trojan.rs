//! The hardware-Trojan scenario (the paper's reference \[16\]): a
//! data-leak Trojan that functional testing cannot see, exfiltrating key
//! material through the `out_tag` side channel after a magic trigger.
//!
//! The demonstration has three parts:
//!
//! 1. **Functional stealth** — the trojaned baseline still produces
//!    bit-correct ciphertexts, so no test-vector campaign flags it.
//! 2. **Dynamic exploitation** — Eve sends the trigger block and reads
//!    Alice's round key off the side channel, byte per cycle, then
//!    inverts the key schedule.
//! 3. **Design-time detection** — the same Trojan inserted into the
//!    *annotated* structure is a key-to-public information flow, which
//!    the static checker reports before tape-out.

use accel::driver::{AccelDriver, Request};
use accel::{trojaned, user_label, Protection, TROJAN_TRIGGER};
use aes_core::Aes;
use sim::TrackMode;

use crate::keysched::recover_cipher_key;
use crate::scenarios::{AttackOutcome, AttackResult};

const ALICE_KEY: [u8; 16] = [0xa1; 16];

/// Runs the Trojan exfiltration against the trojaned baseline.
#[must_use]
pub fn trojan_exfiltration() -> AttackResult {
    let design = trojaned(Protection::Off);
    let mut drv = AccelDriver::from_design(&design, TrackMode::Off);
    let alice = user_label(1);
    let eve = user_label(0);
    drv.load_key(0, ALICE_KEY, alice);

    // Functional stealth: Alice's ciphertext is still correct.
    let pt = [0x77u8; 16];
    drv.submit(&Request {
        block: pt,
        key_slot: 0,
        user: alice,
    });
    drv.drain(100);
    let functional = drv.responses[0].block == Aes::new_128(ALICE_KEY).encrypt_block(pt);

    // Eve arms the Trojan (selecting Alice's key slot so the round key of
    // interest enters the key pipeline), then samples the side channel.
    drv.submit(&Request {
        block: TROJAN_TRIGGER,
        key_slot: 0,
        user: eve,
    });
    // The trigger block's RK1 now sits in the key pipeline stage 0 while
    // the exfiltration index sweeps bytes 0..16.
    let mut rk1 = [0u8; 16];
    let mut seen = [false; 16];
    for _ in 0..40 {
        let idx = drv.sim_mut().peek("trojan.idx") as usize & 0xf;
        let armed = drv.sim_mut().peek("trojan.armed") == 1;
        if armed {
            let byte = drv.sim_mut().peek("out_tag") as u8;
            rk1[idx] = byte;
            seen[idx] = true;
        }
        drv.idle_cycle();
        if seen.iter().all(|&s| s) {
            break;
        }
    }
    let recovered = recover_cipher_key(rk1, 1);
    let leaked = seen.iter().all(|&s| s) && recovered == ALICE_KEY;

    AttackResult {
        name: "hardware Trojan key exfiltration",
        outcome: if leaked && functional {
            AttackOutcome::Succeeded
        } else {
            AttackOutcome::Blocked
        },
        detail: format!(
            "functional tests {}; side channel {}",
            if functional {
                "pass (Trojan invisible)"
            } else {
                "fail"
            },
            if leaked {
                format!("leaked Alice's key {recovered:02x?}")
            } else {
                "did not yield the key".into()
            }
        ),
    }
}

/// Design-time detection: the same Trojan in the annotated structure is a
/// flagged information flow.
#[must_use]
pub fn trojan_static_detection() -> AttackResult {
    let design = trojaned(Protection::Full);
    let report = ifc_check::check(&design);
    let flagged = report
        .violations
        .iter()
        .any(|v| v.message.contains("out_tag"));
    AttackResult {
        name: "hardware Trojan (design-time detection)",
        outcome: if flagged {
            AttackOutcome::Blocked
        } else {
            AttackOutcome::Succeeded
        },
        detail: format!(
            "{} label error(s); Trojan flow {}",
            report.violations.len(),
            if flagged {
                "flagged before tape-out"
            } else {
                "MISSED"
            }
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trojan_exfiltrates_on_the_baseline() {
        let r = trojan_exfiltration();
        assert!(r.succeeded(), "{}", r.detail);
        assert!(r.detail.contains("Trojan invisible"));
    }

    #[test]
    fn trojan_is_caught_statically_on_the_annotated_design() {
        let r = trojan_static_detection();
        assert!(!r.succeeded(), "{}", r.detail);
    }

    #[test]
    fn clean_designs_have_no_trojan_state() {
        let design = accel::protected();
        assert!(design
            .node_ids()
            .all(|id| design.name_of(id).is_none_or(|n| !n.starts_with("trojan"))));
    }
}
