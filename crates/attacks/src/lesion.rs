//! The lesion study: disable one protection mechanism at a time and
//! observe (a) which attack class becomes exploitable again, and (b)
//! whether the static checker catches the hole at design time.
//!
//! [`Lesion`] names the builder-level ablations; the study itself is the
//! `mechanism-drop` class of the mutation campaign (`crate::mutate`), so
//! there is exactly one mutant catalogue and one outcome type. The old
//! standalone `LesionOutcome` enum is gone — [`lesion_study`] now returns
//! the campaign's [`MutantOutcome`](crate::mutate::MutantOutcome) rows.

use accel::{protected, protected_with, Mechanisms};
use hdl::Design;

use crate::mutate::{run_mutant, CampaignConfig, MutantOutcome, MutationClass};
use crate::scenarios::AttackKind;

/// One lesion: which mechanism was removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lesion {
    /// Remove the Fig. 5 scratchpad tag check.
    ScratchpadCheck,
    /// Remove the Fig. 8 stall policy (stall on any backpressure).
    StallPolicy,
    /// Remove the nonmalleable output declassification.
    NmRelease,
    /// Remove the configuration-write integrity check.
    CfgCheck,
    /// Release the debug port publicly instead of supervisor-only.
    SupervisorDebug,
}

impl Lesion {
    /// All lesions, in presentation order.
    pub const ALL: [Lesion; 5] = [
        Lesion::ScratchpadCheck,
        Lesion::StallPolicy,
        Lesion::NmRelease,
        Lesion::CfgCheck,
        Lesion::SupervisorDebug,
    ];

    /// The mechanism set with this lesion applied.
    #[must_use]
    pub fn mechanisms(self) -> Mechanisms {
        let mut m = Mechanisms::all();
        match self {
            Lesion::ScratchpadCheck => m.scratchpad_check = false,
            Lesion::StallPolicy => m.stall_policy = false,
            Lesion::NmRelease => m.nm_release = false,
            Lesion::CfgCheck => m.cfg_check = false,
            Lesion::SupervisorDebug => m.supervisor_debug = false,
        }
        m
    }

    /// The attack class this mechanism exists to stop.
    #[must_use]
    pub fn guarded_attack(self) -> AttackKind {
        match self {
            Lesion::ScratchpadCheck => AttackKind::ScratchpadOverrun,
            Lesion::StallPolicy => AttackKind::TimingChannel,
            Lesion::NmRelease => AttackKind::MasterKeyMisuse,
            Lesion::CfgCheck => AttackKind::ConfigTamper,
            // Reading the debug port needs the port to be public; the
            // config gate is a second line of defence probed separately.
            Lesion::SupervisorDebug => AttackKind::DebugKeyDisclosure,
        }
    }

    /// Whether this lesion is a value-flow hole the static checker must
    /// flag (the stall policy is architectural/timing-only).
    #[must_use]
    pub fn statically_visible(self) -> bool {
        !matches!(self, Lesion::StallPolicy)
    }

    /// Builds the lesioned design.
    #[must_use]
    pub fn design(self) -> Design {
        protected_with(self.mechanisms())
    }
}

impl std::fmt::Display for Lesion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Lesion::ScratchpadCheck => "scratchpad tag check removed",
            Lesion::StallPolicy => "stall policy removed",
            Lesion::NmRelease => "nonmalleable release removed",
            Lesion::CfgCheck => "config integrity check removed",
            Lesion::SupervisorDebug => "debug port made public",
        };
        f.write_str(name)
    }
}

/// Runs the lesion study: the `mechanism-drop` slice of the mutation
/// campaign, one row per lesion, in [`Lesion::ALL`] order.
#[must_use]
pub fn lesion_study() -> Vec<MutantOutcome> {
    let base = protected();
    let cfg = CampaignConfig::default();
    let mut rows: Vec<MutantOutcome> = crate::mutate::enumerate(&base, cfg.seed)
        .iter()
        .filter(|m| m.class() == MutationClass::MechanismDrop)
        .map(|m| run_mutant(&base, m.as_ref(), &cfg))
        .collect();
    // Back to presentation order (enumeration is seed-shuffled).
    let order = |site: &str| {
        Lesion::ALL
            .iter()
            .position(|&l| crate::mutate::mechanism_site(l) == site)
            .unwrap_or(usize::MAX)
    };
    rows.sort_by_key(|o| order(&o.site));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_lesion_is_killed_by_the_campaign() {
        let rows = lesion_study();
        assert_eq!(rows.len(), Lesion::ALL.len());
        for o in &rows {
            assert!(
                !o.survived(),
                "lesion '{}' must be killed (static, runtime, or attack): {}",
                o.site,
                o.detail
            );
        }
    }

    #[test]
    fn intact_design_has_no_lesions() {
        let report = ifc_check::check(&accel::protected());
        assert!(report.is_secure());
    }
}
