//! The lesion study: disable one protection mechanism at a time and
//! observe (a) which attack class becomes exploitable again, and (b)
//! whether the static checker catches the hole at design time.
//!
//! This ablates the design choices DESIGN.md calls out and substantiates
//! the paper's claim structure: each mechanism is *necessary* for its
//! attack class, and the value-flow mechanisms are all statically visible
//! (the stall policy is architectural — its absence shows up in the
//! noninterference experiment instead of as a label error).

use accel::{protected_with, Mechanisms};
use hdl::Design;

use crate::noninterference::eve_trace_on;
use crate::scenarios::{run_scenario_on, AttackKind, AttackResult};

/// One lesion: which mechanism was removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lesion {
    /// Remove the Fig. 5 scratchpad tag check.
    ScratchpadCheck,
    /// Remove the Fig. 8 stall policy (stall on any backpressure).
    StallPolicy,
    /// Remove the nonmalleable output declassification.
    NmRelease,
    /// Remove the configuration-write integrity check.
    CfgCheck,
    /// Release the debug port publicly instead of supervisor-only.
    SupervisorDebug,
}

impl Lesion {
    /// All lesions, in presentation order.
    pub const ALL: [Lesion; 5] = [
        Lesion::ScratchpadCheck,
        Lesion::StallPolicy,
        Lesion::NmRelease,
        Lesion::CfgCheck,
        Lesion::SupervisorDebug,
    ];

    /// The mechanism set with this lesion applied.
    #[must_use]
    pub fn mechanisms(self) -> Mechanisms {
        let mut m = Mechanisms::all();
        match self {
            Lesion::ScratchpadCheck => m.scratchpad_check = false,
            Lesion::StallPolicy => m.stall_policy = false,
            Lesion::NmRelease => m.nm_release = false,
            Lesion::CfgCheck => m.cfg_check = false,
            Lesion::SupervisorDebug => m.supervisor_debug = false,
        }
        m
    }

    /// The attack class this mechanism exists to stop.
    #[must_use]
    pub fn guarded_attack(self) -> AttackKind {
        match self {
            Lesion::ScratchpadCheck => AttackKind::ScratchpadOverrun,
            Lesion::StallPolicy => AttackKind::TimingChannel,
            Lesion::NmRelease => AttackKind::MasterKeyMisuse,
            Lesion::CfgCheck => AttackKind::ConfigTamper,
            // Reading the debug port needs the port to be public; the
            // config gate is a second line of defence probed separately.
            Lesion::SupervisorDebug => AttackKind::DebugKeyDisclosure,
        }
    }

    /// Whether this lesion is a value-flow hole the static checker must
    /// flag (the stall policy is architectural/timing-only).
    #[must_use]
    pub fn statically_visible(self) -> bool {
        !matches!(self, Lesion::StallPolicy)
    }

    /// Builds the lesioned design.
    #[must_use]
    pub fn design(self) -> Design {
        protected_with(self.mechanisms())
    }
}

impl std::fmt::Display for Lesion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Lesion::ScratchpadCheck => "scratchpad tag check removed",
            Lesion::StallPolicy => "stall policy removed",
            Lesion::NmRelease => "nonmalleable release removed",
            Lesion::CfgCheck => "config integrity check removed",
            Lesion::SupervisorDebug => "debug port made public",
        };
        f.write_str(name)
    }
}

/// The outcome of probing one lesion.
#[derive(Debug, Clone)]
pub struct LesionOutcome {
    /// The lesion probed.
    pub lesion: Lesion,
    /// The guarded attack, replayed against the lesioned design.
    pub attack: AttackResult,
    /// Whether the attack became exploitable again (for the stall lesion:
    /// whether noninterference broke).
    pub exploitable: bool,
    /// Number of static label errors on the lesioned design.
    pub static_violations: usize,
}

/// Runs the full lesion study.
#[must_use]
pub fn lesion_study() -> Vec<LesionOutcome> {
    Lesion::ALL
        .iter()
        .map(|&lesion| {
            let design = lesion.design();
            let static_violations = ifc_check::check(&design).violations.len();
            let attack = run_scenario_on(lesion.guarded_attack(), &design);
            let exploitable = match lesion {
                Lesion::StallPolicy => {
                    // Timing lesions are judged by the noninterference
                    // experiment.
                    let quiet = eve_trace_on(&design, 0);
                    let noisy = eve_trace_on(&design, 1);
                    quiet != noisy
                }
                _ => attack.succeeded(),
            };
            LesionOutcome {
                lesion,
                attack,
                exploitable,
                static_violations,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_lesion_reopens_its_attack_class() {
        for outcome in lesion_study() {
            assert!(
                outcome.exploitable,
                "lesion '{}' should re-enable its attack: {}",
                outcome.lesion, outcome.attack.detail
            );
        }
    }

    #[test]
    fn value_flow_lesions_are_statically_visible() {
        for outcome in lesion_study() {
            if outcome.lesion.statically_visible() {
                assert!(
                    outcome.static_violations > 0,
                    "lesion '{}' must be flagged at design time",
                    outcome.lesion
                );
            }
        }
    }

    #[test]
    fn intact_design_has_no_lesions() {
        let report = ifc_check::check(&accel::protected());
        assert!(report.is_secure());
    }
}
