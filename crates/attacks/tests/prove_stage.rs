//! The opt-in prover stage (2½) of the mutation kill pipeline.
//!
//! `CampaignConfig::prove = true` runs the bit-precise noninterference
//! prover on each mutant between the static check and the fleet. The
//! contract mirrors the fuzz corpus gate: the prover adds a conviction
//! point, it cannot absolve — enabling it may only move a mutant's kill
//! attribution *earlier* in the pipeline, never later, and a
//! [`KillStage::Counterexample`] kill counts as a static (pre-execution)
//! kill in the report's `killed_by` taxonomy.

use accel::protected;
use attacks::mutate::{enumerate, run_mutant, CampaignConfig, KillStage};

/// Pipeline position of an outcome; survivors sort after every kill.
/// (`Option`'s derived order puts `None` first, which is backwards for
/// attribution: surviving all stages is the *latest* possible outcome.)
fn rank(kill: Option<KillStage>) -> (u8, Option<KillStage>) {
    match kill {
        Some(stage) => (0, Some(stage)),
        None => (1, None),
    }
}

#[test]
fn prover_stage_only_moves_attribution_earlier() {
    let base = protected();
    let plain_cfg = CampaignConfig::default();
    assert!(!plain_cfg.prove, "the prover stage must be opt-in");
    let prove_cfg = CampaignConfig {
        prove: true,
        ..plain_cfg
    };

    // A slice of the catalogue keeps the doubled pipeline cost bounded;
    // enumeration is seed-deterministic, so the slice is stable too.
    let mutants = enumerate(&base, plain_cfg.seed);
    let mut counterexample_kills = 0usize;
    for mutation in mutants.iter().take(8) {
        let plain = run_mutant(&base, mutation.as_ref(), &plain_cfg);
        let proved = run_mutant(&base, mutation.as_ref(), &prove_cfg);
        assert!(
            rank(proved.kill) <= rank(plain.kill),
            "{}: prover moved attribution later ({:?} -> {:?})",
            proved.id,
            plain.kill,
            proved.kill
        );
        if proved.kill == Some(KillStage::Counterexample) {
            counterexample_kills += 1;
            assert_eq!(
                KillStage::Counterexample.killed_by(),
                "static",
                "a counterexample conviction needs no simulation"
            );
            assert!(
                proved.cycles_to_kill.is_some(),
                "{}: counterexample kill must carry the diverging cycle",
                proved.id
            );
            assert!(
                plain.kill.is_none_or(|k| k >= KillStage::Counterexample),
                "{}: prover pre-empted an earlier static kill",
                proved.id
            );
        }
    }
    // The slice may or may not contain a prover-killable mutant — the
    // invariant above is what's certified — but when one shows up its
    // evidence must be complete, which the inner block asserts.
    let _ = counterexample_kills;
}
