//! The netlist lint against the mutation catalogue: the classes the
//! static suite claims to kill must actually produce error findings on
//! every catalogued mutant, and the enforcement-ablated control netlist
//! must lint quiet (the suite measures the enforcement, not the design).

use attacks::mutate::{enumerate, MutationClass};
use hdl::Rewriter;
use ifc_check::{run_static_passes, LintConfig, Severity};

/// Error-severity findings from the full static suite on a mutant design.
fn lint_errors(design: &hdl::Design) -> Vec<String> {
    let net = design.lower().expect("catalogued mutant must lower");
    run_static_passes(Some(design), &net, &LintConfig::new())
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .map(ToString::to_string)
        .collect()
}

/// Every catalogued mutant of `class` must raise at least one
/// error-severity static finding.
fn assert_class_is_lint_visible(class: MutationClass) {
    let base = accel::protected();
    let mutants: Vec<_> = enumerate(&base, 2019)
        .into_iter()
        .filter(|m| m.class() == class)
        .collect();
    assert!(!mutants.is_empty(), "catalogue has no {class} mutants");
    for m in mutants {
        let errs = lint_errors(&m.apply(&base));
        assert!(
            !errs.is_empty(),
            "{} produced no static error finding",
            m.id()
        );
    }
}

#[test]
fn every_stall_guard_break_mutant_is_statically_visible() {
    assert_class_is_lint_visible(MutationClass::StallGuard);
}

#[test]
fn every_port_reroute_mutant_is_statically_visible() {
    assert_class_is_lint_visible(MutationClass::PortReroute);
}

#[test]
fn ablated_control_netlist_lints_quiet() {
    // The control arm strips every label before lowering; with no labels
    // there is nothing for the suite to enforce, so it must stay silent —
    // no errors, and no secret-timing findings at any severity.
    let mut rw = Rewriter::new(&accel::protected());
    rw.strip_labels();
    let design = rw.finish();
    let net = design.lower().expect("ablated design lowers");
    let report = run_static_passes(Some(&design), &net, &LintConfig::new());
    assert_eq!(
        report
            .findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .map(ToString::to_string)
            .collect::<Vec<_>>(),
        Vec::<String>::new()
    );
    assert!(
        report.findings.iter().all(|f| f.pass != "secret-timing"),
        "{report}"
    );
}
