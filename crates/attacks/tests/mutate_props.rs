//! Property tests for the mutation campaign's report encoding and its
//! enumeration determinism.
//!
//! The JSON emitter/parser pair in `mutate::report` is hand-rolled (no
//! serde in the offline dependency set), so round-tripping is checked
//! against generated reports whose strings deliberately contain quotes,
//! backslashes, control characters, and multi-byte code points — the
//! inputs a hand-written escaper gets wrong first.

use std::sync::OnceLock;

use attacks::mutate::{
    enumerate, CampaignConfig, KillStage, MutantOutcome, MutationClass, MutationReport,
};
use hdl::Design;
use proptest::collection::vec;
use proptest::prelude::*;
use sim::TrackMode;

fn arb_char() -> impl Strategy<Value = char> {
    prop_oneof![
        (0x20u32..0x7f).prop_map(|c| char::from_u32(c).expect("ascii")),
        // The characters the escaper special-cases, plus raw control
        // characters (must come back via \u00XX) and multi-byte points.
        Just('"'),
        Just('\\'),
        Just('\n'),
        Just('\r'),
        Just('\t'),
        Just('\u{1}'),
        Just('\u{1f}'),
        Just('é'),
        Just('→'),
        Just('☃'),
    ]
}

fn arb_string() -> impl Strategy<Value = String> {
    vec(arb_char(), 0..24).prop_map(|cs| cs.into_iter().collect())
}

fn arb_class() -> impl Strategy<Value = MutationClass> {
    (0usize..MutationClass::ALL.len()).prop_map(|i| MutationClass::ALL[i])
}

fn arb_kill() -> impl Strategy<Value = Option<KillStage>> {
    prop_oneof![
        Just(None),
        Just(Some(KillStage::Lint)),
        Just(Some(KillStage::Static)),
        Just(Some(KillStage::Counterexample)),
        Just(Some(KillStage::Runtime)),
        Just(Some(KillStage::Attack)),
        Just(Some(KillStage::Functional)),
    ]
}

fn arb_cycles() -> impl Strategy<Value = Option<u64>> {
    prop_oneof![Just(None), any::<u64>().prop_map(Some)]
}

fn arb_outcome() -> impl Strategy<Value = MutantOutcome> {
    (
        arb_string(),
        arb_class(),
        arb_string(),
        arb_string(),
        arb_kill(),
        arb_string(),
        arb_cycles(),
    )
        .prop_map(
            |(id, class, site, description, kill, detail, cycles_to_kill)| MutantOutcome {
                id,
                class,
                site,
                description,
                kill,
                detail,
                cycles_to_kill,
            },
        )
}

fn arb_report() -> impl Strategy<Value = MutationReport> {
    (
        any::<bool>(),
        any::<u64>(),
        arb_string(),
        vec(arb_outcome(), 0..8),
    )
        .prop_map(|(control, seed, design, outcomes)| MutationReport {
            design,
            control,
            seed,
            outcomes,
        })
}

fn protected() -> &'static Design {
    static DESIGN: OnceLock<Design> = OnceLock::new();
    DESIGN.get_or_init(accel::protected)
}

proptest! {
    #[test]
    fn report_json_round_trips(report in arb_report()) {
        let json = report.to_json();
        let back = MutationReport::from_json(&json)
            .map_err(|e| TestCaseError::fail(format!("parse failed: {e}\n{json}")))?;
        prop_assert_eq!(report, back);
    }

    #[test]
    fn report_json_counts_are_consistent(report in arb_report()) {
        // The emitted summary fields must agree with the outcome rows —
        // a consumer may trust either.
        let json = report.to_json();
        prop_assert!(json.contains(&format!("\"mutants\": {},", report.outcomes.len())));
        prop_assert!(json.contains(&format!("\"survivors\": {},", report.survivors().len())));
    }

    #[test]
    fn enumeration_is_deterministic_per_seed(seed in any::<u64>()) {
        // The campaign's catalogue order depends on the seed alone, never
        // on the tracking mode the pipeline will later run under.
        for mode in [TrackMode::Off, TrackMode::Conservative, TrackMode::Precise] {
            let cfg = CampaignConfig { seed, mode, ..CampaignConfig::default() };
            let a: Vec<String> = enumerate(protected(), cfg.seed).iter().map(|m| m.id()).collect();
            let b: Vec<String> = enumerate(protected(), cfg.seed).iter().map(|m| m.id()).collect();
            prop_assert_eq!(&a, &b, "seed {} mode {:?} must enumerate identically", seed, mode);
            prop_assert!(a.len() >= 60, "catalogue size {} under seed {}", a.len(), seed);
        }
    }

    #[test]
    fn seed_shuffles_order_but_not_membership(a in any::<u64>(), b in any::<u64>()) {
        let mut ids_a: Vec<String> = enumerate(protected(), a).iter().map(|m| m.id()).collect();
        let mut ids_b: Vec<String> = enumerate(protected(), b).iter().map(|m| m.id()).collect();
        ids_a.sort();
        ids_b.sort();
        prop_assert_eq!(ids_a, ids_b, "seeds {} vs {} changed catalogue membership", a, b);
    }
}
