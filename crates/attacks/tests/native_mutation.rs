//! The mutation kill-pipeline on the native-codegen fleet backend.
//!
//! `CampaignConfig::backend = FleetBackend::Native` routes stage-3 fleet
//! traffic through `rustc`-compiled executors (`sim::NativeSim`). Every
//! mutant netlist is a distinct compile-cache key, so the test pays one
//! native compile per lane width for the mutant it certifies (minutes,
//! once per cache). It gates itself on runtime toolchain detection —
//! [`sim::native_toolchain_available`] — so it runs wherever a `rustc`
//! exists (CI, dev hosts) and skips cleanly where none does, instead of
//! hiding behind `#[ignore]` and silently never running.
//!
//! Certify the whole catalogue with
//! `cargo run --release -p bench --bin mutation_guard -- --backend native`.

use accel::protected;
use attacks::mutate::{enumerate, run_mutant, CampaignConfig, FleetBackend, KillStage};

/// A mutant the batched fleet kills with ordinary traffic must die
/// identically when the same traffic is served by the native-codegen
/// executors: same stage, same first-violation cycle, same evidence.
#[test]
fn runtime_killed_mutant_dies_identically_on_native_backend() {
    if !sim::native_toolchain_available() {
        eprintln!(
            "skipping native mutant certification: no rustc toolchain available \
             to the native-codegen executor on this host"
        );
        return;
    }
    let base = protected();
    let cfg = CampaignConfig::default();
    assert_eq!(cfg.backend, FleetBackend::Batched);

    // Scan the catalogue (on the fast interpreter) for the first mutant
    // that ordinary fleet traffic kills at the runtime stage — the only
    // stage the backend choice can affect.
    let mutants = enumerate(&base, cfg.seed);
    let (victim, batched) = mutants
        .iter()
        .find_map(|m| {
            let o = run_mutant(&base, m.as_ref(), &cfg);
            (o.kill == Some(KillStage::Runtime)).then_some((m, o))
        })
        .expect("catalogue contains a runtime-killed mutant");

    let native_cfg = CampaignConfig {
        backend: FleetBackend::Native,
        ..cfg
    };
    let native = run_mutant(&base, victim.as_ref(), &native_cfg);

    assert_eq!(
        native.kill,
        Some(KillStage::Runtime),
        "mutant {} survived the native fleet: {}",
        native.id,
        native.detail
    );
    assert_eq!(
        native.cycles_to_kill, batched.cycles_to_kill,
        "first-violation cycle diverged between backends for {}",
        native.id
    );
    assert_eq!(
        native.detail, batched.detail,
        "kill evidence diverged between backends for {}",
        native.id
    );
}
