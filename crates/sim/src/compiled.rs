//! The compiled simulation backend: a netlist lowered once into a flat
//! instruction tape, then executed with a tight dispatch loop.
//!
//! [`CompiledSim`] trades a one-time lowering pass for much cheaper
//! per-cycle work compared to [`Simulator`](crate::Simulator):
//!
//! * **Flat struct-of-arrays tape.** Each combinational node becomes one
//!   fixed-size instruction (opcode + pre-resolved operand slots +
//!   precomputed output mask) in topological order. The dispatch loop
//!   walks parallel arrays instead of pattern-matching a recursive
//!   [`Node`](hdl::Node) enum through pointer-chasing lookups.
//! * **Wires cost nothing.** Wire nodes are aliased to their transitive
//!   driver's value slot at compile time, so the chains of named wires a
//!   lowered design produces generate no instructions and no copies.
//! * **Compiled label tracking.** The executor is monomorphised over the
//!   tracking mode: with [`TrackMode::Off`] the label code paths are
//!   compiled out entirely, so untracked simulation pays zero label cost.
//! * **No allocation in the hot path.** `tick`/`eval` touch only
//!   preallocated arrays; the register update uses a preallocated
//!   two-phase scratch buffer. (Recording a violation stores a
//!   heap-allocated report, but a design that raises no violations never
//!   allocates after construction.)
//!
//! Semantics are bit-for-bit identical to the interpreting
//! [`Simulator`](crate::Simulator) — values, labels, and the recorded
//! violation stream all match, which the differential test suites
//! enforce. The interpreter remains the reference oracle; this backend is
//! the throughput engine.

use hdl::{mask, BinOp, Netlist, Node, NodeId, UnOp, Value};
use ifc_lattice::{Label, SecurityTag};

use crate::simulator::{build_output_checks, compute_widths, AllowedLabel, DEFAULT_VIOLATION_CAP};
use crate::violation::RuntimeViolation;
use crate::TrackMode;

/// Tape opcodes. One per combinational node kind; `Input`, `Const`,
/// `Reg`, and `Wire` nodes compile to no instruction at all (their
/// values live directly in slots, wires alias their driver's slot).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    /// Bitwise complement of `a`.
    Not,
    /// OR-reduce `a` to one bit.
    ReduceOr,
    /// AND-reduce: `a == aux` (aux holds the operand's full mask).
    ReduceAnd,
    /// XOR-reduce (parity) of `a`.
    ReduceXor,
    /// `a & b`.
    And,
    /// `a | b`.
    Or,
    /// `a ^ b`.
    Xor,
    /// Wrapping `a + b`.
    Add,
    /// Wrapping `a - b`.
    Sub,
    /// `a == b`, one bit.
    Eq,
    /// `a != b`, one bit.
    Ne,
    /// `a < b`, one bit.
    Lt,
    /// `a >= b`, one bit.
    Ge,
    /// Packed-tag flow check `a ⊑ b`, one bit.
    TagLeq,
    /// Packed-tag join.
    TagJoin,
    /// Packed-tag meet.
    TagMeet,
    /// `if a & 1 { b } else { c }`.
    Mux,
    /// `(a >> b) & out_mask`.
    Slice,
    /// `(a << c) | b`.
    Cat,
    /// Read memory `b` at address `a` (modulo depth).
    MemRead,
    /// Declassify data `a` on behalf of principal signal `b`; `aux` is
    /// the packed target tag, `c` the original node id (for reports).
    Declassify,
    /// Endorse — integrity dual of [`Op::Declassify`].
    Endorse,
}

/// The instruction tape in struct-of-arrays layout: parallel arrays
/// indexed by instruction, so the dispatch loop streams each field
/// sequentially through cache.
#[derive(Debug, Clone, Default)]
struct Tape {
    ops: Vec<Op>,
    /// Destination value/label slot.
    dst: Vec<u32>,
    /// First operand slot.
    a: Vec<u32>,
    /// Second operand slot, slice shift amount, or memory index.
    b: Vec<u32>,
    /// Third operand slot, cat shift amount, or original node id.
    c: Vec<u32>,
    /// Wide immediate: ReduceAnd full-operand mask, downgrade target tag.
    aux: Vec<Value>,
    /// Precomputed width mask applied to every result.
    out_mask: Vec<Value>,
}

impl Tape {
    #[allow(clippy::too_many_arguments)]
    fn push(&mut self, op: Op, dst: u32, a: u32, b: u32, c: u32, aux: Value, out_mask: Value) {
        self.ops.push(op);
        self.dst.push(dst);
        self.a.push(a);
        self.b.push(b);
        self.c.push(c);
        self.aux.push(aux);
        self.out_mask.push(out_mask);
    }
}

/// A compiled register update: on the clock edge, `dst` slot takes the
/// settled value of `src` slot, masked to the register's width.
#[derive(Debug, Clone, Copy)]
struct RegUpdate {
    dst: u32,
    src: u32,
    mask: Value,
}

/// A compiled memory write port (operand node ids pre-resolved to slots).
#[derive(Debug, Clone, Copy)]
struct CompiledWritePort {
    mem: u32,
    addr: u32,
    data: u32,
    en: u32,
}

/// One output-port release check with the port node pre-resolved to its
/// slot.
#[derive(Debug, Clone)]
struct CompiledCheck {
    port: String,
    slot: u32,
    allowed: AllowedLabel,
}

/// Width mask for a slot/instruction result (all-ones at full width so a
/// plain `&` is always correct).
fn mask_of(width: u16) -> Value {
    mask(Value::MAX, width.max(1))
}

/// Appends a violation, honouring the cap.
fn push_violation(
    violations: &mut Vec<RuntimeViolation>,
    cap: usize,
    truncated: &mut bool,
    v: RuntimeViolation,
) {
    if violations.len() < cap {
        violations.push(v);
    } else {
        *truncated = true;
    }
}

/// The runtime release gate over settled slots, against the precompiled
/// check table. Shared between the recording propagation and the
/// settled-state fast path in [`CompiledSim::tick`].
#[allow(clippy::too_many_arguments)]
fn run_output_checks(
    output_checks: &[CompiledCheck],
    values: &[Value],
    labels: &[Label],
    slot_of: &[u32],
    cycle: u64,
    violations: &mut Vec<RuntimeViolation>,
    cap: usize,
    truncated: &mut bool,
) {
    for check in output_checks {
        let allowed = match &check.allowed {
            AllowedLabel::Const(l) => *l,
            AllowedLabel::Dynamic(expr) => {
                let mut resolve = |sig: NodeId| values[slot_of[sig.index()] as usize];
                expr.eval(&mut resolve)
            }
        };
        let label = labels[check.slot as usize];
        if !label.flows_to(allowed) {
            push_violation(
                violations,
                cap,
                truncated,
                RuntimeViolation::OutputLeak {
                    cycle,
                    port: check.port.clone(),
                    label,
                    allowed,
                },
            );
        }
    }
}

/// Compiled-tape simulation backend.
///
/// Drop-in alternative to [`Simulator`](crate::Simulator) with identical
/// observable behaviour (same drive/eval/tick protocol, same values,
/// labels, and violation stream) but a much faster cycle loop. See the
/// [module docs](self) for how it gets there.
#[derive(Debug, Clone)]
pub struct CompiledSim {
    net: Netlist,
    mode: TrackMode,
    /// Node index → value/label slot (wires alias their driver's slot).
    slot_of: Vec<u32>,
    /// Per-*node* widths (needed to mask driven input values).
    node_widths: Vec<u16>,
    tape: Tape,
    /// Per-slot settled values. Register and input state lives here
    /// directly — there is no separate state array to copy from.
    values: Vec<Value>,
    /// Per-slot runtime labels, parallel to `values`.
    labels: Vec<Label>,
    mem_state: Vec<Vec<Value>>,
    mem_labels: Vec<Vec<Label>>,
    regs: Vec<RegUpdate>,
    /// Two-phase clock-edge scratch (preallocated; see [`tick`](Self::tick)).
    reg_scratch: Vec<Value>,
    reg_label_scratch: Vec<Label>,
    write_ports: Vec<CompiledWritePort>,
    output_checks: Vec<CompiledCheck>,
    /// Tape indices of the downgrade instructions, for the settled-state
    /// violation scan in [`tick`](Self::tick).
    downgrades: Vec<u32>,
    clean: bool,
    cycle: u64,
    violations: Vec<RuntimeViolation>,
    violation_cap: usize,
    violations_truncated: bool,
}

impl CompiledSim {
    /// Compiles a netlist with the default conservative tracking.
    #[must_use]
    pub fn new(net: Netlist) -> CompiledSim {
        CompiledSim::with_tracking(net, TrackMode::default())
    }

    /// Compiles a netlist for the given tracking mode.
    ///
    /// This is the one-time lowering pass: it assigns value slots
    /// (aliasing wires away), precomputes widths and masks, and emits the
    /// instruction tape in topological order.
    #[must_use]
    pub fn with_tracking(net: Netlist, mode: TrackMode) -> CompiledSim {
        let n = net.node_count();
        let node_widths = compute_widths(&net);

        // Slot assignment: every non-wire node owns a slot; wires alias
        // the slot of their transitive driver.
        let mut slot_of = vec![u32::MAX; n];
        let mut num_slots: u32 = 0;
        for id in net.node_ids() {
            if !matches!(net.node(id), Node::Wire { .. }) {
                slot_of[id.index()] = num_slots;
                num_slots += 1;
            }
        }
        for id in net.node_ids() {
            if matches!(net.node(id), Node::Wire { .. }) {
                slot_of[id.index()] = slot_of[net.resolve_driver(id).index()];
            }
        }
        let slot = |id: NodeId| slot_of[id.index()];

        // Initial slot state: constants and register init values are
        // baked in; everything else starts at zero / public-trusted.
        let mut values = vec![0 as Value; num_slots as usize];
        for id in net.node_ids() {
            match *net.node(id) {
                Node::Const { value, width } => {
                    values[slot(id) as usize] = mask(value, width.max(1));
                }
                Node::Reg { init, width } => {
                    values[slot(id) as usize] = mask(init, width.max(1));
                }
                _ => {}
            }
        }

        // The instruction tape, in the netlist's combinational order.
        let mut tape = Tape::default();
        for &id in &net.topo {
            let idx = id.index();
            let dst = slot_of[idx];
            let out_mask = mask_of(node_widths[idx]);
            match *net.node(id) {
                // Stateful / constant / aliased nodes need no instruction.
                Node::Input { .. } | Node::Const { .. } | Node::Reg { .. } | Node::Wire { .. } => {}
                Node::MemRead { mem, addr } => {
                    tape.push(
                        Op::MemRead,
                        dst,
                        slot(addr),
                        mem.index() as u32,
                        0,
                        0,
                        out_mask,
                    );
                }
                Node::Unary { op, a } => {
                    let (op, aux) = match op {
                        UnOp::Not => (Op::Not, 0),
                        UnOp::ReduceOr => (Op::ReduceOr, 0),
                        UnOp::ReduceAnd => (Op::ReduceAnd, mask_of(node_widths[a.index()])),
                        UnOp::ReduceXor => (Op::ReduceXor, 0),
                    };
                    tape.push(op, dst, slot(a), 0, 0, aux, out_mask);
                }
                Node::Binary { op, a, b } => {
                    let op = match op {
                        BinOp::And => Op::And,
                        BinOp::Or => Op::Or,
                        BinOp::Xor => Op::Xor,
                        BinOp::Add => Op::Add,
                        BinOp::Sub => Op::Sub,
                        BinOp::Eq => Op::Eq,
                        BinOp::Ne => Op::Ne,
                        BinOp::Lt => Op::Lt,
                        BinOp::Ge => Op::Ge,
                        BinOp::TagLeq => Op::TagLeq,
                        BinOp::TagJoin => Op::TagJoin,
                        BinOp::TagMeet => Op::TagMeet,
                    };
                    tape.push(op, dst, slot(a), slot(b), 0, 0, out_mask);
                }
                Node::Mux { sel, t, f } => {
                    tape.push(Op::Mux, dst, slot(sel), slot(t), slot(f), 0, out_mask);
                }
                Node::Slice { a, lo, .. } => {
                    tape.push(Op::Slice, dst, slot(a), u32::from(lo), 0, 0, out_mask);
                }
                Node::Cat { hi, lo } => {
                    let shift = u32::from(node_widths[lo.index()]);
                    tape.push(Op::Cat, dst, slot(hi), slot(lo), shift, 0, out_mask);
                }
                Node::Declassify {
                    data,
                    to_tag,
                    principal,
                } => {
                    tape.push(
                        Op::Declassify,
                        dst,
                        slot(data),
                        slot(principal),
                        idx as u32,
                        Value::from(to_tag),
                        out_mask,
                    );
                }
                Node::Endorse {
                    data,
                    to_tag,
                    principal,
                } => {
                    tape.push(
                        Op::Endorse,
                        dst,
                        slot(data),
                        slot(principal),
                        idx as u32,
                        Value::from(to_tag),
                        out_mask,
                    );
                }
            }
        }

        // Clock-edge tables.
        let mut regs = Vec::new();
        for id in net.node_ids() {
            let idx = id.index();
            if let Some(next) = net.reg_next[idx] {
                regs.push(RegUpdate {
                    dst: slot_of[idx],
                    src: slot_of[next.index()],
                    mask: mask_of(node_widths[idx]),
                });
            }
        }
        let write_ports = net
            .write_ports
            .iter()
            .map(|wp| CompiledWritePort {
                mem: wp.mem.index() as u32,
                addr: slot(wp.addr),
                data: slot(wp.data),
                en: slot(wp.en),
            })
            .collect();

        let mem_state: Vec<Vec<Value>> = net
            .mems
            .iter()
            .map(|m| {
                let mut cells = m.init.clone();
                cells.resize(m.depth, 0);
                cells
            })
            .collect();
        let mem_labels = net
            .mems
            .iter()
            .map(|m| vec![Label::PUBLIC_TRUSTED; m.depth])
            .collect();

        let output_checks = build_output_checks(&net)
            .into_iter()
            .map(|c| CompiledCheck {
                slot: slot_of[c.node.index()],
                port: c.port,
                allowed: c.allowed,
            })
            .collect();

        let downgrades = tape
            .ops
            .iter()
            .enumerate()
            .filter(|(_, op)| matches!(op, Op::Declassify | Op::Endorse))
            .map(|(i, _)| i as u32)
            .collect();

        let reg_count = regs.len();
        CompiledSim {
            mode,
            slot_of,
            node_widths,
            tape,
            labels: vec![Label::PUBLIC_TRUSTED; values.len()],
            values,
            mem_state,
            mem_labels,
            regs,
            reg_scratch: vec![0; reg_count],
            reg_label_scratch: vec![Label::PUBLIC_TRUSTED; reg_count],
            write_ports,
            output_checks,
            downgrades,
            clean: false,
            cycle: 0,
            violations: Vec::new(),
            violation_cap: DEFAULT_VIOLATION_CAP,
            violations_truncated: false,
            net,
        }
    }

    /// The wrapped netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.net
    }

    /// The tracking mode this backend was compiled for.
    #[must_use]
    pub fn mode(&self) -> TrackMode {
        self.mode
    }

    /// The current cycle count (number of completed [`tick`](Self::tick)s).
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// All violations the tracking logic has raised so far.
    #[must_use]
    pub fn violations(&self) -> &[RuntimeViolation] {
        &self.violations
    }

    /// Whether violations were dropped at the cap (see
    /// [`set_violation_cap`](Self::set_violation_cap)).
    #[must_use]
    pub fn violations_truncated(&self) -> bool {
        self.violations_truncated
    }

    /// Bounds the recorded violation stream, mirroring
    /// [`Simulator::set_violation_cap`](crate::Simulator::set_violation_cap).
    pub fn set_violation_cap(&mut self, cap: usize) {
        self.violation_cap = cap;
    }

    /// Number of instructions on the compiled tape (diagnostic; wires and
    /// state nodes contribute none).
    #[must_use]
    pub fn tape_len(&self) -> usize {
        self.tape.ops.len()
    }

    fn resolve_input(&self, name: &str) -> NodeId {
        self.net
            .input(name)
            .unwrap_or_else(|| panic!("no input port named {name:?}"))
    }

    fn lookup(&self, name: &str) -> NodeId {
        self.net
            .output(name)
            .or_else(|| self.net.input(name))
            .or_else(|| {
                self.net
                    .node_ids()
                    .find(|&id| self.net.name_of(id) == Some(name))
            })
            .unwrap_or_else(|| panic!("no port or node named {name:?}"))
    }

    /// Drives an input port.
    ///
    /// # Panics
    ///
    /// Panics if no input port has that name.
    pub fn set(&mut self, name: &str, value: Value) {
        let id = self.resolve_input(name);
        self.set_node(id, value);
    }

    /// Drives an input port by node id.
    pub fn set_node(&mut self, id: NodeId, value: Value) {
        let width = self.node_widths[id.index()];
        self.values[self.slot_of[id.index()] as usize] = mask(value, width);
        self.clean = false;
    }

    /// Sets the runtime label accompanying an input's data (defaults to
    /// `(P,T)`). A no-op with tracking off, matching the interpreter
    /// (whose labels stay at their initial public-trusted state).
    pub fn set_label(&mut self, name: &str, label: Label) {
        let id = self.resolve_input(name);
        if self.mode != TrackMode::Off {
            self.labels[self.slot_of[id.index()] as usize] = label;
        }
        self.clean = false;
    }

    /// Reads a signal's settled value by port or node name.
    ///
    /// # Panics
    ///
    /// Panics if no port or named node matches.
    pub fn peek(&mut self, name: &str) -> Value {
        let id = self.lookup(name);
        self.eval();
        self.values[self.slot_of[id.index()] as usize]
    }

    /// Reads a signal's settled runtime label.
    pub fn peek_label(&mut self, name: &str) -> Label {
        let id = self.lookup(name);
        self.eval();
        self.labels[self.slot_of[id.index()] as usize]
    }

    /// Reads a settled value by node id.
    pub fn peek_node(&mut self, id: NodeId) -> Value {
        self.eval();
        self.values[self.slot_of[id.index()] as usize]
    }

    /// Reads a settled runtime label by node id.
    pub fn peek_node_label(&mut self, id: NodeId) -> Label {
        self.eval();
        self.labels[self.slot_of[id.index()] as usize]
    }

    /// Reads a memory cell directly (for test assertions).
    #[must_use]
    pub fn mem_cell(&self, mem: usize, addr: usize) -> Value {
        self.mem_state[mem][addr]
    }

    /// Reads a memory cell's runtime label directly.
    #[must_use]
    pub fn mem_cell_label(&self, mem: usize, addr: usize) -> Label {
        self.mem_labels[mem][addr]
    }

    /// Finds a memory's index by its declared name.
    #[must_use]
    pub fn mem_index(&self, name: &str) -> Option<usize> {
        self.net.mems.iter().position(|m| m.name == name)
    }

    /// Sets a memory cell's runtime label directly (provisioned secrets;
    /// see [`Simulator::set_mem_cell_label`](crate::Simulator::set_mem_cell_label)).
    ///
    /// # Panics
    ///
    /// Panics if `mem` or `addr` is out of range.
    pub fn set_mem_cell_label(&mut self, mem: usize, addr: usize, label: Label) {
        self.mem_labels[mem][addr] = label;
        self.clean = false;
    }

    /// Settles combinational logic for the current inputs. Idempotent.
    pub fn eval(&mut self) {
        if self.clean {
            return;
        }
        self.propagate(false);
        self.clean = true;
    }

    /// Advances one clock cycle: settles combinational logic (recording
    /// any violations), updates registers and memories, then increments
    /// the cycle counter.
    pub fn tick(&mut self) {
        if self.clean {
            // `eval` already settled every slot for these exact inputs;
            // a recording propagation would recompute identical values
            // and labels. Only the violation scan — the downgrade gates
            // and the output release checks — still has to run, so the
            // tape itself is skipped. This is the common shape under a
            // transaction driver, which reads the output handshake
            // (forcing an eval) in the same cycle it then clocks.
            self.record_settled_violations();
        } else {
            self.propagate(true);
        }
        self.clean = false;

        let track = self.mode != TrackMode::Off;
        // Clock edge, phase 1: snapshot every register's next value while
        // all slots still hold settled combinational state. Registers
        // live in the same slot array their readers see, so installing
        // in-place without the snapshot would let one register's update
        // corrupt another's (or a write port's) view of this cycle.
        for (i, r) in self.regs.iter().enumerate() {
            self.reg_scratch[i] = self.values[r.src as usize] & r.mask;
        }
        if track {
            for (i, r) in self.regs.iter().enumerate() {
                self.reg_label_scratch[i] = self.labels[r.src as usize];
            }
        }
        // Memory write ports next, in statement order — they too must
        // observe the settled pre-edge values (address/data/enable may
        // read register slots).
        for wp in &self.write_ports {
            if self.values[wp.en as usize] & 1 == 1 {
                let mem = wp.mem as usize;
                let depth = self.mem_state[mem].len();
                let addr = (self.values[wp.addr as usize] as usize) % depth;
                self.mem_state[mem][addr] = self.values[wp.data as usize];
                if track {
                    let label = self.labels[wp.data as usize]
                        .join(self.labels[wp.addr as usize])
                        .join(self.labels[wp.en as usize]);
                    self.mem_labels[mem][addr] = label;
                }
            }
        }
        // Phase 2: install the snapshot.
        for (i, r) in self.regs.iter().enumerate() {
            self.values[r.dst as usize] = self.reg_scratch[i];
        }
        if track {
            for (i, r) in self.regs.iter().enumerate() {
                self.labels[r.dst as usize] = self.reg_label_scratch[i];
            }
        }
        self.cycle += 1;
    }

    /// Runs `n` clock cycles with the current inputs.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.tick();
        }
    }

    /// Records exactly the violations a recording propagation would raise
    /// over the current *settled* state, without re-executing the tape:
    /// each downgrade gate's accept/reject is recomputed from its settled
    /// operands (in tape order, matching the recording order of a full
    /// pass), then the output release checks run. Only valid when `clean`.
    fn record_settled_violations(&mut self) {
        if self.mode == TrackMode::Off {
            return;
        }
        let CompiledSim {
            tape,
            values,
            labels,
            violations,
            violation_cap,
            violations_truncated,
            output_checks,
            slot_of,
            cycle,
            downgrades,
            ..
        } = self;
        for &i in downgrades.iter() {
            let i = i as usize;
            let from = labels[tape.a[i] as usize];
            let to = Label::from(SecurityTag::from_bits(tape.aux[i] as u8));
            let p = Label::from(SecurityTag::from_bits(values[tape.b[i] as usize] as u8));
            let rejected = match tape.ops[i] {
                Op::Declassify => ifc_lattice::declassify(from, to, p).is_err(),
                _ => ifc_lattice::endorse(from, to, p).is_err(),
            };
            if rejected {
                push_violation(
                    violations,
                    *violation_cap,
                    violations_truncated,
                    RuntimeViolation::DowngradeRejected {
                        cycle: *cycle,
                        node: NodeId::from_raw(tape.c[i]),
                        from,
                        to,
                        principal: p,
                    },
                );
            }
        }
        run_output_checks(
            output_checks,
            values,
            labels,
            slot_of,
            *cycle,
            violations,
            *violation_cap,
            violations_truncated,
        );
    }

    /// Dispatches to the executor monomorphised for this tracking mode.
    fn propagate(&mut self, record: bool) {
        match self.mode {
            TrackMode::Off => self.exec::<false, false>(record),
            TrackMode::Conservative => self.exec::<true, false>(record),
            TrackMode::Precise => self.exec::<true, true>(record),
        }
    }

    /// The dispatch loop. `TRACK` compiles label propagation in or out;
    /// `PRECISE` selects the mux label rule. Violations are recorded only
    /// when `record` (i.e. from [`tick`](Self::tick), never from
    /// [`eval`](Self::eval)), matching the interpreter.
    #[allow(clippy::too_many_lines)]
    fn exec<const TRACK: bool, const PRECISE: bool>(&mut self, record: bool) {
        // Disjoint field borrows: the tape is read-only while slots,
        // memories, and the violation stream are written.
        let CompiledSim {
            tape,
            values,
            labels,
            mem_state,
            mem_labels,
            violations,
            violation_cap,
            violations_truncated,
            output_checks,
            slot_of,
            cycle,
            ..
        } = self;
        // Reslicing every tape column to the common length lets the
        // compiler prove the per-instruction column indexing in bounds
        // and drop the checks from the dispatch loop.
        let n = tape.ops.len();
        let ops = &tape.ops[..n];
        let col_dst = &tape.dst[..n];
        let col_a = &tape.a[..n];
        let col_b = &tape.b[..n];
        let col_c = &tape.c[..n];
        let col_aux = &tape.aux[..n];
        let col_mask = &tape.out_mask[..n];
        for i in 0..n {
            let a = col_a[i] as usize;
            let b = col_b[i] as usize;
            let mut label = Label::PUBLIC_TRUSTED;
            let value = match ops[i] {
                Op::Not => {
                    if TRACK {
                        label = labels[a];
                    }
                    !values[a]
                }
                Op::ReduceOr => {
                    if TRACK {
                        label = labels[a];
                    }
                    Value::from(values[a] != 0)
                }
                Op::ReduceAnd => {
                    if TRACK {
                        label = labels[a];
                    }
                    Value::from(values[a] == col_aux[i])
                }
                Op::ReduceXor => {
                    if TRACK {
                        label = labels[a];
                    }
                    Value::from(values[a].count_ones() % 2 == 1)
                }
                Op::And => {
                    if TRACK {
                        label = labels[a].join(labels[b]);
                    }
                    values[a] & values[b]
                }
                Op::Or => {
                    if TRACK {
                        label = labels[a].join(labels[b]);
                    }
                    values[a] | values[b]
                }
                Op::Xor => {
                    if TRACK {
                        label = labels[a].join(labels[b]);
                    }
                    values[a] ^ values[b]
                }
                Op::Add => {
                    if TRACK {
                        label = labels[a].join(labels[b]);
                    }
                    values[a].wrapping_add(values[b])
                }
                Op::Sub => {
                    if TRACK {
                        label = labels[a].join(labels[b]);
                    }
                    values[a].wrapping_sub(values[b])
                }
                Op::Eq => {
                    if TRACK {
                        label = labels[a].join(labels[b]);
                    }
                    Value::from(values[a] == values[b])
                }
                Op::Ne => {
                    if TRACK {
                        label = labels[a].join(labels[b]);
                    }
                    Value::from(values[a] != values[b])
                }
                Op::Lt => {
                    if TRACK {
                        label = labels[a].join(labels[b]);
                    }
                    Value::from(values[a] < values[b])
                }
                Op::Ge => {
                    if TRACK {
                        label = labels[a].join(labels[b]);
                    }
                    Value::from(values[a] >= values[b])
                }
                Op::TagLeq => {
                    if TRACK {
                        label = labels[a].join(labels[b]);
                    }
                    let la = Label::from(SecurityTag::from_bits(values[a] as u8));
                    let lb = Label::from(SecurityTag::from_bits(values[b] as u8));
                    Value::from(la.flows_to(lb))
                }
                Op::TagJoin => {
                    if TRACK {
                        label = labels[a].join(labels[b]);
                    }
                    let la = Label::from(SecurityTag::from_bits(values[a] as u8));
                    let lb = Label::from(SecurityTag::from_bits(values[b] as u8));
                    Value::from(SecurityTag::from(la.join(lb)).bits())
                }
                Op::TagMeet => {
                    if TRACK {
                        label = labels[a].join(labels[b]);
                    }
                    let la = Label::from(SecurityTag::from_bits(values[a] as u8));
                    let lb = Label::from(SecurityTag::from_bits(values[b] as u8));
                    Value::from(SecurityTag::from(la.meet(lb)).bits())
                }
                Op::Mux => {
                    let c = col_c[i] as usize;
                    let sel = values[a] & 1;
                    if TRACK {
                        label = if PRECISE {
                            let arm = if sel == 1 { labels[b] } else { labels[c] };
                            labels[a].join(arm)
                        } else {
                            labels[a].join(labels[b]).join(labels[c])
                        };
                    }
                    if sel == 1 {
                        values[b]
                    } else {
                        values[c]
                    }
                }
                Op::Slice => {
                    if TRACK {
                        label = labels[a];
                    }
                    values[a] >> b
                }
                Op::Cat => {
                    if TRACK {
                        label = labels[a].join(labels[b]);
                    }
                    (values[a] << col_c[i]) | values[b]
                }
                Op::MemRead => {
                    let depth = mem_state[b].len();
                    let addr = (values[a] as usize) % depth;
                    if TRACK {
                        label = mem_labels[b][addr].join(labels[a]);
                    }
                    mem_state[b][addr]
                }
                Op::Declassify | Op::Endorse => {
                    if TRACK {
                        let from = labels[a];
                        let to = Label::from(SecurityTag::from_bits(col_aux[i] as u8));
                        let p = Label::from(SecurityTag::from_bits(values[b] as u8));
                        let downgraded = if ops[i] == Op::Declassify {
                            ifc_lattice::declassify(from, to, p)
                        } else {
                            ifc_lattice::endorse(from, to, p)
                        };
                        label = match downgraded {
                            Ok(l) => l,
                            Err(_) => {
                                if record {
                                    push_violation(
                                        violations,
                                        *violation_cap,
                                        violations_truncated,
                                        RuntimeViolation::DowngradeRejected {
                                            cycle: *cycle,
                                            node: NodeId::from_raw(col_c[i]),
                                            from,
                                            to,
                                            principal: p,
                                        },
                                    );
                                }
                                // Refused downgrade: keep the restrictive
                                // label, same as the interpreter.
                                from
                            }
                        };
                    }
                    values[a]
                }
            };
            let dst = col_dst[i] as usize;
            values[dst] = value & col_mask[i];
            if TRACK {
                labels[dst] = label;
            }
        }

        // The runtime release gate, against the precompiled check table.
        if record && TRACK {
            run_output_checks(
                output_checks,
                values,
                labels,
                slot_of,
                *cycle,
                violations,
                *violation_cap,
                violations_truncated,
            );
        }
    }
}
