//! The compiled simulation backend: a netlist lowered once into a flat
//! instruction tape, then executed with a tight dispatch loop.
//!
//! [`CompiledSim`] trades a one-time lowering pass for much cheaper
//! per-cycle work compared to [`Simulator`](crate::Simulator):
//!
//! * **Flat struct-of-arrays tape.** Each combinational node becomes one
//!   fixed-size instruction (opcode + pre-resolved operand slots +
//!   precomputed output mask) in topological order — see
//!   [`Program`](crate::program::Program), which this backend shares with
//!   the lane-batched [`BatchedSim`](crate::BatchedSim) behind an `Arc`,
//!   so cloning a compiled session costs only its state arrays.
//! * **Wires cost nothing.** Wire nodes are aliased to their transitive
//!   driver's value slot at compile time, so the chains of named wires a
//!   lowered design produces generate no instructions and no copies.
//! * **Optional tape optimizer.** [`with_tracking_opt`](Self::with_tracking_opt)
//!   runs the [`opt`](crate::opt) passes (constant folding, CSE, dead-node
//!   elimination) over the tape before execution.
//! * **Compiled label tracking.** The executor is monomorphised over the
//!   tracking mode: with [`TrackMode::Off`] the label code paths are
//!   compiled out entirely, so untracked simulation pays zero label cost.
//! * **No allocation in the hot path.** `tick`/`eval` touch only
//!   preallocated arrays; the register update uses a preallocated
//!   two-phase scratch buffer. (Recording a violation stores a
//!   heap-allocated report, but a design that raises no violations never
//!   allocates after construction.)
//! * **Hoisted run loop.** [`run`](Self::run) dispatches on the tracking
//!   mode once, hoists the settled-state check out of the per-tick path
//!   (only the first iteration can be settled), and hoists the violation
//!   cap comparison to once per run instead of once per push.
//!
//! Semantics are bit-for-bit identical to the interpreting
//! [`Simulator`](crate::Simulator) — values, labels, and the recorded
//! violation stream all match, which the differential test suites
//! enforce. The interpreter remains the reference oracle; this backend is
//! the throughput engine.

use std::sync::Arc;

use hdl::{mask, Netlist, NodeId, Value};
use ifc_lattice::{Label, SecurityTag};

use crate::backend::{self, RunEngine};
use crate::opt::{self, OptConfig, OptStats};
use crate::program::{push_violation, CompiledCheck, Op, Program};
use crate::simulator::{AllowedLabel, DEFAULT_VIOLATION_CAP};
use crate::violation::RuntimeViolation;
use crate::TrackMode;

/// The runtime release gate over settled slots, against the precompiled
/// check table. Shared between the recording propagation and the
/// settled-state fast path in [`CompiledSim::tick`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_output_checks(
    output_checks: &[CompiledCheck],
    values: &[Value],
    labels: &[Label],
    slot_of: &[u32],
    cycle: u64,
    violations: &mut Vec<RuntimeViolation>,
    room: &mut usize,
    truncated: &mut bool,
) {
    for check in output_checks {
        let allowed = match &check.allowed {
            AllowedLabel::Const(l) => *l,
            AllowedLabel::Dynamic(expr) => {
                let mut resolve = |sig: NodeId| values[slot_of[sig.index()] as usize];
                expr.eval(&mut resolve)
            }
        };
        let label = labels[check.slot as usize];
        if !label.flows_to(allowed) {
            push_violation(
                violations,
                room,
                truncated,
                RuntimeViolation::OutputLeak {
                    cycle,
                    port: check.port.clone(),
                    label,
                    allowed,
                },
            );
        }
    }
}

/// Compiled-tape simulation backend.
///
/// Drop-in alternative to [`Simulator`](crate::Simulator) with identical
/// observable behaviour (same drive/eval/tick protocol, same values,
/// labels, and violation stream) but a much faster cycle loop. See the
/// [module docs](self) for how it gets there.
#[derive(Debug, Clone)]
pub struct CompiledSim {
    program: Arc<Program>,
    /// Per-slot settled values. Register and input state lives here
    /// directly — there is no separate state array to copy from.
    values: Vec<Value>,
    /// Per-slot runtime labels, parallel to `values`.
    labels: Vec<Label>,
    mem_state: Vec<Vec<Value>>,
    mem_labels: Vec<Vec<Label>>,
    /// Two-phase clock-edge scratch (preallocated; see [`tick`](Self::tick)).
    reg_scratch: Vec<Value>,
    reg_label_scratch: Vec<Label>,
    clean: bool,
    cycle: u64,
    violations: Vec<RuntimeViolation>,
    violation_cap: usize,
    /// Remaining violation room, re-derived by the shared run loop (see
    /// [`backend::RunEngine`]) before each recording propagation.
    room: usize,
    violations_truncated: bool,
}

/// [`RunEngine`] adapter binding the shared settled-state run loop to a
/// `CompiledSim` monomorphised over one tracking mode.
struct CompiledEngine<'a, const TRACK: bool, const PRECISE: bool>(&'a mut CompiledSim);

impl<const TRACK: bool, const PRECISE: bool> RunEngine for CompiledEngine<'_, TRACK, PRECISE> {
    fn is_clean(&self) -> bool {
        self.0.clean
    }

    fn set_dirty(&mut self) {
        self.0.clean = false;
    }

    fn refresh_room(&mut self) {
        self.0.room = self.0.violation_room();
    }

    fn settled_scan(&mut self) {
        self.0.record_settled_violations();
    }

    fn exec_record(&mut self) {
        let mut room = self.0.room;
        self.0.exec::<TRACK, PRECISE>(true, &mut room);
        self.0.room = room;
    }

    fn edge(&mut self) {
        self.0.clock_edge::<TRACK>();
    }
}

impl CompiledSim {
    /// Compiles a netlist with the default conservative tracking.
    #[must_use]
    pub fn new(net: Netlist) -> CompiledSim {
        CompiledSim::with_tracking(net, TrackMode::default())
    }

    /// Compiles a netlist for the given tracking mode, with no optimizer
    /// passes (the tape runs exactly as lowered).
    #[must_use]
    pub fn with_tracking(net: Netlist, mode: TrackMode) -> CompiledSim {
        CompiledSim::with_tracking_opt(net, mode, &OptConfig::none())
    }

    /// Compiles a netlist and runs the configured optimizer passes over
    /// the tape before execution.
    #[must_use]
    pub fn with_tracking_opt(net: Netlist, mode: TrackMode, config: &OptConfig) -> CompiledSim {
        let mut program = Program::compile(net, mode);
        opt::optimize(&mut program, config);
        CompiledSim::from_program(Arc::new(program))
    }

    /// Instantiates one lane of execution state over a shared program.
    pub(crate) fn from_program(program: Arc<Program>) -> CompiledSim {
        let reg_count = program.regs.len();
        CompiledSim {
            values: program.init_values.clone(),
            labels: program.init_labels(),
            mem_state: program.mem_init.clone(),
            mem_labels: program
                .mem_init
                .iter()
                .map(|cells| vec![Label::PUBLIC_TRUSTED; cells.len()])
                .collect(),
            reg_scratch: vec![0; reg_count],
            reg_label_scratch: vec![Label::PUBLIC_TRUSTED; reg_count],
            clean: false,
            cycle: 0,
            violations: Vec::new(),
            violation_cap: DEFAULT_VIOLATION_CAP,
            room: 0,
            violations_truncated: false,
            program,
        }
    }

    /// The wrapped netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.program.net
    }

    /// The tracking mode this backend was compiled for.
    #[must_use]
    pub fn mode(&self) -> TrackMode {
        self.program.mode
    }

    /// The current cycle count (number of completed [`tick`](Self::tick)s).
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// All violations the tracking logic has raised so far.
    #[must_use]
    pub fn violations(&self) -> &[RuntimeViolation] {
        &self.violations
    }

    /// Whether violations were dropped at the cap (see
    /// [`set_violation_cap`](Self::set_violation_cap)).
    #[must_use]
    pub fn violations_truncated(&self) -> bool {
        self.violations_truncated
    }

    /// Bounds the recorded violation stream, mirroring
    /// [`Simulator::set_violation_cap`](crate::Simulator::set_violation_cap).
    pub fn set_violation_cap(&mut self, cap: usize) {
        self.violation_cap = cap;
    }

    /// Number of instructions on the compiled tape (diagnostic; wires and
    /// state nodes contribute none, and optimizer passes may have removed
    /// more).
    #[must_use]
    pub fn tape_len(&self) -> usize {
        self.program.tape.len()
    }

    /// Human-readable listing of the (possibly optimized) instruction
    /// tape; round-trips exactly through [`crate::disasm::parse`].
    #[must_use]
    pub fn disassemble(&self) -> String {
        crate::disasm::render(&self.program.tape)
    }

    /// FNV-1a hash over every tape column; matches
    /// [`crate::disasm::ParsedTape::fingerprint`] for an exact round
    /// trip.
    #[must_use]
    pub fn tape_fingerprint(&self) -> u64 {
        crate::disasm::fingerprint(&self.program.tape)
    }

    /// Statistics of the optimizer passes that ran at construction
    /// (empty for [`with_tracking`](Self::with_tracking)).
    #[must_use]
    pub fn opt_stats(&self) -> &OptStats {
        &self.program.opt_stats
    }

    /// Instruction counts per opcode name (diagnostic, sorted descending).
    #[must_use]
    pub fn op_histogram(&self) -> Vec<(&'static str, usize)> {
        self.program.op_histogram()
    }

    /// Number of maximal same-opcode runs on the tape (diagnostic; the
    /// batched executor dispatches once per run).
    #[must_use]
    pub fn op_run_count(&self) -> usize {
        let ops = &self.program.tape.ops;
        ops.windows(2).filter(|w| w[0] != w[1]).count() + usize::from(!ops.is_empty())
    }

    /// Drives an input port.
    ///
    /// # Panics
    ///
    /// Panics if no input port has that name.
    pub fn set(&mut self, name: &str, value: Value) {
        let id = self.program.resolve_input(name);
        self.set_node(id, value);
    }

    /// Drives an input port by node id.
    ///
    /// # Panics
    ///
    /// Panics if the input was pinned to a constant by the optimizer
    /// configuration.
    pub fn set_node(&mut self, id: NodeId, value: Value) {
        assert!(
            !self.program.pinned[id.index()],
            "input node {id:?} is pinned to a constant by the optimizer config"
        );
        let width = self.program.node_widths[id.index()];
        self.values[self.program.slot_of[id.index()] as usize] = mask(value, width);
        self.clean = false;
    }

    /// Sets the runtime label accompanying an input's data (defaults to
    /// `(P,T)`). A no-op with tracking off, matching the interpreter
    /// (whose labels stay at their initial public-trusted state).
    pub fn set_label(&mut self, name: &str, label: Label) {
        let id = self.program.resolve_input(name);
        if self.mode() != TrackMode::Off {
            self.labels[self.program.slot_of[id.index()] as usize] = label;
        }
        self.clean = false;
    }

    /// Reads a signal's settled value by port or node name.
    ///
    /// # Panics
    ///
    /// Panics if no port or named node matches.
    pub fn peek(&mut self, name: &str) -> Value {
        let id = self.program.lookup(name);
        self.eval();
        self.values[self.program.slot_of[id.index()] as usize]
    }

    /// Reads a signal's settled runtime label.
    pub fn peek_label(&mut self, name: &str) -> Label {
        let id = self.program.lookup(name);
        self.eval();
        self.labels[self.program.slot_of[id.index()] as usize]
    }

    /// Reads a settled value by node id.
    pub fn peek_node(&mut self, id: NodeId) -> Value {
        self.eval();
        self.values[self.program.slot_of[id.index()] as usize]
    }

    /// Reads a settled runtime label by node id.
    pub fn peek_node_label(&mut self, id: NodeId) -> Label {
        self.eval();
        self.labels[self.program.slot_of[id.index()] as usize]
    }

    /// Reads a memory cell directly (for test assertions).
    #[must_use]
    pub fn mem_cell(&self, mem: usize, addr: usize) -> Value {
        self.mem_state[mem][addr]
    }

    /// Reads a memory cell's runtime label directly.
    #[must_use]
    pub fn mem_cell_label(&self, mem: usize, addr: usize) -> Label {
        self.mem_labels[mem][addr]
    }

    /// Finds a memory's index by its declared name.
    #[must_use]
    pub fn mem_index(&self, name: &str) -> Option<usize> {
        self.program.net.mems.iter().position(|m| m.name == name)
    }

    /// Sets a memory cell's runtime label directly (provisioned secrets;
    /// see [`Simulator::set_mem_cell_label`](crate::Simulator::set_mem_cell_label)).
    ///
    /// # Panics
    ///
    /// Panics if `mem` or `addr` is out of range.
    pub fn set_mem_cell_label(&mut self, mem: usize, addr: usize, label: Label) {
        self.mem_labels[mem][addr] = label;
        self.clean = false;
    }

    /// Settles combinational logic for the current inputs. Idempotent.
    pub fn eval(&mut self) {
        if self.clean {
            return;
        }
        self.propagate(false);
        self.clean = true;
    }

    /// Advances one clock cycle: settles combinational logic (recording
    /// any violations), updates registers and memories, then increments
    /// the cycle counter.
    pub fn tick(&mut self) {
        // The settled fast path (see `backend::tick_engine`): after an
        // `eval`, a recording propagation would recompute identical
        // values and labels, so only the violation scan — the downgrade
        // gates and the output release checks — re-runs. This is the
        // common shape under a transaction driver, which reads the
        // output handshake (forcing an eval) in the same cycle it then
        // clocks.
        match self.mode() {
            TrackMode::Off => backend::tick_engine(&mut CompiledEngine::<false, false>(self)),
            TrackMode::Conservative => {
                backend::tick_engine(&mut CompiledEngine::<true, false>(self));
            }
            TrackMode::Precise => backend::tick_engine(&mut CompiledEngine::<true, true>(self)),
        }
    }

    /// Runs `n` clock cycles with the current inputs.
    ///
    /// Semantically `n` repeated [`tick`](Self::tick)s, but the loop is
    /// monomorphised once per tracking mode, the settled-state check is
    /// hoisted (only the first iteration can be settled), and the
    /// violation cap is re-derived once per run instead of per tick
    /// (the shared `backend::run_engine` loop).
    pub fn run(&mut self, n: u64) {
        match self.mode() {
            TrackMode::Off => backend::run_engine(&mut CompiledEngine::<false, false>(self), n),
            TrackMode::Conservative => {
                backend::run_engine(&mut CompiledEngine::<true, false>(self), n);
            }
            TrackMode::Precise => backend::run_engine(&mut CompiledEngine::<true, true>(self), n),
        }
    }

    /// Remaining space in the recorded violation stream.
    fn violation_room(&self) -> usize {
        self.violation_cap.saturating_sub(self.violations.len())
    }

    /// The clock edge: registers and memory write ports observe settled
    /// pre-edge state via a two-phase snapshot, then the cycle counter
    /// advances.
    fn clock_edge<const TRACK: bool>(&mut self) {
        let CompiledSim {
            program,
            values,
            labels,
            mem_state,
            mem_labels,
            reg_scratch,
            reg_label_scratch,
            cycle,
            ..
        } = self;
        // Phase 1: snapshot every register's next value while all slots
        // still hold settled combinational state. Registers live in the
        // same slot array their readers see, so installing in-place
        // without the snapshot would let one register's update corrupt
        // another's (or a write port's) view of this cycle.
        for (i, r) in program.regs.iter().enumerate() {
            reg_scratch[i] = values[r.src as usize] & r.mask;
        }
        if TRACK {
            for (i, r) in program.regs.iter().enumerate() {
                reg_label_scratch[i] = labels[r.src as usize];
            }
        }
        // Memory write ports next, in statement order — they too must
        // observe the settled pre-edge values (address/data/enable may
        // read register slots).
        for wp in &program.write_ports {
            if values[wp.en as usize] & 1 == 1 {
                let mem = wp.mem as usize;
                let depth = mem_state[mem].len();
                let addr = match program.mem_addr_mask[mem] {
                    Some(amask) => (values[wp.addr as usize] as usize) & amask,
                    None => (values[wp.addr as usize] as usize) % depth,
                };
                mem_state[mem][addr] = values[wp.data as usize];
                if TRACK {
                    let label = labels[wp.data as usize]
                        .join(labels[wp.addr as usize])
                        .join(labels[wp.en as usize]);
                    mem_labels[mem][addr] = label;
                }
            }
        }
        // Phase 2: install the snapshot.
        for (i, r) in program.regs.iter().enumerate() {
            values[r.dst as usize] = reg_scratch[i];
        }
        if TRACK {
            for (i, r) in program.regs.iter().enumerate() {
                labels[r.dst as usize] = reg_label_scratch[i];
            }
        }
        *cycle += 1;
    }

    /// Records exactly the violations a recording propagation would raise
    /// over the current *settled* state, without re-executing the tape:
    /// each downgrade gate's accept/reject is recomputed from its settled
    /// operands (in tape order, matching the recording order of a full
    /// pass), then the output release checks run. Only valid when `clean`.
    fn record_settled_violations(&mut self) {
        if self.mode() == TrackMode::Off {
            return;
        }
        let mut room = self.violation_room();
        let CompiledSim {
            program,
            values,
            labels,
            violations,
            violations_truncated,
            cycle,
            ..
        } = self;
        let tape = &program.tape;
        for &i in &program.downgrades {
            let i = i as usize;
            let from = labels[tape.a[i] as usize];
            let to = Label::from(SecurityTag::from_bits(tape.aux[i] as u8));
            let p = Label::from(SecurityTag::from_bits(values[tape.b[i] as usize] as u8));
            let rejected = match tape.ops[i] {
                Op::Declassify => ifc_lattice::declassify(from, to, p).is_err(),
                _ => ifc_lattice::endorse(from, to, p).is_err(),
            };
            if rejected {
                push_violation(
                    violations,
                    &mut room,
                    violations_truncated,
                    RuntimeViolation::DowngradeRejected {
                        cycle: *cycle,
                        node: NodeId::from_raw(tape.c[i]),
                        from,
                        to,
                        principal: p,
                    },
                );
            }
        }
        run_output_checks(
            &program.output_checks,
            values,
            labels,
            &program.slot_of,
            *cycle,
            violations,
            &mut room,
            violations_truncated,
        );
    }

    /// Dispatches to the executor monomorphised for this tracking mode.
    fn propagate(&mut self, record: bool) {
        let mut room = self.violation_room();
        match self.mode() {
            TrackMode::Off => self.exec::<false, false>(record, &mut room),
            TrackMode::Conservative => self.exec::<true, false>(record, &mut room),
            TrackMode::Precise => self.exec::<true, true>(record, &mut room),
        }
    }

    /// The dispatch loop. `TRACK` compiles label propagation in or out;
    /// `PRECISE` selects the mux label rule. Violations are recorded only
    /// when `record` (i.e. from [`tick`](Self::tick), never from
    /// [`eval`](Self::eval)), matching the interpreter.
    #[allow(clippy::too_many_lines)]
    fn exec<const TRACK: bool, const PRECISE: bool>(&mut self, record: bool, room: &mut usize) {
        // Disjoint field borrows: the program is read-only while slots,
        // memories, and the violation stream are written.
        let CompiledSim {
            program,
            values,
            labels,
            mem_state,
            mem_labels,
            violations,
            violations_truncated,
            cycle,
            ..
        } = self;
        let tape = &program.tape;
        // Reslicing every tape column to the common length lets the
        // compiler prove the per-instruction column indexing in bounds
        // and drop the checks from the dispatch loop.
        let n = tape.ops.len();
        let ops = &tape.ops[..n];
        let col_dst = &tape.dst[..n];
        let col_a = &tape.a[..n];
        let col_b = &tape.b[..n];
        let col_c = &tape.c[..n];
        let col_aux = &tape.aux[..n];
        let col_mask = &tape.out_mask[..n];
        for i in 0..n {
            let a = col_a[i] as usize;
            let b = col_b[i] as usize;
            let mut label = Label::PUBLIC_TRUSTED;
            let value = match ops[i] {
                Op::Not => {
                    if TRACK {
                        label = labels[a];
                    }
                    !values[a]
                }
                Op::ReduceOr => {
                    if TRACK {
                        label = labels[a];
                    }
                    Value::from(values[a] != 0)
                }
                Op::ReduceAnd => {
                    if TRACK {
                        label = labels[a];
                    }
                    Value::from(values[a] == col_aux[i])
                }
                Op::ReduceXor => {
                    if TRACK {
                        label = labels[a];
                    }
                    Value::from(values[a].count_ones() % 2 == 1)
                }
                Op::And => {
                    if TRACK {
                        label = labels[a].join(labels[b]);
                    }
                    values[a] & values[b]
                }
                Op::Or => {
                    if TRACK {
                        label = labels[a].join(labels[b]);
                    }
                    values[a] | values[b]
                }
                Op::Xor => {
                    if TRACK {
                        label = labels[a].join(labels[b]);
                    }
                    values[a] ^ values[b]
                }
                Op::Add => {
                    if TRACK {
                        label = labels[a].join(labels[b]);
                    }
                    values[a].wrapping_add(values[b])
                }
                Op::Sub => {
                    if TRACK {
                        label = labels[a].join(labels[b]);
                    }
                    values[a].wrapping_sub(values[b])
                }
                Op::Eq => {
                    if TRACK {
                        label = labels[a].join(labels[b]);
                    }
                    Value::from(values[a] == values[b])
                }
                Op::Ne => {
                    if TRACK {
                        label = labels[a].join(labels[b]);
                    }
                    Value::from(values[a] != values[b])
                }
                Op::Lt => {
                    if TRACK {
                        label = labels[a].join(labels[b]);
                    }
                    Value::from(values[a] < values[b])
                }
                Op::Ge => {
                    if TRACK {
                        label = labels[a].join(labels[b]);
                    }
                    Value::from(values[a] >= values[b])
                }
                Op::TagLeq => {
                    if TRACK {
                        label = labels[a].join(labels[b]);
                    }
                    let la = Label::from(SecurityTag::from_bits(values[a] as u8));
                    let lb = Label::from(SecurityTag::from_bits(values[b] as u8));
                    Value::from(la.flows_to(lb))
                }
                Op::TagJoin => {
                    if TRACK {
                        label = labels[a].join(labels[b]);
                    }
                    let la = Label::from(SecurityTag::from_bits(values[a] as u8));
                    let lb = Label::from(SecurityTag::from_bits(values[b] as u8));
                    Value::from(SecurityTag::from(la.join(lb)).bits())
                }
                Op::TagMeet => {
                    if TRACK {
                        label = labels[a].join(labels[b]);
                    }
                    let la = Label::from(SecurityTag::from_bits(values[a] as u8));
                    let lb = Label::from(SecurityTag::from_bits(values[b] as u8));
                    Value::from(SecurityTag::from(la.meet(lb)).bits())
                }
                Op::Mux => {
                    let c = col_c[i] as usize;
                    let sel = values[a] & 1;
                    if TRACK {
                        label = if PRECISE {
                            let arm = if sel == 1 { labels[b] } else { labels[c] };
                            labels[a].join(arm)
                        } else {
                            labels[a].join(labels[b]).join(labels[c])
                        };
                    }
                    if sel == 1 {
                        values[b]
                    } else {
                        values[c]
                    }
                }
                Op::Slice => {
                    if TRACK {
                        label = labels[a];
                    }
                    values[a] >> b
                }
                Op::Cat => {
                    if TRACK {
                        label = labels[a].join(labels[b]);
                    }
                    (values[a] << col_c[i]) | values[b]
                }
                Op::MemRead => {
                    let depth = mem_state[b].len();
                    let addr = match program.mem_addr_mask[b] {
                        Some(amask) => (values[a] as usize) & amask,
                        None => (values[a] as usize) % depth,
                    };
                    if TRACK {
                        label = mem_labels[b][addr].join(labels[a]);
                    }
                    mem_state[b][addr]
                }
                Op::Declassify | Op::Endorse => {
                    if TRACK {
                        let from = labels[a];
                        let to = Label::from(SecurityTag::from_bits(col_aux[i] as u8));
                        let p = Label::from(SecurityTag::from_bits(values[b] as u8));
                        let downgraded = if ops[i] == Op::Declassify {
                            ifc_lattice::declassify(from, to, p)
                        } else {
                            ifc_lattice::endorse(from, to, p)
                        };
                        label = match downgraded {
                            Ok(l) => l,
                            Err(_) => {
                                if record {
                                    push_violation(
                                        violations,
                                        room,
                                        violations_truncated,
                                        RuntimeViolation::DowngradeRejected {
                                            cycle: *cycle,
                                            node: NodeId::from_raw(col_c[i]),
                                            from,
                                            to,
                                            principal: p,
                                        },
                                    );
                                }
                                // Refused downgrade: keep the restrictive
                                // label, same as the interpreter.
                                from
                            }
                        };
                    }
                    values[a]
                }
            };
            let dst = col_dst[i] as usize;
            values[dst] = value & col_mask[i];
            if TRACK {
                labels[dst] = label;
            }
        }

        // The runtime release gate, against the precompiled check table.
        if record && TRACK {
            run_output_checks(
                &program.output_checks,
                values,
                labels,
                &program.slot_of,
                *cycle,
                violations,
                room,
                violations_truncated,
            );
        }
    }
}
