//! The backend abstraction shared by the interpreting and compiled
//! simulators.
//!
//! Drivers, tests, and attack harnesses that only need the common
//! drive/eval/tick protocol can be generic over [`SimBackend`] and run
//! unchanged against either engine: [`Simulator`] (the readable
//! reference oracle) or [`CompiledSim`] (the throughput backend). The
//! differential suites rely on this to execute identical stimulus
//! against both and compare values, labels, and violation streams.

use hdl::{Netlist, NodeId, Value};
use ifc_lattice::Label;

use crate::batched::LaneSnapshot;
use crate::violation::RuntimeViolation;
use crate::{BatchedSim, CompiledSim, OptConfig, Simulator, TrackMode};

/// One backend's hooks into the shared settled-state/violation-cap run
/// loop.
///
/// Every backend advances the clock the same way: a settled eval lets the
/// tape be skipped (only the downgrade gates and release checks re-run),
/// a dirty state re-derives the remaining violation room and executes a
/// recording propagation, and the steady-state portion of a multi-cycle
/// run never re-checks the settled flag. [`tick_engine`] and
/// [`run_engine`] encode that shape once; `Simulator`, `CompiledSim`,
/// `BatchedSim`, and `NativeSim` supply only the backend-specific pieces.
pub(crate) trait RunEngine {
    /// Whether a prior `eval` already settled the current inputs.
    fn is_clean(&self) -> bool;
    /// Marks combinational state stale (a clock edge is about to run).
    fn set_dirty(&mut self);
    /// Re-derives the remaining violation room from the cap.
    fn refresh_room(&mut self);
    /// Re-runs only the violation scan over settled state.
    fn settled_scan(&mut self);
    /// One recording combinational propagation.
    fn exec_record(&mut self);
    /// The clock edge: registers, memory write ports, cycle counter.
    fn edge(&mut self);
}

/// One clock cycle through a [`RunEngine`]: the settled fast path skips
/// the tape and re-runs only the violation scan; otherwise the violation
/// room is refreshed and a recording propagation executes. Either way the
/// state is marked dirty and the clock edge fires.
pub(crate) fn tick_engine<E: RunEngine>(engine: &mut E) {
    if engine.is_clean() {
        engine.settled_scan();
    } else {
        engine.refresh_room();
        engine.exec_record();
    }
    engine.set_dirty();
    engine.edge();
}

/// `n` clock cycles through a [`RunEngine`]. The first cycle honours a
/// settled eval exactly like [`tick_engine`]; the steady state skips the
/// settled check (nothing settles mid-run) and re-derives the violation
/// room once instead of per tick.
pub(crate) fn run_engine<E: RunEngine>(engine: &mut E, n: u64) {
    if n == 0 {
        return;
    }
    tick_engine(engine);
    engine.refresh_room();
    for _ in 1..n {
        engine.exec_record();
        engine.edge();
    }
}

/// The common simulation interface both backends implement.
///
/// Semantics are specified by [`Simulator`]'s documentation; any backend
/// implementing this trait must match the interpreter's observable
/// behaviour exactly (values, labels, cycle counts, and the recorded
/// violation stream).
pub trait SimBackend {
    /// Builds a backend instance for a lowered netlist in the given
    /// tracking mode.
    fn from_netlist(net: Netlist, mode: TrackMode) -> Self
    where
        Self: Sized;

    /// The wrapped netlist.
    fn netlist(&self) -> &Netlist;

    /// The tracking mode this backend runs.
    fn mode(&self) -> TrackMode;

    /// Drives an input port by name.
    fn set(&mut self, name: &str, value: Value);

    /// Sets the runtime label accompanying an input's data.
    fn set_label(&mut self, name: &str, label: Label);

    /// Reads a signal's settled value by port or node name.
    fn peek(&mut self, name: &str) -> Value;

    /// Reads a signal's settled runtime label.
    fn peek_label(&mut self, name: &str) -> Label;

    /// Settles combinational logic for the current inputs.
    fn eval(&mut self);

    /// Advances one clock cycle.
    fn tick(&mut self);

    /// Runs `n` clock cycles with the current inputs.
    fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.tick();
        }
    }

    /// The current cycle count.
    fn cycle(&self) -> u64;

    /// All violations the tracking logic has raised so far.
    fn violations(&self) -> &[RuntimeViolation];

    /// Whether violations were dropped at the configured cap.
    fn violations_truncated(&self) -> bool;

    /// Bounds the recorded violation stream.
    fn set_violation_cap(&mut self, cap: usize);

    /// Finds a memory's index by its declared name.
    fn mem_index(&self, name: &str) -> Option<usize>;

    /// Reads a memory cell directly.
    fn mem_cell(&self, mem: usize, addr: usize) -> Value;

    /// Reads a memory cell's runtime label directly.
    fn mem_cell_label(&self, mem: usize, addr: usize) -> Label;

    /// Sets a memory cell's runtime label directly (provisioned secrets).
    fn set_mem_cell_label(&mut self, mem: usize, addr: usize, label: Label);

    /// Reads a node's settled runtime label by id.
    fn peek_node_label(&mut self, id: NodeId) -> Label;

    /// Joins the settled runtime label of every node into `acc`, indexed
    /// by [`NodeId::index`]. The static/dynamic lint cross-check samples
    /// this each cycle to build the observed tag plane.
    fn fold_label_plane(&mut self, acc: &mut [Label]) {
        let n = self.netlist().node_count();
        assert_eq!(acc.len(), n, "accumulator must cover every node");
        for (i, slot) in acc.iter_mut().enumerate() {
            let label = self.peek_node_label(NodeId::from_raw(i as u32));
            *slot = slot.join(label);
        }
    }

    /// Joins every memory cell's runtime label into `acc`, summarised
    /// per array (one join over all cells), indexed by memory index.
    fn fold_mem_labels(&mut self, acc: &mut [Label]) {
        let depths: Vec<usize> = self.netlist().mems.iter().map(|m| m.depth).collect();
        assert_eq!(
            acc.len(),
            depths.len(),
            "accumulator must cover every memory"
        );
        for (mem, depth) in depths.into_iter().enumerate() {
            for addr in 0..depth {
                acc[mem] = acc[mem].join(self.mem_cell_label(mem, addr));
            }
        }
    }
}

impl SimBackend for Simulator {
    fn from_netlist(net: Netlist, mode: TrackMode) -> Simulator {
        Simulator::with_tracking(net, mode)
    }

    fn netlist(&self) -> &Netlist {
        Simulator::netlist(self)
    }

    fn mode(&self) -> TrackMode {
        Simulator::mode(self)
    }

    fn set(&mut self, name: &str, value: Value) {
        Simulator::set(self, name, value);
    }

    fn set_label(&mut self, name: &str, label: Label) {
        Simulator::set_label(self, name, label);
    }

    fn peek(&mut self, name: &str) -> Value {
        Simulator::peek(self, name)
    }

    fn peek_label(&mut self, name: &str) -> Label {
        Simulator::peek_label(self, name)
    }

    fn eval(&mut self) {
        Simulator::eval(self);
    }

    fn tick(&mut self) {
        Simulator::tick(self);
    }

    fn run(&mut self, n: u64) {
        Simulator::run(self, n);
    }

    fn cycle(&self) -> u64 {
        Simulator::cycle(self)
    }

    fn violations(&self) -> &[RuntimeViolation] {
        Simulator::violations(self)
    }

    fn violations_truncated(&self) -> bool {
        Simulator::violations_truncated(self)
    }

    fn set_violation_cap(&mut self, cap: usize) {
        Simulator::set_violation_cap(self, cap);
    }

    fn mem_index(&self, name: &str) -> Option<usize> {
        Simulator::mem_index(self, name)
    }

    fn mem_cell(&self, mem: usize, addr: usize) -> Value {
        Simulator::mem_cell(self, mem, addr)
    }

    fn mem_cell_label(&self, mem: usize, addr: usize) -> Label {
        Simulator::mem_cell_label(self, mem, addr)
    }

    fn set_mem_cell_label(&mut self, mem: usize, addr: usize, label: Label) {
        Simulator::set_mem_cell_label(self, mem, addr, label);
    }

    fn peek_node_label(&mut self, id: NodeId) -> Label {
        Simulator::peek_node_label(self, id)
    }
}

impl SimBackend for CompiledSim {
    fn from_netlist(net: Netlist, mode: TrackMode) -> CompiledSim {
        CompiledSim::with_tracking(net, mode)
    }

    fn netlist(&self) -> &Netlist {
        CompiledSim::netlist(self)
    }

    fn mode(&self) -> TrackMode {
        CompiledSim::mode(self)
    }

    fn set(&mut self, name: &str, value: Value) {
        CompiledSim::set(self, name, value);
    }

    fn set_label(&mut self, name: &str, label: Label) {
        CompiledSim::set_label(self, name, label);
    }

    fn peek(&mut self, name: &str) -> Value {
        CompiledSim::peek(self, name)
    }

    fn peek_label(&mut self, name: &str) -> Label {
        CompiledSim::peek_label(self, name)
    }

    fn eval(&mut self) {
        CompiledSim::eval(self);
    }

    fn tick(&mut self) {
        CompiledSim::tick(self);
    }

    fn run(&mut self, n: u64) {
        // Forward to the hoisted run loop (mode dispatched once, settled
        // check on the first iteration only, violation cap re-derived per
        // run) instead of the default per-tick loop.
        CompiledSim::run(self, n);
    }

    fn cycle(&self) -> u64 {
        CompiledSim::cycle(self)
    }

    fn violations(&self) -> &[RuntimeViolation] {
        CompiledSim::violations(self)
    }

    fn violations_truncated(&self) -> bool {
        CompiledSim::violations_truncated(self)
    }

    fn set_violation_cap(&mut self, cap: usize) {
        CompiledSim::set_violation_cap(self, cap);
    }

    fn mem_index(&self, name: &str) -> Option<usize> {
        CompiledSim::mem_index(self, name)
    }

    fn mem_cell(&self, mem: usize, addr: usize) -> Value {
        CompiledSim::mem_cell(self, mem, addr)
    }

    fn mem_cell_label(&self, mem: usize, addr: usize) -> Label {
        CompiledSim::mem_cell_label(self, mem, addr)
    }

    fn set_mem_cell_label(&mut self, mem: usize, addr: usize, label: Label) {
        CompiledSim::set_mem_cell_label(self, mem, addr, label);
    }

    fn peek_node_label(&mut self, id: NodeId) -> Label {
        CompiledSim::peek_node_label(self, id)
    }
}

/// The lane-parallel simulation interface shared by [`BatchedSim`] and
/// [`NativeSim`](crate::NativeSim).
///
/// Mirrors [`SimBackend`] but addresses a specific lane on every state
/// accessor, so the batched transaction driver and the fleet runner can be
/// generic over which lane-parallel engine executes the tape. Semantics
/// are specified by [`BatchedSim`]: every lane must match what a
/// single-session [`Simulator`] fed the same stimulus would observe.
pub trait LaneBackend {
    /// Builds a backend for a lowered netlist with the given tracking
    /// mode, lane width, and optimizer configuration.
    fn with_tracking_opt(net: Netlist, mode: TrackMode, lanes: usize, opt: &OptConfig) -> Self
    where
        Self: Sized;

    /// A fresh instance sharing this backend's compiled artifacts but
    /// sized for a different lane width.
    fn with_lanes(&self, lanes: usize) -> Self
    where
        Self: Sized;

    /// The narrowest lane width at which this backend's per-batch
    /// overhead amortizes: schedulers splitting work across cores should
    /// not shrink batches below it. The interpreter degrades gracefully
    /// all the way down (`1`); the native executor's per-pass setup and
    /// i-fetch cost only pay off at W ≥ 4 (see BENCH_sim.json's
    /// `native.rows`).
    fn min_efficient_width() -> usize
    where
        Self: Sized,
    {
        1
    }

    /// The number of independent sessions executing in lock-step.
    fn lanes(&self) -> usize;

    /// The wrapped netlist.
    fn netlist(&self) -> &Netlist;

    /// The tracking mode this backend runs.
    fn mode(&self) -> TrackMode;

    /// The current cycle count (shared by every lane).
    fn cycle(&self) -> u64;

    /// Drives an input port by name on one lane.
    fn set(&mut self, lane: usize, name: &str, value: Value);

    /// Sets the runtime label accompanying one lane's input data.
    fn set_label(&mut self, lane: usize, name: &str, label: Label);

    /// Drives an input node by id on one lane.
    fn set_node(&mut self, lane: usize, id: NodeId, value: Value);

    /// Sets an input node's runtime label by id on one lane.
    fn set_node_label(&mut self, lane: usize, id: NodeId, label: Label);

    /// Reads one lane's settled value by port or node name.
    fn peek(&mut self, lane: usize, name: &str) -> Value;

    /// Reads one lane's settled runtime label by name.
    fn peek_label(&mut self, lane: usize, name: &str) -> Label;

    /// Reads one lane's settled value by node id.
    fn peek_node(&mut self, lane: usize, id: NodeId) -> Value;

    /// Reads one lane's settled runtime label by node id.
    fn peek_node_label(&mut self, lane: usize, id: NodeId) -> Label;

    /// Settles combinational logic of every lane for the current inputs.
    fn eval(&mut self);

    /// Advances every lane one clock cycle.
    fn tick(&mut self);

    /// Runs `n` clock cycles with the current inputs.
    fn run(&mut self, n: u64);

    /// One lane's recorded violations.
    fn violations(&self, lane: usize) -> &[RuntimeViolation];

    /// Whether one lane's violation stream hit the cap.
    fn violations_truncated(&self, lane: usize) -> bool;

    /// Bounds every lane's recorded violation stream.
    fn set_violation_cap(&mut self, cap: usize);

    /// Finds a memory's index by its declared name.
    fn mem_index(&self, name: &str) -> Option<usize>;

    /// Reads one lane's memory cell directly.
    fn mem_cell(&self, lane: usize, mem: usize, addr: usize) -> Value;

    /// Reads one lane's memory cell label directly.
    fn mem_cell_label(&self, lane: usize, mem: usize, addr: usize) -> Label;

    /// Sets one lane's memory cell label directly (provisioned secrets).
    fn set_mem_cell_label(&mut self, lane: usize, mem: usize, addr: usize, label: Label);

    /// Joins one lane's settled label of every node into `acc`, indexed
    /// by [`NodeId::index`].
    fn fold_label_plane(&mut self, lane: usize, acc: &mut [Label]);

    /// Joins one lane's memory cell labels into `acc`, summarised per
    /// array.
    fn fold_mem_labels(&mut self, lane: usize, acc: &mut [Label]);

    /// Reads one lane's settled value and packed [`SecurityTag`] bits
    /// for a set of nodes in one call — the flight-recorder sampling
    /// hook. `values` and `labels` must each hold one slot per node.
    /// The default loops the per-node peeks; backends with cheaper bulk
    /// access may override.
    ///
    /// [`SecurityTag`]: ifc_lattice::SecurityTag
    fn sample_nodes(
        &mut self,
        lane: usize,
        nodes: &[NodeId],
        values: &mut [Value],
        labels: &mut [u8],
    ) {
        assert_eq!(values.len(), nodes.len(), "one value slot per node");
        assert_eq!(labels.len(), nodes.len(), "one label slot per node");
        for (i, &id) in nodes.iter().enumerate() {
            values[i] = self.peek_node(lane, id);
            labels[i] = ifc_lattice::SecurityTag::from(self.peek_node_label(lane, id)).bits();
        }
    }

    /// Checkpoints one lane's complete architectural state (see
    /// [`BatchedSim::lane_snapshot`]).
    fn lane_snapshot(&mut self, lane: usize) -> LaneSnapshot;

    /// Restores a checkpointed lane into this batch (see
    /// [`BatchedSim::restore_lane`]).
    fn restore_lane(&mut self, lane: usize, snap: &LaneSnapshot);
}

impl LaneBackend for BatchedSim {
    fn with_tracking_opt(net: Netlist, mode: TrackMode, lanes: usize, opt: &OptConfig) -> Self {
        BatchedSim::with_tracking_opt(net, mode, lanes, opt)
    }

    fn with_lanes(&self, lanes: usize) -> Self {
        BatchedSim::with_lanes(self, lanes)
    }

    fn lanes(&self) -> usize {
        BatchedSim::lanes(self)
    }

    fn netlist(&self) -> &Netlist {
        BatchedSim::netlist(self)
    }

    fn mode(&self) -> TrackMode {
        BatchedSim::mode(self)
    }

    fn cycle(&self) -> u64 {
        BatchedSim::cycle(self)
    }

    fn set(&mut self, lane: usize, name: &str, value: Value) {
        BatchedSim::set(self, lane, name, value);
    }

    fn set_label(&mut self, lane: usize, name: &str, label: Label) {
        BatchedSim::set_label(self, lane, name, label);
    }

    fn set_node(&mut self, lane: usize, id: NodeId, value: Value) {
        BatchedSim::set_node(self, lane, id, value);
    }

    fn set_node_label(&mut self, lane: usize, id: NodeId, label: Label) {
        BatchedSim::set_node_label(self, lane, id, label);
    }

    fn peek(&mut self, lane: usize, name: &str) -> Value {
        BatchedSim::peek(self, lane, name)
    }

    fn peek_label(&mut self, lane: usize, name: &str) -> Label {
        BatchedSim::peek_label(self, lane, name)
    }

    fn peek_node(&mut self, lane: usize, id: NodeId) -> Value {
        BatchedSim::peek_node(self, lane, id)
    }

    fn peek_node_label(&mut self, lane: usize, id: NodeId) -> Label {
        BatchedSim::peek_node_label(self, lane, id)
    }

    fn eval(&mut self) {
        BatchedSim::eval(self);
    }

    fn tick(&mut self) {
        BatchedSim::tick(self);
    }

    fn run(&mut self, n: u64) {
        BatchedSim::run(self, n);
    }

    fn violations(&self, lane: usize) -> &[RuntimeViolation] {
        BatchedSim::violations(self, lane)
    }

    fn violations_truncated(&self, lane: usize) -> bool {
        BatchedSim::violations_truncated(self, lane)
    }

    fn set_violation_cap(&mut self, cap: usize) {
        BatchedSim::set_violation_cap(self, cap);
    }

    fn mem_index(&self, name: &str) -> Option<usize> {
        BatchedSim::mem_index(self, name)
    }

    fn mem_cell(&self, lane: usize, mem: usize, addr: usize) -> Value {
        BatchedSim::mem_cell(self, lane, mem, addr)
    }

    fn mem_cell_label(&self, lane: usize, mem: usize, addr: usize) -> Label {
        BatchedSim::mem_cell_label(self, lane, mem, addr)
    }

    fn set_mem_cell_label(&mut self, lane: usize, mem: usize, addr: usize, label: Label) {
        BatchedSim::set_mem_cell_label(self, lane, mem, addr, label);
    }

    fn fold_label_plane(&mut self, lane: usize, acc: &mut [Label]) {
        BatchedSim::fold_label_plane(self, lane, acc);
    }

    fn fold_mem_labels(&mut self, lane: usize, acc: &mut [Label]) {
        BatchedSim::fold_mem_labels(self, lane, acc);
    }

    fn lane_snapshot(&mut self, lane: usize) -> LaneSnapshot {
        BatchedSim::lane_snapshot(self, lane)
    }

    fn restore_lane(&mut self, lane: usize, snap: &LaneSnapshot) {
        BatchedSim::restore_lane(self, lane, snap);
    }
}
