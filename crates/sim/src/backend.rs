//! The backend abstraction shared by the interpreting and compiled
//! simulators.
//!
//! Drivers, tests, and attack harnesses that only need the common
//! drive/eval/tick protocol can be generic over [`SimBackend`] and run
//! unchanged against either engine: [`Simulator`] (the readable
//! reference oracle) or [`CompiledSim`] (the throughput backend). The
//! differential suites rely on this to execute identical stimulus
//! against both and compare values, labels, and violation streams.

use hdl::{Netlist, NodeId, Value};
use ifc_lattice::Label;

use crate::violation::RuntimeViolation;
use crate::{CompiledSim, Simulator, TrackMode};

/// The common simulation interface both backends implement.
///
/// Semantics are specified by [`Simulator`]'s documentation; any backend
/// implementing this trait must match the interpreter's observable
/// behaviour exactly (values, labels, cycle counts, and the recorded
/// violation stream).
pub trait SimBackend {
    /// Builds a backend instance for a lowered netlist in the given
    /// tracking mode.
    fn from_netlist(net: Netlist, mode: TrackMode) -> Self
    where
        Self: Sized;

    /// The wrapped netlist.
    fn netlist(&self) -> &Netlist;

    /// The tracking mode this backend runs.
    fn mode(&self) -> TrackMode;

    /// Drives an input port by name.
    fn set(&mut self, name: &str, value: Value);

    /// Sets the runtime label accompanying an input's data.
    fn set_label(&mut self, name: &str, label: Label);

    /// Reads a signal's settled value by port or node name.
    fn peek(&mut self, name: &str) -> Value;

    /// Reads a signal's settled runtime label.
    fn peek_label(&mut self, name: &str) -> Label;

    /// Settles combinational logic for the current inputs.
    fn eval(&mut self);

    /// Advances one clock cycle.
    fn tick(&mut self);

    /// Runs `n` clock cycles with the current inputs.
    fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.tick();
        }
    }

    /// The current cycle count.
    fn cycle(&self) -> u64;

    /// All violations the tracking logic has raised so far.
    fn violations(&self) -> &[RuntimeViolation];

    /// Whether violations were dropped at the configured cap.
    fn violations_truncated(&self) -> bool;

    /// Bounds the recorded violation stream.
    fn set_violation_cap(&mut self, cap: usize);

    /// Finds a memory's index by its declared name.
    fn mem_index(&self, name: &str) -> Option<usize>;

    /// Reads a memory cell directly.
    fn mem_cell(&self, mem: usize, addr: usize) -> Value;

    /// Reads a memory cell's runtime label directly.
    fn mem_cell_label(&self, mem: usize, addr: usize) -> Label;

    /// Sets a memory cell's runtime label directly (provisioned secrets).
    fn set_mem_cell_label(&mut self, mem: usize, addr: usize, label: Label);

    /// Reads a node's settled runtime label by id.
    fn peek_node_label(&mut self, id: NodeId) -> Label;

    /// Joins the settled runtime label of every node into `acc`, indexed
    /// by [`NodeId::index`]. The static/dynamic lint cross-check samples
    /// this each cycle to build the observed tag plane.
    fn fold_label_plane(&mut self, acc: &mut [Label]) {
        let n = self.netlist().node_count();
        assert_eq!(acc.len(), n, "accumulator must cover every node");
        for (i, slot) in acc.iter_mut().enumerate() {
            let label = self.peek_node_label(NodeId::from_raw(i as u32));
            *slot = slot.join(label);
        }
    }

    /// Joins every memory cell's runtime label into `acc`, summarised
    /// per array (one join over all cells), indexed by memory index.
    fn fold_mem_labels(&mut self, acc: &mut [Label]) {
        let depths: Vec<usize> = self.netlist().mems.iter().map(|m| m.depth).collect();
        assert_eq!(
            acc.len(),
            depths.len(),
            "accumulator must cover every memory"
        );
        for (mem, depth) in depths.into_iter().enumerate() {
            for addr in 0..depth {
                acc[mem] = acc[mem].join(self.mem_cell_label(mem, addr));
            }
        }
    }
}

impl SimBackend for Simulator {
    fn from_netlist(net: Netlist, mode: TrackMode) -> Simulator {
        Simulator::with_tracking(net, mode)
    }

    fn netlist(&self) -> &Netlist {
        Simulator::netlist(self)
    }

    fn mode(&self) -> TrackMode {
        Simulator::mode(self)
    }

    fn set(&mut self, name: &str, value: Value) {
        Simulator::set(self, name, value);
    }

    fn set_label(&mut self, name: &str, label: Label) {
        Simulator::set_label(self, name, label);
    }

    fn peek(&mut self, name: &str) -> Value {
        Simulator::peek(self, name)
    }

    fn peek_label(&mut self, name: &str) -> Label {
        Simulator::peek_label(self, name)
    }

    fn eval(&mut self) {
        Simulator::eval(self);
    }

    fn tick(&mut self) {
        Simulator::tick(self);
    }

    fn cycle(&self) -> u64 {
        Simulator::cycle(self)
    }

    fn violations(&self) -> &[RuntimeViolation] {
        Simulator::violations(self)
    }

    fn violations_truncated(&self) -> bool {
        Simulator::violations_truncated(self)
    }

    fn set_violation_cap(&mut self, cap: usize) {
        Simulator::set_violation_cap(self, cap);
    }

    fn mem_index(&self, name: &str) -> Option<usize> {
        Simulator::mem_index(self, name)
    }

    fn mem_cell(&self, mem: usize, addr: usize) -> Value {
        Simulator::mem_cell(self, mem, addr)
    }

    fn mem_cell_label(&self, mem: usize, addr: usize) -> Label {
        Simulator::mem_cell_label(self, mem, addr)
    }

    fn set_mem_cell_label(&mut self, mem: usize, addr: usize, label: Label) {
        Simulator::set_mem_cell_label(self, mem, addr, label);
    }

    fn peek_node_label(&mut self, id: NodeId) -> Label {
        Simulator::peek_node_label(self, id)
    }
}

impl SimBackend for CompiledSim {
    fn from_netlist(net: Netlist, mode: TrackMode) -> CompiledSim {
        CompiledSim::with_tracking(net, mode)
    }

    fn netlist(&self) -> &Netlist {
        CompiledSim::netlist(self)
    }

    fn mode(&self) -> TrackMode {
        CompiledSim::mode(self)
    }

    fn set(&mut self, name: &str, value: Value) {
        CompiledSim::set(self, name, value);
    }

    fn set_label(&mut self, name: &str, label: Label) {
        CompiledSim::set_label(self, name, label);
    }

    fn peek(&mut self, name: &str) -> Value {
        CompiledSim::peek(self, name)
    }

    fn peek_label(&mut self, name: &str) -> Label {
        CompiledSim::peek_label(self, name)
    }

    fn eval(&mut self) {
        CompiledSim::eval(self);
    }

    fn tick(&mut self) {
        CompiledSim::tick(self);
    }

    fn run(&mut self, n: u64) {
        // Forward to the hoisted run loop (mode dispatched once, settled
        // check on the first iteration only, violation cap re-derived per
        // run) instead of the default per-tick loop.
        CompiledSim::run(self, n);
    }

    fn cycle(&self) -> u64 {
        CompiledSim::cycle(self)
    }

    fn violations(&self) -> &[RuntimeViolation] {
        CompiledSim::violations(self)
    }

    fn violations_truncated(&self) -> bool {
        CompiledSim::violations_truncated(self)
    }

    fn set_violation_cap(&mut self, cap: usize) {
        CompiledSim::set_violation_cap(self, cap);
    }

    fn mem_index(&self, name: &str) -> Option<usize> {
        CompiledSim::mem_index(self, name)
    }

    fn mem_cell(&self, mem: usize, addr: usize) -> Value {
        CompiledSim::mem_cell(self, mem, addr)
    }

    fn mem_cell_label(&self, mem: usize, addr: usize) -> Label {
        CompiledSim::mem_cell_label(self, mem, addr)
    }

    fn set_mem_cell_label(&mut self, mem: usize, addr: usize, label: Label) {
        CompiledSim::set_mem_cell_label(self, mem, addr, label);
    }

    fn peek_node_label(&mut self, id: NodeId) -> Label {
        CompiledSim::peek_node_label(self, id)
    }
}
