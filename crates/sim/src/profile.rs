//! Per-opcode, per-run cycle profiler for the lane-batched executor.
//!
//! Built only with the `profile` cargo feature; without it
//! [`ProfileData`] is a zero-sized type whose hooks compile to nothing,
//! so the hot loop carries no cost in normal builds.
//!
//! The batched executor dispatches once per *run* of equal opcodes (see
//! `Program::runs`), which is exactly the granularity the profiler
//! samples: each run contributes one timed interval to its opcode's
//! bucket, together with the number of instructions it covered. The
//! resulting [`ProfileReport`] answers two questions the optimizer
//! cares about:
//!
//! * where executor time actually goes, per opcode (`rows`), and
//! * whether the run-scheduling pass is leaving dispatch overhead on
//!   the table ([`ProfileReport::suggest_window`]): short average runs
//!   mean the scheduling window was too small to cluster same-op
//!   instructions, and the suggestion — pluggable back in via
//!   [`OptConfig::schedule_window`](crate::OptConfig::schedule_window) —
//!   scales the window up proportionally.

#[cfg(feature = "profile")]
pub use imp::{OpProfile, ProfileReport};

pub(crate) use imp::ProfileData;

#[cfg(feature = "profile")]
mod imp {
    use std::time::Instant;

    use crate::opt::DEFAULT_SCHEDULE_WINDOW;
    use crate::program::Op;

    /// Bucket count for `Op as usize` indexing (fieldless enum; matches
    /// the scheduler's bucket array bound).
    const OP_BUCKETS: usize = 32;

    /// Average same-op run length the scheduler aims for: long enough to
    /// amortise the per-run dispatch branch, short enough to be reachable
    /// within a locality-preserving window.
    const TARGET_RUN_LEN: u64 = 8;

    /// Upper bound on suggested windows: past this the scheduler's
    /// reordering stretches producer→consumer distances beyond what the
    /// lane-batched executor's operand locality tolerates.
    const MAX_SCHEDULE_WINDOW: usize = 512;

    /// Accumulated executor timing, one bucket per opcode.
    #[derive(Debug, Clone, Default)]
    pub(crate) struct ProfileData {
        runs: [u64; OP_BUCKETS],
        instrs: [u64; OP_BUCKETS],
        nanos: [u64; OP_BUCKETS],
        passes: u64,
    }

    impl ProfileData {
        /// Counts one full tape pass (one `exec` invocation).
        #[inline]
        pub(crate) fn begin_pass(&mut self) {
            self.passes += 1;
        }

        /// Starts timing one same-opcode run.
        #[inline]
        pub(crate) fn begin_run(&self) -> Instant {
            Instant::now()
        }

        /// Credits one finished run to its opcode's bucket.
        #[inline]
        pub(crate) fn end_run(&mut self, op: Op, instrs: usize, started: Instant) {
            let b = op as usize;
            self.runs[b] += 1;
            self.instrs[b] += instrs as u64;
            self.nanos[b] += u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        }

        /// Snapshot of the buckets as a user-facing report.
        pub(crate) fn report(&self) -> ProfileReport {
            let rows = Op::ALL
                .iter()
                .filter(|&&op| self.runs[op as usize] > 0)
                .map(|&op| OpProfile {
                    op: format!("{op:?}"),
                    runs: self.runs[op as usize],
                    instrs: self.instrs[op as usize],
                    nanos: self.nanos[op as usize],
                })
                .collect();
            ProfileReport {
                rows,
                passes: self.passes,
            }
        }

        /// Clears every bucket.
        pub(crate) fn reset(&mut self) {
            *self = ProfileData::default();
        }
    }

    /// One opcode's aggregated share of executor work.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct OpProfile {
        /// Opcode name (the tape `Op` variant's debug name, matching the
        /// disassembler's mnemonic case-insensitively).
        pub op: String,
        /// Same-opcode runs dispatched.
        pub runs: u64,
        /// Instructions executed across those runs.
        pub instrs: u64,
        /// Wall-clock nanoseconds spent inside those runs.
        pub nanos: u64,
    }

    /// Aggregated executor profile since construction (or the last
    /// [`BatchedSim::profile_reset`](crate::BatchedSim::profile_reset)).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct ProfileReport {
        /// Per-opcode totals, tape order not preserved; opcodes that never
        /// ran are omitted.
        pub rows: Vec<OpProfile>,
        /// Full tape passes executed (one per recording or settling
        /// propagation).
        pub passes: u64,
    }

    impl ProfileReport {
        /// Total wall-clock nanoseconds across every opcode bucket.
        #[must_use]
        pub fn total_nanos(&self) -> u64 {
            self.rows.iter().map(|r| r.nanos).sum()
        }

        /// Total instructions executed.
        #[must_use]
        pub fn total_instrs(&self) -> u64 {
            self.rows.iter().map(|r| r.instrs).sum()
        }

        /// Total same-opcode runs dispatched.
        #[must_use]
        pub fn total_runs(&self) -> u64 {
            self.rows.iter().map(|r| r.runs).sum()
        }

        /// A scheduling-window suggestion derived from the measured run
        /// fragmentation, for
        /// [`OptConfig::schedule_window`](crate::OptConfig::schedule_window).
        ///
        /// If the average run already meets the dispatch-amortisation
        /// target the default window is confirmed; otherwise the window
        /// grows in proportion to the shortfall (bounded, since very wide
        /// windows trade away the operand locality that makes the batched
        /// executor fast in the first place).
        #[must_use]
        pub fn suggest_window(&self) -> usize {
            let runs = self.total_runs();
            if runs == 0 {
                return DEFAULT_SCHEDULE_WINDOW;
            }
            let avg = (self.total_instrs() / runs).max(1);
            if avg >= TARGET_RUN_LEN {
                return DEFAULT_SCHEDULE_WINDOW;
            }
            let scale = TARGET_RUN_LEN.div_ceil(avg) as usize;
            (DEFAULT_SCHEDULE_WINDOW * scale).min(MAX_SCHEDULE_WINDOW)
        }
    }
}

#[cfg(not(feature = "profile"))]
mod imp {
    use crate::program::Op;

    /// Zero-sized stand-in compiled without the `profile` feature; every
    /// hook is an empty `#[inline(always)]` no-op. (Braced rather than a
    /// unit struct so the executor's `default()` call and `let`-bound
    /// run token lint cleanly in both configurations.)
    #[derive(Debug, Clone, Copy, Default)]
    pub(crate) struct ProfileData {}

    /// Zero-sized stand-in for the run-start timestamp.
    #[derive(Debug, Clone, Copy)]
    pub(crate) struct RunToken {}

    impl ProfileData {
        #[inline(always)]
        pub(crate) fn begin_pass(&mut self) {}

        #[inline(always)]
        pub(crate) fn begin_run(&self) -> RunToken {
            RunToken {}
        }

        #[inline(always)]
        pub(crate) fn end_run(&mut self, _op: Op, _instrs: usize, _started: RunToken) {}
    }
}
