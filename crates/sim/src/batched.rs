//! Lane-batched simulation: W independent sessions per tape pass.
//!
//! [`BatchedSim`] executes the same compiled instruction tape as
//! [`CompiledSim`](crate::CompiledSim), but widens every value and label
//! slot to a *lane array*: slot `s` of lane `l` lives at `s * W + l`, so
//! the W copies of a slot sit contiguously in memory. One fetch/decode of
//! each instruction then drives all W lanes with a tight inner loop —
//! per-instruction dispatch cost, the dominant cost of small tapes, is
//! paid once per *batch* instead of once per session.
//!
//! The lane state is laid out struct-of-arrays for the vectorizer:
//!
//! * **Values** are two parallel `u64` arrays (the low and high halves
//!   of the 128-bit [`Value`]) rather than `u128` lane arrays: LLVM does
//!   not vectorize `i128` lane loops, so a `u128` layout executes every
//!   lane as two-register scalar arithmetic. With split halves each lane
//!   loop is a plain `u64` loop over a fixed-size chunk — at W = 8 one
//!   64-byte chunk per operand half — and compiles to a handful of
//!   vector ops. Instructions whose result mask has no high bits (the
//!   vast majority: byte- and word-wide AES plumbing) skip the high half
//!   entirely; a slot whose width is ≤ 64 keeps an all-zero high half as
//!   an invariant (initial state, `set`, and every masked write preserve
//!   it).
//! * **Labels** are two parallel `u8` arrays holding the raw
//!   confidentiality and integrity levels. The label join — the hot
//!   operation of conservative tracking, run for every binary
//!   instruction — is then a lanewise byte `max` (confidentiality) and
//!   byte `min` (integrity), which vectorize; a `[Label; W]` layout
//!   would pay scalar struct-field arithmetic per lane instead.
//!
//! Lanes are fully independent sessions over one design: each lane has
//! its own input values and labels, register and memory state, and its
//! own recorded violation stream. They share only the (immutable)
//! program and the clock — every lane is always on the same cycle. The
//! public API mirrors the single-session backends with a `lane` index in
//! front: [`set`](BatchedSim::set)`(lane, port, value)`,
//! [`peek`](BatchedSim::peek)`(lane, port)`,
//! [`violations`](BatchedSim::violations)`(lane)`, and so on.
//!
//! The executor is monomorphised over the lane width (W ∈ {1, 2, 4, 8,
//! 16}) and the tracking mode, the same way `CompiledSim` is
//! monomorphised over tracking alone, so the inner lane loops unroll at
//! known trip counts, and dispatches once per same-opcode *run* (see the
//! [`schedule`](crate::opt) pass) instead of once per instruction.
//! Semantics per lane are bit-for-bit identical to the interpreter — the
//! differential suite drives the same stimulus through
//! [`Simulator`](crate::Simulator), `CompiledSim`, and every lane of a
//! `BatchedSim` and asserts identical values, labels, and violation
//! streams.

use std::sync::Arc;

use hdl::{mask, Netlist, NodeId, Value};
use ifc_lattice::{Conf, Integ, Label, SecurityTag};

use crate::backend::{self, RunEngine};
use crate::opt::{self, OptConfig, OptStats};
use crate::program::{push_violation, Op, Program};
use crate::simulator::{AllowedLabel, DEFAULT_VIOLATION_CAP};
use crate::violation::RuntimeViolation;
use crate::TrackMode;

/// Lane widths the executor is monomorphised for.
pub const SUPPORTED_LANES: [usize; 5] = [1, 2, 4, 8, 16];

#[inline]
fn lo64(v: Value) -> u64 {
    v as u64
}

#[inline]
fn hi64(v: Value) -> u64 {
    (v >> 64) as u64
}

#[inline]
fn join64(lo: u64, hi: u64) -> Value {
    (Value::from(hi) << 64) | Value::from(lo)
}

/// Reassembles a [`Label`] from the raw levels stored in the split lane
/// arrays (the arrays only ever hold values produced by `raw()`, so the
/// range assertions in the constructors cannot fire).
#[inline]
pub(crate) fn label_of(conf: u8, integ: u8) -> Label {
    Label::new(Conf::new(conf), Integ::new(integ))
}

/// Lane-batched simulation backend: W independent sessions advanced in
/// lock-step by one pass over the shared instruction tape. See the
/// [module docs](self).
#[derive(Debug, Clone)]
pub struct BatchedSim {
    // Fields are `pub(crate)` so the native-codegen backend
    // (`crate::native`) can reuse this state layout verbatim: the
    // generated code executes over the same striped arrays, and the host
    // wrapper manipulates them without re-triggering the interpreter.
    pub(crate) program: Arc<Program>,
    pub(crate) lanes: usize,
    /// Low 64 value bits, slot-major lane-striped: slot `s`, lane `l` at
    /// `s * W + l`.
    pub(crate) values_lo: Vec<u64>,
    /// High 64 value bits, parallel to `values_lo` (all zero for slots
    /// narrower than 65 bits).
    pub(crate) values_hi: Vec<u64>,
    /// Raw confidentiality levels, parallel to `values_lo`.
    pub(crate) lab_conf: Vec<u8>,
    /// Raw integrity levels, parallel to `values_lo`.
    pub(crate) lab_integ: Vec<u8>,
    /// Per-memory cell arrays, address-major lane-striped, split like
    /// the value slots.
    pub(crate) mem_lo: Vec<Vec<u64>>,
    pub(crate) mem_hi: Vec<Vec<u64>>,
    pub(crate) mem_lab_conf: Vec<Vec<u8>>,
    pub(crate) mem_lab_integ: Vec<Vec<u8>>,
    /// Two-phase clock-edge scratch, register-major lane-striped.
    pub(crate) reg_scratch_lo: Vec<u64>,
    pub(crate) reg_scratch_hi: Vec<u64>,
    pub(crate) reg_scratch_conf: Vec<u8>,
    pub(crate) reg_scratch_integ: Vec<u8>,
    /// Per-lane remaining violation room (hoisted cap check scratch).
    pub(crate) room: Vec<usize>,
    pub(crate) clean: bool,
    pub(crate) cycle: u64,
    /// Per-lane recorded violation streams.
    pub(crate) violations: Vec<Vec<RuntimeViolation>>,
    pub(crate) violation_cap: usize,
    pub(crate) violations_truncated: Vec<bool>,
    /// Per-opcode run timing (zero-sized no-op without the `profile`
    /// feature).
    pub(crate) profile: crate::profile::ProfileData,
}

/// One lane's complete architectural state, checkpointed by
/// [`BatchedSim::lane_snapshot`] and resumable into any lane of any batch
/// compiled from the same tape via [`BatchedSim::restore_lane`] — the
/// mechanism the accelerator farm uses to re-pack live sessions across
/// batch widths without replaying their history.
///
/// De-striped (single-lane contiguous) copies of the slot value/label
/// planes and every memory's cell planes, plus the lane's recorded
/// violation stream. Register state needs no special handling: registers
/// live in ordinary value slots, and the clock-edge scratch is dead
/// between cycles.
#[derive(Debug, Clone)]
pub struct LaneSnapshot {
    tape_fingerprint: u64,
    mode: TrackMode,
    cycle: u64,
    values_lo: Vec<u64>,
    values_hi: Vec<u64>,
    lab_conf: Vec<u8>,
    lab_integ: Vec<u8>,
    mem_lo: Vec<Vec<u64>>,
    mem_hi: Vec<Vec<u64>>,
    mem_lab_conf: Vec<Vec<u8>>,
    mem_lab_integ: Vec<Vec<u8>>,
    violations: Vec<RuntimeViolation>,
    violations_truncated: bool,
}

impl LaneSnapshot {
    /// Fingerprint of the tape the source batch executed
    /// ([`BatchedSim::tape_fingerprint`]); restore targets must match.
    #[must_use]
    pub fn tape_fingerprint(&self) -> u64 {
        self.tape_fingerprint
    }

    /// Tracking mode of the source batch.
    #[must_use]
    pub fn mode(&self) -> TrackMode {
        self.mode
    }

    /// The source batch's shared cycle counter at snapshot time
    /// (diagnostic; not restored).
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The checkpointed lane's violation stream.
    #[must_use]
    pub fn violations(&self) -> &[RuntimeViolation] {
        &self.violations
    }
}

/// [`RunEngine`] adapter binding the shared settled-state run loop to a
/// `BatchedSim` monomorphised over one lane width and tracking mode.
struct BatchedEngine<'a, const W: usize, const TRACK: bool, const PRECISE: bool>(
    &'a mut BatchedSim,
);

impl<const W: usize, const TRACK: bool, const PRECISE: bool> RunEngine
    for BatchedEngine<'_, W, TRACK, PRECISE>
{
    fn is_clean(&self) -> bool {
        self.0.clean
    }

    fn set_dirty(&mut self) {
        self.0.clean = false;
    }

    fn refresh_room(&mut self) {
        self.0.refresh_room();
    }

    fn settled_scan(&mut self) {
        self.0.record_settled_violations();
    }

    fn exec_record(&mut self) {
        self.0.exec::<W, TRACK, PRECISE>(true);
    }

    fn edge(&mut self) {
        self.0.clock_edge::<W, TRACK>();
    }
}

impl BatchedSim {
    /// Compiles a netlist for `lanes` sessions with default conservative
    /// tracking.
    #[must_use]
    pub fn new(net: Netlist, lanes: usize) -> BatchedSim {
        BatchedSim::with_tracking(net, TrackMode::default(), lanes)
    }

    /// Compiles a netlist for the given tracking mode, no optimizer
    /// passes.
    #[must_use]
    pub fn with_tracking(net: Netlist, mode: TrackMode, lanes: usize) -> BatchedSim {
        BatchedSim::with_tracking_opt(net, mode, lanes, &OptConfig::none())
    }

    /// Compiles a netlist, runs the configured optimizer passes, and
    /// instantiates `lanes` lanes of state.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is not one of [`SUPPORTED_LANES`].
    #[must_use]
    pub fn with_tracking_opt(
        net: Netlist,
        mode: TrackMode,
        lanes: usize,
        config: &OptConfig,
    ) -> BatchedSim {
        let mut program = Program::compile(net, mode);
        opt::optimize(&mut program, config);
        BatchedSim::from_program(Arc::new(program), lanes)
    }

    /// Instantiates `lanes` lanes of execution state over a shared
    /// program (the fleet path: compile once, stripe many sessions).
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is not one of [`SUPPORTED_LANES`].
    pub(crate) fn from_program(program: Arc<Program>, lanes: usize) -> BatchedSim {
        assert!(
            SUPPORTED_LANES.contains(&lanes),
            "unsupported lane width {lanes} (supported: {SUPPORTED_LANES:?})"
        );
        // Lane-stripe a single-session array: each source element becomes
        // `lanes` contiguous copies (slot-/address-major layout), split
        // into value halves.
        let stripe = |src: &[Value], half: fn(Value) -> u64| -> Vec<u64> {
            let mut out = Vec::with_capacity(src.len() * lanes);
            for &x in src {
                out.extend(std::iter::repeat_n(half(x), lanes));
            }
            out
        };
        let values_lo = stripe(&program.init_values, lo64);
        let values_hi = stripe(&program.init_values, hi64);
        let n = values_lo.len();
        let mem_lo: Vec<Vec<u64>> = program.mem_init.iter().map(|c| stripe(c, lo64)).collect();
        let mem_hi: Vec<Vec<u64>> = program.mem_init.iter().map(|c| stripe(c, hi64)).collect();
        let (pt_conf, pt_integ) = (
            Label::PUBLIC_TRUSTED.conf.raw(),
            Label::PUBLIC_TRUSTED.integ.raw(),
        );
        let mem_lab_conf: Vec<Vec<u8>> = mem_lo.iter().map(|c| vec![pt_conf; c.len()]).collect();
        let mem_lab_integ: Vec<Vec<u8>> = mem_lo.iter().map(|c| vec![pt_integ; c.len()]).collect();
        let reg_count = program.regs.len() * lanes;
        BatchedSim {
            lanes,
            values_lo,
            values_hi,
            lab_conf: vec![pt_conf; n],
            lab_integ: vec![pt_integ; n],
            mem_lo,
            mem_hi,
            mem_lab_conf,
            mem_lab_integ,
            reg_scratch_lo: vec![0; reg_count],
            reg_scratch_hi: vec![0; reg_count],
            reg_scratch_conf: vec![pt_conf; reg_count],
            reg_scratch_integ: vec![pt_integ; reg_count],
            room: vec![0; lanes],
            clean: false,
            cycle: 0,
            violations: vec![Vec::new(); lanes],
            violation_cap: DEFAULT_VIOLATION_CAP,
            violations_truncated: vec![false; lanes],
            profile: crate::profile::ProfileData::default(),
            program,
        }
    }

    /// A fresh batch over the same compiled program with a (possibly
    /// different) lane width: state is reinitialised, the tape, tables,
    /// and optimizer results are shared. This is how a fleet stripes many
    /// sessions over one compilation.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is not one of [`SUPPORTED_LANES`].
    #[must_use]
    pub fn with_lanes(&self, lanes: usize) -> BatchedSim {
        BatchedSim::from_program(Arc::clone(&self.program), lanes)
    }

    /// The wrapped netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.program.net
    }

    /// The tracking mode this backend was compiled for.
    #[must_use]
    pub fn mode(&self) -> TrackMode {
        self.program.mode
    }

    /// Number of lanes (independent sessions) in this batch.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The shared cycle count (all lanes are always on the same cycle).
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Number of instructions on the shared tape (diagnostic).
    #[must_use]
    pub fn tape_len(&self) -> usize {
        self.program.tape.len()
    }

    /// Human-readable listing of the (possibly optimized) instruction
    /// tape; round-trips exactly through [`crate::disasm::parse`].
    #[must_use]
    pub fn disassemble(&self) -> String {
        crate::disasm::render(&self.program.tape)
    }

    /// FNV-1a hash over every tape column; matches
    /// [`crate::disasm::ParsedTape::fingerprint`] for an exact round
    /// trip.
    #[must_use]
    pub fn tape_fingerprint(&self) -> u64 {
        crate::disasm::fingerprint(&self.program.tape)
    }

    /// Aggregated per-opcode executor timing since construction (or the
    /// last [`BatchedSim::profile_reset`]). Only built with the
    /// `profile` cargo feature.
    #[cfg(feature = "profile")]
    #[must_use]
    pub fn profile_report(&self) -> crate::ProfileReport {
        self.profile.report()
    }

    /// Clears the profiler's accumulated buckets. Only built with the
    /// `profile` cargo feature.
    #[cfg(feature = "profile")]
    pub fn profile_reset(&mut self) {
        self.profile.reset();
    }

    /// Statistics of the optimizer passes that ran at construction.
    #[must_use]
    pub fn opt_stats(&self) -> &OptStats {
        &self.program.opt_stats
    }

    /// One lane's recorded violation stream.
    #[must_use]
    pub fn violations(&self, lane: usize) -> &[RuntimeViolation] {
        &self.violations[lane]
    }

    /// Whether one lane's stream was truncated at the cap.
    #[must_use]
    pub fn violations_truncated(&self, lane: usize) -> bool {
        self.violations_truncated[lane]
    }

    /// Bounds every lane's recorded violation stream.
    pub fn set_violation_cap(&mut self, cap: usize) {
        self.violation_cap = cap;
    }

    fn slot(&self, id: NodeId) -> usize {
        self.program.slot_of[id.index()] as usize
    }

    /// Drives one lane's input port.
    ///
    /// # Panics
    ///
    /// Panics if no input port has that name, or `lane` is out of range.
    pub fn set(&mut self, lane: usize, name: &str, value: Value) {
        let id = self.program.resolve_input(name);
        self.set_node(lane, id, value);
    }

    /// Drives one lane's input by node id.
    ///
    /// # Panics
    ///
    /// Panics if the input is pinned by the optimizer config, or `lane`
    /// is out of range.
    pub fn set_node(&mut self, lane: usize, id: NodeId, value: Value) {
        assert!(lane < self.lanes, "lane {lane} out of range");
        assert!(
            !self.program.pinned[id.index()],
            "input node {id:?} is pinned to a constant by the optimizer config"
        );
        let width = self.program.node_widths[id.index()];
        let idx = self.slot(id) * self.lanes + lane;
        let v = mask(value, width);
        self.values_lo[idx] = lo64(v);
        self.values_hi[idx] = hi64(v);
        self.clean = false;
    }

    /// Sets one lane's runtime label on an input (no-op with tracking
    /// off, matching the single-session backends).
    pub fn set_label(&mut self, lane: usize, name: &str, label: Label) {
        let id = self.program.resolve_input(name);
        self.set_node_label(lane, id, label);
    }

    /// Sets one lane's runtime label on an input by node id (the
    /// transaction drivers resolve their port names once and drive by
    /// id every cycle).
    pub fn set_node_label(&mut self, lane: usize, id: NodeId, label: Label) {
        assert!(lane < self.lanes, "lane {lane} out of range");
        if self.mode() != TrackMode::Off {
            let idx = self.slot(id) * self.lanes + lane;
            self.lab_conf[idx] = label.conf.raw();
            self.lab_integ[idx] = label.integ.raw();
        }
        self.clean = false;
    }

    /// Reads one lane's settled value by port or node name.
    pub fn peek(&mut self, lane: usize, name: &str) -> Value {
        let id = self.program.lookup(name);
        self.peek_node(lane, id)
    }

    /// Reads one lane's settled runtime label by name.
    pub fn peek_label(&mut self, lane: usize, name: &str) -> Label {
        let id = self.program.lookup(name);
        self.peek_node_label(lane, id)
    }

    /// Reads one lane's settled value by node id.
    pub fn peek_node(&mut self, lane: usize, id: NodeId) -> Value {
        assert!(lane < self.lanes, "lane {lane} out of range");
        self.eval();
        let idx = self.slot(id) * self.lanes + lane;
        join64(self.values_lo[idx], self.values_hi[idx])
    }

    /// Reads one lane's settled runtime label by node id.
    pub fn peek_node_label(&mut self, lane: usize, id: NodeId) -> Label {
        assert!(lane < self.lanes, "lane {lane} out of range");
        self.eval();
        let idx = self.slot(id) * self.lanes + lane;
        label_of(self.lab_conf[idx], self.lab_integ[idx])
    }

    /// Finds a memory's index by its declared name.
    #[must_use]
    pub fn mem_index(&self, name: &str) -> Option<usize> {
        self.program.net.mems.iter().position(|m| m.name == name)
    }

    /// Reads one lane's memory cell directly.
    #[must_use]
    pub fn mem_cell(&self, lane: usize, mem: usize, addr: usize) -> Value {
        let idx = addr * self.lanes + lane;
        join64(self.mem_lo[mem][idx], self.mem_hi[mem][idx])
    }

    /// Reads one lane's memory cell label directly.
    #[must_use]
    pub fn mem_cell_label(&self, lane: usize, mem: usize, addr: usize) -> Label {
        let idx = addr * self.lanes + lane;
        label_of(self.mem_lab_conf[mem][idx], self.mem_lab_integ[mem][idx])
    }

    /// Sets one lane's memory cell label directly (provisioned secrets).
    pub fn set_mem_cell_label(&mut self, lane: usize, mem: usize, addr: usize, label: Label) {
        assert!(lane < self.lanes, "lane {lane} out of range");
        let idx = addr * self.lanes + lane;
        self.mem_lab_conf[mem][idx] = label.conf.raw();
        self.mem_lab_integ[mem][idx] = label.integ.raw();
        self.clean = false;
    }

    /// Joins one lane's settled runtime label of every node into `acc`,
    /// indexed by [`NodeId::index`] — the lane-batched counterpart of
    /// [`crate::SimBackend::fold_label_plane`].
    pub fn fold_label_plane(&mut self, lane: usize, acc: &mut [Label]) {
        let n = self.program.net.node_count();
        assert_eq!(acc.len(), n, "accumulator must cover every node");
        for (i, slot) in acc.iter_mut().enumerate() {
            let label = self.peek_node_label(lane, NodeId::from_raw(i as u32));
            *slot = slot.join(label);
        }
    }

    /// Joins one lane's memory cell labels into `acc`, summarised per
    /// array — the lane-batched counterpart of
    /// [`crate::SimBackend::fold_mem_labels`].
    pub fn fold_mem_labels(&mut self, lane: usize, acc: &mut [Label]) {
        self.eval();
        let depths: Vec<usize> = self.program.net.mems.iter().map(|m| m.depth).collect();
        assert_eq!(
            acc.len(),
            depths.len(),
            "accumulator must cover every memory"
        );
        for (mem, depth) in depths.into_iter().enumerate() {
            for addr in 0..depth {
                acc[mem] = acc[mem].join(self.mem_cell_label(lane, mem, addr));
            }
        }
    }

    /// Checkpoints one lane's complete architectural state — value and
    /// label planes for every slot (registers live in ordinary slots),
    /// every memory cell, and the lane's violation stream — as a
    /// [`LaneSnapshot`] that can be restored into any lane of any batch
    /// compiled from the same tape.
    ///
    /// Combinational state is settled first so the snapshot is coherent;
    /// take it only at a quiescent protocol point (no request the host
    /// still intends to complete mid-flight matters to the *host*, the
    /// hardware pipeline itself is captured exactly).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn lane_snapshot(&mut self, lane: usize) -> LaneSnapshot {
        assert!(lane < self.lanes, "lane {lane} out of range");
        self.eval();
        let w = self.lanes;
        let pick64 = |v: &[u64]| -> Vec<u64> { v.iter().skip(lane).step_by(w).copied().collect() };
        let pick8 = |v: &[u8]| -> Vec<u8> { v.iter().skip(lane).step_by(w).copied().collect() };
        LaneSnapshot {
            tape_fingerprint: self.tape_fingerprint(),
            mode: self.mode(),
            cycle: self.cycle,
            values_lo: pick64(&self.values_lo),
            values_hi: pick64(&self.values_hi),
            lab_conf: pick8(&self.lab_conf),
            lab_integ: pick8(&self.lab_integ),
            mem_lo: self.mem_lo.iter().map(|c| pick64(c)).collect(),
            mem_hi: self.mem_hi.iter().map(|c| pick64(c)).collect(),
            mem_lab_conf: self.mem_lab_conf.iter().map(|c| pick8(c)).collect(),
            mem_lab_integ: self.mem_lab_integ.iter().map(|c| pick8(c)).collect(),
            violations: self.violations[lane].clone(),
            violations_truncated: self.violations_truncated[lane],
        }
    }

    /// Restores a [`LaneSnapshot`] into `lane`, overwriting that lane's
    /// entire state (values, labels, memories, violation stream). The
    /// target batch may have a different lane width than the source — this
    /// is how the farm re-packs live sessions across batch shapes — but it
    /// must execute the identical tape in the identical tracking mode.
    ///
    /// The shared cycle counter is *not* restored (it belongs to the
    /// batch, not the lane); violation cycle stamps in the restored stream
    /// keep their original batch's clock.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range or the snapshot was taken from a
    /// different tape or tracking mode.
    pub fn restore_lane(&mut self, lane: usize, snap: &LaneSnapshot) {
        assert!(lane < self.lanes, "lane {lane} out of range");
        assert_eq!(
            snap.tape_fingerprint,
            self.tape_fingerprint(),
            "snapshot is from a different compiled tape"
        );
        assert_eq!(
            snap.mode,
            self.mode(),
            "snapshot is from a different tracking mode"
        );
        let w = self.lanes;
        let put64 = |dst: &mut [u64], src: &[u64]| {
            for (d, &s) in dst.iter_mut().skip(lane).step_by(w).zip(src) {
                *d = s;
            }
        };
        let put8 = |dst: &mut [u8], src: &[u8]| {
            for (d, &s) in dst.iter_mut().skip(lane).step_by(w).zip(src) {
                *d = s;
            }
        };
        put64(&mut self.values_lo, &snap.values_lo);
        put64(&mut self.values_hi, &snap.values_hi);
        put8(&mut self.lab_conf, &snap.lab_conf);
        put8(&mut self.lab_integ, &snap.lab_integ);
        for (dst, src) in self.mem_lo.iter_mut().zip(&snap.mem_lo) {
            put64(dst, src);
        }
        for (dst, src) in self.mem_hi.iter_mut().zip(&snap.mem_hi) {
            put64(dst, src);
        }
        for (dst, src) in self.mem_lab_conf.iter_mut().zip(&snap.mem_lab_conf) {
            put8(dst, src);
        }
        for (dst, src) in self.mem_lab_integ.iter_mut().zip(&snap.mem_lab_integ) {
            put8(dst, src);
        }
        self.violations[lane] = snap.violations.clone();
        self.violations_truncated[lane] = snap.violations_truncated;
        self.clean = false;
    }

    /// Settles combinational logic of every lane for the current inputs.
    /// Idempotent.
    pub fn eval(&mut self) {
        if self.clean {
            return;
        }
        self.refresh_room();
        self.dispatch(false);
        self.clean = true;
    }

    /// Advances every lane one clock cycle.
    ///
    /// Same settled fast path as `CompiledSim::tick` (the shared
    /// `backend::tick_engine` loop): after an `eval`, only the violation
    /// scan (downgrade gates + release checks) runs.
    pub fn tick(&mut self) {
        match self.lanes {
            1 => self.tick_width::<1>(),
            2 => self.tick_width::<2>(),
            4 => self.tick_width::<4>(),
            8 => self.tick_width::<8>(),
            16 => self.tick_width::<16>(),
            _ => unreachable!("lane width validated at construction"),
        }
    }

    fn tick_width<const W: usize>(&mut self) {
        match self.mode() {
            TrackMode::Off => backend::tick_engine(&mut BatchedEngine::<W, false, false>(self)),
            TrackMode::Conservative => {
                backend::tick_engine(&mut BatchedEngine::<W, true, false>(self));
            }
            TrackMode::Precise => backend::tick_engine(&mut BatchedEngine::<W, true, true>(self)),
        }
    }

    /// Runs `n` clock cycles with the current inputs, hoisting the mode
    /// and lane-width dispatch, the settled check (first iteration only),
    /// and the per-lane violation room out of the per-tick path.
    pub fn run(&mut self, n: u64) {
        match self.lanes {
            1 => self.run_width::<1>(n),
            2 => self.run_width::<2>(n),
            4 => self.run_width::<4>(n),
            8 => self.run_width::<8>(n),
            16 => self.run_width::<16>(n),
            _ => unreachable!("lane width validated at construction"),
        }
    }

    fn run_width<const W: usize>(&mut self, n: u64) {
        match self.mode() {
            TrackMode::Off => backend::run_engine(&mut BatchedEngine::<W, false, false>(self), n),
            TrackMode::Conservative => {
                backend::run_engine(&mut BatchedEngine::<W, true, false>(self), n);
            }
            TrackMode::Precise => {
                backend::run_engine(&mut BatchedEngine::<W, true, true>(self), n);
            }
        }
    }

    /// The clock edge with the lane width and tracking mode dispatched at
    /// runtime — the native backend advances registers and write ports
    /// host-side between generated tape executions.
    pub(crate) fn clock_edge_dispatch(&mut self) {
        match self.lanes {
            1 => self.clock_edge_mode::<1>(),
            2 => self.clock_edge_mode::<2>(),
            4 => self.clock_edge_mode::<4>(),
            8 => self.clock_edge_mode::<8>(),
            16 => self.clock_edge_mode::<16>(),
            _ => unreachable!("lane width validated at construction"),
        }
    }

    fn clock_edge_mode<const W: usize>(&mut self) {
        if self.mode() == TrackMode::Off {
            self.clock_edge::<W, false>();
        } else {
            self.clock_edge::<W, true>();
        }
    }

    /// Recomputes every lane's remaining violation room from the cap.
    pub(crate) fn refresh_room(&mut self) {
        for l in 0..self.lanes {
            self.room[l] = self.violation_cap.saturating_sub(self.violations[l].len());
        }
    }

    fn dispatch(&mut self, record: bool) {
        match self.lanes {
            1 => self.dispatch_mode::<1>(record),
            2 => self.dispatch_mode::<2>(record),
            4 => self.dispatch_mode::<4>(record),
            8 => self.dispatch_mode::<8>(record),
            16 => self.dispatch_mode::<16>(record),
            _ => unreachable!("lane width validated at construction"),
        }
    }

    fn dispatch_mode<const W: usize>(&mut self, record: bool) {
        match self.mode() {
            TrackMode::Off => self.exec::<W, false, false>(record),
            TrackMode::Conservative => self.exec::<W, true, false>(record),
            TrackMode::Precise => self.exec::<W, true, true>(record),
        }
    }

    /// The clock edge for all lanes: two-phase register snapshot, then
    /// memory write ports, then the shared cycle counter.
    fn clock_edge<const W: usize, const TRACK: bool>(&mut self) {
        let BatchedSim {
            program,
            values_lo,
            values_hi,
            lab_conf,
            lab_integ,
            mem_lo,
            mem_hi,
            mem_lab_conf,
            mem_lab_integ,
            reg_scratch_lo,
            reg_scratch_hi,
            reg_scratch_conf,
            reg_scratch_integ,
            cycle,
            ..
        } = self;
        let (lo_ch, _) = values_lo.as_chunks_mut::<W>();
        let (hi_ch, _) = values_hi.as_chunks_mut::<W>();
        let (conf_ch, _) = lab_conf.as_chunks_mut::<W>();
        let (integ_ch, _) = lab_integ.as_chunks_mut::<W>();
        let (slo_ch, _) = reg_scratch_lo.as_chunks_mut::<W>();
        let (shi_ch, _) = reg_scratch_hi.as_chunks_mut::<W>();
        let (sconf_ch, _) = reg_scratch_conf.as_chunks_mut::<W>();
        let (sinteg_ch, _) = reg_scratch_integ.as_chunks_mut::<W>();
        for (i, r) in program.regs.iter().enumerate() {
            let src = r.src as usize;
            let (ml, mh) = (lo64(r.mask), hi64(r.mask));
            let sv = lo_ch[src];
            let sc = &mut slo_ch[i];
            for l in 0..W {
                sc[l] = sv[l] & ml;
            }
            let svh = hi_ch[src];
            let sch = &mut shi_ch[i];
            for l in 0..W {
                sch[l] = svh[l] & mh;
            }
            if TRACK {
                sconf_ch[i] = conf_ch[src];
                sinteg_ch[i] = integ_ch[src];
            }
        }
        for wp in &program.write_ports {
            let mem = wp.mem as usize;
            let (mlo_ch, _) = mem_lo[mem].as_chunks_mut::<W>();
            let (mhi_ch, _) = mem_hi[mem].as_chunks_mut::<W>();
            let depth = mlo_ch.len();
            let en = lo_ch[wp.en as usize];
            let addr = lo_ch[wp.addr as usize];
            let data_lo = lo_ch[wp.data as usize];
            let data_hi = hi_ch[wp.data as usize];
            let wrap = |v: u64| match program.mem_addr_mask[mem] {
                Some(amask) => (v as usize) & amask,
                None => (v as usize) % depth,
            };
            for l in 0..W {
                if en[l] & 1 == 1 {
                    let cell = wrap(addr[l]);
                    mlo_ch[cell][l] = data_lo[l];
                    mhi_ch[cell][l] = data_hi[l];
                }
            }
            if TRACK {
                let (mconf_ch, _) = mem_lab_conf[mem].as_chunks_mut::<W>();
                let (minteg_ch, _) = mem_lab_integ[mem].as_chunks_mut::<W>();
                let en_c = conf_ch[wp.en as usize];
                let en_i = integ_ch[wp.en as usize];
                let ad_c = conf_ch[wp.addr as usize];
                let ad_i = integ_ch[wp.addr as usize];
                let da_c = conf_ch[wp.data as usize];
                let da_i = integ_ch[wp.data as usize];
                for l in 0..W {
                    if en[l] & 1 == 1 {
                        let cell = wrap(addr[l]);
                        mconf_ch[cell][l] = da_c[l].max(ad_c[l]).max(en_c[l]);
                        minteg_ch[cell][l] = da_i[l].min(ad_i[l]).min(en_i[l]);
                    }
                }
            }
        }
        for (i, r) in program.regs.iter().enumerate() {
            lo_ch[r.dst as usize] = slo_ch[i];
            hi_ch[r.dst as usize] = shi_ch[i];
            if TRACK {
                conf_ch[r.dst as usize] = sconf_ch[i];
                integ_ch[r.dst as usize] = sinteg_ch[i];
            }
        }
        *cycle += 1;
    }

    /// The settled-state violation scan: recomputes each downgrade gate's
    /// accept/reject per lane from settled operands, then runs the output
    /// release checks, without re-executing the tape.
    pub(crate) fn record_settled_violations(&mut self) {
        if self.mode() == TrackMode::Off {
            return;
        }
        self.refresh_room();
        let w = self.lanes;
        let BatchedSim {
            program,
            values_lo,
            values_hi,
            lab_conf,
            lab_integ,
            violations,
            violations_truncated,
            room,
            cycle,
            ..
        } = self;
        let tape = &program.tape;
        for &i in &program.downgrades {
            let i = i as usize;
            let to = Label::from(SecurityTag::from_bits(tape.aux[i] as u8));
            let (ab, bb) = (tape.a[i] as usize * w, tape.b[i] as usize * w);
            for l in 0..w {
                let from = label_of(lab_conf[ab + l], lab_integ[ab + l]);
                let p = Label::from(SecurityTag::from_bits(values_lo[bb + l] as u8));
                let rejected = match tape.ops[i] {
                    Op::Declassify => ifc_lattice::declassify(from, to, p).is_err(),
                    _ => ifc_lattice::endorse(from, to, p).is_err(),
                };
                if rejected {
                    push_violation(
                        &mut violations[l],
                        &mut room[l],
                        &mut violations_truncated[l],
                        RuntimeViolation::DowngradeRejected {
                            cycle: *cycle,
                            node: NodeId::from_raw(tape.c[i]),
                            from,
                            to,
                            principal: p,
                        },
                    );
                }
            }
        }
        for check in &program.output_checks {
            let sb = check.slot as usize * w;
            for l in 0..w {
                let allowed = match &check.allowed {
                    AllowedLabel::Const(lbl) => *lbl,
                    AllowedLabel::Dynamic(expr) => {
                        let mut resolve = |sig: NodeId| {
                            let idx = program.slot_of[sig.index()] as usize * w + l;
                            join64(values_lo[idx], values_hi[idx])
                        };
                        expr.eval(&mut resolve)
                    }
                };
                let label = label_of(lab_conf[sb + l], lab_integ[sb + l]);
                if !label.flows_to(allowed) {
                    push_violation(
                        &mut violations[l],
                        &mut room[l],
                        &mut violations_truncated[l],
                        RuntimeViolation::OutputLeak {
                            cycle: *cycle,
                            port: check.port.clone(),
                            label,
                            allowed,
                        },
                    );
                }
            }
        }
    }

    /// The batched dispatch loop: one opcode match per same-op run, each
    /// arm looping its instructions and lanes. `TRACK`/`PRECISE` as in
    /// `CompiledSim::exec`; the caller has refreshed the per-lane room
    /// scratch.
    ///
    /// Value halves are addressed as `[u64; W]` lane chunks and labels as
    /// `[u8; W]` level chunks (`as_chunks_mut`): one bounds check per
    /// operand component instead of per lane, and the lane loops run over
    /// fixed-size arrays the compiler vectorises. The high value half of
    /// an instruction is skipped when its result mask has no bits above
    /// 64 — the destination's high half is all-zero by invariant (see the
    /// [module docs](self)).
    #[allow(clippy::too_many_lines)]
    fn exec<const W: usize, const TRACK: bool, const PRECISE: bool>(&mut self, record: bool) {
        let BatchedSim {
            program,
            values_lo,
            values_hi,
            lab_conf,
            lab_integ,
            mem_lo,
            mem_hi,
            mem_lab_conf,
            mem_lab_integ,
            violations,
            violations_truncated,
            room,
            cycle,
            profile,
            ..
        } = self;
        profile.begin_pass();
        let tape = &program.tape;
        let n = tape.ops.len();
        let col_dst = &tape.dst[..n];
        let col_a = &tape.a[..n];
        let col_b = &tape.b[..n];
        let col_c = &tape.c[..n];
        let col_aux = &tape.aux[..n];
        let col_mask = &tape.out_mask[..n];
        let (lo_ch, _) = values_lo.as_chunks_mut::<W>();
        let (hi_ch, _) = values_hi.as_chunks_mut::<W>();
        let (conf_ch, _) = lab_conf.as_chunks_mut::<W>();
        let (integ_ch, _) = lab_integ.as_chunks_mut::<W>();
        let tag8 = |v: u64| Label::from(SecurityTag::from_bits(v as u8));
        for &(op, start, end) in &program.runs {
            let (s, e) = (start as usize, end as usize);
            let run_started = profile.begin_run();
            // `copy_labels`/`join_labels`: the unary and binary label
            // rules — copy `a`'s level chunks, or join `a`'s and `b`'s
            // lanewise (byte max on confidentiality, byte min on
            // integrity). `bitwise1`/`bitwise2`: ops whose low result
            // bits depend only on low operand bits — the high half runs
            // only when the result mask has high bits. `cmp2`: full-width
            // comparisons producing a 1-bit result in the low half.
            macro_rules! copy_labels {
                ($a:expr, $d:expr) => {
                    if TRACK {
                        conf_ch[$d] = conf_ch[$a];
                        integ_ch[$d] = integ_ch[$a];
                    }
                };
            }
            macro_rules! join_labels {
                ($a:expr, $b:expr, $d:expr) => {
                    if TRACK {
                        let ca = conf_ch[$a];
                        let cb = conf_ch[$b];
                        let cd = &mut conf_ch[$d];
                        for l in 0..W {
                            cd[l] = ca[l].max(cb[l]);
                        }
                        let ia = integ_ch[$a];
                        let ib = integ_ch[$b];
                        let id = &mut integ_ch[$d];
                        for l in 0..W {
                            id[l] = ia[l].min(ib[l]);
                        }
                    }
                };
            }
            macro_rules! bitwise1 {
                (|$va:ident| $expr:expr) => {{
                    for i in s..e {
                        let a = col_a[i] as usize;
                        let d = col_dst[i] as usize;
                        let m = col_mask[i];
                        let (ml, mh) = (lo64(m), hi64(m));
                        let sa = lo_ch[a];
                        let dst = &mut lo_ch[d];
                        for l in 0..W {
                            let $va = sa[l];
                            dst[l] = ($expr) & ml;
                        }
                        if mh != 0 {
                            let sa = hi_ch[a];
                            let dst = &mut hi_ch[d];
                            for l in 0..W {
                                let $va = sa[l];
                                dst[l] = ($expr) & mh;
                            }
                        }
                        copy_labels!(a, d);
                    }
                }};
            }
            macro_rules! bitwise2 {
                (|$va:ident, $vb:ident| $expr:expr) => {{
                    for i in s..e {
                        let a = col_a[i] as usize;
                        let b = col_b[i] as usize;
                        let d = col_dst[i] as usize;
                        let m = col_mask[i];
                        let (ml, mh) = (lo64(m), hi64(m));
                        let sa = lo_ch[a];
                        let sb = lo_ch[b];
                        let dst = &mut lo_ch[d];
                        for l in 0..W {
                            let $va = sa[l];
                            let $vb = sb[l];
                            dst[l] = ($expr) & ml;
                        }
                        if mh != 0 {
                            let sa = hi_ch[a];
                            let sb = hi_ch[b];
                            let dst = &mut hi_ch[d];
                            for l in 0..W {
                                let $va = sa[l];
                                let $vb = sb[l];
                                dst[l] = ($expr) & mh;
                            }
                        }
                        join_labels!(a, b, d);
                    }
                }};
            }
            // Full-width comparison: both halves in, one bit out (the
            // destination's high half is zero by invariant).
            macro_rules! cmp2 {
                (|$al:ident, $ah:ident, $bl:ident, $bh:ident| $expr:expr) => {{
                    for i in s..e {
                        let a = col_a[i] as usize;
                        let b = col_b[i] as usize;
                        let d = col_dst[i] as usize;
                        let sal = lo_ch[a];
                        let sbl = lo_ch[b];
                        let sah = hi_ch[a];
                        let sbh = hi_ch[b];
                        let dst = &mut lo_ch[d];
                        for l in 0..W {
                            let $al = sal[l];
                            let $ah = sah[l];
                            let $bl = sbl[l];
                            let $bh = sbh[l];
                            dst[l] = u64::from($expr);
                        }
                        join_labels!(a, b, d);
                    }
                }};
            }
            // Tag algebra on the low byte (8-bit operands and results).
            macro_rules! tagop {
                (|$ta:ident, $tb:ident| $expr:expr) => {{
                    for i in s..e {
                        let a = col_a[i] as usize;
                        let b = col_b[i] as usize;
                        let d = col_dst[i] as usize;
                        let ml = lo64(col_mask[i]);
                        let sa = lo_ch[a];
                        let sb = lo_ch[b];
                        let dst = &mut lo_ch[d];
                        for l in 0..W {
                            let $ta = tag8(sa[l]);
                            let $tb = tag8(sb[l]);
                            dst[l] = ($expr) & ml;
                        }
                        join_labels!(a, b, d);
                    }
                }};
            }
            match op {
                Op::Not => bitwise1!(|va| !va),
                Op::ReduceOr => {
                    for i in s..e {
                        let a = col_a[i] as usize;
                        let d = col_dst[i] as usize;
                        let sal = lo_ch[a];
                        let sah = hi_ch[a];
                        let dst = &mut lo_ch[d];
                        for l in 0..W {
                            dst[l] = u64::from((sal[l] | sah[l]) != 0);
                        }
                        copy_labels!(a, d);
                    }
                }
                Op::ReduceAnd => {
                    for i in s..e {
                        let a = col_a[i] as usize;
                        let d = col_dst[i] as usize;
                        let full = col_aux[i];
                        let (fl, fh) = (lo64(full), hi64(full));
                        let sal = lo_ch[a];
                        let sah = hi_ch[a];
                        let dst = &mut lo_ch[d];
                        for l in 0..W {
                            dst[l] = u64::from(sal[l] == fl && sah[l] == fh);
                        }
                        copy_labels!(a, d);
                    }
                }
                Op::ReduceXor => {
                    for i in s..e {
                        let a = col_a[i] as usize;
                        let d = col_dst[i] as usize;
                        let sal = lo_ch[a];
                        let sah = hi_ch[a];
                        let dst = &mut lo_ch[d];
                        for l in 0..W {
                            dst[l] =
                                u64::from((sal[l].count_ones() + sah[l].count_ones()) % 2 == 1);
                        }
                        copy_labels!(a, d);
                    }
                }
                Op::And => bitwise2!(|va, vb| va & vb),
                Op::Or => bitwise2!(|va, vb| va | vb),
                Op::Xor => bitwise2!(|va, vb| va ^ vb),
                Op::Add | Op::Sub => {
                    for i in s..e {
                        let a = col_a[i] as usize;
                        let b = col_b[i] as usize;
                        let d = col_dst[i] as usize;
                        let m = col_mask[i];
                        let (ml, mh) = (lo64(m), hi64(m));
                        let sal = lo_ch[a];
                        let sbl = lo_ch[b];
                        let sah = hi_ch[a];
                        let sbh = hi_ch[b];
                        for l in 0..W {
                            if op == Op::Add {
                                let (lo, carry) = sal[l].overflowing_add(sbl[l]);
                                lo_ch[d][l] = lo & ml;
                                hi_ch[d][l] =
                                    sah[l].wrapping_add(sbh[l]).wrapping_add(u64::from(carry)) & mh;
                            } else {
                                let (lo, borrow) = sal[l].overflowing_sub(sbl[l]);
                                lo_ch[d][l] = lo & ml;
                                hi_ch[d][l] =
                                    sah[l].wrapping_sub(sbh[l]).wrapping_sub(u64::from(borrow))
                                        & mh;
                            }
                        }
                        join_labels!(a, b, d);
                    }
                }
                Op::Eq => cmp2!(|al, ah, bl, bh| al == bl && ah == bh),
                Op::Ne => cmp2!(|al, ah, bl, bh| al != bl || ah != bh),
                Op::Lt => cmp2!(|al, ah, bl, bh| ah < bh || (ah == bh && al < bl)),
                Op::Ge => cmp2!(|al, ah, bl, bh| ah > bh || (ah == bh && al >= bl)),
                Op::TagLeq => tagop!(|ta, tb| u64::from(ta.flows_to(tb))),
                Op::TagJoin => tagop!(|ta, tb| u64::from(SecurityTag::from(ta.join(tb)).bits())),
                Op::TagMeet => tagop!(|ta, tb| u64::from(SecurityTag::from(ta.meet(tb)).bits())),
                Op::Mux => {
                    for i in s..e {
                        let a = col_a[i] as usize;
                        let b = col_b[i] as usize;
                        let c = col_c[i] as usize;
                        let d = col_dst[i] as usize;
                        let m = col_mask[i];
                        let (ml, mh) = (lo64(m), hi64(m));
                        let sel = lo_ch[a];
                        let vbl = lo_ch[b];
                        let vcl = lo_ch[c];
                        let dst = &mut lo_ch[d];
                        for l in 0..W {
                            dst[l] = (if sel[l] & 1 == 1 { vbl[l] } else { vcl[l] }) & ml;
                        }
                        if mh != 0 {
                            let vbh = hi_ch[b];
                            let vch = hi_ch[c];
                            let dst = &mut hi_ch[d];
                            for l in 0..W {
                                dst[l] = (if sel[l] & 1 == 1 { vbh[l] } else { vch[l] }) & mh;
                            }
                        }
                        if TRACK {
                            let ca = conf_ch[a];
                            let cb = conf_ch[b];
                            let cc = conf_ch[c];
                            let ia = integ_ch[a];
                            let ib = integ_ch[b];
                            let ic = integ_ch[c];
                            let cd = &mut conf_ch[d];
                            let id = &mut integ_ch[d];
                            for l in 0..W {
                                let (csel, isel) = if PRECISE {
                                    if sel[l] & 1 == 1 {
                                        (cb[l], ib[l])
                                    } else {
                                        (cc[l], ic[l])
                                    }
                                } else {
                                    (cb[l].max(cc[l]), ib[l].min(ic[l]))
                                };
                                cd[l] = ca[l].max(csel);
                                id[l] = ia[l].min(isel);
                            }
                        }
                    }
                }
                Op::Slice => {
                    // `va >> sh`, split by where the shift lands. The
                    // `sh >= 64` result fits the low half entirely, so
                    // its mask has no high bits.
                    for i in s..e {
                        let a = col_a[i] as usize;
                        let d = col_dst[i] as usize;
                        let sh = col_b[i];
                        let m = col_mask[i];
                        let (ml, mh) = (lo64(m), hi64(m));
                        let sal = lo_ch[a];
                        let sah = hi_ch[a];
                        if sh == 0 {
                            let dst = &mut lo_ch[d];
                            for l in 0..W {
                                dst[l] = sal[l] & ml;
                            }
                            if mh != 0 {
                                let dst = &mut hi_ch[d];
                                for l in 0..W {
                                    dst[l] = sah[l] & mh;
                                }
                            }
                        } else if sh < 64 {
                            let dst = &mut lo_ch[d];
                            for l in 0..W {
                                dst[l] = ((sal[l] >> sh) | (sah[l] << (64 - sh))) & ml;
                            }
                            if mh != 0 {
                                let dst = &mut hi_ch[d];
                                for l in 0..W {
                                    dst[l] = (sah[l] >> sh) & mh;
                                }
                            }
                        } else {
                            let dst = &mut lo_ch[d];
                            for l in 0..W {
                                dst[l] = (sah[l] >> (sh - 64)) & ml;
                            }
                        }
                        copy_labels!(a, d);
                    }
                }
                Op::Cat => {
                    // `(va << sh) | vb`, split the same way.
                    for i in s..e {
                        let a = col_a[i] as usize;
                        let b = col_b[i] as usize;
                        let d = col_dst[i] as usize;
                        let sh = col_c[i];
                        let m = col_mask[i];
                        let (ml, mh) = (lo64(m), hi64(m));
                        let sal = lo_ch[a];
                        let sbl = lo_ch[b];
                        let sah = hi_ch[a];
                        let sbh = hi_ch[b];
                        if sh == 0 {
                            let dst = &mut lo_ch[d];
                            for l in 0..W {
                                dst[l] = (sal[l] | sbl[l]) & ml;
                            }
                            if mh != 0 {
                                let dst = &mut hi_ch[d];
                                for l in 0..W {
                                    dst[l] = (sah[l] | sbh[l]) & mh;
                                }
                            }
                        } else if sh < 64 {
                            let dst = &mut lo_ch[d];
                            for l in 0..W {
                                dst[l] = ((sal[l] << sh) | sbl[l]) & ml;
                            }
                            if mh != 0 {
                                let dst = &mut hi_ch[d];
                                for l in 0..W {
                                    dst[l] = ((sah[l] << sh) | (sal[l] >> (64 - sh)) | sbh[l]) & mh;
                                }
                            }
                        } else {
                            let dst = &mut lo_ch[d];
                            for l in 0..W {
                                dst[l] = sbl[l] & ml;
                            }
                            if mh != 0 {
                                let dst = &mut hi_ch[d];
                                for l in 0..W {
                                    dst[l] = ((sal[l] << (sh - 64)) | sbh[l]) & mh;
                                }
                            }
                        }
                        join_labels!(a, b, d);
                    }
                }
                Op::MemRead => {
                    for i in s..e {
                        let a = col_a[i] as usize;
                        let b = col_b[i] as usize;
                        let d = col_dst[i] as usize;
                        let m = col_mask[i];
                        let (ml, mh) = (lo64(m), hi64(m));
                        let (mlo_ch, _) = mem_lo[b].as_chunks::<W>();
                        let depth = mlo_ch.len();
                        let sal = lo_ch[a];
                        // Power-of-two depths wrap with a mask instead of
                        // an integer division (identical result).
                        let mut addrs = [0usize; W];
                        match program.mem_addr_mask[b] {
                            Some(amask) => {
                                for l in 0..W {
                                    addrs[l] = (sal[l] as usize) & amask;
                                }
                            }
                            None => {
                                for l in 0..W {
                                    addrs[l] = (sal[l] as usize) % depth;
                                }
                            }
                        }
                        let dst = &mut lo_ch[d];
                        for l in 0..W {
                            dst[l] = mlo_ch[addrs[l]][l] & ml;
                        }
                        if mh != 0 {
                            let (mhi_ch, _) = mem_hi[b].as_chunks::<W>();
                            let dst = &mut hi_ch[d];
                            for l in 0..W {
                                dst[l] = mhi_ch[addrs[l]][l] & mh;
                            }
                        }
                        if TRACK {
                            let (mconf_ch, _) = mem_lab_conf[b].as_chunks::<W>();
                            let (minteg_ch, _) = mem_lab_integ[b].as_chunks::<W>();
                            let ca = conf_ch[a];
                            let ia = integ_ch[a];
                            let cd = &mut conf_ch[d];
                            let id = &mut integ_ch[d];
                            for l in 0..W {
                                cd[l] = mconf_ch[addrs[l]][l].max(ca[l]);
                                id[l] = minteg_ch[addrs[l]][l].min(ia[l]);
                            }
                        }
                    }
                }
                Op::Declassify | Op::Endorse => {
                    for i in s..e {
                        let a = col_a[i] as usize;
                        let b = col_b[i] as usize;
                        let d = col_dst[i] as usize;
                        let m = col_mask[i];
                        let (ml, mh) = (lo64(m), hi64(m));
                        let to = Label::from(SecurityTag::from_bits(col_aux[i] as u8));
                        let sal = lo_ch[a];
                        let sbl = lo_ch[b];
                        {
                            let dst = &mut lo_ch[d];
                            for l in 0..W {
                                dst[l] = sal[l] & ml;
                            }
                        }
                        if mh != 0 {
                            let sah = hi_ch[a];
                            let dst = &mut hi_ch[d];
                            for l in 0..W {
                                dst[l] = sah[l] & mh;
                            }
                        }
                        if TRACK {
                            let ca = conf_ch[a];
                            let ia = integ_ch[a];
                            let cd = &mut conf_ch[d];
                            let id = &mut integ_ch[d];
                            for l in 0..W {
                                let from = label_of(ca[l], ia[l]);
                                let p = Label::from(SecurityTag::from_bits(sbl[l] as u8));
                                let downgraded = if op == Op::Declassify {
                                    ifc_lattice::declassify(from, to, p)
                                } else {
                                    ifc_lattice::endorse(from, to, p)
                                };
                                let out = match downgraded {
                                    Ok(lbl) => lbl,
                                    Err(_) => {
                                        if record {
                                            push_violation(
                                                &mut violations[l],
                                                &mut room[l],
                                                &mut violations_truncated[l],
                                                RuntimeViolation::DowngradeRejected {
                                                    cycle: *cycle,
                                                    node: NodeId::from_raw(col_c[i]),
                                                    from,
                                                    to,
                                                    principal: p,
                                                },
                                            );
                                        }
                                        from
                                    }
                                };
                                cd[l] = out.conf.raw();
                                id[l] = out.integ.raw();
                            }
                        }
                    }
                }
            }
            profile.end_run(op, e - s, run_started);
        }

        if record && TRACK {
            for check in &program.output_checks {
                let s = check.slot as usize;
                for l in 0..W {
                    let allowed = match &check.allowed {
                        AllowedLabel::Const(lbl) => *lbl,
                        AllowedLabel::Dynamic(expr) => {
                            let mut resolve = |sig: NodeId| {
                                let slot = program.slot_of[sig.index()] as usize;
                                join64(lo_ch[slot][l], hi_ch[slot][l])
                            };
                            expr.eval(&mut resolve)
                        }
                    };
                    let label = label_of(conf_ch[s][l], integ_ch[s][l]);
                    if !label.flows_to(allowed) {
                        push_violation(
                            &mut violations[l],
                            &mut room[l],
                            &mut violations_truncated[l],
                            RuntimeViolation::OutputLeak {
                                cycle: *cycle,
                                port: check.port.clone(),
                                label,
                                allowed,
                            },
                        );
                    }
                }
            }
        }
    }
}
