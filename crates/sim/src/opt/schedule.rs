//! Same-op run scheduling: a dependency-preserving tape reorder that
//! clusters instructions with the same opcode.
//!
//! The executors dispatch on the opcode once per *run* of equal opcodes
//! (see `Program::runs`). The lowering emits the tape in netlist
//! topological order, which interleaves opcodes freely — the protected
//! AES tape averages ~2 instructions per run, so nearly every
//! instruction pays an opcode branch, and a tape of thousands of
//! instructions blows out the indirect-branch predictor. This pass
//! list-schedules the tape greedily by opcode: among all
//! dependency-ready instructions, it keeps draining the current opcode's
//! ready queue before switching to the fullest other queue.
//!
//! Scheduling is *windowed*: the tape is cut into fixed-size blocks of
//! consecutive instructions, and only instructions within one window are
//! reordered relative to each other. A global reorder maximises run
//! length (the AES tape collapses from ~3400 runs to a few dozen) but
//! migrates instructions arbitrarily far from their producers, which
//! wrecks the cache locality of the lane-batched executor's operand
//! accesses — measured, it is a net loss at 4+ lanes. Windowed
//! scheduling keeps every instruction within the configured window
//! ([`OptConfig::schedule_window`](crate::OptConfig::schedule_window),
//! defaulting to
//! [`DEFAULT_SCHEDULE_WINDOW`](crate::opt::DEFAULT_SCHEDULE_WINDOW)) of
//! its original neighbourhood, trading some run-length for intact
//! producer→consumer reuse distance. The `profile`-feature cycle
//! profiler measures the resulting run fragmentation and suggests a
//! window adjustment when dispatch overhead dominates.
//!
//! ## Soundness
//!
//! The tape is SSA over slots (each instruction writes its own node's
//! slot exactly once per pass) and combinationally acyclic, so *any*
//! topological order computes identical settled values and labels.
//! Windowed reordering is such an order: cross-window dependencies
//! always run producer-first because windows are emitted in original
//! order, and intra-window dependencies are honoured explicitly. The
//! only order-observable effect inside a pass is the violation stream of
//! downgrade gates, so downgrade instructions are additionally chained
//! in their original relative order within each window (across windows
//! their order is preserved by construction). Memory reads all see the
//! same pre-clock-edge memory state (write ports apply at the edge,
//! after the pass), so their order is free.

use std::collections::VecDeque;

use crate::program::{Program, Tape};

/// Upper bound on `Op as usize` (fieldless enum), for bucket arrays.
const OP_BUCKETS: usize = 32;

/// Reorders `program.tape` in place (see the [module docs](self)).
/// `window` is the reordering block size: large enough that same-op runs
/// amortise the dispatch branch, small enough that reordering cannot
/// move a consumer far from its producer's cache lines.
pub(crate) fn run(program: &mut Program, window: usize) {
    let window = window.max(1);
    let tape = &program.tape;
    let n = tape.len();
    if n < 2 {
        return;
    }

    // Producer instruction of each slot (u32::MAX: input/reg/const slot,
    // written by no instruction — always ready).
    let mut producer = vec![u32::MAX; program.num_slots];
    for i in 0..n {
        producer[tape.dst[i] as usize] = i as u32;
    }

    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut ws = 0usize;
    while ws < n {
        let we = (ws + window).min(n);
        schedule_window(program, &producer, ws, we, &mut order);
        ws = we;
    }
    debug_assert_eq!(order.len(), n, "schedule must be a permutation");

    // Apply the permutation: instructions keep their slots, only their
    // position on the tape changes.
    let tape = &program.tape;
    let mut scheduled = Tape::default();
    for &i in &order {
        let i = i as usize;
        scheduled.push(
            tape.ops[i],
            tape.dst[i],
            tape.a[i],
            tape.b[i],
            tape.c[i],
            tape.aux[i],
            tape.out_mask[i],
        );
    }
    program.tape = scheduled;
}

/// Greedy opcode-affine list scheduling of the window `[ws, we)`,
/// appending the chosen order to `order`. Only dependencies whose
/// producer is itself inside the window constrain the order — an earlier
/// window's results are already settled by emission order.
fn schedule_window(
    program: &Program,
    producer: &[u32],
    ws: usize,
    we: usize,
    order: &mut Vec<u32>,
) {
    let tape = &program.tape;
    let w = we - ws;
    let in_window = |p: u32| p != u32::MAX && (p as usize) >= ws && (p as usize) < we;

    // Window-local dependency edges producer → consumer, plus a chain
    // through the window's downgrade instructions to pin their relative
    // order.
    let mut indegree = vec![0u32; w];
    let mut successors: Vec<Vec<u32>> = vec![Vec::new(); w];
    let depend = |from_slot: u32, to: usize, successors: &mut [Vec<u32>], indegree: &mut [u32]| {
        let p = producer[from_slot as usize];
        if in_window(p) && p as usize != to {
            successors[p as usize - ws].push((to - ws) as u32);
            indegree[to - ws] += 1;
        }
    };
    let mut prev_downgrade: Option<usize> = None;
    for i in ws..we {
        let op = tape.ops[i];
        depend(tape.a[i], i, &mut successors, &mut indegree);
        if op.b_is_slot() {
            depend(tape.b[i], i, &mut successors, &mut indegree);
        }
        if op.c_is_slot() {
            depend(tape.c[i], i, &mut successors, &mut indegree);
        }
        if op.is_downgrade() {
            if let Some(prev) = prev_downgrade {
                successors[prev - ws].push((i - ws) as u32);
                indegree[i - ws] += 1;
            }
            prev_downgrade = Some(i);
        }
    }

    // FIFO queues keep each opcode's instructions in original
    // (slot-allocation) order, which also keeps operand accesses roughly
    // sequential in memory.
    let mut buckets: Vec<VecDeque<u32>> = vec![VecDeque::new(); OP_BUCKETS];
    let mut ready_count = 0usize;
    for i in 0..w {
        if indegree[i] == 0 {
            buckets[tape.ops[ws + i] as usize].push_back(i as u32);
            ready_count += 1;
        }
    }
    let mut current = usize::MAX;
    while ready_count > 0 {
        if current == usize::MAX || buckets[current].is_empty() {
            current = buckets
                .iter()
                .enumerate()
                .max_by_key(|(_, q)| q.len())
                .map(|(b, _)| b)
                .expect("bucket array is non-empty");
        }
        let i = buckets[current]
            .pop_front()
            .expect("chosen bucket is non-empty") as usize;
        ready_count -= 1;
        order.push((ws + i) as u32);
        for &succ in &successors[i] {
            let s = succ as usize;
            indegree[s] -= 1;
            if indegree[s] == 0 {
                buckets[tape.ops[ws + s] as usize].push_back(succ);
                ready_count += 1;
            }
        }
    }
}
