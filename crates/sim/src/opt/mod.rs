//! Tape optimizer passes.
//!
//! The passes rewrite a compiled [`Program`](crate::program::Program)
//! between lowering and execution. Every pass preserves the *observable*
//! semantics of the tape — settled values and labels of ports and named
//! nodes, final register and memory state, and the full recorded
//! violation stream — in every tracking mode; the differential suites pin
//! each pass individually against the interpreter oracle.
//!
//! * **Constant folding** ([`fold`]): an instruction whose operands are
//!   all tied to constants (literals, or inputs pinned by
//!   [`OptConfig::pin_inputs`]) is evaluated once at compile time and its
//!   result baked into the slot's initial value. Sound under label
//!   tracking because constant slots carry `(⊥,⊤)` forever, so the folded
//!   instruction's label join is `(⊥,⊤)` — exactly the destination slot's
//!   initial label. Downgrade gates and memory reads never fold.
//! * **Common-subexpression elimination** ([`cse`]): two instructions
//!   with identical opcode and (transitively remapped) operands compute
//!   identical values *and* identical labels, so the duplicate is dropped
//!   and every later reference redirected to the surviving slot.
//!   Downgrade gates never merge (each records its own violations under
//!   its own node id).
//! * **Dead-node elimination** ([`dce`]): instructions whose results can
//!   never be observed — not reachable from an output port, a named node,
//!   a register, a memory write port, a dynamic release-label signal, or
//!   a downgrade gate — are removed. The eliminated slots keep their
//!   initial values; peeking an *unnamed, unobserved* node by raw id is
//!   the one API whose result this pass leaves unspecified.
//! * **Run scheduling** ([`schedule`]): reorders the tape (respecting
//!   data dependencies) to cluster same-opcode instructions into long
//!   runs, so the executors' run-level dispatch pays one opcode branch
//!   per run instead of per instruction. Reordering is windowed —
//!   instructions only move within a fixed-size block of tape — so
//!   producer→consumer cache locality survives. A pure permutation of the
//!   combinational evaluation order of an SSA tape: every slot is
//!   written once per pass from already-settled operands, so values,
//!   labels, and (with downgrade relative order preserved) the violation
//!   stream are unchanged.
//!
//! Each pass is individually toggleable and reports before/after
//! instruction counts in [`OptStats`].

mod cse;
mod dce;
mod fold;
mod schedule;

use hdl::{mask, Value};

use crate::program::Program;

/// Default instruction window of the run-scheduling pass (see
/// [`OptConfig::schedule_window`]).
pub const DEFAULT_SCHEDULE_WINDOW: usize = 96;

/// Which optimizer passes run, and any inputs pinned to constants.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OptConfig {
    /// Constant folding through literals and pinned inputs.
    pub fold: bool,
    /// Common-subexpression elimination over the tape.
    pub cse: bool,
    /// Dead-node elimination for unobserved cones.
    pub dce: bool,
    /// Same-op run scheduling (dependency-preserving tape reorder).
    pub schedule: bool,
    /// Instruction window for the scheduling pass; `None` uses
    /// [`DEFAULT_SCHEDULE_WINDOW`]. The cycle profiler's
    /// `ProfileReport::suggest_window` (built with the `profile`
    /// feature) derives a value for this from measured run
    /// fragmentation.
    pub schedule_window: Option<usize>,
    /// Inputs tied to fixed values by configuration (name, value). A
    /// pinned input's slot becomes a constant seed for folding; driving
    /// it afterwards panics.
    pub pin_inputs: Vec<(String, Value)>,
}

impl OptConfig {
    /// No passes (the compiled tape runs exactly as lowered).
    #[must_use]
    pub fn none() -> OptConfig {
        OptConfig::default()
    }

    /// Every pass enabled, no pinned inputs.
    #[must_use]
    pub fn all() -> OptConfig {
        OptConfig {
            fold: true,
            cse: true,
            dce: true,
            schedule: true,
            schedule_window: None,
            pin_inputs: Vec::new(),
        }
    }
}

/// Calibration length for [`tuned`]'s profiling run: enough tape passes
/// for the average run length to stabilise, short enough that the probe
/// costs single-digit milliseconds per (netlist, mode) launch.
#[cfg(feature = "profile")]
const TUNE_CYCLES: u64 = 128;

/// The optimizer configuration fleet and farm launches use by default:
/// every pass enabled, with the scheduling window fed back from the cycle
/// profiler's measured run fragmentation instead of requiring manual
/// plumbing.
///
/// With the `profile` cargo feature, a one-lane probe batch compiled with
/// [`OptConfig::all`] executes a short calibration run and
/// `ProfileReport::suggest_window` sizes
/// [`OptConfig::schedule_window`] from the observed average same-op run
/// length. Without the feature the probe would measure nothing, so the
/// result is exactly [`OptConfig::all`] (window `None`, i.e. the default).
#[must_use]
pub fn tuned(net: &hdl::Netlist, mode: crate::TrackMode) -> OptConfig {
    #[cfg_attr(not(feature = "profile"), allow(unused_mut))]
    let mut config = OptConfig::all();
    #[cfg(feature = "profile")]
    {
        let mut probe = crate::BatchedSim::with_tracking_opt(net.clone(), mode, 1, &config);
        probe.run(TUNE_CYCLES);
        config.schedule_window = Some(probe.profile_report().suggest_window());
    }
    #[cfg(not(feature = "profile"))]
    {
        let _ = (net, mode);
    }
    config
}

/// Before/after instruction counts of one optimizer pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassStats {
    /// Pass name (`"fold"`, `"cse"`, `"dce"`, `"schedule"`).
    pub pass: &'static str,
    /// Tape length before the pass ran.
    pub instrs_before: usize,
    /// Tape length after the pass ran.
    pub instrs_after: usize,
}

impl PassStats {
    /// Instructions the pass removed.
    #[must_use]
    pub fn removed(&self) -> usize {
        self.instrs_before - self.instrs_after
    }
}

/// The optimizer pipeline's per-pass statistics, in execution order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OptStats {
    /// One entry per pass that ran.
    pub passes: Vec<PassStats>,
}

impl OptStats {
    /// Total instructions removed across all passes.
    #[must_use]
    pub fn total_removed(&self) -> usize {
        self.passes.iter().map(PassStats::removed).sum()
    }
}

/// Runs the configured passes over a program, in fold → cse → dce →
/// schedule order, recording per-pass statistics into the program.
///
/// # Panics
///
/// Panics if a pinned input names no input port.
pub(crate) fn optimize(program: &mut Program, config: &OptConfig) {
    // Pin configured inputs first: bake the value into the slot's initial
    // state and mark the node so a later `set` is rejected.
    for (name, value) in &config.pin_inputs {
        let id = program.resolve_input(name);
        let idx = id.index();
        let slot = program.slot_of[idx] as usize;
        program.init_values[slot] = mask(*value, program.node_widths[idx].max(1));
        program.pinned[idx] = true;
    }

    let mut stats = OptStats::default();
    let mut record = |name: &'static str, before: usize, after: usize| {
        stats.passes.push(PassStats {
            pass: name,
            instrs_before: before,
            instrs_after: after,
        });
    };

    if config.fold {
        let before = program.tape.len();
        fold::run(program);
        record("fold", before, program.tape.len());
    }
    if config.cse {
        let before = program.tape.len();
        cse::run(program);
        record("cse", before, program.tape.len());
    }
    if config.dce {
        let before = program.tape.len();
        dce::run(program);
        record("dce", before, program.tape.len());
    }
    if config.schedule {
        let before = program.tape.len();
        schedule::run(
            program,
            config.schedule_window.unwrap_or(DEFAULT_SCHEDULE_WINDOW),
        );
        record("schedule", before, program.tape.len());
    }

    program.rebuild_downgrade_index();
    program.opt_stats = stats;
}
