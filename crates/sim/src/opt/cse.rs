//! Common-subexpression elimination over the tape.
//!
//! Two instructions with the same opcode, (remapped) operand slots, and
//! immediates compute identical values in every settle pass — and,
//! because every tracking mode derives an operator's output label from
//! the *same* operand labels, identical runtime labels too. The duplicate
//! instruction is dropped and every later reference to its destination
//! slot (operands, register sources, write ports, release checks, and the
//! node→slot map used by peeks) is redirected to the surviving slot.
//!
//! Memory reads participate: within one settle pass two reads of the same
//! memory at the same address slot observe the same cell (memories only
//! change on the clock edge), and once merged the two nodes share a slot
//! forever. Downgrade gates never merge — each records violations under
//! its own node id, and merging would drop entries from the recorded
//! stream.

use std::collections::HashMap;

use hdl::Value;

use crate::program::{Op, Program, Tape};

type Key = (Op, u32, u32, u32, Value, Value);

/// Runs the pass: value-numbers the tape in order, dropping duplicates
/// and redirecting slots.
pub(super) fn run(program: &mut Program) {
    let num_slots = program.num_slots;
    let mut remap: Vec<u32> = (0..num_slots as u32).collect();

    let old = std::mem::take(&mut program.tape);
    let mut new = Tape::default();
    let mut seen: HashMap<Key, u32> = HashMap::new();
    for i in 0..old.len() {
        let op = old.ops[i];
        // Remap operands through every merge made so far. The tape is in
        // topological order, so a merged slot's consumers all come later.
        let a = remap[old.a[i] as usize];
        let b = if op.b_is_slot() {
            remap[old.b[i] as usize]
        } else {
            old.b[i]
        };
        let c = if op.c_is_slot() {
            remap[old.c[i] as usize]
        } else {
            old.c[i]
        };
        let dst = old.dst[i];
        if op.is_downgrade() {
            new.push(op, dst, a, b, c, old.aux[i], old.out_mask[i]);
            continue;
        }
        let key: Key = (op, a, b, c, old.aux[i], old.out_mask[i]);
        match seen.get(&key) {
            Some(&canonical) => remap[dst as usize] = canonical,
            None => {
                seen.insert(key, dst);
                new.push(op, dst, a, b, c, old.aux[i], old.out_mask[i]);
            }
        }
    }
    program.tape = new;

    // Redirect every slot reference outside the tape.
    for slot in &mut program.slot_of {
        *slot = remap[*slot as usize];
    }
    for r in &mut program.regs {
        r.src = remap[r.src as usize];
    }
    for wp in &mut program.write_ports {
        wp.addr = remap[wp.addr as usize];
        wp.data = remap[wp.data as usize];
        wp.en = remap[wp.en as usize];
    }
    for check in &mut program.output_checks {
        check.slot = remap[check.slot as usize];
    }
}
