//! Constant folding through literals and config-pinned inputs.
//!
//! A slot is *constant* when nothing can ever rewrite it at runtime: the
//! slot of a `Const` node, the slot of a pinned input, or the destination
//! of an instruction whose operands are all constant. Such instructions
//! are evaluated once here, their results baked into
//! [`Program::init_values`], and the instructions dropped from the tape.
//!
//! Soundness under label tracking: constant slots are initialised to
//! `(⊥,⊤)` and no surviving instruction writes them, so at runtime their
//! labels are always `(⊥,⊤)`; the folded instruction's output label would
//! be the join of all-`(⊥,⊤)` operands — `(⊥,⊤)`, which is exactly what
//! the destination slot's initial label already holds. Downgrade gates
//! are never folded (they record violations against *runtime* principal
//! tags), and memory reads are never folded (cells are mutable state). A
//! mux folds only when the select *and both arms* are constant, because
//! under conservative tracking its output label joins the unselected arm
//! too.

use hdl::{Node, Value};
use ifc_lattice::{Label, SecurityTag};

use crate::program::{Op, Program, Tape};

/// Evaluates one foldable instruction over constant operand values,
/// mirroring the executor's scalar semantics (the final width mask is
/// applied by the caller).
fn eval(op: Op, va: Value, vb: Value, vc: Value, b_raw: u32, c_raw: u32, aux: Value) -> Value {
    let tag = |v: Value| Label::from(SecurityTag::from_bits(v as u8));
    match op {
        Op::Not => !va,
        Op::ReduceOr => Value::from(va != 0),
        Op::ReduceAnd => Value::from(va == aux),
        Op::ReduceXor => Value::from(va.count_ones() % 2 == 1),
        Op::And => va & vb,
        Op::Or => va | vb,
        Op::Xor => va ^ vb,
        Op::Add => va.wrapping_add(vb),
        Op::Sub => va.wrapping_sub(vb),
        Op::Eq => Value::from(va == vb),
        Op::Ne => Value::from(va != vb),
        Op::Lt => Value::from(va < vb),
        Op::Ge => Value::from(va >= vb),
        Op::TagLeq => Value::from(tag(va).flows_to(tag(vb))),
        Op::TagJoin => Value::from(SecurityTag::from(tag(va).join(tag(vb))).bits()),
        Op::TagMeet => Value::from(SecurityTag::from(tag(va).meet(tag(vb))).bits()),
        Op::Mux => {
            if va & 1 == 1 {
                vb
            } else {
                vc
            }
        }
        Op::Slice => va >> b_raw,
        Op::Cat => (va << c_raw) | vb,
        Op::MemRead | Op::Declassify | Op::Endorse => {
            unreachable!("{op:?} is never constant-folded")
        }
    }
}

/// Runs the pass: marks constant slots, folds instructions whose operands
/// are all constant, and rewrites the tape in place.
pub(super) fn run(program: &mut Program) {
    let num_slots = program.num_slots;
    let mut is_const = vec![false; num_slots];
    for id in program.net.node_ids() {
        let idx = id.index();
        match program.net.node(id) {
            Node::Const { .. } => is_const[program.slot_of[idx] as usize] = true,
            Node::Input { .. } if program.pinned[idx] => {
                is_const[program.slot_of[idx] as usize] = true;
            }
            _ => {}
        }
    }

    let old = std::mem::take(&mut program.tape);
    let mut new = Tape::default();
    for i in 0..old.len() {
        let op = old.ops[i];
        let (a, b, c) = (old.a[i], old.b[i], old.c[i]);
        let foldable = !op.is_downgrade()
            && op != Op::MemRead
            && is_const[a as usize]
            && (!op.b_is_slot() || is_const[b as usize])
            && (!op.c_is_slot() || is_const[c as usize]);
        if foldable {
            let va = program.init_values[a as usize];
            let vb = if op.b_is_slot() {
                program.init_values[b as usize]
            } else {
                0
            };
            let vc = if op.c_is_slot() {
                program.init_values[c as usize]
            } else {
                0
            };
            let dst = old.dst[i] as usize;
            program.init_values[dst] = eval(op, va, vb, vc, b, c, old.aux[i]) & old.out_mask[i];
            is_const[dst] = true;
        } else {
            new.push(op, old.dst[i], a, b, c, old.aux[i], old.out_mask[i]);
        }
    }
    program.tape = new;
}
