//! Dead-node elimination for unobserved cones.
//!
//! An instruction is live when its destination slot can reach something
//! observable: an output port (including the slots a dynamic release
//! label reads), a *named* node (peekable by name through the public
//! API), a register's next-value, a memory write port operand, or a
//! downgrade gate (which must keep firing — its accept/reject decisions
//! are part of the recorded violation stream, and its operand cone with
//! it). Everything else is removed; the dead slots simply keep their
//! initial values, which nothing observable ever reads.

use crate::program::{expr_signals, Program};
use crate::simulator::AllowedLabel;

/// Runs the pass: seeds liveness from the observable roots, sweeps the
/// tape backwards (topological order guarantees producers precede
/// consumers), and drops dead instructions.
pub(super) fn run(program: &mut Program) {
    let mut live = vec![false; program.num_slots];

    // Roots: output ports and the signals their dynamic labels read.
    let mut expr_sigs = Vec::new();
    for check in &program.output_checks {
        live[check.slot as usize] = true;
        if let AllowedLabel::Dynamic(expr) = &check.allowed {
            expr_signals(expr, &mut expr_sigs);
        }
    }
    for sig in expr_sigs {
        live[program.slot_of[sig.index()] as usize] = true;
    }
    // Roots: named nodes (reachable via peek-by-name).
    for id in program.net.node_ids() {
        if program.net.name_of(id).is_some() {
            live[program.slot_of[id.index()] as usize] = true;
        }
    }
    // Roots: register next-values and memory write operands (state).
    for r in &program.regs {
        live[r.src as usize] = true;
    }
    for wp in &program.write_ports {
        live[wp.addr as usize] = true;
        live[wp.data as usize] = true;
        live[wp.en as usize] = true;
    }

    // Backward sweep: a kept instruction's operands become live.
    let tape = &program.tape;
    let n = tape.len();
    let mut keep = vec![false; n];
    for i in (0..n).rev() {
        let op = tape.ops[i];
        if live[tape.dst[i] as usize] || op.is_downgrade() {
            keep[i] = true;
            live[tape.a[i] as usize] = true;
            if op.b_is_slot() {
                live[tape.b[i] as usize] = true;
            }
            if op.c_is_slot() {
                live[tape.c[i] as usize] = true;
            }
        }
    }

    let old = std::mem::take(&mut program.tape);
    let mut new = crate::program::Tape::default();
    for (i, &kept) in keep.iter().enumerate() {
        if kept {
            new.push(
                old.ops[i],
                old.dst[i],
                old.a[i],
                old.b[i],
                old.c[i],
                old.aux[i],
                old.out_mask[i],
            );
        }
    }
    program.tape = new;
}
