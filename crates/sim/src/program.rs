//! The shared compiled-tape program: a netlist lowered once into a flat
//! struct-of-arrays instruction tape plus the clock-edge and release-check
//! tables, independent of any execution state.
//!
//! A [`Program`] is what both execution backends run:
//!
//! * [`CompiledSim`](crate::CompiledSim) instantiates one lane of state
//!   over it (the single-session throughput engine);
//! * [`BatchedSim`](crate::BatchedSim) instantiates W lanes over the same
//!   tape, so one fetch/decode of every instruction drives W independent
//!   sessions.
//!
//! Because the program is immutable after construction it is shared
//! between sessions behind an `Arc`: a fleet lowers and compiles once and
//! every session clone costs only its own state arrays.
//!
//! The optimizer passes in [`opt`](crate::opt) rewrite a `Program` in
//! place between compilation and execution.

use hdl::{mask, BinOp, LabelExpr, Netlist, Node, NodeId, UnOp, Value};
use ifc_lattice::Label;

use crate::opt::OptStats;
use crate::simulator::{build_output_checks, compute_widths, AllowedLabel};
use crate::violation::RuntimeViolation;
use crate::TrackMode;

/// Tape opcodes. One per combinational node kind; `Input`, `Const`,
/// `Reg`, and `Wire` nodes compile to no instruction at all (their
/// values live directly in slots, wires alias their driver's slot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Op {
    /// Bitwise complement of `a`.
    Not,
    /// OR-reduce `a` to one bit.
    ReduceOr,
    /// AND-reduce: `a == aux` (aux holds the operand's full mask).
    ReduceAnd,
    /// XOR-reduce (parity) of `a`.
    ReduceXor,
    /// `a & b`.
    And,
    /// `a | b`.
    Or,
    /// `a ^ b`.
    Xor,
    /// Wrapping `a + b`.
    Add,
    /// Wrapping `a - b`.
    Sub,
    /// `a == b`, one bit.
    Eq,
    /// `a != b`, one bit.
    Ne,
    /// `a < b`, one bit.
    Lt,
    /// `a >= b`, one bit.
    Ge,
    /// Packed-tag flow check `a ⊑ b`, one bit.
    TagLeq,
    /// Packed-tag join.
    TagJoin,
    /// Packed-tag meet.
    TagMeet,
    /// `if a & 1 { b } else { c }`.
    Mux,
    /// `(a >> b) & out_mask`.
    Slice,
    /// `(a << c) | b`.
    Cat,
    /// Read memory `b` at address `a` (modulo depth).
    MemRead,
    /// Declassify data `a` on behalf of principal signal `b`; `aux` is
    /// the packed target tag, `c` the original node id (for reports).
    Declassify,
    /// Endorse — integrity dual of [`Op::Declassify`].
    Endorse,
}

impl Op {
    /// Every opcode, in declaration order (for profiler bucket naming).
    #[cfg(feature = "profile")]
    pub(crate) const ALL: [Op; 22] = [
        Op::Not,
        Op::ReduceOr,
        Op::ReduceAnd,
        Op::ReduceXor,
        Op::And,
        Op::Or,
        Op::Xor,
        Op::Add,
        Op::Sub,
        Op::Eq,
        Op::Ne,
        Op::Lt,
        Op::Ge,
        Op::TagLeq,
        Op::TagJoin,
        Op::TagMeet,
        Op::Mux,
        Op::Slice,
        Op::Cat,
        Op::MemRead,
        Op::Declassify,
        Op::Endorse,
    ];

    /// Whether the `b` column holds a value slot (as opposed to a shift
    /// amount or a memory index).
    pub(crate) fn b_is_slot(self) -> bool {
        !matches!(
            self,
            Op::Not | Op::ReduceOr | Op::ReduceAnd | Op::ReduceXor | Op::Slice | Op::MemRead
        )
    }

    /// Whether the `c` column holds a value slot (only the mux else-arm;
    /// for `Cat` it is a shift, for downgrades the original node id).
    pub(crate) fn c_is_slot(self) -> bool {
        matches!(self, Op::Mux)
    }

    /// Whether this instruction has side effects beyond its destination
    /// slot (downgrade gates record violations), and so must survive
    /// dead-code elimination and never merge in CSE.
    pub(crate) fn is_downgrade(self) -> bool {
        matches!(self, Op::Declassify | Op::Endorse)
    }

    pub(crate) fn name(self) -> &'static str {
        match self {
            Op::Not => "not",
            Op::ReduceOr => "reduce_or",
            Op::ReduceAnd => "reduce_and",
            Op::ReduceXor => "reduce_xor",
            Op::And => "and",
            Op::Or => "or",
            Op::Xor => "xor",
            Op::Add => "add",
            Op::Sub => "sub",
            Op::Eq => "eq",
            Op::Ne => "ne",
            Op::Lt => "lt",
            Op::Ge => "ge",
            Op::TagLeq => "tag_leq",
            Op::TagJoin => "tag_join",
            Op::TagMeet => "tag_meet",
            Op::Mux => "mux",
            Op::Slice => "slice",
            Op::Cat => "cat",
            Op::MemRead => "mem_read",
            Op::Declassify => "declassify",
            Op::Endorse => "endorse",
        }
    }
}

/// The instruction tape in struct-of-arrays layout: parallel arrays
/// indexed by instruction, so the dispatch loop streams each field
/// sequentially through cache.
#[derive(Debug, Clone, Default)]
pub(crate) struct Tape {
    pub(crate) ops: Vec<Op>,
    /// Destination value/label slot.
    pub(crate) dst: Vec<u32>,
    /// First operand slot.
    pub(crate) a: Vec<u32>,
    /// Second operand slot, slice shift amount, or memory index.
    pub(crate) b: Vec<u32>,
    /// Third operand slot, cat shift amount, or original node id.
    pub(crate) c: Vec<u32>,
    /// Wide immediate: ReduceAnd full-operand mask, downgrade target tag.
    pub(crate) aux: Vec<Value>,
    /// Precomputed width mask applied to every result.
    pub(crate) out_mask: Vec<Value>,
}

impl Tape {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn push(
        &mut self,
        op: Op,
        dst: u32,
        a: u32,
        b: u32,
        c: u32,
        aux: Value,
        out_mask: Value,
    ) {
        self.ops.push(op);
        self.dst.push(dst);
        self.a.push(a);
        self.b.push(b);
        self.c.push(c);
        self.aux.push(aux);
        self.out_mask.push(out_mask);
    }

    pub(crate) fn len(&self) -> usize {
        self.ops.len()
    }
}

/// A compiled register update: on the clock edge, `dst` slot takes the
/// settled value of `src` slot, masked to the register's width.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RegUpdate {
    pub(crate) dst: u32,
    pub(crate) src: u32,
    pub(crate) mask: Value,
}

/// A compiled memory write port (operand node ids pre-resolved to slots).
#[derive(Debug, Clone, Copy)]
pub(crate) struct CompiledWritePort {
    pub(crate) mem: u32,
    pub(crate) addr: u32,
    pub(crate) data: u32,
    pub(crate) en: u32,
}

/// One output-port release check with the port node pre-resolved to its
/// slot.
#[derive(Debug, Clone)]
pub(crate) struct CompiledCheck {
    pub(crate) port: String,
    pub(crate) slot: u32,
    pub(crate) allowed: AllowedLabel,
}

/// Width mask for a slot/instruction result (all-ones at full width so a
/// plain `&` is always correct).
pub(crate) fn mask_of(width: u16) -> Value {
    mask(Value::MAX, width.max(1))
}

/// Appends a violation against a hoisted remaining-room counter (the cap
/// comparison against the vector length happens once per propagation, not
/// once per push — see [`Program`] users).
pub(crate) fn push_violation(
    violations: &mut Vec<RuntimeViolation>,
    room: &mut usize,
    truncated: &mut bool,
    v: RuntimeViolation,
) {
    if *room > 0 {
        violations.push(v);
        *room -= 1;
    } else {
        *truncated = true;
    }
}

/// Collects every signal a (possibly dependent) label expression reads at
/// runtime — these slots must survive dead-code elimination.
pub(crate) fn expr_signals(expr: &LabelExpr, out: &mut Vec<NodeId>) {
    match expr {
        LabelExpr::Const(_) => {}
        LabelExpr::Table { sel, .. } => out.push(*sel),
        LabelExpr::FromTag(sig) => out.push(*sig),
        LabelExpr::Join(a, b) | LabelExpr::Meet(a, b) => {
            expr_signals(a, out);
            expr_signals(b, out);
        }
    }
}

/// A netlist compiled to an instruction tape, with every table the
/// executors need pre-resolved. Immutable once built (the optimizer
/// rewrites it *before* it is shared); see the [module docs](self).
#[derive(Debug, Clone)]
pub(crate) struct Program {
    pub(crate) net: Netlist,
    pub(crate) mode: TrackMode,
    /// Node index → value/label slot (wires alias their driver's slot).
    pub(crate) slot_of: Vec<u32>,
    /// Per-*node* widths (needed to mask driven input values).
    pub(crate) node_widths: Vec<u16>,
    /// Total number of value/label slots.
    pub(crate) num_slots: usize,
    pub(crate) tape: Tape,
    /// Initial per-slot values: constants and register init values baked
    /// in, plus anything the constant-folding pass proved fixed.
    pub(crate) init_values: Vec<Value>,
    pub(crate) regs: Vec<RegUpdate>,
    pub(crate) write_ports: Vec<CompiledWritePort>,
    pub(crate) output_checks: Vec<CompiledCheck>,
    /// Tape indices of the downgrade instructions, for the settled-state
    /// violation scan.
    pub(crate) downgrades: Vec<u32>,
    /// Maximal same-opcode runs `(op, start, end)` over the tape: the
    /// executors dispatch once per run, not once per instruction.
    pub(crate) runs: Vec<(Op, u32, u32)>,
    /// Per-memory address wrap: `Some(depth - 1)` when the depth is a
    /// power of two (`addr & mask` replaces the modulo), `None` otherwise.
    pub(crate) mem_addr_mask: Vec<Option<usize>>,
    /// Initial memory contents (init cells resized to depth).
    pub(crate) mem_init: Vec<Vec<Value>>,
    /// Per-node flag: input pinned to a constant by the optimizer config
    /// (driving a pinned input is a programming error).
    pub(crate) pinned: Vec<bool>,
    /// Before/after statistics of the optimizer pipeline that ran over
    /// this program (empty when no passes ran).
    pub(crate) opt_stats: OptStats,
}

impl Program {
    /// The one-time lowering pass: assigns value slots (aliasing wires
    /// away), precomputes widths and masks, and emits the instruction
    /// tape in topological order.
    #[allow(clippy::too_many_lines)]
    pub(crate) fn compile(net: Netlist, mode: TrackMode) -> Program {
        let n = net.node_count();
        let node_widths = compute_widths(&net);

        // Slot assignment: every non-wire node owns a slot; wires alias
        // the slot of their transitive driver.
        let mut slot_of = vec![u32::MAX; n];
        let mut num_slots: u32 = 0;
        for id in net.node_ids() {
            if !matches!(net.node(id), Node::Wire { .. }) {
                slot_of[id.index()] = num_slots;
                num_slots += 1;
            }
        }
        for id in net.node_ids() {
            if matches!(net.node(id), Node::Wire { .. }) {
                slot_of[id.index()] = slot_of[net.resolve_driver(id).index()];
            }
        }
        let slot = |id: NodeId| slot_of[id.index()];

        // Initial slot state: constants and register init values are
        // baked in; everything else starts at zero / public-trusted.
        let mut init_values = vec![0 as Value; num_slots as usize];
        for id in net.node_ids() {
            match *net.node(id) {
                Node::Const { value, width } => {
                    init_values[slot(id) as usize] = mask(value, width.max(1));
                }
                Node::Reg { init, width } => {
                    init_values[slot(id) as usize] = mask(init, width.max(1));
                }
                _ => {}
            }
        }

        // The instruction tape, in the netlist's combinational order.
        let mut tape = Tape::default();
        for &id in &net.topo {
            let idx = id.index();
            let dst = slot_of[idx];
            let out_mask = mask_of(node_widths[idx]);
            match *net.node(id) {
                // Stateful / constant / aliased nodes need no instruction.
                Node::Input { .. } | Node::Const { .. } | Node::Reg { .. } | Node::Wire { .. } => {}
                Node::MemRead { mem, addr } => {
                    tape.push(
                        Op::MemRead,
                        dst,
                        slot(addr),
                        mem.index() as u32,
                        0,
                        0,
                        out_mask,
                    );
                }
                Node::Unary { op, a } => {
                    let (op, aux) = match op {
                        UnOp::Not => (Op::Not, 0),
                        UnOp::ReduceOr => (Op::ReduceOr, 0),
                        UnOp::ReduceAnd => (Op::ReduceAnd, mask_of(node_widths[a.index()])),
                        UnOp::ReduceXor => (Op::ReduceXor, 0),
                    };
                    tape.push(op, dst, slot(a), 0, 0, aux, out_mask);
                }
                Node::Binary { op, a, b } => {
                    let op = match op {
                        BinOp::And => Op::And,
                        BinOp::Or => Op::Or,
                        BinOp::Xor => Op::Xor,
                        BinOp::Add => Op::Add,
                        BinOp::Sub => Op::Sub,
                        BinOp::Eq => Op::Eq,
                        BinOp::Ne => Op::Ne,
                        BinOp::Lt => Op::Lt,
                        BinOp::Ge => Op::Ge,
                        BinOp::TagLeq => Op::TagLeq,
                        BinOp::TagJoin => Op::TagJoin,
                        BinOp::TagMeet => Op::TagMeet,
                    };
                    tape.push(op, dst, slot(a), slot(b), 0, 0, out_mask);
                }
                Node::Mux { sel, t, f } => {
                    tape.push(Op::Mux, dst, slot(sel), slot(t), slot(f), 0, out_mask);
                }
                Node::Slice { a, lo, .. } => {
                    tape.push(Op::Slice, dst, slot(a), u32::from(lo), 0, 0, out_mask);
                }
                Node::Cat { hi, lo } => {
                    let shift = u32::from(node_widths[lo.index()]);
                    tape.push(Op::Cat, dst, slot(hi), slot(lo), shift, 0, out_mask);
                }
                Node::Declassify {
                    data,
                    to_tag,
                    principal,
                } => {
                    tape.push(
                        Op::Declassify,
                        dst,
                        slot(data),
                        slot(principal),
                        idx as u32,
                        Value::from(to_tag),
                        out_mask,
                    );
                }
                Node::Endorse {
                    data,
                    to_tag,
                    principal,
                } => {
                    tape.push(
                        Op::Endorse,
                        dst,
                        slot(data),
                        slot(principal),
                        idx as u32,
                        Value::from(to_tag),
                        out_mask,
                    );
                }
            }
        }

        // Clock-edge tables.
        let mut regs = Vec::new();
        for id in net.node_ids() {
            let idx = id.index();
            if let Some(next) = net.reg_next[idx] {
                regs.push(RegUpdate {
                    dst: slot_of[idx],
                    src: slot_of[next.index()],
                    mask: mask_of(node_widths[idx]),
                });
            }
        }
        let write_ports = net
            .write_ports
            .iter()
            .map(|wp| CompiledWritePort {
                mem: wp.mem.index() as u32,
                addr: slot(wp.addr),
                data: slot(wp.data),
                en: slot(wp.en),
            })
            .collect();

        let mem_init: Vec<Vec<Value>> = net
            .mems
            .iter()
            .map(|m| {
                let mut cells = m.init.clone();
                cells.resize(m.depth, 0);
                cells
            })
            .collect();

        let output_checks = build_output_checks(&net)
            .into_iter()
            .map(|c| CompiledCheck {
                slot: slot_of[c.node.index()],
                port: c.port,
                allowed: c.allowed,
            })
            .collect();

        let mem_addr_mask = net
            .mems
            .iter()
            .map(|m| {
                if m.depth.is_power_of_two() {
                    Some(m.depth - 1)
                } else {
                    None
                }
            })
            .collect();

        let mut program = Program {
            mode,
            slot_of,
            node_widths,
            num_slots: num_slots as usize,
            tape,
            init_values,
            regs,
            write_ports,
            output_checks,
            downgrades: Vec::new(),
            runs: Vec::new(),
            mem_addr_mask,
            mem_init,
            pinned: vec![false; n],
            opt_stats: OptStats::default(),
            net,
        };
        program.rebuild_downgrade_index();
        program
    }

    /// Recomputes the tape-derived indexes — the downgrade instructions
    /// (for the settled-state violation scan) and the same-op runs (for
    /// run-level dispatch) — after any pass that reorders or removes
    /// tape entries.
    pub(crate) fn rebuild_downgrade_index(&mut self) {
        self.downgrades = self
            .tape
            .ops
            .iter()
            .enumerate()
            .filter(|(_, op)| op.is_downgrade())
            .map(|(i, _)| i as u32)
            .collect();
        self.runs.clear();
        let ops = &self.tape.ops;
        let mut start = 0usize;
        while start < ops.len() {
            let op = ops[start];
            let mut end = start + 1;
            while end < ops.len() && ops[end] == op {
                end += 1;
            }
            self.runs.push((op, start as u32, end as u32));
            start = end;
        }
    }

    /// Fresh per-slot label state.
    pub(crate) fn init_labels(&self) -> Vec<Label> {
        vec![Label::PUBLIC_TRUSTED; self.num_slots]
    }

    /// Instruction counts per opcode name, sorted descending.
    pub(crate) fn op_histogram(&self) -> Vec<(&'static str, usize)> {
        let mut counts: Vec<(&'static str, usize)> = Vec::new();
        for &op in &self.tape.ops {
            let name = op.name();
            match counts.iter_mut().find(|(n, _)| *n == name) {
                Some((_, c)) => *c += 1,
                None => counts.push((name, 1)),
            }
        }
        counts.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        counts
    }

    /// Resolves an input port by name.
    ///
    /// # Panics
    ///
    /// Panics if no input port has that name.
    pub(crate) fn resolve_input(&self, name: &str) -> NodeId {
        self.net
            .input(name)
            .unwrap_or_else(|| panic!("no input port named {name:?}"))
    }

    /// Resolves any output, input, or named node.
    ///
    /// # Panics
    ///
    /// Panics if no port or named node matches.
    pub(crate) fn lookup(&self, name: &str) -> NodeId {
        self.net
            .output(name)
            .or_else(|| self.net.input(name))
            .or_else(|| {
                self.net
                    .node_ids()
                    .find(|&id| self.net.name_of(id) == Some(name))
            })
            .unwrap_or_else(|| panic!("no port or node named {name:?}"))
    }
}
