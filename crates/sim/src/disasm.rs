//! Tape disassembler: a human-readable listing of the compiled
//! instruction tape, with an exact round-trip parser.
//!
//! The listing is the debugging surface for the compiled backends: one
//! line per tape instruction, rendered with op-aware field names
//! (`%slot` operands, `shr=`/`low=`/`mem=` immediates, downgrade target
//! tags) so an optimized tape can be inspected, diffed across optimizer
//! configurations, or compared between hosts. Lines starting with `;`
//! are comments.
//!
//! The parser reconstructs the struct-of-arrays tape *exactly*: every
//! column of every instruction survives `render → parse → render`, which
//! the round-trip property tests pin at every lane width. Columns a
//! given opcode leaves unused are omitted when zero and emitted as raw
//! `b=`/`c=`/`aux=` pairs otherwise, so the guarantee holds even for
//! tapes produced by future passes. [`ParsedTape::fingerprint`] hashes
//! all columns (FNV-1a) for cheap equality checks; it matches
//! [`CompiledSim::tape_fingerprint`](crate::CompiledSim::tape_fingerprint)
//! when the round trip is exact.
//!
//! The `tape_dis` bench binary exposes the listing on the command line
//! for the repo's own designs.

use std::fmt;

use hdl::Value;

use crate::program::{Op, Tape};

/// All opcodes, for name lookup in the parser.
const ALL_OPS: [Op; 22] = [
    Op::Not,
    Op::ReduceOr,
    Op::ReduceAnd,
    Op::ReduceXor,
    Op::And,
    Op::Or,
    Op::Xor,
    Op::Add,
    Op::Sub,
    Op::Eq,
    Op::Ne,
    Op::Lt,
    Op::Ge,
    Op::TagLeq,
    Op::TagJoin,
    Op::TagMeet,
    Op::Mux,
    Op::Slice,
    Op::Cat,
    Op::MemRead,
    Op::Declassify,
    Op::Endorse,
];

fn op_from_name(name: &str) -> Option<Op> {
    ALL_OPS.into_iter().find(|op| op.name() == name)
}

/// FNV-1a over every column of the tape, in column-major order with a
/// per-column separator so permuted columns cannot collide trivially.
pub(crate) fn fingerprint(tape: &Tape) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(&(tape.len() as u64).to_le_bytes());
    for &op in &tape.ops {
        eat(op.name().as_bytes());
    }
    for col in [&tape.dst, &tape.a, &tape.b, &tape.c] {
        eat(&[0xfe]);
        for &x in col {
            eat(&x.to_le_bytes());
        }
    }
    for col in [&tape.aux, &tape.out_mask] {
        eat(&[0xfd]);
        for &x in col {
            eat(&x.to_le_bytes());
        }
    }
    h
}

/// Renders the canonical listing: a fingerprint header comment followed
/// by one line per instruction.
pub(crate) fn render(tape: &Tape) -> String {
    use fmt::Write as _;
    let mut out = String::with_capacity(64 * (tape.len() + 2));
    let _ = writeln!(
        out,
        "; tape {} instrs, fingerprint {:016x}",
        tape.len(),
        fingerprint(tape)
    );
    for i in 0..tape.len() {
        render_line(&mut out, tape, i);
    }
    out
}

/// One instruction line. The grammar is
/// `%dst = <op> %a [%b [%c]] [key=value ...] mask=0x<hex>`:
/// positional `%slot` operands per the opcode's slot columns, named
/// immediates for the opcode's immediate columns, raw `b=`/`c=`/`aux=`
/// pairs for any unexpected nonzero leftovers, and the output mask last.
fn render_line(out: &mut String, tape: &Tape, i: usize) {
    use fmt::Write as _;
    let op = tape.ops[i];
    let (b, c, aux) = (tape.b[i], tape.c[i], tape.aux[i]);
    let _ = write!(out, "%{} = {} %{}", tape.dst[i], op.name(), tape.a[i]);
    if op.b_is_slot() {
        let _ = write!(out, " %{b}");
    }
    if op.c_is_slot() {
        let _ = write!(out, " %{c}");
    }
    // Named immediates the opcode defines.
    let mut b_done = op.b_is_slot();
    let mut c_done = op.c_is_slot();
    let mut aux_done = false;
    match op {
        Op::Slice => {
            let _ = write!(out, " shr={b}");
            b_done = true;
        }
        Op::Cat => {
            let _ = write!(out, " low={c}");
            c_done = true;
        }
        Op::MemRead => {
            let _ = write!(out, " mem={b}");
            b_done = true;
        }
        Op::ReduceAnd => {
            let _ = write!(out, " full={aux:#x}");
            aux_done = true;
        }
        Op::Declassify | Op::Endorse => {
            let _ = write!(out, " node={c} to={aux:#04x}");
            c_done = true;
            aux_done = true;
        }
        _ => {}
    }
    // Raw leftovers: columns this opcode does not define, preserved
    // verbatim so the round trip is exact for any tape.
    if !b_done && b != 0 {
        let _ = write!(out, " b={b}");
    }
    if !c_done && c != 0 {
        let _ = write!(out, " c={c}");
    }
    if !aux_done && aux != 0 {
        let _ = write!(out, " aux={aux:#x}");
    }
    let _ = writeln!(out, " mask={:#x}", tape.out_mask[i]);
}

/// A tape reconstructed from a listing by [`parse`].
#[derive(Debug, Clone)]
pub struct ParsedTape {
    tape: Tape,
}

impl ParsedTape {
    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tape.len()
    }

    /// Whether the listing contained no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tape.len() == 0
    }

    /// FNV-1a hash over every column; equals
    /// [`CompiledSim::tape_fingerprint`](crate::CompiledSim::tape_fingerprint)
    /// when the parsed tape is identical to the simulator's.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        fingerprint(&self.tape)
    }

    /// Re-renders the canonical listing (idempotent with [`parse`]).
    #[must_use]
    pub fn to_listing(&self) -> String {
        render(&self.tape)
    }
}

/// Error raised by [`parse`], carrying the 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    line: usize,
    msg: String,
}

impl ParseError {
    fn new(line: usize, msg: impl Into<String>) -> ParseError {
        ParseError {
            line,
            msg: msg.into(),
        }
    }

    /// The 1-based listing line the error was raised on.
    #[must_use]
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "listing line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

fn parse_slot(line: usize, tok: &str) -> Result<u32, ParseError> {
    tok.strip_prefix('%')
        .and_then(|n| n.parse::<u32>().ok())
        .ok_or_else(|| ParseError::new(line, format!("expected %slot, got {tok:?}")))
}

fn parse_u32(line: usize, key: &str, val: &str) -> Result<u32, ParseError> {
    val.parse::<u32>()
        .map_err(|_| ParseError::new(line, format!("bad {key}= value {val:?}")))
}

fn parse_value(line: usize, key: &str, val: &str) -> Result<Value, ParseError> {
    let digits = val.strip_prefix("0x").unwrap_or(val);
    Value::from_str_radix(digits, 16)
        .map_err(|_| ParseError::new(line, format!("bad {key}= value {val:?}")))
}

/// Parses a listing produced by the disassembler back into a tape.
///
/// Empty lines and `;` comments are skipped. Accepts exactly the
/// grammar [`render`] emits (see module docs); the reconstructed tape is
/// column-for-column identical to the one that was rendered.
///
/// # Errors
///
/// Returns [`ParseError`] (with the offending line number) on unknown
/// opcodes, malformed operands, arity mismatches, or a missing `mask=`.
pub fn parse(text: &str) -> Result<ParsedTape, ParseError> {
    let mut tape = Tape::default();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        let mut toks = line.split_whitespace();
        let dst = parse_slot(lineno, toks.next().unwrap_or(""))?;
        if toks.next() != Some("=") {
            return Err(ParseError::new(lineno, "expected `=` after destination"));
        }
        let name = toks.next().unwrap_or("");
        let op = op_from_name(name)
            .ok_or_else(|| ParseError::new(lineno, format!("unknown opcode {name:?}")))?;
        let rest: Vec<&str> = toks.collect();
        // Positional slot operands: a, then b/c when the opcode reads
        // them as slots.
        let want = 1 + usize::from(op.b_is_slot()) + usize::from(op.c_is_slot());
        let mut slots = [0u32; 3];
        let mut pos = 0;
        for tok in &rest {
            if !tok.starts_with('%') || pos == want {
                break;
            }
            slots[pos] = parse_slot(lineno, tok)?;
            pos += 1;
        }
        if pos != want {
            return Err(ParseError::new(
                lineno,
                format!("{name} expects {want} slot operand(s), found {pos}"),
            ));
        }
        let a = slots[0];
        let mut b = if op.b_is_slot() { slots[1] } else { 0 };
        let mut c = if op.c_is_slot() { slots[pos - 1] } else { 0 };
        let mut aux: Value = 0;
        let mut out_mask: Option<Value> = None;
        for tok in &rest[pos..] {
            let (key, val) = tok.split_once('=').ok_or_else(|| {
                ParseError::new(lineno, format!("expected key=value, got {tok:?}"))
            })?;
            match key {
                "shr" | "mem" | "b" => b = parse_u32(lineno, key, val)?,
                "low" | "node" | "c" => c = parse_u32(lineno, key, val)?,
                "full" | "to" | "aux" => aux = parse_value(lineno, key, val)?,
                "mask" => out_mask = Some(parse_value(lineno, key, val)?),
                _ => return Err(ParseError::new(lineno, format!("unknown key {key:?}"))),
            }
        }
        let out_mask = out_mask.ok_or_else(|| ParseError::new(lineno, "missing mask= field"))?;
        tape.push(op, dst, a, b, c, aux, out_mask);
    }
    Ok(ParsedTape { tape })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_every_opcode() {
        let mut tape = Tape::default();
        tape.push(Op::Not, 1, 2, 0, 0, 0, 0xff);
        tape.push(Op::ReduceAnd, 3, 4, 0, 0, 0xffff, 1);
        tape.push(Op::Xor, 5, 6, 7, 0, 0, 0xffff_ffff);
        tape.push(Op::Mux, 8, 9, 10, 11, 0, 0xf);
        tape.push(Op::Slice, 12, 13, 96, 0, 0, 0xffff_ffff);
        tape.push(Op::Cat, 14, 15, 16, 64, 0, Value::MAX);
        tape.push(Op::MemRead, 17, 18, 2, 0, 0, 0xff);
        tape.push(Op::Declassify, 19, 20, 21, 1234, 0x5f, 0xff);
        tape.push(Op::Endorse, 22, 23, 24, 77, 0x0f, 1);
        // A hypothetical future pass leaving data in an unused column
        // must still round-trip.
        tape.push(Op::Or, 25, 26, 27, 99, 0xabc, 0x7);
        let listing = render(&tape);
        let parsed = parse(&listing).expect("listing parses");
        assert_eq!(parsed.fingerprint(), fingerprint(&tape));
        assert_eq!(parsed.to_listing(), listing, "re-render is idempotent");
    }

    #[test]
    fn rejects_malformed_lines() {
        assert_eq!(parse("%1 = bogus %2 mask=0x1").unwrap_err().line(), 1);
        assert!(parse("%1 = xor %2 mask=0x1").is_err(), "arity mismatch");
        assert!(parse("%1 = not %2").is_err(), "missing mask");
        assert!(parse("nonsense").is_err());
    }
}
