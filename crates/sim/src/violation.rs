//! Runtime enforcement events.

use std::fmt;

use hdl::NodeId;
use ifc_lattice::Label;

/// A security event raised by the runtime tracking logic during
/// simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeViolation {
    /// A downgrade node's nonmalleable rule failed against the runtime
    /// principal tag — e.g. a regular user attempting to release a
    /// ciphertext computed with the `(⊤,⊤)` master key. The downgrade is
    /// refused: the data keeps its original label.
    DowngradeRejected {
        /// Cycle at which the rejection occurred.
        cycle: u64,
        /// The downgrade node.
        node: NodeId,
        /// The data's runtime label before downgrading.
        from: Label,
        /// The requested target label.
        to: Label,
        /// The principal's runtime label (decoded from its tag signal).
        principal: Label,
    },
    /// An output port carried data whose runtime label does not flow to
    /// the port's release label — the tracking logic's release gate.
    OutputLeak {
        /// Cycle at which the leak was caught.
        cycle: u64,
        /// The leaking port's name.
        port: String,
        /// The data's runtime label.
        label: Label,
        /// The port's release label.
        allowed: Label,
    },
}

impl RuntimeViolation {
    /// The cycle at which the event was raised.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        match self {
            RuntimeViolation::DowngradeRejected { cycle, .. }
            | RuntimeViolation::OutputLeak { cycle, .. } => *cycle,
        }
    }
}

impl fmt::Display for RuntimeViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeViolation::DowngradeRejected {
                cycle,
                node,
                from,
                to,
                principal,
            } => write!(
                f,
                "cycle {cycle}: downgrade at {node:?} rejected: {from} → {to} by principal {principal}"
            ),
            RuntimeViolation::OutputLeak {
                cycle,
                port,
                label,
                allowed,
            } => write!(
                f,
                "cycle {cycle}: output {port} would leak {label} data through a {allowed} port"
            ),
        }
    }
}
