//! The cycle-accurate simulator core.

use std::collections::HashMap;

use hdl::{mask, BinOp, LabelExpr, Netlist, Node, NodeId, UnOp, Value};
use ifc_lattice::{Label, SecurityTag};

use crate::backend::{self, RunEngine};
use crate::violation::RuntimeViolation;

/// Default bound on the recorded violation stream (see
/// [`Simulator::set_violation_cap`]).
pub(crate) const DEFAULT_VIOLATION_CAP: usize = 10_000;

/// The release label an output port is checked against, pre-resolved at
/// construction so the per-tick check allocates nothing.
#[derive(Debug, Clone)]
pub(crate) enum AllowedLabel {
    /// The port's label is static (or absent: the open interconnect's
    /// `(P,U)`).
    Const(Label),
    /// The port's label depends on runtime signal values.
    Dynamic(LabelExpr),
}

/// One entry of the precomputed output-port check table.
#[derive(Debug, Clone)]
pub(crate) struct OutputCheck {
    pub(crate) port: String,
    pub(crate) node: NodeId,
    pub(crate) allowed: AllowedLabel,
}

/// Builds the per-port check table from a netlist's output declarations.
pub(crate) fn build_output_checks(net: &Netlist) -> Vec<OutputCheck> {
    net.outputs
        .iter()
        .map(|p| OutputCheck {
            port: p.name.clone(),
            node: p.node,
            allowed: match &p.label {
                None => AllowedLabel::Const(Label::PUBLIC_UNTRUSTED),
                Some(LabelExpr::Const(l)) => AllowedLabel::Const(*l),
                Some(expr) => AllowedLabel::Dynamic(expr.clone()),
            },
        })
        .collect()
}

/// How runtime labels propagate through combinational logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrackMode {
    /// No tracking: values only (fastest; what the unprotected baseline's
    /// hardware actually does).
    Off,
    /// Conservative RTL-level rule: every operator's output label is the
    /// join of all operand labels (RTLIFT-style).
    #[default]
    Conservative,
    /// Mux-aware rule: a multiplexer's output joins the select label with
    /// only the *selected* arm (GLIFT-flavoured precision). Strictly less
    /// tainting than [`TrackMode::Conservative`].
    Precise,
}

/// Cycle-accurate simulator with shadow security labels.
///
/// See the crate docs for the drive/eval/tick protocol.
#[derive(Debug, Clone)]
pub struct Simulator {
    net: Netlist,
    widths: Vec<u16>,
    /// Combinational values (valid when `clean`).
    values: Vec<Value>,
    /// Runtime labels, parallel to `values`.
    labels: Vec<Label>,
    /// Register state (indexed like nodes; only register slots used).
    reg_state: Vec<Value>,
    reg_labels: Vec<Label>,
    /// Memory contents and per-cell labels.
    mem_state: Vec<Vec<Value>>,
    mem_labels: Vec<Vec<Label>>,
    /// Input stimulus.
    input_values: HashMap<NodeId, Value>,
    input_labels: HashMap<NodeId, Label>,
    mode: TrackMode,
    clean: bool,
    cycle: u64,
    violations: Vec<RuntimeViolation>,
    /// Precomputed release-gate table (one entry per output port).
    output_checks: Vec<OutputCheck>,
    violation_cap: usize,
    violations_truncated: bool,
}

/// [`RunEngine`] adapter for the interpreter. The interpreter has no
/// settled fast path — a recording propagation over the node graph *is*
/// its violation scan — so `is_clean` always reports dirty and the shared
/// loop degenerates to propagate-then-edge each cycle. The per-push cap
/// check makes `refresh_room` a no-op.
struct InterpEngine<'a>(&'a mut Simulator);

impl RunEngine for InterpEngine<'_> {
    fn is_clean(&self) -> bool {
        false
    }

    fn set_dirty(&mut self) {
        self.0.clean = false;
    }

    fn refresh_room(&mut self) {}

    fn settled_scan(&mut self) {
        unreachable!("the interpreter has no settled fast path");
    }

    fn exec_record(&mut self) {
        self.0.propagate(true);
    }

    fn edge(&mut self) {
        self.0.clock_edge();
    }
}

impl Simulator {
    /// Creates a simulator with the default conservative tracking.
    #[must_use]
    pub fn new(net: Netlist) -> Simulator {
        Simulator::with_tracking(net, TrackMode::default())
    }

    /// Creates a simulator with an explicit tracking mode.
    #[must_use]
    pub fn with_tracking(net: Netlist, mode: TrackMode) -> Simulator {
        let n = net.nodes.len();
        let widths = compute_widths(&net);
        let mut reg_state = vec![0; n];
        for (i, node) in net.nodes.iter().enumerate() {
            if let Node::Reg { init, .. } = node {
                reg_state[i] = *init;
            }
        }
        let mem_state = net
            .mems
            .iter()
            .map(|m| {
                let mut cells = m.init.clone();
                cells.resize(m.depth, 0);
                cells
            })
            .collect();
        let mem_labels = net
            .mems
            .iter()
            .map(|m| vec![Label::PUBLIC_TRUSTED; m.depth])
            .collect();
        let output_checks = build_output_checks(&net);
        Simulator {
            widths,
            values: vec![0; n],
            labels: vec![Label::PUBLIC_TRUSTED; n],
            reg_state,
            reg_labels: vec![Label::PUBLIC_TRUSTED; n],
            mem_state,
            mem_labels,
            input_values: HashMap::new(),
            input_labels: HashMap::new(),
            mode,
            clean: false,
            cycle: 0,
            violations: Vec::new(),
            output_checks,
            violation_cap: DEFAULT_VIOLATION_CAP,
            violations_truncated: false,
            net,
        }
    }

    /// The wrapped netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.net
    }

    /// The tracking mode this simulator runs.
    #[must_use]
    pub fn mode(&self) -> TrackMode {
        self.mode
    }

    /// The current cycle count (number of completed [`tick`](Self::tick)s).
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// All violations the tracking logic has raised so far.
    #[must_use]
    pub fn violations(&self) -> &[RuntimeViolation] {
        &self.violations
    }

    /// Whether violations were dropped because the recorded stream hit
    /// the cap (see [`set_violation_cap`](Self::set_violation_cap)).
    #[must_use]
    pub fn violations_truncated(&self) -> bool {
        self.violations_truncated
    }

    /// Bounds the recorded violation stream. A long-running leaky design
    /// raises violations every cycle; without a cap the vector grows
    /// without bound. Once `cap` violations are stored, further ones are
    /// counted only by the [`violations_truncated`](Self::violations_truncated) flag.
    /// Defaults to 10 000.
    pub fn set_violation_cap(&mut self, cap: usize) {
        self.violation_cap = cap;
    }

    #[inline]
    fn record_violation(&mut self, violation: RuntimeViolation) {
        if self.violations.len() < self.violation_cap {
            self.violations.push(violation);
        } else {
            self.violations_truncated = true;
        }
    }

    fn resolve_input(&self, name: &str) -> NodeId {
        self.net
            .input(name)
            .unwrap_or_else(|| panic!("no input port named {name:?}"))
    }

    /// Drives an input port.
    ///
    /// # Panics
    ///
    /// Panics if no input port has that name.
    pub fn set(&mut self, name: &str, value: Value) {
        let id = self.resolve_input(name);
        self.set_node(id, value);
    }

    /// Drives an input port by node id.
    pub fn set_node(&mut self, id: NodeId, value: Value) {
        let width = self.widths[id.index()];
        self.input_values.insert(id, mask(value, width));
        self.clean = false;
    }

    /// Sets the runtime label accompanying an input's data (defaults to
    /// `(P,T)`).
    pub fn set_label(&mut self, name: &str, label: Label) {
        let id = self.resolve_input(name);
        self.input_labels.insert(id, label);
        self.clean = false;
    }

    /// Reads a signal's settled value by port or node name.
    ///
    /// # Panics
    ///
    /// Panics if no port or named node matches.
    pub fn peek(&mut self, name: &str) -> Value {
        let id = self.lookup(name);
        self.eval();
        self.values[id.index()]
    }

    /// Reads a signal's settled runtime label.
    pub fn peek_label(&mut self, name: &str) -> Label {
        let id = self.lookup(name);
        self.eval();
        self.labels[id.index()]
    }

    /// Reads a settled value by node id.
    pub fn peek_node(&mut self, id: NodeId) -> Value {
        self.eval();
        self.values[id.index()]
    }

    /// Reads a settled runtime label by node id.
    pub fn peek_node_label(&mut self, id: NodeId) -> Label {
        self.eval();
        self.labels[id.index()]
    }

    /// Reads a memory cell directly (for test assertions).
    #[must_use]
    pub fn mem_cell(&self, mem: usize, addr: usize) -> Value {
        self.mem_state[mem][addr]
    }

    /// Reads a memory cell's runtime label directly.
    #[must_use]
    pub fn mem_cell_label(&self, mem: usize, addr: usize) -> Label {
        self.mem_labels[mem][addr]
    }

    /// Finds a memory's index by its declared name.
    #[must_use]
    pub fn mem_index(&self, name: &str) -> Option<usize> {
        self.net.mems.iter().position(|m| m.name == name)
    }

    /// Sets a memory cell's runtime label directly — used to model
    /// secrets provisioned into initialised storage before the system
    /// starts (e.g. a factory-burned master key), which `Netlist` init
    /// values cannot express.
    ///
    /// # Panics
    ///
    /// Panics if `mem` or `addr` is out of range.
    pub fn set_mem_cell_label(&mut self, mem: usize, addr: usize, label: Label) {
        self.mem_labels[mem][addr] = label;
        self.clean = false;
    }

    fn lookup(&self, name: &str) -> NodeId {
        self.net
            .output(name)
            .or_else(|| self.net.input(name))
            .or_else(|| {
                self.net
                    .node_ids()
                    .find(|&id| self.net.name_of(id) == Some(name))
            })
            .unwrap_or_else(|| panic!("no port or node named {name:?}"))
    }

    /// Settles combinational logic for the current inputs. Idempotent.
    pub fn eval(&mut self) {
        if self.clean {
            return;
        }
        self.propagate(false);
        self.clean = true;
    }

    /// Advances one clock cycle: settles combinational logic (recording
    /// any violations), updates registers and memories, then increments
    /// the cycle counter.
    pub fn tick(&mut self) {
        backend::tick_engine(&mut InterpEngine(self));
    }

    /// Runs `n` clock cycles with the current inputs.
    pub fn run(&mut self, n: u64) {
        backend::run_engine(&mut InterpEngine(self), n);
    }

    /// The clock edge: registers, then memory write ports in statement
    /// order, then the cycle counter.
    fn clock_edge(&mut self) {
        // Clock edge: registers.
        for idx in 0..self.net.nodes.len() {
            if let Some(next) = self.net.reg_next[idx] {
                self.reg_state[idx] = self.values[next.index()];
                if self.mode != TrackMode::Off {
                    self.reg_labels[idx] = self.labels[next.index()];
                }
            }
        }
        // Clock edge: memory write ports, in statement order.
        for wp in &self.net.write_ports {
            if self.values[wp.en.index()] & 1 == 1 {
                let mem = wp.mem.index();
                let depth = self.mem_state[mem].len();
                let addr = (self.values[wp.addr.index()] as usize) % depth;
                self.mem_state[mem][addr] = self.values[wp.data.index()];
                if self.mode != TrackMode::Off {
                    let label = self.labels[wp.data.index()]
                        .join(self.labels[wp.addr.index()])
                        .join(self.labels[wp.en.index()]);
                    self.mem_labels[mem][addr] = label;
                }
            }
        }
        self.cycle += 1;
    }

    /// One combinational settle pass over the topological order.
    fn propagate(&mut self, record: bool) {
        let track = self.mode != TrackMode::Off;
        for i in 0..self.net.topo.len() {
            let id = self.net.topo[i];
            let idx = id.index();
            let (value, label) = self.eval_node(id, record);
            self.values[idx] = mask(value, self.widths[idx].max(1));
            if track {
                self.labels[idx] = label;
            }
        }
        if record && track {
            self.check_outputs();
        }
    }

    #[allow(clippy::too_many_lines)]
    fn eval_node(&mut self, id: NodeId, record: bool) -> (Value, Label) {
        let idx = id.index();
        let v = |s: &Simulator, n: NodeId| s.values[n.index()];
        let l = |s: &Simulator, n: NodeId| s.labels[n.index()];
        match *self.net.node(id) {
            Node::Input { .. } => (
                self.input_values.get(&id).copied().unwrap_or(0),
                self.input_labels
                    .get(&id)
                    .copied()
                    .unwrap_or(Label::PUBLIC_TRUSTED),
            ),
            Node::Const { value, .. } => (value, Label::PUBLIC_TRUSTED),
            Node::Wire { .. } => {
                let driver = self.net.wire_driver[idx].expect("lowered wire has driver");
                (v(self, driver), l(self, driver))
            }
            Node::Reg { .. } => (self.reg_state[idx], self.reg_labels[idx]),
            Node::MemRead { mem, addr } => {
                let mi = mem.index();
                let depth = self.mem_state[mi].len();
                let a = (v(self, addr) as usize) % depth;
                (
                    self.mem_state[mi][a],
                    self.mem_labels[mi][a].join(l(self, addr)),
                )
            }
            Node::Unary { op, a } => {
                let av = v(self, a);
                let value = match op {
                    UnOp::Not => !av,
                    UnOp::ReduceOr => Value::from(av != 0),
                    UnOp::ReduceAnd => {
                        let aw = self.widths[a.index()];
                        Value::from(av == mask(Value::MAX, aw))
                    }
                    UnOp::ReduceXor => Value::from(av.count_ones() % 2 == 1),
                };
                (value, l(self, a))
            }
            Node::Binary { op, a, b } => {
                let (av, bv) = (v(self, a), v(self, b));
                let value = match op {
                    BinOp::And => av & bv,
                    BinOp::Or => av | bv,
                    BinOp::Xor => av ^ bv,
                    BinOp::Add => av.wrapping_add(bv),
                    BinOp::Sub => av.wrapping_sub(bv),
                    BinOp::Eq => Value::from(av == bv),
                    BinOp::Ne => Value::from(av != bv),
                    BinOp::Lt => Value::from(av < bv),
                    BinOp::Ge => Value::from(av >= bv),
                    BinOp::TagLeq => {
                        let la = Label::from(SecurityTag::from_bits(av as u8));
                        let lb = Label::from(SecurityTag::from_bits(bv as u8));
                        Value::from(la.flows_to(lb))
                    }
                    BinOp::TagJoin => {
                        let la = Label::from(SecurityTag::from_bits(av as u8));
                        let lb = Label::from(SecurityTag::from_bits(bv as u8));
                        Value::from(SecurityTag::from(la.join(lb)).bits())
                    }
                    BinOp::TagMeet => {
                        let la = Label::from(SecurityTag::from_bits(av as u8));
                        let lb = Label::from(SecurityTag::from_bits(bv as u8));
                        Value::from(SecurityTag::from(la.meet(lb)).bits())
                    }
                };
                (value, l(self, a).join(l(self, b)))
            }
            Node::Mux { sel, t, f } => {
                let sv = v(self, sel) & 1;
                let value = if sv == 1 { v(self, t) } else { v(self, f) };
                let label = match self.mode {
                    TrackMode::Precise => {
                        let arm = if sv == 1 { l(self, t) } else { l(self, f) };
                        l(self, sel).join(arm)
                    }
                    _ => l(self, sel).join(l(self, t)).join(l(self, f)),
                };
                (value, label)
            }
            Node::Slice { a, hi, lo } => ((v(self, a) >> lo) & mask(Value::MAX, hi - lo + 1), {
                l(self, a)
            }),
            Node::Cat { hi, lo } => {
                let lo_w = self.widths[lo.index()];
                (
                    (v(self, hi) << lo_w) | v(self, lo),
                    l(self, hi).join(l(self, lo)),
                )
            }
            Node::Declassify {
                data,
                to_tag,
                principal,
            } => {
                let from = l(self, data);
                let to = Label::from(SecurityTag::from_bits(to_tag));
                let p = Label::from(SecurityTag::from_bits(v(self, principal) as u8));
                let label = match ifc_lattice::declassify(from, to, p) {
                    Ok(lbl) => lbl,
                    Err(_) => {
                        if record && self.mode != TrackMode::Off {
                            self.record_violation(RuntimeViolation::DowngradeRejected {
                                cycle: self.cycle,
                                node: id,
                                from,
                                to,
                                principal: p,
                            });
                        }
                        // The tracking logic refuses the downgrade: the
                        // data keeps its restrictive label.
                        from
                    }
                };
                (v(self, data), label)
            }
            Node::Endorse {
                data,
                to_tag,
                principal,
            } => {
                let from = l(self, data);
                let to = Label::from(SecurityTag::from_bits(to_tag));
                let p = Label::from(SecurityTag::from_bits(v(self, principal) as u8));
                let label = match ifc_lattice::endorse(from, to, p) {
                    Ok(lbl) => lbl,
                    Err(_) => {
                        if record && self.mode != TrackMode::Off {
                            self.record_violation(RuntimeViolation::DowngradeRejected {
                                cycle: self.cycle,
                                node: id,
                                from,
                                to,
                                principal: p,
                            });
                        }
                        from
                    }
                };
                (v(self, data), label)
            }
        }
    }

    /// The runtime release gate: every output's label must flow to its
    /// port label (unlabelled ports are the open interconnect, `(P,U)`).
    ///
    /// Works off the table precomputed at construction; the table is
    /// briefly moved out of `self` so the borrow checker allows pushing
    /// violations while iterating — no per-tick cloning or allocation.
    fn check_outputs(&mut self) {
        let checks = std::mem::take(&mut self.output_checks);
        for check in &checks {
            let allowed = match &check.allowed {
                AllowedLabel::Const(l) => *l,
                AllowedLabel::Dynamic(expr) => {
                    let mut resolve = |sig: NodeId| self.values[sig.index()];
                    expr.eval(&mut resolve)
                }
            };
            let label = self.labels[check.node.index()];
            if !label.flows_to(allowed) {
                self.record_violation(RuntimeViolation::OutputLeak {
                    cycle: self.cycle,
                    port: check.port.clone(),
                    label,
                    allowed,
                });
            }
        }
        self.output_checks = checks;
    }
}

/// Computes per-node widths for a netlist. Delegates to
/// [`Netlist::node_widths`] so every backend (interpreter, codegen,
/// prover) shares one width function.
pub(crate) fn compute_widths(net: &Netlist) -> Vec<u16> {
    net.node_widths()
}
