//! Cycle-accurate simulation of lowered netlists, with runtime security-tag
//! tracking.
//!
//! [`Simulator`] executes a [`Netlist`](hdl::Netlist) one clock cycle at a
//! time: drive inputs with [`Simulator::set`], settle combinational logic
//! with [`Simulator::eval`] (implicit in [`peek`](Simulator::peek)), and
//! advance the clock with [`Simulator::tick`].
//!
//! Beyond values, the simulator shadows every signal, register, and memory
//! cell with a runtime [`Label`](ifc_lattice::Label) — the
//! information-flow *tracking logic* that the paper pairs with design-time
//! verification. Two propagation modes are provided (see [`TrackMode`]):
//! the conservative RTL rule used by RTLIFT-style tools, and a precise
//! mux-aware rule in the spirit of GLIFT. Downgrade nodes re-check the
//! nonmalleable rule each cycle against the *runtime* principal tag, and
//! output ports are checked against their release labels; failures are
//! recorded as [`RuntimeViolation`]s.
//!
//! # Example
//!
//! ```
//! use hdl::ModuleBuilder;
//! use sim::Simulator;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut m = ModuleBuilder::new("counter");
//! let en = m.input("en", 1);
//! let count = m.reg("count", 8, 0);
//! let one = m.lit(1, 8);
//! let next = m.add(count, one);
//! m.when(en, |m| m.connect(count, next));
//! m.output("count", count);
//!
//! let mut sim = Simulator::new(m.finish().lower()?);
//! sim.set("en", 1);
//! for _ in 0..5 {
//!     sim.tick();
//! }
//! assert_eq!(sim.peek("count"), 5);
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: the native-codegen backend's loader module
// needs a scoped `allow` for its dlopen boundary; everything else in the
// crate remains unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod batched;
mod compiled;
pub mod disasm;
mod native;
pub mod opt;
mod profile;
mod program;
mod simulator;
pub mod vcd;
mod violation;

pub use backend::{LaneBackend, SimBackend};
pub use batched::{BatchedSim, LaneSnapshot, SUPPORTED_LANES};
pub use compiled::CompiledSim;
pub use native::{
    cache_stats, native_toolchain_available, NativeCacheStats, NativeError, NativeSim,
};
pub use opt::{tuned as tuned_opt_config, OptConfig, OptStats, PassStats, DEFAULT_SCHEDULE_WINDOW};
#[cfg(feature = "profile")]
pub use profile::{OpProfile, ProfileReport};
pub use simulator::{Simulator, TrackMode};
pub use vcd::{parse_vcd, width_of, VcdDoc, VcdRecorder, VcdSignal, VcdTrace};
pub use violation::RuntimeViolation;
