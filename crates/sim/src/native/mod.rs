//! Native-codegen simulation backend: the tape compiled to machine code.
//!
//! [`NativeSim`] is the fourth [`SimBackend`]: instead of interpreting the
//! optimized SoA tape, it lowers the tape to straight-line Rust source
//! specialized for one `(netlist, optimizer config, tracking mode, lane
//! width)` combination ([`codegen`]), compiles it once with `rustc` into a
//! `cdylib` behind a netlist-keyed on-disk cache ([`cache`]), and executes
//! it through a single `extern "C"` entry point ([`loader`]).
//!
//! The wrapper reuses [`BatchedSim`]'s entire state layout — the generated
//! code runs over the same slot-major lane-striped arrays — so every host
//! concern (input driving, peeks, register/write-port clock edges, the
//! settled-state fast path, violation streams) is shared with the batched
//! interpreter verbatim; only the combinational propagation is swapped
//! out. Semantics are bit-for-bit identical per lane to the
//! [`Simulator`](crate::Simulator) oracle, which the native differential
//! suite asserts for values, labels, and violation streams at every
//! supported lane width and tracking mode.

mod cache;
mod codegen;
mod loader;

use std::fmt;

use hdl::{Netlist, NodeId, Value};
use ifc_lattice::{Label, SecurityTag};

pub use cache::{cache_stats, toolchain_available as native_toolchain_available, NativeCacheStats};

use crate::backend::{self, RunEngine};
use crate::batched::label_of;
use crate::program::push_violation;
use crate::violation::RuntimeViolation;
use crate::{BatchedSim, LaneBackend, OptConfig, OptStats, SimBackend, TrackMode};

use loader::{EvalFn, NativeCtx};

/// Why a native executor could not be produced.
#[derive(Debug)]
pub enum NativeError {
    /// `rustc` could not be found or probed on this host.
    RustcUnavailable(String),
    /// `rustc` rejected the generated source (a codegen bug; the source is
    /// kept in the cache temp directory for inspection).
    CompileFailed(String),
    /// The compiled dylib could not be mapped or its entry point resolved.
    LoadFailed(String),
    /// Filesystem trouble under the cache directory.
    Io(std::io::Error),
}

impl fmt::Display for NativeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NativeError::RustcUnavailable(e) => write!(f, "rustc unavailable: {e}"),
            NativeError::CompileFailed(e) => write!(f, "generated executor failed to compile: {e}"),
            NativeError::LoadFailed(e) => write!(f, "compiled executor failed to load: {e}"),
            NativeError::Io(e) => write!(f, "native cache I/O error: {e}"),
        }
    }
}

impl std::error::Error for NativeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NativeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// Native-codegen simulation backend: W independent sessions advanced in
/// lock-step by specialized machine code. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct NativeSim {
    /// Shared state layout and host-side machinery (clock edge, peeks,
    /// violation streams). The generated code mutates these arrays
    /// directly; the wrapper must never call `inner`'s own propagation
    /// (`inner.eval`/`inner.tick`/`inner.run`) on dirty state, or the
    /// interpreter would run instead of the executor.
    inner: BatchedSim,
    eval_fn: EvalFn,
    /// Violation event buffer shared with the executor; sized for the
    /// worst case of one event per downgrade/check site per lane, so no
    /// event is ever dropped before host-side cap handling.
    events: Vec<u64>,
    event_cap: usize,
    // Per-call pointer tables for the memory planes, kept allocated so
    // the tick loop stays allocation-free. Refilled before every call —
    // the addresses are only meaningful during the call they were
    // collected for.
    mem_lo_ptrs: Vec<*const u64>,
    mem_hi_ptrs: Vec<*const u64>,
    mem_conf_ptrs: Vec<*const u8>,
    mem_integ_ptrs: Vec<*const u8>,
}

// SAFETY: the raw pointers are transient scratch, refreshed from `inner`'s
// (owned, Send) allocations before every executor call and dereferenced
// only inside that call while `&mut self` is held; they carry no shared
// state across threads.
#[allow(unsafe_code)]
unsafe impl Send for NativeSim {}
// SAFETY: as above — `&NativeSim` exposes no operation that dereferences
// the scratch pointers.
#[allow(unsafe_code)]
unsafe impl Sync for NativeSim {}

/// [`RunEngine`] adapter: the shared settled-state run loop with the
/// generated executor as the propagation step and the batched host code as
/// the clock edge and settled violation scan.
struct NativeEngine<'a>(&'a mut NativeSim);

impl RunEngine for NativeEngine<'_> {
    fn is_clean(&self) -> bool {
        self.0.inner.clean
    }

    fn set_dirty(&mut self) {
        self.0.inner.clean = false;
    }

    fn refresh_room(&mut self) {
        self.0.inner.refresh_room();
    }

    fn settled_scan(&mut self) {
        self.0.inner.record_settled_violations();
    }

    fn exec_record(&mut self) {
        self.0.native_exec(true);
    }

    fn edge(&mut self) {
        self.0.inner.clock_edge_dispatch();
    }
}

impl NativeSim {
    /// Compiles a netlist to a native executor for `lanes` sessions with
    /// default conservative tracking and every optimizer pass enabled.
    ///
    /// # Panics
    ///
    /// Panics if the executor cannot be built (see [`NativeSim::try_new`]).
    #[must_use]
    pub fn new(net: Netlist, lanes: usize) -> NativeSim {
        NativeSim::with_tracking(net, TrackMode::default(), lanes)
    }

    /// Compiles a netlist for the given tracking mode with every optimizer
    /// pass enabled — unlike the interpreting backends the native backend
    /// defaults to the optimized tape, since that is the tape it
    /// specializes code for.
    ///
    /// # Panics
    ///
    /// Panics if the executor cannot be built.
    #[must_use]
    pub fn with_tracking(net: Netlist, mode: TrackMode, lanes: usize) -> NativeSim {
        NativeSim::with_tracking_opt(net, mode, lanes, &OptConfig::all())
    }

    /// Compiles a netlist with an explicit optimizer configuration.
    ///
    /// # Panics
    ///
    /// Panics if the executor cannot be built or `lanes` is unsupported.
    #[must_use]
    pub fn with_tracking_opt(
        net: Netlist,
        mode: TrackMode,
        lanes: usize,
        config: &OptConfig,
    ) -> NativeSim {
        match NativeSim::try_with_tracking_opt(net, mode, lanes, config) {
            Ok(sim) => sim,
            Err(e) => panic!("failed to build native executor: {e}"),
        }
    }

    /// Fallible counterpart of [`NativeSim::new`].
    ///
    /// # Errors
    ///
    /// Returns [`NativeError`] when `rustc` is unavailable, the generated
    /// source fails to compile, or the compiled dylib cannot be loaded.
    pub fn try_new(net: Netlist, lanes: usize) -> Result<NativeSim, NativeError> {
        NativeSim::try_with_tracking_opt(net, TrackMode::default(), lanes, &OptConfig::all())
    }

    /// Fallible counterpart of [`NativeSim::with_tracking_opt`].
    ///
    /// # Errors
    ///
    /// As [`NativeSim::try_new`].
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is not one of [`crate::SUPPORTED_LANES`].
    pub fn try_with_tracking_opt(
        net: Netlist,
        mode: TrackMode,
        lanes: usize,
        config: &OptConfig,
    ) -> Result<NativeSim, NativeError> {
        NativeSim::from_batched(BatchedSim::with_tracking_opt(net, mode, lanes, config))
    }

    /// Wraps freshly initialised batched state with a (cached) executor
    /// compiled for its program and lane width.
    fn from_batched(inner: BatchedSim) -> Result<NativeSim, NativeError> {
        let source = codegen::generate(&inner.program, inner.lanes);
        let eval_fn = cache::get_or_compile(&source)?;
        let event_cap =
            (inner.program.downgrades.len() + inner.program.output_checks.len()) * inner.lanes;
        let mems = inner.mem_lo.len();
        Ok(NativeSim {
            events: vec![0; event_cap * 3],
            event_cap,
            mem_lo_ptrs: Vec::with_capacity(mems),
            mem_hi_ptrs: Vec::with_capacity(mems),
            mem_conf_ptrs: Vec::with_capacity(mems),
            mem_integ_ptrs: Vec::with_capacity(mems),
            eval_fn,
            inner,
        })
    }

    /// A fresh batch over the same compiled program with a (possibly
    /// different) lane width; the executor for the new width is pulled
    /// from the cache or compiled on first use.
    ///
    /// # Panics
    ///
    /// Panics if the executor for the new width cannot be built or
    /// `lanes` is unsupported.
    #[must_use]
    pub fn with_lanes(&self, lanes: usize) -> NativeSim {
        match NativeSim::from_batched(self.inner.with_lanes(lanes)) {
            Ok(sim) => sim,
            Err(e) => panic!("failed to build native executor: {e}"),
        }
    }

    /// One recording or non-recording pass of the generated executor over
    /// the current state, with recorded events decoded back into per-lane
    /// violation streams.
    #[allow(unsafe_code)]
    fn native_exec(&mut self, record: bool) {
        self.mem_lo_ptrs.clear();
        self.mem_lo_ptrs
            .extend(self.inner.mem_lo.iter().map(|v| v.as_ptr()));
        self.mem_hi_ptrs.clear();
        self.mem_hi_ptrs
            .extend(self.inner.mem_hi.iter().map(|v| v.as_ptr()));
        self.mem_conf_ptrs.clear();
        self.mem_conf_ptrs
            .extend(self.inner.mem_lab_conf.iter().map(|v| v.as_ptr()));
        self.mem_integ_ptrs.clear();
        self.mem_integ_ptrs
            .extend(self.inner.mem_lab_integ.iter().map(|v| v.as_ptr()));
        let mut ctx = NativeCtx {
            values_lo: self.inner.values_lo.as_mut_ptr(),
            values_hi: self.inner.values_hi.as_mut_ptr(),
            lab_conf: self.inner.lab_conf.as_mut_ptr(),
            lab_integ: self.inner.lab_integ.as_mut_ptr(),
            mem_lo: self.mem_lo_ptrs.as_ptr(),
            mem_hi: self.mem_hi_ptrs.as_ptr(),
            mem_conf: self.mem_conf_ptrs.as_ptr(),
            mem_integ: self.mem_integ_ptrs.as_ptr(),
            events: self.events.as_mut_ptr(),
            event_cap: self.event_cap as u64,
            event_len: 0,
            cycle: self.inner.cycle,
        };
        // SAFETY: every pointer covers the allocation sizes the executor
        // was generated for — the wrapper was constructed from the same
        // program and lane width the source was generated from, and the
        // cache key (a hash of that source) guarantees the loaded entry
        // point matches. The event buffer holds the worst case of one
        // event per site per lane.
        unsafe { (self.eval_fn)(&mut ctx, u32::from(record)) };
        let count = ctx.event_len as usize;
        if record && count > 0 {
            self.decode_events(count);
        }
    }

    /// Replays the executor's event buffer into per-lane violation
    /// streams, in recording order, through the same capped push helper
    /// the interpreters use.
    fn decode_events(&mut self, count: usize) {
        let NativeSim { inner, events, .. } = self;
        for k in 0..count {
            let (w0, w1, cycle) = (events[3 * k], events[3 * k + 1], events[3 * k + 2]);
            let lane = (w0 & 0xffff) as usize;
            let site = ((w0 >> 16) & 0xffff_ffff) as usize;
            let violation = if (w0 >> 56) == codegen::EV_DOWNGRADE {
                let tape = &inner.program.tape;
                RuntimeViolation::DowngradeRejected {
                    cycle,
                    node: NodeId::from_raw(tape.c[site]),
                    from: label_of((w1 & 0xff) as u8, ((w1 >> 8) & 0xff) as u8),
                    to: Label::from(SecurityTag::from_bits(tape.aux[site] as u8)),
                    principal: Label::from(SecurityTag::from_bits(((w1 >> 16) & 0xff) as u8)),
                }
            } else {
                RuntimeViolation::OutputLeak {
                    cycle,
                    port: inner.program.output_checks[site].port.clone(),
                    label: label_of((w1 & 0xff) as u8, ((w1 >> 8) & 0xff) as u8),
                    allowed: label_of(((w1 >> 16) & 0xff) as u8, ((w1 >> 24) & 0xff) as u8),
                }
            };
            push_violation(
                &mut inner.violations[lane],
                &mut inner.room[lane],
                &mut inner.violations_truncated[lane],
                violation,
            );
        }
    }

    /// The wrapped netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        self.inner.netlist()
    }

    /// The tracking mode this backend was compiled for.
    #[must_use]
    pub fn mode(&self) -> TrackMode {
        self.inner.mode()
    }

    /// Number of lanes (independent sessions) in this batch.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.inner.lanes()
    }

    /// The shared cycle count (all lanes are always on the same cycle).
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.inner.cycle()
    }

    /// Number of instructions on the compiled tape (diagnostic).
    #[must_use]
    pub fn tape_len(&self) -> usize {
        self.inner.tape_len()
    }

    /// Human-readable listing of the tape this executor was generated
    /// from; round-trips exactly through [`crate::disasm::parse`].
    #[must_use]
    pub fn disassemble(&self) -> String {
        self.inner.disassemble()
    }

    /// FNV-1a fingerprint of the tape this executor was generated from.
    #[must_use]
    pub fn tape_fingerprint(&self) -> u64 {
        self.inner.tape_fingerprint()
    }

    /// Statistics of the optimizer passes that ran at construction.
    #[must_use]
    pub fn opt_stats(&self) -> &OptStats {
        self.inner.opt_stats()
    }

    /// One lane's recorded violation stream.
    #[must_use]
    pub fn violations(&self, lane: usize) -> &[RuntimeViolation] {
        self.inner.violations(lane)
    }

    /// Whether one lane's stream was truncated at the cap.
    #[must_use]
    pub fn violations_truncated(&self, lane: usize) -> bool {
        self.inner.violations_truncated(lane)
    }

    /// Bounds every lane's recorded violation stream.
    pub fn set_violation_cap(&mut self, cap: usize) {
        self.inner.set_violation_cap(cap);
    }

    /// Drives one lane's input port.
    ///
    /// # Panics
    ///
    /// Panics if no input port has that name, or `lane` is out of range.
    pub fn set(&mut self, lane: usize, name: &str, value: Value) {
        self.inner.set(lane, name, value);
    }

    /// Drives one lane's input by node id.
    ///
    /// # Panics
    ///
    /// Panics if the input is pinned by the optimizer config, or `lane`
    /// is out of range.
    pub fn set_node(&mut self, lane: usize, id: NodeId, value: Value) {
        self.inner.set_node(lane, id, value);
    }

    /// Sets one lane's runtime label on an input (no-op with tracking
    /// off, matching the other backends).
    pub fn set_label(&mut self, lane: usize, name: &str, label: Label) {
        self.inner.set_label(lane, name, label);
    }

    /// Sets one lane's runtime label on an input by node id.
    pub fn set_node_label(&mut self, lane: usize, id: NodeId, label: Label) {
        self.inner.set_node_label(lane, id, label);
    }

    /// Reads one lane's settled value by port or node name.
    pub fn peek(&mut self, lane: usize, name: &str) -> Value {
        self.eval();
        self.inner.peek(lane, name)
    }

    /// Reads one lane's settled runtime label by name.
    pub fn peek_label(&mut self, lane: usize, name: &str) -> Label {
        self.eval();
        self.inner.peek_label(lane, name)
    }

    /// Reads one lane's settled value by node id.
    pub fn peek_node(&mut self, lane: usize, id: NodeId) -> Value {
        self.eval();
        self.inner.peek_node(lane, id)
    }

    /// Reads one lane's settled runtime label by node id.
    pub fn peek_node_label(&mut self, lane: usize, id: NodeId) -> Label {
        self.eval();
        self.inner.peek_node_label(lane, id)
    }

    /// Finds a memory's index by its declared name.
    #[must_use]
    pub fn mem_index(&self, name: &str) -> Option<usize> {
        self.inner.mem_index(name)
    }

    /// Reads one lane's memory cell directly.
    #[must_use]
    pub fn mem_cell(&self, lane: usize, mem: usize, addr: usize) -> Value {
        self.inner.mem_cell(lane, mem, addr)
    }

    /// Reads one lane's memory cell label directly.
    #[must_use]
    pub fn mem_cell_label(&self, lane: usize, mem: usize, addr: usize) -> Label {
        self.inner.mem_cell_label(lane, mem, addr)
    }

    /// Sets one lane's memory cell label directly (provisioned secrets).
    pub fn set_mem_cell_label(&mut self, lane: usize, mem: usize, addr: usize, label: Label) {
        self.inner.set_mem_cell_label(lane, mem, addr, label);
    }

    /// Joins one lane's settled runtime label of every node into `acc`,
    /// indexed by [`NodeId::index`].
    pub fn fold_label_plane(&mut self, lane: usize, acc: &mut [Label]) {
        self.eval();
        self.inner.fold_label_plane(lane, acc);
    }

    /// Joins one lane's memory cell labels into `acc`, summarised per
    /// array.
    pub fn fold_mem_labels(&mut self, lane: usize, acc: &mut [Label]) {
        self.eval();
        self.inner.fold_mem_labels(lane, acc);
    }

    /// Settles combinational logic of every lane for the current inputs.
    /// Idempotent.
    pub fn eval(&mut self) {
        if self.inner.clean {
            return;
        }
        self.native_exec(false);
        self.inner.clean = true;
    }

    /// Advances every lane one clock cycle, with the same settled fast
    /// path as the interpreting backends (the shared `backend::tick_engine`
    /// loop).
    pub fn tick(&mut self) {
        backend::tick_engine(&mut NativeEngine(self));
    }

    /// Runs `n` clock cycles with the current inputs; the settled check
    /// runs on the first iteration only and the violation room is
    /// re-derived once per run.
    pub fn run(&mut self, n: u64) {
        backend::run_engine(&mut NativeEngine(self), n);
    }

    /// Checkpoints one lane's complete architectural state (see
    /// [`BatchedSim::lane_snapshot`]). The native executor settles the
    /// state first; snapshots interchange freely with the batched
    /// interpreter's, since both run the identical tape.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn lane_snapshot(&mut self, lane: usize) -> crate::LaneSnapshot {
        self.eval();
        self.inner.lane_snapshot(lane)
    }

    /// Restores a checkpointed lane into this batch (see
    /// [`BatchedSim::restore_lane`]).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range or the snapshot was taken from a
    /// different tape or tracking mode.
    pub fn restore_lane(&mut self, lane: usize, snap: &crate::LaneSnapshot) {
        self.inner.restore_lane(lane, snap);
    }
}

impl SimBackend for NativeSim {
    /// Lane 0 of a single-lane native batch; every optimizer pass is
    /// enabled (the native backend specializes code for the optimized
    /// tape).
    ///
    /// # Panics
    ///
    /// Panics if the executor cannot be built — use
    /// [`NativeSim::try_new`] where `rustc` may be absent.
    fn from_netlist(net: Netlist, mode: TrackMode) -> NativeSim {
        NativeSim::with_tracking(net, mode, 1)
    }

    fn netlist(&self) -> &Netlist {
        NativeSim::netlist(self)
    }

    fn mode(&self) -> TrackMode {
        NativeSim::mode(self)
    }

    fn set(&mut self, name: &str, value: Value) {
        NativeSim::set(self, 0, name, value);
    }

    fn set_label(&mut self, name: &str, label: Label) {
        NativeSim::set_label(self, 0, name, label);
    }

    fn peek(&mut self, name: &str) -> Value {
        NativeSim::peek(self, 0, name)
    }

    fn peek_label(&mut self, name: &str) -> Label {
        NativeSim::peek_label(self, 0, name)
    }

    fn eval(&mut self) {
        NativeSim::eval(self);
    }

    fn tick(&mut self) {
        NativeSim::tick(self);
    }

    fn run(&mut self, n: u64) {
        NativeSim::run(self, n);
    }

    fn cycle(&self) -> u64 {
        NativeSim::cycle(self)
    }

    fn violations(&self) -> &[RuntimeViolation] {
        NativeSim::violations(self, 0)
    }

    fn violations_truncated(&self) -> bool {
        NativeSim::violations_truncated(self, 0)
    }

    fn set_violation_cap(&mut self, cap: usize) {
        NativeSim::set_violation_cap(self, cap);
    }

    fn mem_index(&self, name: &str) -> Option<usize> {
        NativeSim::mem_index(self, name)
    }

    fn mem_cell(&self, mem: usize, addr: usize) -> Value {
        NativeSim::mem_cell(self, 0, mem, addr)
    }

    fn mem_cell_label(&self, mem: usize, addr: usize) -> Label {
        NativeSim::mem_cell_label(self, 0, mem, addr)
    }

    fn set_mem_cell_label(&mut self, mem: usize, addr: usize, label: Label) {
        NativeSim::set_mem_cell_label(self, 0, mem, addr, label);
    }

    fn peek_node_label(&mut self, id: NodeId) -> Label {
        NativeSim::peek_node_label(self, 0, id)
    }
}

impl LaneBackend for NativeSim {
    fn with_tracking_opt(net: Netlist, mode: TrackMode, lanes: usize, opt: &OptConfig) -> Self {
        NativeSim::with_tracking_opt(net, mode, lanes, opt)
    }

    fn with_lanes(&self, lanes: usize) -> Self {
        NativeSim::with_lanes(self, lanes)
    }

    /// The generated executor is i-fetch bound, so its fixed per-pass
    /// cost (pointer-table refill, FFI entry, instruction-cache churn)
    /// only amortizes across ≥ 4 lanes — the measured crossover in
    /// BENCH_sim.json's `native.rows`.
    fn min_efficient_width() -> usize {
        4
    }

    fn lanes(&self) -> usize {
        NativeSim::lanes(self)
    }

    fn netlist(&self) -> &Netlist {
        NativeSim::netlist(self)
    }

    fn mode(&self) -> TrackMode {
        NativeSim::mode(self)
    }

    fn cycle(&self) -> u64 {
        NativeSim::cycle(self)
    }

    fn set(&mut self, lane: usize, name: &str, value: Value) {
        NativeSim::set(self, lane, name, value);
    }

    fn set_label(&mut self, lane: usize, name: &str, label: Label) {
        NativeSim::set_label(self, lane, name, label);
    }

    fn set_node(&mut self, lane: usize, id: NodeId, value: Value) {
        NativeSim::set_node(self, lane, id, value);
    }

    fn set_node_label(&mut self, lane: usize, id: NodeId, label: Label) {
        NativeSim::set_node_label(self, lane, id, label);
    }

    fn peek(&mut self, lane: usize, name: &str) -> Value {
        NativeSim::peek(self, lane, name)
    }

    fn peek_label(&mut self, lane: usize, name: &str) -> Label {
        NativeSim::peek_label(self, lane, name)
    }

    fn peek_node(&mut self, lane: usize, id: NodeId) -> Value {
        NativeSim::peek_node(self, lane, id)
    }

    fn peek_node_label(&mut self, lane: usize, id: NodeId) -> Label {
        NativeSim::peek_node_label(self, lane, id)
    }

    fn eval(&mut self) {
        NativeSim::eval(self);
    }

    fn tick(&mut self) {
        NativeSim::tick(self);
    }

    fn run(&mut self, n: u64) {
        NativeSim::run(self, n);
    }

    fn violations(&self, lane: usize) -> &[RuntimeViolation] {
        NativeSim::violations(self, lane)
    }

    fn violations_truncated(&self, lane: usize) -> bool {
        NativeSim::violations_truncated(self, lane)
    }

    fn set_violation_cap(&mut self, cap: usize) {
        NativeSim::set_violation_cap(self, cap);
    }

    fn mem_index(&self, name: &str) -> Option<usize> {
        NativeSim::mem_index(self, name)
    }

    fn mem_cell(&self, lane: usize, mem: usize, addr: usize) -> Value {
        NativeSim::mem_cell(self, lane, mem, addr)
    }

    fn mem_cell_label(&self, lane: usize, mem: usize, addr: usize) -> Label {
        NativeSim::mem_cell_label(self, lane, mem, addr)
    }

    fn set_mem_cell_label(&mut self, lane: usize, mem: usize, addr: usize, label: Label) {
        NativeSim::set_mem_cell_label(self, lane, mem, addr, label);
    }

    fn fold_label_plane(&mut self, lane: usize, acc: &mut [Label]) {
        NativeSim::fold_label_plane(self, lane, acc);
    }

    fn fold_mem_labels(&mut self, lane: usize, acc: &mut [Label]) {
        NativeSim::fold_mem_labels(self, lane, acc);
    }

    fn lane_snapshot(&mut self, lane: usize) -> crate::LaneSnapshot {
        NativeSim::lane_snapshot(self, lane)
    }

    fn restore_lane(&mut self, lane: usize, snap: &crate::LaneSnapshot) {
        NativeSim::restore_lane(self, lane, snap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdl::ModuleBuilder;

    /// Smoke test: an enabled counter with a downgrade gate and a labeled
    /// output runs identically on the native executor and the
    /// interpreter, including the recorded violation stream.
    #[test]
    fn smoke_counter_matches_interpreter() {
        let build = || {
            let mut m = ModuleBuilder::new("counter");
            let en = m.input("en", 1);
            let count = m.reg("count", 8, 0);
            let one = m.lit(1, 8);
            let next = m.add(count, one);
            m.when(en, |m| m.connect(count, next));
            let p = m.tag_lit(Label::PUBLIC_UNTRUSTED);
            let dec = m.declassify(count, Label::PUBLIC_UNTRUSTED, p);
            m.output("count", count);
            m.output_labeled("dec", dec, Label::PUBLIC_UNTRUSTED);
            m.finish().lower().expect("lower")
        };
        for mode in [TrackMode::Off, TrackMode::Conservative, TrackMode::Precise] {
            let mut native = NativeSim::with_tracking(build(), mode, 1);
            let mut interp = crate::Simulator::with_tracking(build(), mode);
            for step in 0..20u64 {
                let en = u128::from(step % 3 != 0);
                let label = if step % 2 == 0 {
                    Label::SECRET_TRUSTED
                } else {
                    Label::PUBLIC_TRUSTED
                };
                NativeSim::set(&mut native, 0, "en", en);
                NativeSim::set_label(&mut native, 0, "en", label);
                interp.set("en", en);
                interp.set_label("en", label);
                assert_eq!(
                    NativeSim::peek(&mut native, 0, "count"),
                    interp.peek("count"),
                    "value diverged at step {step} in {mode:?}"
                );
                assert_eq!(
                    NativeSim::peek_label(&mut native, 0, "count"),
                    interp.peek_label("count"),
                    "label diverged at step {step} in {mode:?}"
                );
                NativeSim::tick(&mut native);
                interp.tick();
            }
            assert_eq!(native.cycle(), interp.cycle());
            assert_eq!(NativeSim::violations(&native, 0), interp.violations());
        }
    }
}
