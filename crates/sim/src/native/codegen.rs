//! Lowering the optimized SoA tape to specialized Rust source.
//!
//! [`generate`] turns one `(Program, lane width)` pair into a standalone
//! `cdylib` crate: a single `nsim_eval` entry point executing the whole
//! tape as straight-line code. Everything the batched interpreter resolves
//! at runtime is resolved here at *generation* time and baked into the
//! source as constants:
//!
//! * wire slots — every operand index is a literal (`st.xor(1234, ..)`),
//!   so the optimizer sees exact aliasing and forwards stores to loads;
//! * result masks and the high-half skip (`hi64(out_mask) == 0` folds the
//!   high-half loop away entirely);
//! * `Slice`/`Cat` shift case splits, memory depths and power-of-two
//!   address masks;
//! * the tracking mode — label-plane updates are compiled in for the
//!   conservative and precise rules via the source-level `T`/`P` consts,
//!   and eliminated entirely with tracking off;
//! * downgrade targets and output-check release labels, including inlined
//!   evaluation of dependent [`LabelExpr`]s.
//!
//! The emitted program is *call-threaded*: a fixed prelude defines one
//! `#[inline(always)]` method per opcode on a state struct `S`, and the
//! tape body is one method call per instruction with every operand a
//! literal. After inlining, LLVM sees exactly the fully unrolled
//! straight-line code, but the Rust frontend only has to typecheck one
//! short call expression per instruction — this keeps `rustc` wall-time
//! roughly linear in tape length instead of blowing up on megabytes of
//! expanded loops. Lane loops inside the prelude are `for l in 0..W`, so
//! method bodies are lane-width independent and vectorize at a known trip
//! count.
//!
//! The generated code is safe Rust except for the thin `extern "C"`
//! boundary that reinterprets the [`Ctx`](super::loader::NativeCtx) raw
//! pointers as fixed-size arrays; all tape execution below that boundary
//! is bounds-checked array indexing with constant indices the compiler
//! folds away.
//!
//! Violations cannot be recorded as `RuntimeViolation`s from inside the
//! dylib (it knows nothing of the host's types), so the generated code
//! appends fixed-size *events* (3 × `u64`: site/lane word, label word,
//! cycle) to a host-provided buffer in exactly the order the batched
//! interpreter would record them — instruction-major then lane-minor for
//! downgrades, followed by the output checks. The host decodes the buffer
//! back into per-lane [`RuntimeViolation`](crate::RuntimeViolation)
//! streams through the same capped push helper the interpreter uses.

use std::fmt::Write as _;

use hdl::LabelExpr;
use ifc_lattice::Label;

use crate::program::{Op, Program};
use crate::simulator::AllowedLabel;
use crate::TrackMode;

/// Host/dylib contract revision, baked into the generated source (and
/// therefore into the cache key) so a layout change can never pair a stale
/// cached dylib with a newer host.
pub(crate) const ABI_VERSION: u32 = 1;

/// Instructions per generated function: keeps each function's LLVM IR
/// small enough to optimize quickly while still amortising call overhead
/// over hundreds of instructions.
const SEG_INSTRS: usize = 192;

/// Event kind tag for a rejected downgrade (word 0, bits 63..56).
pub(crate) const EV_DOWNGRADE: u64 = 0;
/// Event kind tag for an output-port leak (word 0, bits 63..56).
pub(crate) const EV_LEAK: u64 = 1;

fn lo64(v: hdl::Value) -> u64 {
    v as u64
}

fn hi64(v: hdl::Value) -> u64 {
    (v >> 64) as u64
}

/// The fixed opcode-helper prelude: every tape instruction becomes one
/// call into these `#[inline(always)]` methods, with operand slots, masks,
/// and shift amounts passed as literals that constant-fold after inlining.
/// Semantics are transcribed arm-for-arm from `BatchedSim::exec`.
const PRELUDE: &str = r"
struct S<'a> {
    vlo: &'a mut V,
    vhi: &'a mut V,
    lc: &'a mut L,
    li: &'a mut L,
    ev: &'a mut Ev,
    rec: bool,
}

impl S<'_> {
    /// Unary label rule: destination inherits `a`'s levels.
    #[inline(always)]
    fn cl(&mut self, d: usize, a: usize) {
        if T {
            for l in 0..W {
                self.lc[d + l] = self.lc[a + l];
                self.li[d + l] = self.li[a + l];
            }
        }
    }
    /// Binary label rule: join — byte `max` on confidentiality, byte `min`
    /// on integrity, two loops like the batched interpreter so each
    /// vectorizes independently.
    #[inline(always)]
    fn jl(&mut self, d: usize, a: usize, b: usize) {
        if T {
            for l in 0..W {
                self.lc[d + l] = self.lc[a + l].max(self.lc[b + l]);
            }
            for l in 0..W {
                self.li[d + l] = self.li[a + l].min(self.li[b + l]);
            }
        }
    }
    #[inline(always)]
    fn not(&mut self, d: usize, a: usize, ml: u64, mh: u64) {
        for l in 0..W {
            self.vlo[d + l] = (!self.vlo[a + l]) & ml;
        }
        if mh != 0 {
            for l in 0..W {
                self.vhi[d + l] = (!self.vhi[a + l]) & mh;
            }
        }
        self.cl(d, a);
    }
    #[inline(always)]
    fn ror(&mut self, d: usize, a: usize) {
        for l in 0..W {
            self.vlo[d + l] = u64::from((self.vlo[a + l] | self.vhi[a + l]) != 0);
        }
        self.cl(d, a);
    }
    #[inline(always)]
    fn rand(&mut self, d: usize, a: usize, fl: u64, fh: u64) {
        for l in 0..W {
            self.vlo[d + l] = u64::from(self.vlo[a + l] == fl && self.vhi[a + l] == fh);
        }
        self.cl(d, a);
    }
    #[inline(always)]
    fn rxor(&mut self, d: usize, a: usize) {
        for l in 0..W {
            self.vlo[d + l] =
                u64::from((self.vlo[a + l].count_ones() + self.vhi[a + l].count_ones()) % 2 == 1);
        }
        self.cl(d, a);
    }
    #[inline(always)]
    fn and(&mut self, d: usize, a: usize, b: usize, ml: u64, mh: u64) {
        for l in 0..W {
            self.vlo[d + l] = (self.vlo[a + l] & self.vlo[b + l]) & ml;
        }
        if mh != 0 {
            for l in 0..W {
                self.vhi[d + l] = (self.vhi[a + l] & self.vhi[b + l]) & mh;
            }
        }
        self.jl(d, a, b);
    }
    #[inline(always)]
    fn or(&mut self, d: usize, a: usize, b: usize, ml: u64, mh: u64) {
        for l in 0..W {
            self.vlo[d + l] = (self.vlo[a + l] | self.vlo[b + l]) & ml;
        }
        if mh != 0 {
            for l in 0..W {
                self.vhi[d + l] = (self.vhi[a + l] | self.vhi[b + l]) & mh;
            }
        }
        self.jl(d, a, b);
    }
    #[inline(always)]
    fn xor(&mut self, d: usize, a: usize, b: usize, ml: u64, mh: u64) {
        for l in 0..W {
            self.vlo[d + l] = (self.vlo[a + l] ^ self.vlo[b + l]) & ml;
        }
        if mh != 0 {
            for l in 0..W {
                self.vhi[d + l] = (self.vhi[a + l] ^ self.vhi[b + l]) & mh;
            }
        }
        self.jl(d, a, b);
    }
    #[inline(always)]
    fn add(&mut self, d: usize, a: usize, b: usize, ml: u64, mh: u64) {
        for l in 0..W {
            let (lo, c) = self.vlo[a + l].overflowing_add(self.vlo[b + l]);
            self.vlo[d + l] = lo & ml;
            self.vhi[d + l] =
                self.vhi[a + l].wrapping_add(self.vhi[b + l]).wrapping_add(u64::from(c)) & mh;
        }
        self.jl(d, a, b);
    }
    #[inline(always)]
    fn sub(&mut self, d: usize, a: usize, b: usize, ml: u64, mh: u64) {
        for l in 0..W {
            let (lo, c) = self.vlo[a + l].overflowing_sub(self.vlo[b + l]);
            self.vlo[d + l] = lo & ml;
            self.vhi[d + l] =
                self.vhi[a + l].wrapping_sub(self.vhi[b + l]).wrapping_sub(u64::from(c)) & mh;
        }
        self.jl(d, a, b);
    }
    #[inline(always)]
    fn eq(&mut self, d: usize, a: usize, b: usize) {
        for l in 0..W {
            self.vlo[d + l] = u64::from(
                self.vlo[a + l] == self.vlo[b + l] && self.vhi[a + l] == self.vhi[b + l],
            );
        }
        self.jl(d, a, b);
    }
    #[inline(always)]
    fn ne(&mut self, d: usize, a: usize, b: usize) {
        for l in 0..W {
            self.vlo[d + l] = u64::from(
                self.vlo[a + l] != self.vlo[b + l] || self.vhi[a + l] != self.vhi[b + l],
            );
        }
        self.jl(d, a, b);
    }
    #[inline(always)]
    fn lt(&mut self, d: usize, a: usize, b: usize) {
        for l in 0..W {
            self.vlo[d + l] = u64::from(
                self.vhi[a + l] < self.vhi[b + l]
                    || (self.vhi[a + l] == self.vhi[b + l] && self.vlo[a + l] < self.vlo[b + l]),
            );
        }
        self.jl(d, a, b);
    }
    #[inline(always)]
    fn ge(&mut self, d: usize, a: usize, b: usize) {
        for l in 0..W {
            self.vlo[d + l] = u64::from(
                self.vhi[a + l] > self.vhi[b + l]
                    || (self.vhi[a + l] == self.vhi[b + l] && self.vlo[a + l] >= self.vlo[b + l]),
            );
        }
        self.jl(d, a, b);
    }
    #[inline(always)]
    fn tags(&mut self, a: usize, b: usize, l: usize) -> (u8, u8, u8, u8) {
        let ta = self.vlo[a + l] as u8;
        let tb = self.vlo[b + l] as u8;
        ((ta >> 4) & 0xf, ta & 0xf, (tb >> 4) & 0xf, tb & 0xf)
    }
    #[inline(always)]
    fn tle(&mut self, d: usize, a: usize, b: usize, ml: u64) {
        for l in 0..W {
            let (ca, ia, cb, ib) = self.tags(a, b, l);
            self.vlo[d + l] = u64::from(ca <= cb && ia >= ib) & ml;
        }
        self.jl(d, a, b);
    }
    #[inline(always)]
    fn tjo(&mut self, d: usize, a: usize, b: usize, ml: u64) {
        for l in 0..W {
            let (ca, ia, cb, ib) = self.tags(a, b, l);
            self.vlo[d + l] = u64::from((ca.max(cb) << 4) | ia.min(ib)) & ml;
        }
        self.jl(d, a, b);
    }
    #[inline(always)]
    fn tme(&mut self, d: usize, a: usize, b: usize, ml: u64) {
        for l in 0..W {
            let (ca, ia, cb, ib) = self.tags(a, b, l);
            self.vlo[d + l] = u64::from((ca.min(cb) << 4) | ia.max(ib)) & ml;
        }
        self.jl(d, a, b);
    }
    #[inline(always)]
    fn mux(&mut self, d: usize, a: usize, b: usize, c: usize, ml: u64, mh: u64) {
        for l in 0..W {
            self.vlo[d + l] = (if self.vlo[a + l] & 1 == 1 {
                self.vlo[b + l]
            } else {
                self.vlo[c + l]
            }) & ml;
        }
        if mh != 0 {
            for l in 0..W {
                self.vhi[d + l] = (if self.vlo[a + l] & 1 == 1 {
                    self.vhi[b + l]
                } else {
                    self.vhi[c + l]
                }) & mh;
            }
        }
        if T {
            if P {
                // Precise rule: only the *selected* arm's label joins with
                // the selector's.
                for l in 0..W {
                    let (cs, is) = if self.vlo[a + l] & 1 == 1 {
                        (self.lc[b + l], self.li[b + l])
                    } else {
                        (self.lc[c + l], self.li[c + l])
                    };
                    self.lc[d + l] = self.lc[a + l].max(cs);
                    self.li[d + l] = self.li[a + l].min(is);
                }
            } else {
                for l in 0..W {
                    self.lc[d + l] = self.lc[a + l].max(self.lc[b + l].max(self.lc[c + l]));
                    self.li[d + l] = self.li[a + l].min(self.li[b + l].min(self.li[c + l]));
                }
            }
        }
    }
    /// Slice with shift 0: a masked copy.
    #[inline(always)]
    fn sl0(&mut self, d: usize, a: usize, ml: u64, mh: u64) {
        for l in 0..W {
            self.vlo[d + l] = self.vlo[a + l] & ml;
        }
        if mh != 0 {
            for l in 0..W {
                self.vhi[d + l] = self.vhi[a + l] & mh;
            }
        }
        self.cl(d, a);
    }
    /// Slice with shift in 1..64.
    #[inline(always)]
    fn sll(&mut self, d: usize, a: usize, sh: u32, ml: u64, mh: u64) {
        for l in 0..W {
            self.vlo[d + l] = ((self.vlo[a + l] >> sh) | (self.vhi[a + l] << (64 - sh))) & ml;
        }
        if mh != 0 {
            for l in 0..W {
                self.vhi[d + l] = (self.vhi[a + l] >> sh) & mh;
            }
        }
        self.cl(d, a);
    }
    /// Slice with shift >= 64 (`sh` is already reduced by 64).
    #[inline(always)]
    fn slh(&mut self, d: usize, a: usize, sh: u32, ml: u64) {
        for l in 0..W {
            self.vlo[d + l] = (self.vhi[a + l] >> sh) & ml;
        }
        self.cl(d, a);
    }
    /// Cat with shift 0.
    #[inline(always)]
    fn ct0(&mut self, d: usize, a: usize, b: usize, ml: u64, mh: u64) {
        for l in 0..W {
            self.vlo[d + l] = (self.vlo[a + l] | self.vlo[b + l]) & ml;
        }
        if mh != 0 {
            for l in 0..W {
                self.vhi[d + l] = (self.vhi[a + l] | self.vhi[b + l]) & mh;
            }
        }
        self.jl(d, a, b);
    }
    /// Cat with shift in 1..64.
    #[inline(always)]
    fn ctl(&mut self, d: usize, a: usize, b: usize, sh: u32, ml: u64, mh: u64) {
        for l in 0..W {
            self.vlo[d + l] = ((self.vlo[a + l] << sh) | self.vlo[b + l]) & ml;
        }
        if mh != 0 {
            for l in 0..W {
                self.vhi[d + l] = ((self.vhi[a + l] << sh)
                    | (self.vlo[a + l] >> (64 - sh))
                    | self.vhi[b + l])
                    & mh;
            }
        }
        self.jl(d, a, b);
    }
    /// Cat with shift >= 64 (`sh` is already reduced by 64).
    #[inline(always)]
    fn cth(&mut self, d: usize, a: usize, b: usize, sh: u32, ml: u64, mh: u64) {
        for l in 0..W {
            self.vlo[d + l] = self.vlo[b + l] & ml;
        }
        if mh != 0 {
            for l in 0..W {
                self.vhi[d + l] = ((self.vlo[a + l] << sh) | self.vhi[b + l]) & mh;
            }
        }
        self.jl(d, a, b);
    }
    /// Memory read; `amask == usize::MAX` selects the modulo wrap for
    /// non-power-of-two depths, any other value is the address mask.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn memr<const N: usize>(
        &mut self,
        mlo: &[u64; N],
        mhi: &[u64; N],
        mc: &[u8; N],
        mi: &[u8; N],
        d: usize,
        a: usize,
        ml: u64,
        mh: u64,
        amask: usize,
        depth: usize,
    ) {
        for l in 0..W {
            let addr = if amask != usize::MAX {
                (self.vlo[a + l] as usize) & amask
            } else {
                (self.vlo[a + l] as usize) % depth
            };
            self.vlo[d + l] = mlo[addr * W + l] & ml;
        }
        if mh != 0 {
            for l in 0..W {
                let addr = if amask != usize::MAX {
                    (self.vlo[a + l] as usize) & amask
                } else {
                    (self.vlo[a + l] as usize) % depth
                };
                self.vhi[d + l] = mhi[addr * W + l] & mh;
            }
        }
        if T {
            for l in 0..W {
                let addr = if amask != usize::MAX {
                    (self.vlo[a + l] as usize) & amask
                } else {
                    (self.vlo[a + l] as usize) % depth
                };
                self.lc[d + l] = mc[addr * W + l].max(self.lc[a + l]);
                self.li[d + l] = mi[addr * W + l].min(self.li[a + l]);
            }
        }
    }
    /// Declassify: nonmalleable gate `C(from) <= max(C(to), I(p))` and
    /// `I(from) >= I(to)`; a rejected downgrade keeps the source label and
    /// records an event.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn dg(&mut self, d: usize, a: usize, b: usize, ml: u64, mh: u64, tc: u8, ti: u8, w0: u64) {
        for l in 0..W {
            self.vlo[d + l] = self.vlo[a + l] & ml;
        }
        if mh != 0 {
            for l in 0..W {
                self.vhi[d + l] = self.vhi[a + l] & mh;
            }
        }
        if T {
            for l in 0..W {
                let fc = self.lc[a + l];
                let fi = self.li[a + l];
                let pb = self.vlo[b + l] as u8;
                if fc <= tc.max(pb & 0xf) && fi >= ti {
                    self.lc[d + l] = tc;
                    self.li[d + l] = ti;
                } else {
                    if self.rec {
                        self.ev.push(
                            w0 | l as u64,
                            u64::from(fc) | (u64::from(fi) << 8) | (u64::from(pb) << 16),
                        );
                    }
                    self.lc[d + l] = fc;
                    self.li[d + l] = fi;
                }
            }
        }
    }
    /// Endorse: nonmalleable gate `I(from) >= min(I(to), C(p))` and
    /// `C(from) <= C(to)`.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn en(&mut self, d: usize, a: usize, b: usize, ml: u64, mh: u64, tc: u8, ti: u8, w0: u64) {
        for l in 0..W {
            self.vlo[d + l] = self.vlo[a + l] & ml;
        }
        if mh != 0 {
            for l in 0..W {
                self.vhi[d + l] = self.vhi[a + l] & mh;
            }
        }
        if T {
            for l in 0..W {
                let fc = self.lc[a + l];
                let fi = self.li[a + l];
                let pb = self.vlo[b + l] as u8;
                if fi >= ti.min((pb >> 4) & 0xf) && fc <= tc {
                    self.lc[d + l] = tc;
                    self.li[d + l] = ti;
                } else {
                    if self.rec {
                        self.ev.push(
                            w0 | l as u64,
                            u64::from(fc) | (u64::from(fi) << 8) | (u64::from(pb) << 16),
                        );
                    }
                    self.lc[d + l] = fc;
                    self.li[d + l] = fi;
                }
            }
        }
    }
    /// Output check against a constant release label.
    #[inline(always)]
    fn chk(&mut self, so: usize, ac: u8, ai: u8, w0: u64) {
        for l in 0..W {
            let dc = self.lc[so + l];
            let di = self.li[so + l];
            if !(dc <= ac && di >= ai) {
                self.ev.push(
                    w0 | l as u64,
                    u64::from(dc)
                        | (u64::from(di) << 8)
                        | (u64::from(ac) << 16)
                        | (u64::from(ai) << 24),
                );
            }
        }
    }
}
";

/// Generates the complete source of the specialized executor crate for
/// one compiled program at one lane width.
pub(crate) fn generate(program: &Program, lanes: usize) -> String {
    let track = program.mode != TrackMode::Off;
    let precise = program.mode == TrackMode::Precise;
    let w = lanes;
    let tape = &program.tape;
    let n = tape.len();
    let mems = program.mem_init.len();

    let mut s = String::with_capacity(256 * 1024);
    let _ = writeln!(
        s,
        "//! Generated by sim::native::codegen — one specialized tape executor.\n\
         //! abi {abi}, mode {mode:?}, lanes {w}, instrs {n}, tape fingerprint {fp:016x}\n\
         #![allow(unused_variables, unused_mut, unused_parens, dead_code)]\n",
        abi = ABI_VERSION,
        mode = program.mode,
        fp = crate::disasm::fingerprint(tape),
    );
    let _ = writeln!(s, "const W: usize = {w};");
    let _ = writeln!(s, "const NV: usize = {};", program.num_slots * w);
    let _ = writeln!(s, "const T: bool = {track};");
    let _ = writeln!(s, "const P: bool = {precise};");
    s.push_str(
        "\n#[repr(C)]\npub struct Ctx {\n    values_lo: *mut u64,\n    values_hi: *mut u64,\n    \
         lab_conf: *mut u8,\n    lab_integ: *mut u8,\n    mem_lo: *const *const u64,\n    \
         mem_hi: *const *const u64,\n    mem_conf: *const *const u8,\n    \
         mem_integ: *const *const u8,\n    events: *mut u64,\n    event_cap: u64,\n    \
         event_len: u64,\n    cycle: u64,\n}\n\n\
         struct Ev {\n    buf: *mut u64,\n    cap: usize,\n    len: usize,\n    cycle: u64,\n}\n\n\
         impl Ev {\n    #[inline(always)]\n    fn push(&mut self, w0: u64, w1: u64) {\n        \
         if self.len < self.cap {\n            unsafe {\n                \
         let p = self.buf.add(self.len * 3);\n                p.write(w0);\n                \
         p.add(1).write(w1);\n                p.add(2).write(self.cycle);\n            }\n            \
         self.len += 1;\n        }\n    }\n}\n\n\
         type V = [u64; NV];\ntype L = [u8; NV];\n",
    );
    for m in 0..mems {
        let cells = program.mem_init[m].len() * w;
        let _ = writeln!(
            s,
            "type M{m}V = [u64; {cells}];\ntype M{m}L = [u8; {cells}];"
        );
    }
    if mems == 0 {
        s.push_str("struct Mems;\n");
    } else {
        s.push_str("struct Mems<'a> {\n");
        for m in 0..mems {
            let _ = writeln!(
                s,
                "    m{m}lo: &'a M{m}V,\n    m{m}hi: &'a M{m}V,\n    m{m}c: &'a M{m}L,\n    \
                 m{m}i: &'a M{m}L,"
            );
        }
        s.push_str("}\n");
    }
    s.push_str(PRELUDE);

    // Tape body, chunked into segment functions.
    let seg_count = n.div_ceil(SEG_INSTRS).max(1);
    for seg in 0..seg_count {
        let start = seg * SEG_INSTRS;
        let end = (start + SEG_INSTRS).min(n);
        let _ = writeln!(
            s,
            "\n#[inline(never)]\nfn seg_{seg}(st: &mut S, mems: &Mems) {{"
        );
        for i in start..end {
            emit_instr(&mut s, program, i, w);
        }
        s.push_str("}\n");
    }

    if track && !program.output_checks.is_empty() {
        s.push_str("\n#[inline(never)]\nfn checks(st: &mut S) {\n");
        for (k, check) in program.output_checks.iter().enumerate() {
            let so = check.slot as usize * w;
            let w0 = (EV_LEAK << 56) | ((k as u64) << 16);
            match &check.allowed {
                AllowedLabel::Const(lbl) => {
                    let _ = writeln!(
                        s,
                        "    st.chk({so}, {}, {}, {w0:#x});",
                        lbl.conf.raw(),
                        lbl.integ.raw()
                    );
                }
                AllowedLabel::Dynamic(expr) => {
                    let allowed = expr_code(expr, program, w);
                    let _ = writeln!(
                        s,
                        "    for l in 0..W {{\n        let dc = st.lc[{so} + l];\n        \
                         let di = st.li[{so} + l];\n        let (ac, ai) = {allowed};\n        \
                         if !(dc <= ac && di >= ai) {{\n            \
                         st.ev.push({w0:#x}u64 | l as u64, u64::from(dc) | (u64::from(di) << 8) | \
                         (u64::from(ac) << 16) | (u64::from(ai) << 24));\n        }}\n    }}"
                    );
                }
            }
        }
        s.push_str("}\n");
    }

    // Entry point: reinterpret the raw context as fixed-size arrays (the
    // only unsafe code outside Ev::push) and run every segment.
    s.push_str(
        "\n/// # Safety\n/// `ctx` and every pointer it carries must be valid for the sizes\n\
         /// this executor was generated for; the host wrapper guarantees this.\n\
         #[no_mangle]\npub unsafe extern \"C\" fn nsim_eval(ctx: *mut Ctx, record: u32) {\n    \
         let ctx = &mut *ctx;\n    let vlo = &mut *ctx.values_lo.cast::<V>();\n    \
         let vhi = &mut *ctx.values_hi.cast::<V>();\n    \
         let lc = &mut *ctx.lab_conf.cast::<L>();\n    \
         let li = &mut *ctx.lab_integ.cast::<L>();\n",
    );
    if mems == 0 {
        s.push_str("    let mems = Mems;\n");
    } else {
        s.push_str("    let mems = Mems {\n");
        for m in 0..mems {
            let _ = writeln!(
                s,
                "        m{m}lo: &*(*ctx.mem_lo.add({m})).cast::<M{m}V>(),\n        \
                 m{m}hi: &*(*ctx.mem_hi.add({m})).cast::<M{m}V>(),\n        \
                 m{m}c: &*(*ctx.mem_conf.add({m})).cast::<M{m}L>(),\n        \
                 m{m}i: &*(*ctx.mem_integ.add({m})).cast::<M{m}L>(),"
            );
        }
        s.push_str("    };\n");
    }
    s.push_str(
        "    let mut ev = Ev { buf: ctx.events, cap: ctx.event_cap as usize, \
         len: ctx.event_len as usize, cycle: ctx.cycle };\n    \
         let mut st = S { vlo, vhi, lc, li, ev: &mut ev, rec: record != 0 };\n",
    );
    for seg in 0..seg_count {
        let _ = writeln!(s, "    seg_{seg}(&mut st, &mems);");
    }
    if track && !program.output_checks.is_empty() {
        s.push_str("    if st.rec {\n        checks(&mut st);\n    }\n");
    }
    s.push_str("    ctx.event_len = ev.len as u64;\n}\n");
    s
}

/// Emits one instruction as a single prelude-method call with every
/// operand slot, mask, and shift constant-folded.
fn emit_instr(s: &mut String, program: &Program, i: usize, w: usize) {
    let tape = &program.tape;
    let op = tape.ops[i];
    let a = tape.a[i] as usize * w;
    let d = tape.dst[i] as usize * w;
    let m = tape.out_mask[i];
    let (ml, mh) = (lo64(m), hi64(m));
    let line = match op {
        Op::Not => format!("st.not({d}, {a}, {ml:#x}, {mh:#x});"),
        Op::ReduceOr => format!("st.ror({d}, {a});"),
        Op::ReduceAnd => {
            let (fl, fh) = (lo64(tape.aux[i]), hi64(tape.aux[i]));
            format!("st.rand({d}, {a}, {fl:#x}, {fh:#x});")
        }
        Op::ReduceXor => format!("st.rxor({d}, {a});"),
        Op::And | Op::Or | Op::Xor => {
            let b = tape.b[i] as usize * w;
            let name = match op {
                Op::And => "and",
                Op::Or => "or",
                _ => "xor",
            };
            format!("st.{name}({d}, {a}, {b}, {ml:#x}, {mh:#x});")
        }
        Op::Add | Op::Sub => {
            let b = tape.b[i] as usize * w;
            let name = if op == Op::Add { "add" } else { "sub" };
            format!("st.{name}({d}, {a}, {b}, {ml:#x}, {mh:#x});")
        }
        Op::Eq | Op::Ne | Op::Lt | Op::Ge => {
            let b = tape.b[i] as usize * w;
            let name = match op {
                Op::Eq => "eq",
                Op::Ne => "ne",
                Op::Lt => "lt",
                _ => "ge",
            };
            format!("st.{name}({d}, {a}, {b});")
        }
        Op::TagLeq | Op::TagJoin | Op::TagMeet => {
            let b = tape.b[i] as usize * w;
            let name = match op {
                Op::TagLeq => "tle",
                Op::TagJoin => "tjo",
                _ => "tme",
            };
            format!("st.{name}({d}, {a}, {b}, {ml:#x});")
        }
        Op::Mux => {
            let b = tape.b[i] as usize * w;
            let c = tape.c[i] as usize * w;
            format!("st.mux({d}, {a}, {b}, {c}, {ml:#x}, {mh:#x});")
        }
        Op::Slice => {
            let sh = tape.b[i];
            if sh == 0 {
                format!("st.sl0({d}, {a}, {ml:#x}, {mh:#x});")
            } else if sh < 64 {
                format!("st.sll({d}, {a}, {sh}, {ml:#x}, {mh:#x});")
            } else {
                format!("st.slh({d}, {a}, {}, {ml:#x});", sh - 64)
            }
        }
        Op::Cat => {
            let b = tape.b[i] as usize * w;
            let sh = tape.c[i];
            if sh == 0 {
                format!("st.ct0({d}, {a}, {b}, {ml:#x}, {mh:#x});")
            } else if sh < 64 {
                format!("st.ctl({d}, {a}, {b}, {sh}, {ml:#x}, {mh:#x});")
            } else {
                format!("st.cth({d}, {a}, {b}, {}, {ml:#x}, {mh:#x});", sh - 64)
            }
        }
        Op::MemRead => {
            let mem = tape.b[i] as usize;
            let depth = program.mem_init[mem].len();
            let amask = match program.mem_addr_mask[mem] {
                Some(amask) => format!("{amask:#x}"),
                None => "usize::MAX".to_owned(),
            };
            format!(
                "st.memr(mems.m{mem}lo, mems.m{mem}hi, mems.m{mem}c, mems.m{mem}i, \
                 {d}, {a}, {ml:#x}, {mh:#x}, {amask}, {depth});"
            )
        }
        Op::Declassify | Op::Endorse => {
            let b = tape.b[i] as usize * w;
            let to = Label::from(ifc_lattice::SecurityTag::from_bits(tape.aux[i] as u8));
            let (tc, ti) = (to.conf.raw(), to.integ.raw());
            let w0 = (EV_DOWNGRADE << 56) | ((i as u64) << 16);
            let name = if op == Op::Declassify { "dg" } else { "en" };
            format!("st.{name}({d}, {a}, {b}, {ml:#x}, {mh:#x}, {tc}, {ti}, {w0:#x});")
        }
    };
    let _ = writeln!(s, "    {line}");
}

/// Emits a per-lane expression of type `(u8, u8)` — the (confidentiality,
/// integrity) levels a dependent label denotes — mirroring
/// [`LabelExpr::eval`] with all table entries and fallbacks precomputed.
/// Reads go through the executor state struct (`st.vlo`).
fn expr_code(expr: &LabelExpr, program: &Program, w: usize) -> String {
    match expr {
        LabelExpr::Const(l) => format!("({}u8, {}u8)", l.conf.raw(), l.integ.raw()),
        LabelExpr::Table { sel, entries } => {
            let so = program.slot_of[sel.index()] as usize * w;
            // Out-of-table selectors denote the join of every declared
            // entry (seeded public/trusted), like `LabelExpr::eval`.
            let fallback = entries
                .iter()
                .copied()
                .fold(Label::PUBLIC_TRUSTED, Label::join);
            let mut arms = String::new();
            for (k, e) in entries.iter().enumerate() {
                let _ = write!(
                    arms,
                    "{k}usize => ({}u8, {}u8), ",
                    e.conf.raw(),
                    e.integ.raw()
                );
            }
            format!(
                "match st.vlo[{so} + l] as usize {{ {arms}_ => ({}u8, {}u8) }}",
                fallback.conf.raw(),
                fallback.integ.raw()
            )
        }
        LabelExpr::FromTag(sig) => {
            let so = program.slot_of[sig.index()] as usize * w;
            format!("{{ let t = st.vlo[{so} + l] as u8; ((t >> 4) & 0xf, t & 0xf) }}")
        }
        LabelExpr::Join(x, y) => format!(
            "{{ let (c0, i0) = {}; let (c1, i1) = {}; (c0.max(c1), i0.min(i1)) }}",
            expr_code(x, program, w),
            expr_code(y, program, w)
        ),
        LabelExpr::Meet(x, y) => format!(
            "{{ let (c0, i0) = {}; let (c1, i1) = {}; (c0.min(c1), i0.max(i1)) }}",
            expr_code(x, program, w),
            expr_code(y, program, w)
        ),
    }
}
