//! `dlopen`-based loading of compiled tape executors.
//!
//! The generated `cdylib` exports a single `nsim_eval` symbol; this module
//! resolves it through the platform loader (declared directly — the crate
//! carries no FFI dependency) and hands back a typed function pointer.
//! Handles are intentionally leaked: an executor stays mapped for the
//! process lifetime so the in-process registry can share one `fn` pointer
//! across every simulator instance keyed to the same source.
#![allow(unsafe_code)]

use std::ffi::{c_char, c_int, c_void, CStr, CString};
use std::path::Path;

/// The execution context handed across the C ABI to `nsim_eval`.
///
/// Field order and types must match the `Ctx` struct the code generator
/// emits (the generator bakes [`ABI_VERSION`](super::codegen::ABI_VERSION)
/// into the source, and the source hash keys the cache, so a mismatched
/// pairing cannot be loaded).
#[repr(C)]
pub(crate) struct NativeCtx {
    /// Low value halves, slot-major lane-striped (`num_slots * W`).
    pub values_lo: *mut u64,
    /// High value halves, parallel to `values_lo`.
    pub values_hi: *mut u64,
    /// Raw confidentiality levels, parallel to `values_lo`.
    pub lab_conf: *mut u8,
    /// Raw integrity levels, parallel to `values_lo`.
    pub lab_integ: *mut u8,
    /// Per-memory base pointers (low halves), indexed by memory id.
    pub mem_lo: *const *const u64,
    /// Per-memory base pointers (high halves).
    pub mem_hi: *const *const u64,
    /// Per-memory confidentiality plane base pointers.
    pub mem_conf: *const *const u8,
    /// Per-memory integrity plane base pointers.
    pub mem_integ: *const *const u8,
    /// Violation event buffer (3 `u64` words per event).
    pub events: *mut u64,
    /// Event capacity (in events, not words).
    pub event_cap: u64,
    /// Events recorded so far (in/out).
    pub event_len: u64,
    /// Current cycle, stamped into recorded events.
    pub cycle: u64,
}

/// Signature of the generated entry point.
pub(crate) type EvalFn = unsafe extern "C" fn(*mut NativeCtx, u32);

extern "C" {
    fn dlopen(filename: *const c_char, flags: c_int) -> *mut c_void;
    fn dlsym(handle: *mut c_void, symbol: *const c_char) -> *mut c_void;
    fn dlerror() -> *mut c_char;
}

const RTLD_NOW: c_int = 0x2;

fn last_dl_error() -> String {
    // SAFETY: dlerror returns either null or a NUL-terminated string
    // owned by the loader; we copy it out immediately.
    unsafe {
        let msg = dlerror();
        if msg.is_null() {
            "unknown dlopen error".to_owned()
        } else {
            CStr::from_ptr(msg).to_string_lossy().into_owned()
        }
    }
}

/// Maps a compiled executor and resolves its `nsim_eval` entry point. The
/// library stays mapped forever (see module docs).
pub(crate) fn load_eval(path: &Path) -> Result<EvalFn, String> {
    let cpath = CString::new(path.to_string_lossy().as_bytes())
        .map_err(|_| format!("cache path contains NUL: {}", path.display()))?;
    // SAFETY: cpath and the symbol name are valid NUL-terminated strings;
    // the handle is never closed, so the returned pointer stays valid for
    // the process lifetime. The transmute matches the exported signature
    // by construction of the generated source.
    unsafe {
        dlerror();
        let handle = dlopen(cpath.as_ptr(), RTLD_NOW);
        if handle.is_null() {
            return Err(format!("dlopen({}): {}", path.display(), last_dl_error()));
        }
        let sym = dlsym(handle, c"nsim_eval".as_ptr());
        if sym.is_null() {
            return Err(format!(
                "dlsym(nsim_eval) in {}: {}",
                path.display(),
                last_dl_error()
            ));
        }
        Ok(std::mem::transmute::<*mut c_void, EvalFn>(sym))
    }
}
