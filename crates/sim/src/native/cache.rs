//! Netlist-keyed compile cache for generated tape executors.
//!
//! The cache key is an FNV-1a hash of the *generated source* folded with
//! the `rustc` version line. Because the source embeds the tape (wire
//! slots, masks, shift splits), the tracking mode, the lane width, and the
//! ABI revision, the key transitively covers hash(netlist ⊕ optimizer
//! config ⊕ `TrackMode`) — two designs, configs, or modes that lower to
//! the same source may safely share one executor, and any semantic change
//! whatsoever produces a new key.
//!
//! Three layers, cheapest first:
//!
//! 1. an in-process registry of loaded `fn` pointers (`memory_hits`);
//! 2. an on-disk store of compiled dylibs under
//!    `target/native-cache/<key>/` shared by every test binary, bench, and
//!    fleet process on the host (`disk_hits`);
//! 3. a `rustc` invocation into a temp directory atomically renamed into
//!    place (`compiles`) — concurrent builders race benignly: the loser's
//!    rename fails against the winner's finished directory and is
//!    discarded.
//!
//! The [`cache_stats`](crate::native::cache_stats) counters expose the
//! layer totals so tests can assert that a warm second launch skips
//! `rustc` entirely.

use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use super::loader::{self, EvalFn};
use super::NativeError;

static COMPILES: AtomicU64 = AtomicU64::new(0);
static DISK_HITS: AtomicU64 = AtomicU64::new(0);
static MEMORY_HITS: AtomicU64 = AtomicU64::new(0);

/// Process-lifetime totals of how executor lookups were satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NativeCacheStats {
    /// Lookups that invoked `rustc`.
    pub compiles: u64,
    /// Lookups satisfied by a previously compiled dylib on disk.
    pub disk_hits: u64,
    /// Lookups satisfied by an executor already loaded in this process.
    pub memory_hits: u64,
}

/// Whether the host `rustc` the native backend compiles with is usable —
/// probed once per process (the same probe the compile path uses, so a
/// `true` here means [`NativeSim`](crate::NativeSim) construction will not
/// fail for toolchain reasons). Callers that can degrade gracefully (the
/// mutation campaign, the farm's backend selection) check this instead of
/// catching a construction panic.
#[must_use]
pub fn toolchain_available() -> bool {
    rustc_version().is_ok()
}

/// Snapshot of the compile-cache counters for this process.
#[must_use]
pub fn cache_stats() -> NativeCacheStats {
    NativeCacheStats {
        compiles: COMPILES.load(Ordering::Relaxed),
        disk_hits: DISK_HITS.load(Ordering::Relaxed),
        memory_hits: MEMORY_HITS.load(Ordering::Relaxed),
    }
}

fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn rustc_bin() -> String {
    std::env::var("RUSTC").unwrap_or_else(|_| "rustc".to_owned())
}

/// The `rustc -V` line, probed once per process.
fn rustc_version() -> Result<&'static str, NativeError> {
    static VERSION: OnceLock<Result<String, String>> = OnceLock::new();
    let v = VERSION.get_or_init(|| {
        Command::new(rustc_bin())
            .arg("-V")
            .output()
            .map_err(|e| format!("failed to run `{} -V`: {e}", rustc_bin()))
            .and_then(|out| {
                if out.status.success() {
                    Ok(String::from_utf8_lossy(&out.stdout).trim().to_owned())
                } else {
                    Err(format!("`{} -V` exited with {}", rustc_bin(), out.status))
                }
            })
    });
    match v {
        Ok(s) => Ok(s.as_str()),
        Err(e) => Err(NativeError::RustcUnavailable(e.clone())),
    }
}

/// Cache root: `NATIVE_SIM_CACHE_DIR` if set, else `native-cache/` under
/// the cargo target directory (falling back to the workspace-relative
/// `target/` this crate was built from, then the system temp dir).
fn cache_root() -> PathBuf {
    if let Ok(dir) = std::env::var("NATIVE_SIM_CACHE_DIR") {
        return PathBuf::from(dir);
    }
    if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        return PathBuf::from(dir).join("native-cache");
    }
    match option_env!("CARGO_MANIFEST_DIR") {
        Some(manifest) => PathBuf::from(manifest)
            .join("../../target")
            .join("native-cache"),
        None => std::env::temp_dir().join("nsim-native-cache"),
    }
}

/// Returns the executor for `source`, compiling and/or loading it if this
/// process has not seen the key yet.
pub(crate) fn get_or_compile(source: &str) -> Result<EvalFn, NativeError> {
    let version = rustc_version()?;
    let key = fnv1a(FNV_OFFSET, source.as_bytes()) ^ fnv1a(FNV_OFFSET, version.as_bytes());

    static REGISTRY: OnceLock<Mutex<HashMap<u64, EvalFn>>> = OnceLock::new();
    let registry = REGISTRY.get_or_init(|| Mutex::new(HashMap::new()));
    // Hold the lock across compilation: concurrent in-process requests for
    // the same key then compile once, and distinct keys are rare enough
    // (one per netlist/mode/width) that serialising them is fine.
    let mut map = registry.lock().expect("native executor registry poisoned");
    if let Some(&f) = map.get(&key) {
        MEMORY_HITS.fetch_add(1, Ordering::Relaxed);
        return Ok(f);
    }

    let root = cache_root();
    let dir = root.join(format!("{key:016x}"));
    let lib = dir.join("libnsim.so");
    if lib.exists() {
        DISK_HITS.fetch_add(1, Ordering::Relaxed);
    } else {
        compile_into(&root, &dir, source, version)?;
        COMPILES.fetch_add(1, Ordering::Relaxed);
    }
    let f = loader::load_eval(&lib).map_err(NativeError::LoadFailed)?;
    map.insert(key, f);
    Ok(f)
}

/// Compiles `source` into `dir` (atomically, via a temp sibling renamed
/// into place). On return `dir/libnsim.so` exists — built by us or by a
/// concurrent winner.
fn compile_into(
    root: &std::path::Path,
    dir: &std::path::Path,
    source: &str,
    version: &str,
) -> Result<(), NativeError> {
    let tmp = root.join(format!(
        ".tmp-{}-{}",
        dir.file_name().and_then(|n| n.to_str()).unwrap_or("key"),
        std::process::id()
    ));
    fs::create_dir_all(&tmp).map_err(NativeError::Io)?;
    let result = (|| {
        let src_path = tmp.join("nsim.rs");
        fs::write(&src_path, source).map_err(NativeError::Io)?;
        fs::write(tmp.join("rustc-version"), version).map_err(NativeError::Io)?;
        let out = Command::new(rustc_bin())
            .args([
                "--edition",
                "2021",
                "--crate-type",
                "cdylib",
                "--crate-name",
                "nsim",
                "-C",
                "opt-level=3",
                "-C",
                "debuginfo=0",
                "-C",
                "codegen-units=16",
                "-C",
                "target-cpu=native",
                "-o",
            ])
            .arg(tmp.join("libnsim.so"))
            .arg(&src_path)
            .output()
            .map_err(|e| NativeError::RustcUnavailable(format!("failed to spawn rustc: {e}")))?;
        if !out.status.success() {
            return Err(NativeError::CompileFailed(format!(
                "rustc exited with {} building generated executor (source kept at {}):\n{}",
                out.status,
                src_path.display(),
                String::from_utf8_lossy(&out.stderr)
            )));
        }
        match fs::rename(&tmp, dir) {
            Ok(()) => Ok(()),
            // Lost a cross-process race: the winner's directory is
            // complete (renames are atomic), use it.
            Err(_) if dir.join("libnsim.so").exists() => Ok(()),
            Err(e) => Err(NativeError::Io(e)),
        }
    })();
    if result.is_err() || tmp.exists() {
        // Best-effort cleanup; on CompileFailed keep the source for
        // debugging but still try to clear a stale rename leftover when
        // the final dir materialised.
        if !matches!(result, Err(NativeError::CompileFailed(_))) {
            let _ = fs::remove_dir_all(&tmp);
        }
    }
    result
}
