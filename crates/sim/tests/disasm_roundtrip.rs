//! Disassembler round-trip properties: for generated netlists, every
//! backend's listing parses back to a column-identical tape (fingerprint
//! equality), re-renders byte-identically, and is invariant across lane
//! widths — the lane count scales the state planes, never the program.

use hdl::{ModuleBuilder, Netlist};
use proptest::prelude::*;
use sim::{disasm, BatchedSim, CompiledSim, OptConfig, TrackMode, SUPPORTED_LANES};

/// Structural recipe for a small design (same scheme as the batched
/// differential tests): binary ops chained over a register file, with
/// downgrade gates sprinkled in.
#[derive(Debug, Clone)]
struct Recipe {
    ops: Vec<(u8, usize, usize)>,
    guard_pairs: Vec<(usize, usize, bool)>,
}

const GENS: usize = 5;

fn arb_recipe() -> impl Strategy<Value = Recipe> {
    (
        proptest::collection::vec((0u8..12, 0usize..GENS, 0usize..GENS), 1..8),
        proptest::collection::vec((0usize..GENS, 0usize..GENS, any::<bool>()), 0..3),
    )
        .prop_map(|(ops, guard_pairs)| Recipe { ops, guard_pairs })
}

fn build(recipe: &Recipe) -> Netlist {
    let mut m = ModuleBuilder::new("roundtrip");
    let mut gens = Vec::new();
    for i in 0..GENS {
        let inp = m.input(&format!("i{i}"), 8);
        let reg = m.reg(&format!("r{i}"), 8, (i as u128) + 1);
        let fed = m.xor(inp, reg);
        m.connect(reg, fed);
        m.output(&format!("o{i}"), fed);
        gens.push(fed);
    }
    for &(kind, a, b) in &recipe.ops {
        let (x, y) = (gens[a % gens.len()], gens[b % gens.len()]);
        let node = match kind % 12 {
            0 => m.and(x, y),
            1 => m.or(x, y),
            2 => m.xor(x, y),
            3 => m.add(x, y),
            4 => m.sub(x, y),
            5 => m.not(x),
            6 => m.eq(x, y),
            7 => m.lt(x, y),
            8 => {
                let sel = m.eq(x, y);
                m.mux(sel, x, y)
            }
            9 => m.cat(x, y),
            10 => {
                if x.width() > 1 {
                    m.slice(x, x.width() - 1, x.width() / 2)
                } else {
                    m.not(x)
                }
            }
            _ => m.reduce_xor(x),
        };
        if node.width() <= 64 {
            gens.push(node);
        }
    }
    for (i, &(a, s, endorse)) in recipe.guard_pairs.iter().enumerate() {
        const LABELS: [ifc_lattice::Label; 2] = [
            ifc_lattice::Label::PUBLIC_TRUSTED,
            ifc_lattice::Label::SECRET_TRUSTED,
        ];
        let data = gens[a % gens.len()];
        let p = m.tag_lit(LABELS[s % LABELS.len()]);
        let node = if endorse {
            m.endorse(data, ifc_lattice::Label::PUBLIC_TRUSTED, p)
        } else {
            m.declassify(data, ifc_lattice::Label::PUBLIC_UNTRUSTED, p)
        };
        m.output(&format!("g{i}"), node);
    }
    let last = *gens.last().expect("at least the generators");
    m.output("last", last);
    m.finish().lower().expect("recipe lowers")
}

fn assert_roundtrip(listing: &str, fingerprint: u64, len: usize, what: &str) {
    let parsed =
        disasm::parse(listing).unwrap_or_else(|e| panic!("{what}: listing fails to parse: {e}"));
    assert_eq!(parsed.len(), len, "{what}: instruction count diverged");
    assert_eq!(
        parsed.fingerprint(),
        fingerprint,
        "{what}: parsed tape is not column-identical"
    );
    assert_eq!(
        parsed.to_listing(),
        listing,
        "{what}: re-render is not idempotent"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `render → parse → fingerprint/render` is exact for the compiled
    /// backend and for the batched backend at every supported lane
    /// width, raw and optimized; and the program is identical across
    /// widths.
    #[test]
    fn listing_roundtrips_at_every_lane_width(recipe in arb_recipe()) {
        let net = build(&recipe);
        for config in [OptConfig::none(), OptConfig::all()] {
            let compiled =
                CompiledSim::with_tracking_opt(net.clone(), TrackMode::Precise, &config);
            assert_roundtrip(
                &compiled.disassemble(),
                compiled.tape_fingerprint(),
                compiled.tape_len(),
                "CompiledSim",
            );
            for lanes in SUPPORTED_LANES {
                let sim = BatchedSim::with_tracking_opt(
                    net.clone(),
                    TrackMode::Precise,
                    lanes,
                    &config,
                );
                assert_roundtrip(
                    &sim.disassemble(),
                    sim.tape_fingerprint(),
                    sim.tape_len(),
                    &format!("BatchedSim W={lanes}"),
                );
                prop_assert_eq!(
                    sim.tape_fingerprint(),
                    compiled.tape_fingerprint(),
                    "lane width {} changed the program", lanes
                );
                prop_assert_eq!(sim.disassemble(), compiled.disassemble());
            }
        }
    }
}
