//! Differential testing: the compiled-tape backend against the
//! interpreting simulator on randomly generated synchronous designs.
//!
//! The interpreter is the reference oracle; [`CompiledSim`] must match it
//! on *everything observable* — settled values, runtime labels, the full
//! recorded violation stream (order included), the truncation flag, and
//! final register/memory state — in every tracking mode. The generated
//! designs include guarded registers, a read/write memory, declassify and
//! endorse nodes with varying principals (exercising downgrade
//! rejections), and plain outputs carrying secret data (exercising the
//! release gate).

use hdl::{Design, ModuleBuilder, Sig};
use ifc_lattice::Label;
use proptest::prelude::*;
use sim::{CompiledSim, SimBackend, Simulator, TrackMode};

const LABELS: [Label; 4] = [
    Label::PUBLIC_TRUSTED,
    Label::SECRET_TRUSTED,
    Label::PUBLIC_UNTRUSTED,
    Label::SECRET_UNTRUSTED,
];

/// A recipe for one random labelled synchronous design.
#[derive(Debug, Clone)]
struct Recipe {
    ops: Vec<(u8, u8, u8)>,
    guard_pairs: Vec<(u8, u8, bool)>,
    /// Per-step input values and label indices.
    stimulus: Vec<([u8; 4], [u8; 4])>,
    /// (data index, principal label index) for a declassify and an
    /// endorse node.
    downgrades: (u8, u8, u8, u8),
}

fn arb_recipe() -> impl Strategy<Value = Recipe> {
    (
        proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..20),
        proptest::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 1..6),
        proptest::collection::vec((any::<[u8; 4]>(), any::<[u8; 4]>()), 1..10),
        (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()),
    )
        .prop_map(|(ops, guard_pairs, stimulus, downgrades)| Recipe {
            ops,
            guard_pairs,
            stimulus,
            downgrades,
        })
}

/// Builds a labelled design from a recipe: four 8-bit inputs, a derived
/// signal pool, guarded registers and a memory, downgrade nodes, and a
/// mix of open and labelled outputs.
fn build(recipe: &Recipe) -> (Design, Vec<String>) {
    let mut m = ModuleBuilder::new("fuzz_labels");
    let inputs: Vec<Sig> = (0..4).map(|i| m.input(&format!("in{i}"), 8)).collect();
    let mut pool: Vec<Sig> = inputs.clone();

    for &(op, ai, bi) in &recipe.ops {
        let a = pool[ai as usize % pool.len()];
        let b = pool[bi as usize % pool.len()];
        let (a, b) = if a.width() == b.width() {
            (a, b)
        } else {
            (a, a)
        };
        let node = match op % 12 {
            0 => m.and(a, b),
            1 => m.or(a, b),
            2 => m.xor(a, b),
            3 => m.add(a, b),
            4 => m.sub(a, b),
            5 => m.eq(a, b),
            6 => m.lt(a, b),
            7 => {
                if a.width() > 1 {
                    m.slice(a, a.width() - 1, a.width() / 2)
                } else {
                    m.not(a)
                }
            }
            8 => m.reduce_xor(a),
            9 => m.reduce_and(a),
            10 => m.cat(a, b),
            _ => {
                let sel = m.reduce_or(a);
                m.mux(sel, a, b)
            }
        };
        if node.width() <= 64 {
            pool.push(node);
        }
    }

    let mem = m.mem("scratch", 8, 8, vec![1, 2, 3]);
    let mut outputs = Vec::new();
    for (gi, &(si, vi, use_else)) in recipe.guard_pairs.iter().enumerate() {
        let guard_src = pool[si as usize % pool.len()];
        let guard = if guard_src.width() == 1 {
            guard_src
        } else {
            m.reduce_or(guard_src)
        };
        let value8 = {
            let v = pool[vi as usize % pool.len()];
            if v.width() == 8 {
                v
            } else {
                inputs[vi as usize % 4]
            }
        };
        let r = m.reg(&format!("r{gi}"), 8, u128::from(vi));
        if use_else {
            m.when_else(
                guard,
                |m| m.connect(r, value8),
                |m| {
                    let inv = m.not(value8);
                    m.connect(r, inv);
                },
            );
        } else {
            m.when(guard, |m| m.connect(r, value8));
        }
        let addr = m.slice(value8, 2, 0);
        m.when(guard, |m| m.mem_write(mem, addr, value8));
        let q = m.mem_read(mem, addr);
        let mixed = m.xor(q, r);
        let name = format!("out{gi}");
        // Alternate between the open interconnect (checked against (P,U))
        // and a secret-clearance port, so some secret-labelled data leaks
        // and some doesn't.
        if gi % 2 == 0 {
            m.output(&name, mixed);
        } else {
            m.output_labeled(&name, mixed, Label::SECRET_UNTRUSTED);
        }
        outputs.push(name);
    }

    // Downgrade nodes with recipe-chosen principals: depending on the
    // principal's tag the nonmalleable rule accepts or rejects these at
    // runtime, exercising the DowngradeRejected path in both backends.
    let (d_data, d_prin, e_data, e_prin) = recipe.downgrades;
    let d_src = pool[d_data as usize % pool.len()];
    let d_p = m.tag_lit(LABELS[d_prin as usize % LABELS.len()]);
    let declassified = m.declassify(d_src, Label::PUBLIC_UNTRUSTED, d_p);
    m.output("dec_out", declassified);
    outputs.push("dec_out".into());
    let e_src = pool[e_data as usize % pool.len()];
    let e_p = m.tag_lit(LABELS[e_prin as usize % LABELS.len()]);
    let endorsed = m.endorse(e_src, Label::PUBLIC_TRUSTED, e_p);
    m.output("end_out", endorsed);
    outputs.push("end_out".into());

    (m.finish(), outputs)
}

/// Runs the recipe's stimulus on one backend, checking outputs per step.
fn drive<B: SimBackend>(sim: &mut B, recipe: &Recipe, outputs: &[String]) -> Vec<(u128, Label)> {
    let mut observed = Vec::new();
    for (values, label_idx) in &recipe.stimulus {
        for i in 0..4 {
            sim.set(&format!("in{i}"), u128::from(values[i]));
            sim.set_label(
                &format!("in{i}"),
                LABELS[label_idx[i] as usize % LABELS.len()],
            );
        }
        for name in outputs {
            observed.push((sim.peek(name), sim.peek_label(name)));
        }
        sim.tick();
    }
    observed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compiled_matches_interpreter(recipe in arb_recipe()) {
        let (design, outputs) = build(&recipe);
        let netlist = design.lower().expect("random designs are acyclic");

        for mode in [TrackMode::Off, TrackMode::Conservative, TrackMode::Precise] {
            let mut interp = Simulator::with_tracking(netlist.clone(), mode);
            let mut compiled = CompiledSim::with_tracking(netlist.clone(), mode);

            let a = drive(&mut interp, &recipe, &outputs);
            let b = drive(&mut compiled, &recipe, &outputs);

            prop_assert_eq!(&a, &b, "observations diverged in {:?}", mode);
            prop_assert_eq!(interp.cycle(), compiled.cycle());
            prop_assert_eq!(
                interp.violations(),
                compiled.violations(),
                "violation streams diverged in {:?}",
                mode
            );
            prop_assert_eq!(
                interp.violations_truncated(),
                compiled.violations_truncated()
            );
            // Final architectural state: registers (via peek) and memory.
            for gi in 0..recipe.guard_pairs.len() {
                let name = format!("r{gi}");
                prop_assert_eq!(interp.peek(&name), compiled.peek(&name));
                prop_assert_eq!(interp.peek_label(&name), compiled.peek_label(&name));
            }
            let mi = interp.mem_index("scratch").expect("mem exists");
            for addr in 0..8 {
                prop_assert_eq!(interp.mem_cell(mi, addr), compiled.mem_cell(mi, addr));
                prop_assert_eq!(
                    interp.mem_cell_label(mi, addr),
                    compiled.mem_cell_label(mi, addr)
                );
            }
        }
    }

    #[test]
    fn violation_cap_matches_across_backends(cap in 0usize..6) {
        // A persistently leaky design: a secret input wired straight to
        // an open output raises one OutputLeak per tick.
        let mut m = ModuleBuilder::new("leaky");
        let secret = m.input("secret", 8);
        m.output("out", secret);
        let net = m.finish().lower().expect("lowers");

        let mut interp = Simulator::with_tracking(net.clone(), TrackMode::Conservative);
        let mut compiled = CompiledSim::with_tracking(net, TrackMode::Conservative);
        for sim in [&mut interp as &mut dyn Tick, &mut compiled as &mut dyn Tick] {
            sim.cap(cap);
            sim.drive_secret();
            for _ in 0..10 {
                sim.step();
            }
        }
        prop_assert_eq!(interp.violations().len(), cap.min(10));
        prop_assert_eq!(interp.violations(), compiled.violations());
        prop_assert_eq!(interp.violations_truncated(), cap < 10);
        prop_assert_eq!(
            interp.violations_truncated(),
            compiled.violations_truncated()
        );
    }
}

/// Object-safe helper so the cap test can treat both backends uniformly.
trait Tick {
    fn cap(&mut self, cap: usize);
    fn drive_secret(&mut self);
    fn step(&mut self);
}

impl<B: SimBackend> Tick for B {
    fn cap(&mut self, cap: usize) {
        self.set_violation_cap(cap);
    }
    fn drive_secret(&mut self) {
        self.set("secret", 0xab);
        self.set_label("secret", Label::SECRET_TRUSTED);
    }
    fn step(&mut self) {
        self.tick();
    }
}
