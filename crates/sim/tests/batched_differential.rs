//! Differential testing: every lane of the batched backend against the
//! interpreting simulator, with and without the tape optimizer.
//!
//! Each lane of a [`BatchedSim`] is an independent session, so lane `l`
//! driven with stimulus `S_l` must observe exactly what a fresh
//! [`Simulator`] (the reference oracle) and a fresh [`CompiledSim`]
//! observe when driven with `S_l` alone: settled values and labels of
//! every output, the full recorded violation stream (order included),
//! the truncation flag, and final register and memory state — in all
//! three tracking modes, with the optimizer passes off and on. Lanes are
//! deliberately given *different* stimuli (values, labels, and therefore
//! violation patterns) to prove they don't bleed into each other.

use hdl::{Design, ModuleBuilder, Sig};
use ifc_lattice::Label;
use proptest::prelude::*;
use sim::{BatchedSim, CompiledSim, OptConfig, SimBackend, Simulator, TrackMode, SUPPORTED_LANES};

const LABELS: [Label; 4] = [
    Label::PUBLIC_TRUSTED,
    Label::SECRET_TRUSTED,
    Label::PUBLIC_UNTRUSTED,
    Label::SECRET_UNTRUSTED,
];

/// A recipe for one random labelled synchronous design (same shape as
/// the compiled-backend differential suite).
#[derive(Debug, Clone)]
struct Recipe {
    ops: Vec<(u8, u8, u8)>,
    guard_pairs: Vec<(u8, u8, bool)>,
    stimulus: Vec<([u8; 4], [u8; 4])>,
    downgrades: (u8, u8, u8, u8),
}

fn arb_recipe() -> impl Strategy<Value = Recipe> {
    (
        proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..16),
        proptest::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 1..5),
        proptest::collection::vec((any::<[u8; 4]>(), any::<[u8; 4]>()), 1..8),
        (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()),
    )
        .prop_map(|(ops, guard_pairs, stimulus, downgrades)| Recipe {
            ops,
            guard_pairs,
            stimulus,
            downgrades,
        })
}

/// Builds a labelled design from a recipe: four 8-bit inputs, a derived
/// signal pool, guarded registers and a memory, downgrade nodes, and a
/// mix of open and labelled outputs.
fn build(recipe: &Recipe) -> (Design, Vec<String>) {
    let mut m = ModuleBuilder::new("fuzz_lanes");
    let inputs: Vec<Sig> = (0..4).map(|i| m.input(&format!("in{i}"), 8)).collect();
    let mut pool: Vec<Sig> = inputs.clone();

    for &(op, ai, bi) in &recipe.ops {
        let a = pool[ai as usize % pool.len()];
        let b = pool[bi as usize % pool.len()];
        let (a, b) = if a.width() == b.width() {
            (a, b)
        } else {
            (a, a)
        };
        let node = match op % 12 {
            0 => m.and(a, b),
            1 => m.or(a, b),
            2 => m.xor(a, b),
            3 => m.add(a, b),
            4 => m.sub(a, b),
            5 => m.eq(a, b),
            6 => m.lt(a, b),
            7 => {
                if a.width() > 1 {
                    m.slice(a, a.width() - 1, a.width() / 2)
                } else {
                    m.not(a)
                }
            }
            8 => m.reduce_xor(a),
            9 => m.reduce_and(a),
            10 => m.cat(a, b),
            _ => {
                let sel = m.reduce_or(a);
                m.mux(sel, a, b)
            }
        };
        if node.width() <= 64 {
            pool.push(node);
        }
    }

    let mem = m.mem("scratch", 8, 8, vec![1, 2, 3]);
    let mut outputs = Vec::new();
    for (gi, &(si, vi, use_else)) in recipe.guard_pairs.iter().enumerate() {
        let guard_src = pool[si as usize % pool.len()];
        let guard = if guard_src.width() == 1 {
            guard_src
        } else {
            m.reduce_or(guard_src)
        };
        let value8 = {
            let v = pool[vi as usize % pool.len()];
            if v.width() == 8 {
                v
            } else {
                inputs[vi as usize % 4]
            }
        };
        let r = m.reg(&format!("r{gi}"), 8, u128::from(vi));
        if use_else {
            m.when_else(
                guard,
                |m| m.connect(r, value8),
                |m| {
                    let inv = m.not(value8);
                    m.connect(r, inv);
                },
            );
        } else {
            m.when(guard, |m| m.connect(r, value8));
        }
        let addr = m.slice(value8, 2, 0);
        m.when(guard, |m| m.mem_write(mem, addr, value8));
        let q = m.mem_read(mem, addr);
        let mixed = m.xor(q, r);
        let name = format!("out{gi}");
        if gi % 2 == 0 {
            m.output(&name, mixed);
        } else {
            m.output_labeled(&name, mixed, Label::SECRET_UNTRUSTED);
        }
        outputs.push(name);
    }

    let (d_data, d_prin, e_data, e_prin) = recipe.downgrades;
    let d_src = pool[d_data as usize % pool.len()];
    let d_p = m.tag_lit(LABELS[d_prin as usize % LABELS.len()]);
    let declassified = m.declassify(d_src, Label::PUBLIC_UNTRUSTED, d_p);
    m.output("dec_out", declassified);
    outputs.push("dec_out".into());
    let e_src = pool[e_data as usize % pool.len()];
    let e_p = m.tag_lit(LABELS[e_prin as usize % LABELS.len()]);
    let endorsed = m.endorse(e_src, Label::PUBLIC_TRUSTED, e_p);
    m.output("end_out", endorsed);
    outputs.push("end_out".into());

    (m.finish(), outputs)
}

/// Lane `lane`'s stimulus: a deterministic per-lane variation of the
/// recipe's base stimulus, so every lane sees different values *and*
/// different labels (and so raises violations on different cycles).
fn lane_stimulus(recipe: &Recipe, lane: usize) -> Vec<([u8; 4], [u8; 4])> {
    recipe
        .stimulus
        .iter()
        .map(|(values, label_idx)| {
            let mut v = *values;
            let mut li = *label_idx;
            for i in 0..4 {
                v[i] = v[i].wrapping_add((lane as u8).wrapping_mul(17).wrapping_add(i as u8));
                li[i] = li[i].wrapping_add(lane as u8);
            }
            (v, li)
        })
        .collect()
}

/// Drives one single-session backend with a stimulus, recording per-step
/// output values and labels.
fn drive_single<B: SimBackend>(
    sim: &mut B,
    stimulus: &[([u8; 4], [u8; 4])],
    outputs: &[String],
) -> Vec<(u128, Label)> {
    let mut observed = Vec::new();
    for (values, label_idx) in stimulus {
        for i in 0..4 {
            sim.set(&format!("in{i}"), u128::from(values[i]));
            sim.set_label(
                &format!("in{i}"),
                LABELS[label_idx[i] as usize % LABELS.len()],
            );
        }
        for name in outputs {
            observed.push((sim.peek(name), sim.peek_label(name)));
        }
        sim.tick();
    }
    observed
}

/// Drives all lanes of a batched backend, each with its own stimulus,
/// recording the same per-step observations per lane.
fn drive_batched(
    sim: &mut BatchedSim,
    recipe: &Recipe,
    outputs: &[String],
) -> Vec<Vec<(u128, Label)>> {
    let lanes = sim.lanes();
    let stimuli: Vec<_> = (0..lanes).map(|l| lane_stimulus(recipe, l)).collect();
    let mut observed = vec![Vec::new(); lanes];
    for step in 0..recipe.stimulus.len() {
        for (lane, stim) in stimuli.iter().enumerate() {
            let (values, label_idx) = &stim[step];
            for i in 0..4 {
                sim.set(lane, &format!("in{i}"), u128::from(values[i]));
                sim.set_label(
                    lane,
                    &format!("in{i}"),
                    LABELS[label_idx[i] as usize % LABELS.len()],
                );
            }
        }
        for (lane, obs) in observed.iter_mut().enumerate() {
            for name in outputs {
                obs.push((sim.peek(lane, name), sim.peek_label(lane, name)));
            }
        }
        sim.tick();
    }
    observed
}

/// The full cross-check for one (mode, optimizer config, lane width):
/// every batched lane against a fresh interpreter and a fresh compiled
/// backend driven with that lane's stimulus.
fn check_lanes(
    recipe: &Recipe,
    outputs: &[String],
    netlist: &hdl::Netlist,
    mode: TrackMode,
    opt: &OptConfig,
    lanes: usize,
) -> Result<(), TestCaseError> {
    let mut batched = BatchedSim::with_tracking_opt(netlist.clone(), mode, lanes, opt);
    let batched_obs = drive_batched(&mut batched, recipe, outputs);

    for (lane, lane_obs) in batched_obs.iter().enumerate() {
        let stim = lane_stimulus(recipe, lane);
        let mut interp = Simulator::with_tracking(netlist.clone(), mode);
        let mut compiled = CompiledSim::with_tracking_opt(netlist.clone(), mode, opt);
        let interp_obs = drive_single(&mut interp, &stim, outputs);
        let compiled_obs = drive_single(&mut compiled, &stim, outputs);

        prop_assert_eq!(
            &interp_obs,
            lane_obs,
            "lane {} diverged from interpreter in {:?} (opt {:?})",
            lane,
            mode,
            opt
        );
        prop_assert_eq!(&interp_obs, &compiled_obs);
        prop_assert_eq!(
            interp.violations(),
            batched.violations(lane),
            "lane {} violation stream diverged in {:?} (opt {:?})",
            lane,
            mode,
            opt
        );
        prop_assert_eq!(interp.violations(), compiled.violations());
        prop_assert_eq!(
            interp.violations_truncated(),
            batched.violations_truncated(lane)
        );
        prop_assert_eq!(interp.cycle(), batched.cycle());
        // Final architectural state: registers (named, so they survive
        // every optimizer pass) and the memory.
        for gi in 0..recipe.guard_pairs.len() {
            let name = format!("r{gi}");
            prop_assert_eq!(interp.peek(&name), batched.peek(lane, &name));
            prop_assert_eq!(interp.peek_label(&name), batched.peek_label(lane, &name));
        }
        let mi = interp.mem_index("scratch").expect("mem exists");
        for addr in 0..8 {
            prop_assert_eq!(interp.mem_cell(mi, addr), batched.mem_cell(lane, mi, addr));
            prop_assert_eq!(
                interp.mem_cell_label(mi, addr),
                batched.mem_cell_label(lane, mi, addr)
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batched_lanes_match_interpreter(recipe in arb_recipe()) {
        let (design, outputs) = build(&recipe);
        let netlist = design.lower().expect("random designs are acyclic");
        for mode in [TrackMode::Off, TrackMode::Conservative, TrackMode::Precise] {
            for opt in [OptConfig::none(), OptConfig::all()] {
                check_lanes(&recipe, &outputs, &netlist, mode, &opt, 4)?;
            }
        }
    }
}

#[test]
fn every_lane_width_matches_interpreter() {
    // One representative recipe across every supported lane width.
    let recipe = Recipe {
        ops: vec![(0, 0, 1), (3, 1, 2), (11, 2, 3), (10, 0, 3), (7, 4, 0)],
        guard_pairs: vec![(1, 2, true), (3, 0, false)],
        stimulus: vec![
            ([0x11, 0x22, 0x33, 0x44], [0, 1, 2, 3]),
            ([0xaa, 0x00, 0xff, 0x5a], [1, 1, 0, 2]),
            ([0x01, 0x80, 0x7e, 0xe7], [3, 0, 1, 0]),
        ],
        downgrades: (2, 3, 5, 1),
    };
    let (design, outputs) = build(&recipe);
    let netlist = design.lower().expect("lowers");
    for mode in [TrackMode::Off, TrackMode::Conservative, TrackMode::Precise] {
        for opt in [OptConfig::none(), OptConfig::all()] {
            for lanes in SUPPORTED_LANES {
                check_lanes(&recipe, &outputs, &netlist, mode, &opt, lanes)
                    .expect("lane width cross-check");
            }
        }
    }
}

#[test]
fn batched_run_matches_stepped_ticks() {
    // The hoisted `run` loop must equal n repeated ticks, violations
    // included (a leaky design raises one violation per cycle per lane).
    let mut m = ModuleBuilder::new("leaky");
    let secret = m.input("secret", 8);
    let count = m.reg("count", 8, 0);
    let one = m.lit(1, 8);
    let next = m.add(count, one);
    m.connect(count, next);
    m.output("out", secret);
    m.output("count", count);
    let net = m.finish().lower().expect("lowers");

    let mut stepped = BatchedSim::with_tracking(net.clone(), TrackMode::Conservative, 4);
    let mut batch_run = BatchedSim::with_tracking(net, TrackMode::Conservative, 4);
    for sim in [&mut stepped, &mut batch_run] {
        for lane in 0..4 {
            sim.set(lane, "secret", 0x40 + lane as u128);
            // Lanes 0 and 2 leak; lanes 1 and 3 stay clean.
            let label = if lane % 2 == 0 {
                Label::SECRET_TRUSTED
            } else {
                Label::PUBLIC_TRUSTED
            };
            sim.set_label(lane, "secret", label);
        }
    }
    for _ in 0..7 {
        stepped.tick();
    }
    batch_run.run(7);
    assert_eq!(stepped.cycle(), batch_run.cycle());
    for lane in 0..4 {
        assert_eq!(stepped.violations(lane), batch_run.violations(lane));
        let expected = if lane % 2 == 0 { 7 } else { 0 };
        assert_eq!(stepped.violations(lane).len(), expected);
        assert_eq!(
            stepped.peek(lane, "count"),
            batch_run.peek(lane, "count"),
            "lane {lane} register state diverged"
        );
    }
}
