//! Behavioural tests of the cycle-accurate simulator and its runtime
//! tag-tracking logic.

use hdl::{LabelExpr, ModuleBuilder, Netlist};
use ifc_lattice::{Conf, Integ, Label};
use sim::{RuntimeViolation, Simulator, TrackMode};

fn l(c: u8, i: u8) -> Label {
    Label::new(Conf::new(c), Integ::new(i))
}

fn lower(m: ModuleBuilder) -> Netlist {
    m.finish().lower().expect("lowering failed")
}

#[test]
fn counter_counts() {
    let mut m = ModuleBuilder::new("counter");
    let en = m.input("en", 1);
    let count = m.reg("count", 8, 0);
    let one = m.lit(1, 8);
    let next = m.add(count, one);
    m.when(en, |m| m.connect(count, next));
    m.output("count", count);

    let mut sim = Simulator::new(lower(m));
    sim.set("en", 1);
    sim.run(3);
    assert_eq!(sim.peek("count"), 3);
    sim.set("en", 0);
    sim.run(5);
    assert_eq!(sim.peek("count"), 3);
}

#[test]
fn counter_wraps_at_width() {
    let mut m = ModuleBuilder::new("counter");
    let count = m.reg("count", 4, 0);
    let one = m.lit(1, 4);
    let next = m.add(count, one);
    m.connect(count, next);
    m.output("count", count);

    let mut sim = Simulator::new(lower(m));
    sim.run(17);
    assert_eq!(sim.peek("count"), 1);
}

#[test]
fn when_else_priority() {
    let mut m = ModuleBuilder::new("mux");
    let sel = m.input("sel", 1);
    let a = m.input("a", 8);
    let b = m.input("b", 8);
    let y = m.wire("y", 8);
    m.connect(y, a);
    m.when(sel, |m| m.connect(y, b));
    m.output("y", y);

    let mut sim = Simulator::new(lower(m));
    sim.set("a", 0x11);
    sim.set("b", 0x22);
    sim.set("sel", 0);
    assert_eq!(sim.peek("y"), 0x11);
    sim.set("sel", 1);
    assert_eq!(sim.peek("y"), 0x22);
}

#[test]
fn memory_write_then_read() {
    let mut m = ModuleBuilder::new("mem");
    let we = m.input("we", 1);
    let addr = m.input("addr", 2);
    let data = m.input("data", 8);
    let mem = m.mem("buf", 8, 4, vec![]);
    m.when(we, |m| m.mem_write(mem, addr, data));
    let q = m.mem_read(mem, addr);
    m.output("q", q);

    let mut sim = Simulator::new(lower(m));
    sim.set("we", 1);
    sim.set("addr", 2);
    sim.set("data", 0xab);
    sim.tick();
    sim.set("we", 0);
    assert_eq!(sim.peek("q"), 0xab);
    sim.set("addr", 1);
    assert_eq!(sim.peek("q"), 0);
}

#[test]
fn memory_init_is_visible() {
    let mut m = ModuleBuilder::new("rom");
    let addr = m.input("addr", 2);
    let rom = m.mem("rom", 8, 4, vec![10, 20, 30, 40]);
    let q = m.mem_read(rom, addr);
    m.output("q", q);

    let mut sim = Simulator::new(lower(m));
    for (a, want) in [(0, 10), (1, 20), (2, 30), (3, 40)] {
        sim.set("addr", a);
        assert_eq!(sim.peek("q"), want);
    }
}

#[test]
fn slices_cats_reduce_ops() {
    let mut m = ModuleBuilder::new("bits");
    let a = m.input("a", 8);
    let hi = m.slice(a, 7, 4);
    let lo = m.slice(a, 3, 0);
    let swapped = m.cat(lo, hi);
    let any = m.reduce_or(a);
    let all = m.reduce_and(a);
    let parity = m.reduce_xor(a);
    m.output("swapped", swapped);
    m.output("any", any);
    m.output("all", all);
    m.output("parity", parity);

    let mut sim = Simulator::new(lower(m));
    sim.set("a", 0xa5);
    assert_eq!(sim.peek("swapped"), 0x5a);
    assert_eq!(sim.peek("any"), 1);
    assert_eq!(sim.peek("all"), 0);
    assert_eq!(sim.peek("parity"), 0);
    sim.set("a", 0xff);
    assert_eq!(sim.peek("all"), 1);
}

#[test]
fn tag_ops_compute_lattice_operations() {
    let mut m = ModuleBuilder::new("tags");
    let a = m.input("a", 8);
    let b = m.input("b", 8);
    let leq = m.tag_leq(a, b);
    let join = m.tag_join(a, b);
    let meet = m.tag_meet(a, b);
    m.output("leq", leq);
    m.output("join", join);
    m.output("meet", meet);

    let mut sim = Simulator::new(lower(m));
    // a = (C3, I9), b = (C5, I2)
    sim.set("a", 0x39);
    sim.set("b", 0x52);
    assert_eq!(sim.peek("leq"), 1); // 3 <= 5 and 9 >= 2
    assert_eq!(sim.peek("join"), 0x52); // (C5, I2)
    assert_eq!(sim.peek("meet"), 0x39); // (C3, I9)
                                        // Reverse direction fails the flow check.
    sim.set("a", 0x52);
    sim.set("b", 0x39);
    assert_eq!(sim.peek("leq"), 0);
}

#[test]
fn labels_propagate_through_logic() {
    let mut m = ModuleBuilder::new("taint");
    let k = m.input("k", 8);
    let p = m.input("p", 8);
    let x = m.xor(k, p);
    m.output("x", x);

    let mut sim = Simulator::new(lower(m));
    sim.set("k", 0xaa);
    sim.set_label("k", l(15, 15));
    sim.set("p", 0x55);
    sim.set_label("p", l(3, 3));
    assert_eq!(sim.peek("x"), 0xff);
    assert_eq!(sim.peek_label("x"), l(15, 3));
}

#[test]
fn labels_persist_through_registers() {
    let mut m = ModuleBuilder::new("reg");
    let d = m.input("d", 8);
    let r = m.reg("r", 8, 0);
    m.connect(r, d);
    m.output("r", r);

    let mut sim = Simulator::new(lower(m));
    sim.set("d", 7);
    sim.set_label("d", Label::SECRET_UNTRUSTED);
    sim.tick();
    sim.set("d", 0);
    sim.set_label("d", Label::PUBLIC_TRUSTED);
    assert_eq!(sim.peek("r"), 7);
    assert_eq!(sim.peek_label("r"), Label::SECRET_UNTRUSTED);
    sim.tick();
    assert_eq!(sim.peek_label("r"), Label::PUBLIC_TRUSTED);
}

#[test]
fn memory_cells_carry_labels() {
    let mut m = ModuleBuilder::new("mem");
    let we = m.input("we", 1);
    let addr = m.input("addr", 2);
    let data = m.input("data", 8);
    let mem = m.mem("buf", 8, 4, vec![]);
    m.when(we, |m| m.mem_write(mem, addr, data));
    let q = m.mem_read(mem, addr);
    m.output("q", q);

    let mut sim = Simulator::new(lower(m));
    sim.set("we", 1);
    sim.set("addr", 3);
    sim.set("data", 9);
    sim.set_label("data", l(7, 7));
    sim.tick();
    assert_eq!(sim.mem_cell(0, 3), 9);
    assert_eq!(sim.mem_cell_label(0, 3), l(7, 7));
    sim.set("we", 0);
    assert_eq!(sim.peek_label("q"), l(7, 7));
    // Other cells stay public.
    sim.set("addr", 0);
    assert_eq!(sim.peek_label("q"), Label::PUBLIC_TRUSTED);
}

#[test]
fn precise_mode_is_less_tainting_than_conservative() {
    let build = || {
        let mut m = ModuleBuilder::new("mux");
        let sel = m.input("sel", 1);
        let secret = m.input("secret", 8);
        let public = m.input("public", 8);
        let y = m.mux(sel, secret, public);
        m.output("y", y);
        lower(m)
    };

    let mut conservative = Simulator::with_tracking(build(), TrackMode::Conservative);
    conservative.set("sel", 0);
    conservative.set_label("secret", Label::SECRET_TRUSTED);
    // Conservative: the unselected secret arm still taints.
    assert_eq!(conservative.peek_label("y").conf, Conf::SECRET);

    let mut precise = Simulator::with_tracking(build(), TrackMode::Precise);
    precise.set("sel", 0);
    precise.set_label("secret", Label::SECRET_TRUSTED);
    // Precise: selecting the public arm keeps the output public.
    assert_eq!(precise.peek_label("y").conf, Conf::PUBLIC);
}

#[test]
fn off_mode_records_no_violations() {
    let mut m = ModuleBuilder::new("leaky");
    let secret = m.input("secret", 8);
    m.output("out", secret);
    let mut sim = Simulator::with_tracking(lower(m), TrackMode::Off);
    sim.set("secret", 1);
    sim.set_label("secret", Label::SECRET_TRUSTED);
    sim.tick();
    assert!(sim.violations().is_empty());
}

#[test]
fn output_leak_is_caught_by_release_gate() {
    let mut m = ModuleBuilder::new("leaky");
    let secret = m.input("secret", 8);
    m.output("out", secret);
    let mut sim = Simulator::new(lower(m));
    sim.set("secret", 1);
    sim.set_label("secret", l(9, 0));
    sim.tick();
    assert_eq!(sim.violations().len(), 1);
    assert!(matches!(
        sim.violations()[0],
        RuntimeViolation::OutputLeak { .. }
    ));
}

#[test]
fn labeled_output_port_permits_matching_label() {
    let mut m = ModuleBuilder::new("ok");
    let secret = m.input("secret", 8);
    let sup_port = m.wire("sup_port", 8);
    m.connect(sup_port, secret);
    m.output_labeled("out", sup_port, Label::SECRET_TRUSTED);
    let mut sim = Simulator::new(lower(m));
    sim.set("secret", 1);
    sim.set_label("secret", Label::new(Conf::SECRET, Integ::TRUSTED));
    sim.tick();
    assert!(sim.violations().is_empty());
}

#[test]
fn runtime_declassify_allows_authorized_principal() {
    let mut m = ModuleBuilder::new("dg");
    let data = m.input("data", 8);
    let principal = m.input("principal", 8);
    let released = m.declassify(data, l(0, 5), principal);
    m.output("out", released);
    let mut sim = Simulator::new(lower(m));
    sim.set("data", 0x42);
    sim.set_label("data", l(5, 5));
    // Principal (C5, I5): authority r(I5) = C5 covers the data.
    sim.set("principal", 0x55);
    sim.tick();
    assert_eq!(sim.peek("out"), 0x42);
    assert_eq!(sim.peek_label("out"), l(0, 5));
    assert!(sim.violations().is_empty());
}

#[test]
fn runtime_declassify_rejects_master_key_misuse() {
    // Section 3.2.2: data encrypted with the (S,T) master key cannot be
    // released by a regular user's authority.
    let mut m = ModuleBuilder::new("dg");
    let data = m.input("data", 8);
    let principal = m.input("principal", 8);
    let released = m.declassify(data, l(0, 5), principal);
    m.output("out", released);
    let mut sim = Simulator::new(lower(m));
    sim.set("data", 0x42);
    sim.set_label("data", Label::new(Conf::SECRET, Integ::new(5)));
    sim.set("principal", 0x55); // (C5, I5) regular user
    sim.tick();
    // The downgrade was refused and the release gate caught the leak.
    assert!(sim
        .violations()
        .iter()
        .any(|v| matches!(v, RuntimeViolation::DowngradeRejected { .. })));
    assert!(sim
        .violations()
        .iter()
        .any(|v| matches!(v, RuntimeViolation::OutputLeak { .. })));
    // The data still has its restrictive label.
    assert_eq!(sim.peek_label("out").conf, Conf::SECRET);
}

#[test]
fn runtime_declassify_allows_supervisor_for_master_key() {
    let mut m = ModuleBuilder::new("dg");
    let data = m.input("data", 8);
    let principal = m.input("principal", 8);
    let released = m.declassify(data, Label::PUBLIC_UNTRUSTED, principal);
    m.output("out", released);
    let mut sim = Simulator::new(lower(m));
    sim.set("data", 0x42);
    sim.set_label("data", Label::new(Conf::SECRET, Integ::UNTRUSTED));
    sim.set("principal", 0xff); // (S,T) supervisor
    sim.tick();
    assert!(sim.violations().is_empty());
    assert_eq!(sim.peek_label("out"), Label::PUBLIC_UNTRUSTED);
}

#[test]
fn dependent_output_label_is_evaluated_at_runtime() {
    // An output whose release label follows a tag signal.
    let mut m = ModuleBuilder::new("dyn_port");
    let data = m.input("data", 8);
    let tag = m.input("tag", 8);
    let out = m.wire("out", 8);
    m.connect(out, data);
    m.output_labeled("out", out, LabelExpr::FromTag(tag.id()));
    let mut sim = Simulator::new(lower(m));
    sim.set("data", 1);
    sim.set_label("data", l(9, 4));
    sim.set("tag", 0x94); // release capacity (C9, I4): fine
    sim.tick();
    assert!(sim.violations().is_empty());
    sim.set("tag", 0x14); // release capacity (C1, I4): leak
    sim.tick();
    assert_eq!(sim.violations().len(), 1);
}

#[test]
fn eval_is_idempotent_and_tick_counts() {
    let mut m = ModuleBuilder::new("t");
    let a = m.input("a", 4);
    m.output("a_out", a);
    let mut sim = Simulator::new(lower(m));
    sim.set("a", 3);
    assert_eq!(sim.peek("a_out"), 3);
    assert_eq!(sim.peek("a_out"), 3);
    assert_eq!(sim.cycle(), 0);
    sim.run(4);
    assert_eq!(sim.cycle(), 4);
}
