//! Targeted tests for the tape optimizer passes: each pass individually
//! (statistics and semantics against the interpreter oracle), pinned
//! config inputs, and the soundness corner cases the passes must respect
//! (downgrade gates, named nodes, label preservation).

use hdl::ModuleBuilder;
use ifc_lattice::Label;
use proptest::prelude::*;
use sim::{BatchedSim, CompiledSim, OptConfig, SimBackend, Simulator, TrackMode};

fn fold_only() -> OptConfig {
    OptConfig {
        fold: true,
        ..OptConfig::none()
    }
}

fn cse_only() -> OptConfig {
    OptConfig {
        cse: true,
        ..OptConfig::none()
    }
}

fn dce_only() -> OptConfig {
    OptConfig {
        dce: true,
        ..OptConfig::none()
    }
}

fn schedule_only() -> OptConfig {
    OptConfig {
        schedule: true,
        ..OptConfig::none()
    }
}

#[test]
fn fold_evaluates_constant_cones() {
    // A cone fed entirely by literals folds away; logic mixing in a live
    // input survives.
    let mut m = ModuleBuilder::new("foldable");
    let x = m.input("x", 8);
    let a = m.lit(0x0f, 8);
    let b = m.lit(0x35, 8);
    let c = m.xor(a, b); // const
    let d = m.add(c, b); // const
    let live = m.add(d, x); // depends on x
    m.output("out", live);
    m.output("const_out", d);
    let net = m.finish().lower().expect("lowers");

    let plain = CompiledSim::with_tracking(net.clone(), TrackMode::Conservative);
    let mut folded = CompiledSim::with_tracking_opt(net, TrackMode::Conservative, &fold_only());
    assert!(
        folded.tape_len() < plain.tape_len(),
        "fold removed nothing: {} -> {}",
        plain.tape_len(),
        folded.tape_len()
    );
    let stats = folded.opt_stats().clone();
    assert_eq!(stats.passes.len(), 1);
    assert_eq!(stats.passes[0].pass, "fold");
    assert_eq!(stats.passes[0].instrs_before, plain.tape_len());
    assert_eq!(stats.passes[0].removed(), stats.total_removed());
    assert!(stats.total_removed() >= 2, "{stats:?}");

    folded.set("x", 1);
    assert_eq!(folded.peek("const_out"), (0x0f ^ 0x35) + 0x35);
    assert_eq!(folded.peek("out"), (0x0fu128 ^ 0x35) + 0x35 + 1);
}

#[test]
fn pinned_input_folds_like_a_literal() {
    // Pinning `cfg` makes everything derived from it constant; the
    // optimized backend must match an interpreter that drives `cfg` to
    // the pinned value — values *and* labels.
    let mut m = ModuleBuilder::new("cfg_tied");
    let cfg = m.input("cfg", 8);
    let x = m.input("x", 8);
    let mask = m.not(cfg);
    let gated = m.and(x, mask);
    m.output("out", gated);
    let net = m.finish().lower().expect("lowers");

    let config = OptConfig {
        fold: true,
        pin_inputs: vec![("cfg".into(), 0x3c)],
        ..OptConfig::none()
    };
    let plain = CompiledSim::with_tracking(net.clone(), TrackMode::Conservative);
    let mut opt = CompiledSim::with_tracking_opt(net.clone(), TrackMode::Conservative, &config);
    assert!(opt.tape_len() < plain.tape_len());

    let mut oracle = Simulator::with_tracking(net, TrackMode::Conservative);
    oracle.set("cfg", 0x3c);
    for v in [0u128, 0x5a, 0xff, 0x13] {
        oracle.set("x", v);
        oracle.set_label("x", Label::SECRET_TRUSTED);
        opt.set("x", v);
        opt.set_label("x", Label::SECRET_TRUSTED);
        assert_eq!(oracle.peek("out"), opt.peek("out"));
        assert_eq!(oracle.peek_label("out"), opt.peek_label("out"));
        oracle.tick();
        opt.tick();
    }
}

#[test]
#[should_panic(expected = "pinned to a constant")]
fn driving_a_pinned_input_panics() {
    let mut m = ModuleBuilder::new("pinned");
    let cfg = m.input("cfg", 8);
    m.output("out", cfg);
    let net = m.finish().lower().expect("lowers");
    let config = OptConfig {
        fold: true,
        pin_inputs: vec![("cfg".into(), 7)],
        ..OptConfig::none()
    };
    let mut sim = CompiledSim::with_tracking_opt(net, TrackMode::Conservative, &config);
    sim.set("cfg", 1);
}

#[test]
fn cse_merges_duplicate_expressions() {
    // The same xor built twice merges to one instruction; both outputs
    // keep reading the right value because peeks are slot-redirected.
    let mut m = ModuleBuilder::new("dupes");
    let a = m.input("a", 8);
    let b = m.input("b", 8);
    let x1 = m.xor(a, b);
    let x2 = m.xor(a, b);
    let y1 = m.add(x1, a);
    let y2 = m.add(x2, a);
    m.output("o1", y1);
    m.output("o2", y2);
    let net = m.finish().lower().expect("lowers");

    let plain = CompiledSim::with_tracking(net.clone(), TrackMode::Conservative);
    let mut merged = CompiledSim::with_tracking_opt(net, TrackMode::Conservative, &cse_only());
    assert_eq!(
        merged.tape_len(),
        plain.tape_len() - 2,
        "both duplicate pairs merge"
    );
    merged.set("a", 0x21);
    merged.set("b", 0x43);
    merged.set_label("b", Label::SECRET_UNTRUSTED);
    assert_eq!(merged.peek("o1"), merged.peek("o2"));
    assert_eq!(merged.peek("o1"), ((0x21u128 ^ 0x43) + 0x21) & 0xff);
    assert_eq!(merged.peek_label("o1"), merged.peek_label("o2"));
}

#[test]
fn dce_drops_unobserved_cones_and_keeps_named_nodes() {
    let mut m = ModuleBuilder::new("deadwood");
    let a = m.input("a", 8);
    let b = m.input("b", 8);
    // Dead: derived but never observed.
    let dead = m.add(a, b);
    let _deader = m.xor(dead, b);
    // Named: must survive (peekable by name).
    let anded = m.and(a, b);
    let kept = m.wire("kept", 8);
    m.connect(kept, anded);
    let out = m.or(a, b);
    m.output("out", out);
    let net = m.finish().lower().expect("lowers");

    let plain = CompiledSim::with_tracking(net.clone(), TrackMode::Conservative);
    let mut swept = CompiledSim::with_tracking_opt(net, TrackMode::Conservative, &dce_only());
    assert_eq!(swept.tape_len(), plain.tape_len() - 2, "dead cone removed");
    swept.set("a", 0xf0);
    swept.set("b", 0x1e);
    assert_eq!(swept.peek("out"), 0xf0 | 0x1e);
    assert_eq!(swept.peek("kept"), 0xf0 & 0x1e);
}

#[test]
fn dce_preserves_downgrade_violations() {
    // A declassify whose *data* result is never observed must still fire
    // its nonmalleable check every tick — the violation stream is an
    // observable side effect.
    let mut m = ModuleBuilder::new("unused_declass");
    let secret = m.input("secret", 8);
    // Untrusted principal: the nonmalleable rule rejects this downgrade.
    let p = m.tag_lit(Label::PUBLIC_UNTRUSTED);
    let _unused = m.declassify(secret, Label::PUBLIC_UNTRUSTED, p);
    let out = m.not(secret);
    m.output_labeled("out", out, Label::SECRET_UNTRUSTED);
    let net = m.finish().lower().expect("lowers");

    let mut oracle = Simulator::with_tracking(net.clone(), TrackMode::Conservative);
    let mut swept = CompiledSim::with_tracking_opt(net, TrackMode::Conservative, &OptConfig::all());
    for sim in [&mut oracle as &mut dyn Drive, &mut swept as &mut dyn Drive] {
        sim.drive();
    }
    assert_eq!(oracle.violations(), swept.violations());
    assert_eq!(oracle.violations().len(), 3, "one rejection per tick");
}

/// Object-safe shim so the downgrade test drives both backends the same.
trait Drive {
    fn drive(&mut self);
}

impl<B: SimBackend> Drive for B {
    fn drive(&mut self) {
        self.set("secret", 0x5a);
        self.set_label("secret", Label::SECRET_TRUSTED);
        for _ in 0..3 {
            self.tick();
        }
    }
}

#[test]
fn pass_stats_report_pipeline_order() {
    let mut m = ModuleBuilder::new("stats");
    let a = m.input("a", 8);
    let one = m.lit(1, 8);
    let two = m.lit(2, 8);
    let c = m.add(one, two); // foldable
    let d1 = m.xor(a, c);
    let d2 = m.xor(a, c); // CSE duplicate
    let _dead = m.add(d2, one); // dead after its cone ends here
    m.output("out", d1);
    let net = m.finish().lower().expect("lowers");

    let sim = BatchedSim::with_tracking_opt(net, TrackMode::Conservative, 2, &OptConfig::all());
    let stats = sim.opt_stats();
    let names: Vec<&str> = stats.passes.iter().map(|p| p.pass).collect();
    assert_eq!(names, ["fold", "cse", "dce", "schedule"]);
    for w in stats.passes.windows(2) {
        assert_eq!(
            w[0].instrs_after, w[1].instrs_before,
            "passes chain their tape lengths"
        );
    }
    let sched = stats.passes.last().expect("schedule ran");
    assert_eq!(
        sched.instrs_before, sched.instrs_after,
        "schedule is a pure reorder"
    );
    assert!(stats.total_removed() >= 3, "{stats:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn each_pass_alone_preserves_semantics(
        a in any::<u8>(),
        b in any::<u8>(),
        la in 0usize..4,
        lb in 0usize..4,
    ) {
        // A small design with a foldable cone, duplicate subexpressions,
        // a dead cone, and a labelled output; every single-pass config
        // must match the interpreter on values, labels, and violations.
        const LABELS: [Label; 4] = [
            Label::PUBLIC_TRUSTED,
            Label::SECRET_TRUSTED,
            Label::PUBLIC_UNTRUSTED,
            Label::SECRET_UNTRUSTED,
        ];
        let mut m = ModuleBuilder::new("mixed");
        let ia = m.input("a", 8);
        let ib = m.input("b", 8);
        let k = m.lit(0x5a, 8);
        let folded = m.xor(k, k);
        let s1 = m.add(ia, ib);
        let s2 = m.add(ia, ib);
        let _dead = m.sub(s2, k);
        let mixed = m.xor(s1, folded);
        m.output("out", mixed);
        let net = m.finish().lower().expect("lowers");

        for config in [
            fold_only(),
            cse_only(),
            dce_only(),
            schedule_only(),
            OptConfig::all(),
        ] {
            let mut oracle = Simulator::with_tracking(net.clone(), TrackMode::Conservative);
            let mut opt =
                CompiledSim::with_tracking_opt(net.clone(), TrackMode::Conservative, &config);
            for sim in [&mut oracle as &mut dyn SimObj, &mut opt as &mut dyn SimObj] {
                sim.drive_ab(u128::from(a), u128::from(b), LABELS[la], LABELS[lb]);
            }
            prop_assert_eq!(oracle.peek("out"), opt.peek("out"), "config {:?}", &config);
            prop_assert_eq!(oracle.peek_label("out"), opt.peek_label("out"));
            oracle.tick();
            opt.tick();
            prop_assert_eq!(oracle.violations(), opt.violations());
        }
    }
}

/// Object-safe shim for the proptest above.
trait SimObj {
    fn drive_ab(&mut self, a: u128, b: u128, la: Label, lb: Label);
}

impl<B: SimBackend> SimObj for B {
    fn drive_ab(&mut self, a: u128, b: u128, la: Label, lb: Label) {
        self.set("a", a);
        self.set("b", b);
        self.set_label("a", la);
        self.set_label("b", lb);
    }
}
