//! Concurrent access to the native executor compile cache.
//!
//! The farm's workers all warm the same (netlist, mode, width) key when a
//! fleet launches on the native backend: every constructor racing into
//! [`sim::NativeSim`] must resolve to **one** `rustc` invocation, with the
//! losers served from the in-process registry and `cache_stats()` staying
//! exact under the race.
//!
//! Lives in its own integration-test binary: the cache counters are
//! process-wide, so this must be the only test in the process for the
//! asserted deltas to be meaningful. The on-disk layer is redirected to a
//! fresh directory (`NATIVE_SIM_CACHE_DIR`) so the cold path really
//! compiles instead of hitting dylibs left by earlier runs.

use std::sync::Barrier;
use std::thread;

use hdl::ModuleBuilder;
use sim::{cache_stats, native_toolchain_available, NativeSim, TrackMode};

const WORKERS: usize = 8;

fn build_netlist() -> hdl::Netlist {
    let mut m = ModuleBuilder::new("concurrent_cache_probe");
    let a = m.input("a", 16);
    let b = m.input("b", 16);
    let r = m.reg("acc", 16, 0);
    let sum = m.add(a, b);
    let next = m.xor(r, sum);
    m.connect(r, next);
    m.output("acc", r);
    m.finish().lower().expect("lowers")
}

#[test]
fn racing_workers_compile_once() {
    if !native_toolchain_available() {
        eprintln!("skipping: no usable rustc for the native backend on this host");
        return;
    }
    let scratch = std::env::temp_dir().join(format!("nsim-concurrent-{}", std::process::id()));
    std::env::set_var("NATIVE_SIM_CACHE_DIR", &scratch);

    let net = build_netlist();
    let before = cache_stats();
    let barrier = Barrier::new(WORKERS);
    let accs: Vec<u128> = thread::scope(|s| {
        let handles: Vec<_> = (0..WORKERS)
            .map(|_| {
                let net = net.clone();
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    let mut sim = NativeSim::with_tracking(net, TrackMode::Conservative, 4);
                    for lane in 0..4 {
                        sim.set(lane, "a", 3 + lane as u128);
                        sim.set(lane, "b", 5);
                    }
                    sim.run(4);
                    sim.peek(0, "acc")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });
    let after = cache_stats();

    assert_eq!(
        after.compiles - before.compiles,
        1,
        "{WORKERS} racing constructions of one key must invoke rustc exactly once"
    );
    assert_eq!(
        after.disk_hits - before.disk_hits,
        0,
        "the scratch cache dir started empty; nothing can be a disk hit"
    );
    assert_eq!(
        after.memory_hits - before.memory_hits,
        (WORKERS - 1) as u64,
        "every racer after the first must be served from the in-process registry"
    );
    assert!(
        accs.windows(2).all(|w| w[0] == w[1]),
        "all workers share one executor and must agree on the outputs: {accs:?}"
    );

    // A straggler joining after the race is a plain warm hit.
    let _late = NativeSim::with_tracking(build_netlist(), TrackMode::Conservative, 4);
    let warm = cache_stats();
    assert_eq!(warm.compiles, after.compiles);
    assert_eq!(warm.memory_hits, after.memory_hits + 1);

    let _ = std::fs::remove_dir_all(&scratch);
}
