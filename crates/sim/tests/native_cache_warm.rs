//! Warm-cache behaviour of the native executor compile cache.
//!
//! Lives in its own integration-test binary: the cache counters are
//! process-wide, so this is the only test in the process and the deltas
//! it asserts cannot be perturbed by concurrent compilations from
//! unrelated tests.

use hdl::ModuleBuilder;
use sim::{cache_stats, NativeSim, TrackMode};

fn build_netlist() -> hdl::Netlist {
    let mut m = ModuleBuilder::new("warm_cache_probe");
    let a = m.input("a", 8);
    let b = m.input("b", 8);
    let r = m.reg("acc", 8, 0);
    let sum = m.add(a, b);
    let next = m.xor(r, sum);
    m.connect(r, next);
    m.output("acc", r);
    m.finish().lower().expect("lowers")
}

/// A second construction of the same (netlist, mode, lanes) executor must
/// be served from the in-process registry: no new `rustc` invocation, no
/// new disk probe. The very first construction may compile or hit the
/// shared on-disk cache (depending on what earlier runs left behind) —
/// either way it must account for exactly one non-memory lookup.
#[test]
fn second_build_skips_rustc() {
    let before = cache_stats();
    let mut first = NativeSim::with_tracking(build_netlist(), TrackMode::Conservative, 2);
    let after_first = cache_stats();
    assert_eq!(
        (after_first.compiles - before.compiles) + (after_first.disk_hits - before.disk_hits),
        1,
        "cold lookup must be satisfied by exactly one compile or one disk hit"
    );
    assert_eq!(after_first.memory_hits, before.memory_hits);

    let mut second = NativeSim::with_tracking(build_netlist(), TrackMode::Conservative, 2);
    let after_second = cache_stats();
    assert_eq!(
        after_second.compiles, after_first.compiles,
        "warm lookup must not invoke rustc"
    );
    assert_eq!(
        after_second.disk_hits, after_first.disk_hits,
        "warm lookup must not re-probe the disk cache"
    );
    assert_eq!(
        after_second.memory_hits,
        after_first.memory_hits + 1,
        "warm lookup must be served from the in-process registry"
    );

    // The shared executor is genuinely usable by both instances.
    for sim in [&mut first, &mut second] {
        for lane in 0..2 {
            sim.set(lane, "a", 3 + lane as u128);
            sim.set(lane, "b", 5);
        }
        sim.run(4);
    }
    assert_eq!(first.peek(0, "acc"), second.peek(0, "acc"));

    // A different lane width is a different specialization: the registry
    // must miss (the source differs), while repeat lookups for the new
    // width hit memory again.
    let _third = first.with_lanes(4);
    let after_third = cache_stats();
    assert_eq!(after_third.memory_hits, after_second.memory_hits);
    assert_eq!(
        (after_third.compiles - after_second.compiles)
            + (after_third.disk_hits - after_second.disk_hits),
        1
    );
    let _fourth = first.with_lanes(4);
    let after_fourth = cache_stats();
    assert_eq!(after_fourth.memory_hits, after_third.memory_hits + 1);
    assert_eq!(after_fourth.compiles, after_third.compiles);
}
