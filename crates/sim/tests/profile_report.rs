//! Cycle-profiler tests (`--features profile`): bucket accounting, the
//! scheduling-window suggestion, and the profiler-to-scheduler feedback
//! path through `OptConfig::schedule_window`.
#![cfg(feature = "profile")]

use hdl::ModuleBuilder;
use sim::{BatchedSim, OptConfig, Simulator, TrackMode, DEFAULT_SCHEDULE_WINDOW};

fn netlist() -> hdl::Netlist {
    let mut m = ModuleBuilder::new("profiled");
    let a = m.input("a", 8);
    let b = m.input("b", 8);
    let r = m.reg("acc", 8, 1);
    let x = m.xor(a, b);
    let y = m.add(x, r);
    let z = m.and(y, a);
    let next = m.or(z, b);
    m.connect(r, next);
    m.output("out", z);
    m.output("acc", r);
    m.finish().lower().expect("lowers")
}

#[test]
fn buckets_account_for_every_instruction() {
    let mut sim = BatchedSim::with_tracking(netlist(), TrackMode::Conservative, 2);
    let report = sim.profile_report();
    assert_eq!(report.passes, 0, "no pass may run before the first eval");
    assert_eq!(report.total_instrs(), 0);

    for lane in 0..2 {
        sim.set(lane, "a", 0x5a);
        sim.set(lane, "b", 0x3c + lane as u128);
    }
    let ticks = 10u64;
    sim.run(ticks);

    let report = sim.profile_report();
    // `run` executes one recording propagation per cycle (the state was
    // dirty going in and inputs never settle mid-run).
    assert_eq!(report.passes, ticks);
    assert_eq!(
        report.total_instrs(),
        ticks * sim.tape_len() as u64,
        "every tape instruction must be credited to exactly one bucket"
    );
    assert!(report.total_runs() >= report.passes);
    assert!(report.total_runs() <= report.total_instrs());
    // The design contains Xor/Add/And/Or instructions; each must show up
    // under its own opcode name with a plausible share.
    for op in ["Xor", "Add", "And", "Or"] {
        let row = report
            .rows
            .iter()
            .find(|r| r.op == op)
            .unwrap_or_else(|| panic!("no bucket for {op}"));
        assert!(row.instrs >= ticks, "{op} ran every pass");
        assert!(row.runs >= 1);
    }

    sim.profile_reset();
    let cleared = sim.profile_report();
    assert_eq!(cleared.passes, 0);
    assert_eq!(cleared.rows, vec![]);
}

#[test]
fn window_suggestion_is_bounded_and_feeds_the_scheduler() {
    let mut sim =
        BatchedSim::with_tracking_opt(netlist(), TrackMode::Conservative, 2, &OptConfig::all());
    for lane in 0..2 {
        sim.set(lane, "a", 1);
        sim.set(lane, "b", 2);
    }
    sim.run(5);
    let suggested = sim.profile_report().suggest_window();
    assert!(
        (DEFAULT_SCHEDULE_WINDOW..=512).contains(&suggested),
        "suggestion {suggested} out of range"
    );

    // Feeding the suggestion back through the config must preserve
    // semantics: the rescheduled tape matches the interpreter oracle.
    let config = OptConfig {
        schedule_window: Some(suggested),
        ..OptConfig::all()
    };
    let net = netlist();
    let mut tuned = BatchedSim::with_tracking_opt(net.clone(), TrackMode::Conservative, 2, &config);
    let mut oracle = Simulator::with_tracking(net, TrackMode::Conservative);
    for step in 0..8u128 {
        oracle.set("a", 0x11 + step);
        oracle.set("b", 0x2f ^ step);
        for lane in 0..2 {
            tuned.set(lane, "a", 0x11 + step);
            tuned.set(lane, "b", 0x2f ^ step);
        }
        for lane in 0..2 {
            assert_eq!(tuned.peek(lane, "out"), oracle.peek("out"));
            assert_eq!(tuned.peek(lane, "acc"), oracle.peek("acc"));
        }
        oracle.tick();
        tuned.tick();
    }
}

#[test]
fn tiny_window_still_schedules_correctly() {
    // A degenerate 1-instruction window reduces scheduling to a no-op
    // permutation; semantics must hold (guards the window plumbing).
    let config = OptConfig {
        schedule_window: Some(1),
        ..OptConfig::all()
    };
    let net = netlist();
    let mut tiny = BatchedSim::with_tracking_opt(net.clone(), TrackMode::Precise, 2, &config);
    let mut oracle = Simulator::with_tracking(net, TrackMode::Precise);
    for lane in 0..2 {
        tiny.set(lane, "a", 0x7e);
        tiny.set(lane, "b", 0x81);
    }
    oracle.set("a", 0x7e);
    oracle.set("b", 0x81);
    for _ in 0..4 {
        for lane in 0..2 {
            assert_eq!(tiny.peek(lane, "out"), oracle.peek("out"));
        }
        oracle.tick();
        tiny.tick();
    }
}
