//! Differential testing: every lane of the native-codegen backend against
//! the interpreting simulator.
//!
//! Each lane of a [`NativeSim`] is an independent session, so lane `l`
//! driven with stimulus `S_l` must observe exactly what a fresh
//! [`Simulator`] (the reference oracle) observes when driven with `S_l`
//! alone: settled values and labels of every output, the full recorded
//! violation stream (order included), the truncation flag, and final
//! register and memory state — in all three tracking modes and at every
//! supported lane width.
//!
//! Unlike the batched/compiled differential suites this one uses a small
//! *fixed* recipe set rather than proptest: every distinct
//! (netlist, mode, lanes) combination costs one `rustc` invocation on a
//! cold cache, so the suite keeps the key count bounded and lets the
//! on-disk compile cache amortise repeat runs to zero compiles.

use hdl::{Design, ModuleBuilder, Sig};
use ifc_lattice::Label;
use sim::{LaneBackend, NativeSim, OptConfig, SimBackend, Simulator, TrackMode, SUPPORTED_LANES};

const LABELS: [Label; 4] = [
    Label::PUBLIC_TRUSTED,
    Label::SECRET_TRUSTED,
    Label::PUBLIC_UNTRUSTED,
    Label::SECRET_UNTRUSTED,
];

/// A recipe for one labelled synchronous design (same shape as the
/// batched differential suite's generator, with hand-picked seeds).
#[derive(Debug, Clone)]
struct Recipe {
    ops: Vec<(u8, u8, u8)>,
    guard_pairs: Vec<(u8, u8, bool)>,
    stimulus: Vec<([u8; 4], [u8; 4])>,
    downgrades: (u8, u8, u8, u8),
}

/// Three hand-picked recipes that together cover every opcode family the
/// builder can emit (logic, arithmetic, compares, slice/cat, reductions,
/// mux, guarded registers, memory read/write, declassify, endorse) plus
/// open and labelled outputs.
fn recipes() -> Vec<Recipe> {
    vec![
        Recipe {
            ops: vec![(0, 0, 1), (3, 1, 2), (11, 2, 3), (10, 0, 3), (7, 4, 0)],
            guard_pairs: vec![(1, 2, true), (3, 0, false)],
            stimulus: vec![
                ([0x11, 0x22, 0x33, 0x44], [0, 1, 2, 3]),
                ([0xaa, 0x00, 0xff, 0x5a], [1, 1, 0, 2]),
                ([0x01, 0x80, 0x7e, 0xe7], [3, 0, 1, 0]),
            ],
            downgrades: (2, 3, 5, 1),
        },
        Recipe {
            ops: vec![
                (4, 0, 1),
                (5, 1, 2),
                (6, 2, 3),
                (8, 3, 0),
                (9, 0, 2),
                (2, 4, 5),
                (1, 6, 1),
            ],
            guard_pairs: vec![(0, 1, false), (2, 3, true), (5, 2, false)],
            stimulus: vec![
                ([0xde, 0xad, 0xbe, 0xef], [2, 2, 1, 1]),
                ([0x00, 0x00, 0x00, 0x00], [0, 0, 0, 0]),
                ([0xff, 0xff, 0xff, 0xff], [3, 3, 3, 3]),
                ([0x5a, 0xa5, 0x3c, 0xc3], [1, 0, 3, 2]),
            ],
            downgrades: (6, 0, 1, 3),
        },
        Recipe {
            ops: vec![(10, 0, 1), (7, 4, 2), (3, 5, 5), (11, 3, 0)],
            guard_pairs: vec![(4, 1, true)],
            stimulus: vec![
                ([0x01, 0x02, 0x04, 0x08], [1, 2, 3, 0]),
                ([0x10, 0x20, 0x40, 0x80], [0, 3, 2, 1]),
            ],
            downgrades: (1, 2, 4, 0),
        },
    ]
}

/// Builds a labelled design from a recipe: four 8-bit inputs, a derived
/// signal pool, guarded registers and a memory, downgrade nodes, and a
/// mix of open and labelled outputs (identical to the batched suite's
/// builder so the two suites exercise the same design family).
fn build(recipe: &Recipe) -> (Design, Vec<String>) {
    let mut m = ModuleBuilder::new("fuzz_native");
    let inputs: Vec<Sig> = (0..4).map(|i| m.input(&format!("in{i}"), 8)).collect();
    let mut pool: Vec<Sig> = inputs.clone();

    for &(op, ai, bi) in &recipe.ops {
        let a = pool[ai as usize % pool.len()];
        let b = pool[bi as usize % pool.len()];
        let (a, b) = if a.width() == b.width() {
            (a, b)
        } else {
            (a, a)
        };
        let node = match op % 12 {
            0 => m.and(a, b),
            1 => m.or(a, b),
            2 => m.xor(a, b),
            3 => m.add(a, b),
            4 => m.sub(a, b),
            5 => m.eq(a, b),
            6 => m.lt(a, b),
            7 => {
                if a.width() > 1 {
                    m.slice(a, a.width() - 1, a.width() / 2)
                } else {
                    m.not(a)
                }
            }
            8 => m.reduce_xor(a),
            9 => m.reduce_and(a),
            10 => m.cat(a, b),
            _ => {
                let sel = m.reduce_or(a);
                m.mux(sel, a, b)
            }
        };
        if node.width() <= 64 {
            pool.push(node);
        }
    }

    let mem = m.mem("scratch", 8, 8, vec![1, 2, 3]);
    let mut outputs = Vec::new();
    for (gi, &(si, vi, use_else)) in recipe.guard_pairs.iter().enumerate() {
        let guard_src = pool[si as usize % pool.len()];
        let guard = if guard_src.width() == 1 {
            guard_src
        } else {
            m.reduce_or(guard_src)
        };
        let value8 = {
            let v = pool[vi as usize % pool.len()];
            if v.width() == 8 {
                v
            } else {
                inputs[vi as usize % 4]
            }
        };
        let r = m.reg(&format!("r{gi}"), 8, u128::from(vi));
        if use_else {
            m.when_else(
                guard,
                |m| m.connect(r, value8),
                |m| {
                    let inv = m.not(value8);
                    m.connect(r, inv);
                },
            );
        } else {
            m.when(guard, |m| m.connect(r, value8));
        }
        let addr = m.slice(value8, 2, 0);
        m.when(guard, |m| m.mem_write(mem, addr, value8));
        let q = m.mem_read(mem, addr);
        let mixed = m.xor(q, r);
        let name = format!("out{gi}");
        if gi % 2 == 0 {
            m.output(&name, mixed);
        } else {
            m.output_labeled(&name, mixed, Label::SECRET_UNTRUSTED);
        }
        outputs.push(name);
    }

    let (d_data, d_prin, e_data, e_prin) = recipe.downgrades;
    let d_src = pool[d_data as usize % pool.len()];
    let d_p = m.tag_lit(LABELS[d_prin as usize % LABELS.len()]);
    let declassified = m.declassify(d_src, Label::PUBLIC_UNTRUSTED, d_p);
    m.output("dec_out", declassified);
    outputs.push("dec_out".into());
    let e_src = pool[e_data as usize % pool.len()];
    let e_p = m.tag_lit(LABELS[e_prin as usize % LABELS.len()]);
    let endorsed = m.endorse(e_src, Label::PUBLIC_TRUSTED, e_p);
    m.output("end_out", endorsed);
    outputs.push("end_out".into());

    (m.finish(), outputs)
}

/// Lane `lane`'s stimulus: a deterministic per-lane variation of the
/// recipe's base stimulus, so every lane sees different values *and*
/// different labels (and so raises violations on different cycles).
fn lane_stimulus(recipe: &Recipe, lane: usize) -> Vec<([u8; 4], [u8; 4])> {
    recipe
        .stimulus
        .iter()
        .map(|(values, label_idx)| {
            let mut v = *values;
            let mut li = *label_idx;
            for i in 0..4 {
                v[i] = v[i].wrapping_add((lane as u8).wrapping_mul(17).wrapping_add(i as u8));
                li[i] = li[i].wrapping_add(lane as u8);
            }
            (v, li)
        })
        .collect()
}

/// Drives the interpreter oracle with one lane's stimulus, recording
/// per-step output values and labels.
fn drive_oracle(
    sim: &mut Simulator,
    stimulus: &[([u8; 4], [u8; 4])],
    outputs: &[String],
) -> Vec<(u128, Label)> {
    let mut observed = Vec::new();
    for (values, label_idx) in stimulus {
        for i in 0..4 {
            SimBackend::set(sim, &format!("in{i}"), u128::from(values[i]));
            SimBackend::set_label(
                sim,
                &format!("in{i}"),
                LABELS[label_idx[i] as usize % LABELS.len()],
            );
        }
        for name in outputs {
            observed.push((
                SimBackend::peek(sim, name),
                SimBackend::peek_label(sim, name),
            ));
        }
        SimBackend::tick(sim);
    }
    observed
}

/// Drives all lanes of the native backend, each with its own stimulus,
/// recording the same per-step observations per lane.
fn drive_native(
    sim: &mut NativeSim,
    recipe: &Recipe,
    outputs: &[String],
) -> Vec<Vec<(u128, Label)>> {
    let lanes = sim.lanes();
    let stimuli: Vec<_> = (0..lanes).map(|l| lane_stimulus(recipe, l)).collect();
    let mut observed = vec![Vec::new(); lanes];
    for step in 0..recipe.stimulus.len() {
        for (lane, stim) in stimuli.iter().enumerate() {
            let (values, label_idx) = &stim[step];
            for i in 0..4 {
                sim.set(lane, &format!("in{i}"), u128::from(values[i]));
                sim.set_label(
                    lane,
                    &format!("in{i}"),
                    LABELS[label_idx[i] as usize % LABELS.len()],
                );
            }
        }
        for (lane, obs) in observed.iter_mut().enumerate() {
            for name in outputs {
                obs.push((sim.peek(lane, name), sim.peek_label(lane, name)));
            }
        }
        sim.tick();
    }
    observed
}

/// The full cross-check for one (recipe, mode, lane width): every native
/// lane against a fresh interpreter driven with that lane's stimulus.
fn check_lanes(recipe: &Recipe, mode: TrackMode, lanes: usize) {
    let (design, outputs) = build(recipe);
    let netlist = design.lower().expect("recipes are acyclic");
    let opt = OptConfig::all();
    let mut native =
        <NativeSim as LaneBackend>::with_tracking_opt(netlist.clone(), mode, lanes, &opt);
    let native_obs = drive_native(&mut native, recipe, &outputs);

    for (lane, lane_obs) in native_obs.iter().enumerate() {
        let stim = lane_stimulus(recipe, lane);
        let mut interp = Simulator::with_tracking(netlist.clone(), mode);
        let interp_obs = drive_oracle(&mut interp, &stim, &outputs);

        assert_eq!(
            &interp_obs, lane_obs,
            "lane {lane} diverged from interpreter in {mode:?} at {lanes} lanes"
        );
        assert_eq!(
            Simulator::violations(&interp),
            LaneBackend::violations(&native, lane),
            "lane {lane} violation stream diverged in {mode:?} at {lanes} lanes"
        );
        assert_eq!(
            interp.violations_truncated(),
            LaneBackend::violations_truncated(&native, lane)
        );
        assert_eq!(Simulator::cycle(&interp), LaneBackend::cycle(&native));
        // Final architectural state: registers (named, so they survive
        // every optimizer pass) and the memory.
        for gi in 0..recipe.guard_pairs.len() {
            let name = format!("r{gi}");
            assert_eq!(
                SimBackend::peek(&mut interp, &name),
                native.peek(lane, &name)
            );
            assert_eq!(
                SimBackend::peek_label(&mut interp, &name),
                native.peek_label(lane, &name)
            );
        }
        let mi = Simulator::mem_index(&interp, "scratch").expect("mem exists");
        for addr in 0..8 {
            assert_eq!(
                Simulator::mem_cell(&interp, mi, addr),
                native.mem_cell(lane, mi, addr)
            );
            assert_eq!(
                Simulator::mem_cell_label(&interp, mi, addr),
                native.mem_cell_label(lane, mi, addr)
            );
        }
    }
}

#[test]
fn native_lanes_match_interpreter_off() {
    for recipe in recipes() {
        check_lanes(&recipe, TrackMode::Off, 4);
    }
}

#[test]
fn native_lanes_match_interpreter_conservative() {
    for recipe in recipes() {
        check_lanes(&recipe, TrackMode::Conservative, 4);
    }
}

#[test]
fn native_lanes_match_interpreter_precise() {
    for recipe in recipes() {
        check_lanes(&recipe, TrackMode::Precise, 4);
    }
}

#[test]
fn every_lane_width_matches_interpreter() {
    // One representative recipe across every supported lane width in the
    // strictest mode (precise label rules exercise the most codegen
    // paths: mux arm selection, downgrade gates, release checks).
    let recipe = &recipes()[0];
    for lanes in SUPPORTED_LANES {
        check_lanes(recipe, TrackMode::Precise, lanes);
    }
}

#[test]
fn native_run_matches_stepped_ticks() {
    // The hoisted `run` loop must equal n repeated ticks, violations
    // included (a leaky design raises one violation per cycle per lane).
    let mut m = ModuleBuilder::new("leaky");
    let secret = m.input("secret", 8);
    let count = m.reg("count", 8, 0);
    let one = m.lit(1, 8);
    let next = m.add(count, one);
    m.connect(count, next);
    m.output("out", secret);
    m.output("count", count);
    let net = m.finish().lower().expect("lowers");

    let opt = OptConfig::all();
    let mut stepped = <NativeSim as LaneBackend>::with_tracking_opt(
        net.clone(),
        TrackMode::Conservative,
        4,
        &opt,
    );
    let mut batch_run =
        <NativeSim as LaneBackend>::with_tracking_opt(net, TrackMode::Conservative, 4, &opt);
    for sim in [&mut stepped, &mut batch_run] {
        for lane in 0..4 {
            sim.set(lane, "secret", 0x40 + lane as u128);
            // Lanes 0 and 2 leak; lanes 1 and 3 stay clean.
            let label = if lane % 2 == 0 {
                Label::SECRET_TRUSTED
            } else {
                Label::PUBLIC_TRUSTED
            };
            sim.set_label(lane, "secret", label);
        }
    }
    for _ in 0..7 {
        stepped.tick();
    }
    LaneBackend::run(&mut batch_run, 7);
    assert_eq!(LaneBackend::cycle(&stepped), LaneBackend::cycle(&batch_run));
    for lane in 0..4 {
        assert_eq!(
            LaneBackend::violations(&stepped, lane),
            LaneBackend::violations(&batch_run, lane)
        );
        let expected = if lane % 2 == 0 { 7 } else { 0 };
        assert_eq!(LaneBackend::violations(&stepped, lane).len(), expected);
        assert_eq!(
            stepped.peek(lane, "count"),
            batch_run.peek(lane, "count"),
            "lane {lane} register state diverged"
        );
    }
}
