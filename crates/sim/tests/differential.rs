//! Differential testing: the lowering + topological simulator against an
//! independent, naive interpreter of the structured design.
//!
//! The reference interpreter never lowers: it evaluates expressions
//! recursively on demand and applies guarded statements in program order,
//! exactly as the language semantics prescribe. Any disagreement exposes
//! a bug in lowering (mux-tree construction, last-connect priority,
//! enables) or in the simulator's evaluation order.

use std::collections::HashMap;

use hdl::{mask, Action, BinOp, Design, ModuleBuilder, Node, NodeId, Sig, UnOp};
use proptest::prelude::*;
use sim::Simulator;

/// A naive big-step interpreter over the *unlowered* design.
struct Reference<'d> {
    design: &'d Design,
    regs: HashMap<NodeId, u128>,
    mems: Vec<Vec<u128>>,
    inputs: HashMap<NodeId, u128>,
}

impl<'d> Reference<'d> {
    fn new(design: &'d Design) -> Reference<'d> {
        let mems = design
            .mems()
            .iter()
            .map(|m| {
                let mut cells = m.init.clone();
                cells.resize(m.depth, 0);
                cells
            })
            .collect();
        let regs = design
            .node_ids()
            .filter_map(|id| match design.node(id) {
                Node::Reg { init, .. } => Some((id, *init)),
                _ => None,
            })
            .collect();
        Reference {
            design,
            regs,
            mems,
            inputs: HashMap::new(),
        }
    }

    fn eval(&self, id: NodeId, memo: &mut HashMap<NodeId, u128>) -> u128 {
        if let Some(&v) = memo.get(&id) {
            return v;
        }
        let width = self.design.width_of(id);
        let value = match self.design.node(id) {
            Node::Input { .. } => self.inputs.get(&id).copied().unwrap_or(0),
            Node::Const { value, .. } => *value,
            Node::Reg { .. } => self.regs[&id],
            Node::Wire { default, .. } => {
                // Program-order last matching connect wins.
                let mut result = default.map(|d| self.eval(d, memo));
                for stmt in self.design.stmts() {
                    if let Action::Connect { dst, src } = stmt.action {
                        if dst == id && self.guards_hold(&stmt.guards, memo) {
                            result = Some(self.eval(src, memo));
                        }
                    }
                }
                result.expect("driven wire")
            }
            Node::MemRead { mem, addr } => {
                let cells = &self.mems[mem.index()];
                let a = (self.eval(*addr, memo) as usize) % cells.len();
                cells[a]
            }
            Node::Unary { op, a } => {
                let av = self.eval(*a, memo);
                let aw = self.design.width_of(*a);
                match op {
                    UnOp::Not => !av,
                    UnOp::ReduceOr => u128::from(av != 0),
                    UnOp::ReduceAnd => u128::from(av == mask(u128::MAX, aw)),
                    UnOp::ReduceXor => u128::from(av.count_ones() % 2 == 1),
                }
            }
            Node::Binary { op, a, b } => {
                let (x, y) = (self.eval(*a, memo), self.eval(*b, memo));
                match op {
                    BinOp::And => x & y,
                    BinOp::Or => x | y,
                    BinOp::Xor => x ^ y,
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::Eq => u128::from(x == y),
                    BinOp::Ne => u128::from(x != y),
                    BinOp::Lt => u128::from(x < y),
                    BinOp::Ge => u128::from(x >= y),
                    BinOp::TagLeq => u128::from((x >> 4) <= (y >> 4) && (x & 0xf) >= (y & 0xf)),
                    BinOp::TagJoin => ((x >> 4).max(y >> 4) << 4) | (x & 0xf).min(y & 0xf),
                    BinOp::TagMeet => ((x >> 4).min(y >> 4) << 4) | (x & 0xf).max(y & 0xf),
                }
            }
            Node::Mux { sel, t, f } => {
                if self.eval(*sel, memo) & 1 == 1 {
                    self.eval(*t, memo)
                } else {
                    self.eval(*f, memo)
                }
            }
            Node::Slice { a, hi, lo } => (self.eval(*a, memo) >> lo) & mask(u128::MAX, hi - lo + 1),
            Node::Cat { hi, lo } => {
                let lo_w = self.design.width_of(*lo);
                (self.eval(*hi, memo) << lo_w) | self.eval(*lo, memo)
            }
            Node::Declassify { data, .. } | Node::Endorse { data, .. } => self.eval(*data, memo),
        };
        let value = mask(value, width.max(1));
        memo.insert(id, value);
        value
    }

    fn guards_hold(&self, guards: &[hdl::Guard], memo: &mut HashMap<NodeId, u128>) -> bool {
        guards
            .iter()
            .all(|g| (self.eval(g.cond, memo) & 1 == 1) == g.polarity)
    }

    /// One clock cycle: evaluate, then commit register and memory writes.
    fn tick(&mut self) {
        let mut memo = HashMap::new();
        let mut new_regs = self.regs.clone();
        let mut mem_writes: Vec<(usize, usize, u128)> = Vec::new();
        for stmt in self.design.stmts() {
            match stmt.action {
                Action::Connect { dst, src } => {
                    if matches!(self.design.node(dst), Node::Reg { .. })
                        && self.guards_hold(&stmt.guards, &mut memo)
                    {
                        new_regs.insert(dst, self.eval(src, &mut memo));
                    }
                }
                Action::MemWrite { mem, addr, data } => {
                    if self.guards_hold(&stmt.guards, &mut memo) {
                        let depth = self.mems[mem.index()].len();
                        mem_writes.push((
                            mem.index(),
                            (self.eval(addr, &mut memo) as usize) % depth,
                            self.eval(data, &mut memo),
                        ));
                    }
                }
            }
        }
        self.regs = new_regs;
        for (m, a, v) in mem_writes {
            self.mems[m][a] = v;
        }
    }
}

/// A recipe for one random synchronous design.
#[derive(Debug, Clone)]
struct Recipe {
    ops: Vec<(u8, u8, u8)>,
    guard_pairs: Vec<(u8, u8, bool)>,
    stimulus: Vec<[u8; 4]>,
}

fn arb_recipe() -> impl Strategy<Value = Recipe> {
    (
        proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..24),
        proptest::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 1..8),
        proptest::collection::vec(any::<[u8; 4]>(), 1..12),
    )
        .prop_map(|(ops, guard_pairs, stimulus)| Recipe {
            ops,
            guard_pairs,
            stimulus,
        })
}

/// Builds a design from a recipe: four 8-bit inputs, a pool of derived
/// signals, registers and a small memory driven under random guards.
fn build(recipe: &Recipe) -> (Design, Vec<String>) {
    let mut m = ModuleBuilder::new("fuzz");
    let inputs: Vec<Sig> = (0..4).map(|i| m.input(&format!("in{i}"), 8)).collect();
    let mut pool: Vec<Sig> = inputs.clone();

    for &(op, ai, bi) in &recipe.ops {
        let a = pool[ai as usize % pool.len()];
        let b = pool[bi as usize % pool.len()];
        let (a, b) = if a.width() == b.width() {
            (a, b)
        } else {
            (a, a)
        };
        let node = match op % 10 {
            0 => m.and(a, b),
            1 => m.or(a, b),
            2 => m.xor(a, b),
            3 => m.add(a, b),
            4 => m.sub(a, b),
            5 => m.eq(a, b),
            6 => m.lt(a, b),
            7 => {
                if a.width() > 1 {
                    m.slice(a, a.width() - 1, a.width() / 2)
                } else {
                    m.not(a)
                }
            }
            8 => m.reduce_xor(a),
            _ => {
                let sel = m.reduce_or(a);
                m.mux(sel, b, b)
            }
        };
        pool.push(node);
    }

    // Registers driven under guards, plus a memory.
    let mem = m.mem("scratch", 8, 8, vec![1, 2, 3]);
    let mut outputs = Vec::new();
    for (gi, &(si, vi, use_else)) in recipe.guard_pairs.iter().enumerate() {
        let guard_src = pool[si as usize % pool.len()];
        let guard = if guard_src.width() == 1 {
            guard_src
        } else {
            m.reduce_or(guard_src)
        };
        let value8 = {
            let v = pool[vi as usize % pool.len()];
            if v.width() == 8 {
                v
            } else {
                inputs[vi as usize % 4]
            }
        };
        let r = m.reg(&format!("r{gi}"), 8, u128::from(vi));
        if use_else {
            m.when_else(
                guard,
                |m| m.connect(r, value8),
                |m| {
                    let inv = m.not(value8);
                    m.connect(r, inv);
                },
            );
        } else {
            m.when(guard, |m| m.connect(r, value8));
        }
        let addr = m.slice(value8, 2, 0);
        m.when(guard, |m| m.mem_write(mem, addr, value8));
        let q = m.mem_read(mem, addr);
        let mixed = m.xor(q, r);
        let name = format!("out{gi}");
        m.output(&name, mixed);
        outputs.push(name);
    }
    (m.finish(), outputs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn simulator_matches_reference_interpreter(recipe in arb_recipe()) {
        let (design, outputs) = build(&recipe);
        let netlist = design.lower().expect("random designs are acyclic");
        let mut sim = Simulator::with_tracking(netlist, sim::TrackMode::Off);
        let mut reference = Reference::new(&design);

        for step in &recipe.stimulus {
            for (i, &v) in step.iter().enumerate() {
                sim.set(&format!("in{i}"), u128::from(v));
                reference
                    .inputs
                    .insert(design.input(&format!("in{i}")).expect("input"), u128::from(v));
            }
            // Compare settled outputs before the clock edge.
            let mut memo = HashMap::new();
            for name in &outputs {
                let expect = reference.eval(design.output(name).expect("output"), &mut memo);
                prop_assert_eq!(
                    sim.peek(name),
                    expect,
                    "output {} diverged at cycle {}",
                    name,
                    sim.cycle()
                );
            }
            sim.tick();
            reference.tick();
        }
    }
}
