//! Bounded, sharded work-stealing job queues.
//!
//! One shard per worker. Admission hashes jobs across shards; each
//! worker drains its own shard from the back (LIFO — the freshest job is
//! the one whose tenant most recently showed demand) and, when empty,
//! steals from the *front* of its neighbours (FIFO — the oldest waiting
//! job, bounding starvation). Total occupancy is capped: a push against
//! a full queue fails and surfaces as admission backpressure rather than
//! unbounded buffering.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::tenant::Job;

#[derive(Debug)]
pub(crate) struct WorkQueues {
    shards: Vec<Mutex<VecDeque<Job>>>,
    /// Total jobs across all shards (kept outside the shard locks so
    /// admission and the scheduler read depth without sweeping).
    len: AtomicUsize,
    capacity: usize,
    steals: AtomicU64,
}

impl WorkQueues {
    pub(crate) fn new(shards: usize, capacity: usize) -> WorkQueues {
        assert!(shards > 0, "at least one shard");
        assert!(capacity > 0, "zero capacity would refuse every job");
        WorkQueues {
            shards: (0..shards).map(|_| Mutex::new(VecDeque::new())).collect(),
            len: AtomicUsize::new(0),
            capacity,
            steals: AtomicU64::new(0),
        }
    }

    /// Total queued jobs.
    pub(crate) fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Jobs popped from a shard other than the popping worker's own.
    pub(crate) fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Enqueues a job on its home shard, or returns it when the pool is
    /// at capacity (backpressure).
    pub(crate) fn try_push(&self, job: Job) -> Result<(), Job> {
        // Optimistically reserve a slot; undo on the (racy but
        // conservative) full case. Occupancy may transiently read one
        // high, never over-admit.
        if self.len.fetch_add(1, Ordering::Relaxed) >= self.capacity {
            self.len.fetch_sub(1, Ordering::Relaxed);
            return Err(job);
        }
        let shard = (job.id as usize) % self.shards.len();
        self.shards[shard]
            .lock()
            .expect("queue shard poisoned")
            .push_back(job);
        Ok(())
    }

    /// Pops a job for `worker`: own shard back first, then steals the
    /// front of the other shards. The flag reports whether the job was
    /// stolen from another worker's shard (telemetry attribution).
    pub(crate) fn pop(&self, worker: usize) -> Option<(Job, bool)> {
        let n = self.shards.len();
        let own = worker % n;
        if let Some(job) = self.shards[own]
            .lock()
            .expect("queue shard poisoned")
            .pop_back()
        {
            self.len.fetch_sub(1, Ordering::Relaxed);
            return Some((job, false));
        }
        for off in 1..n {
            let victim = (own + off) % n;
            if let Some(job) = self.shards[victim]
                .lock()
                .expect("queue shard poisoned")
                .pop_front()
            {
                self.len.fetch_sub(1, Ordering::Relaxed);
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some((job, true));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::{JobSpec, TenantId};
    use ifc_lattice::Label;

    fn job(id: u64) -> Job {
        Job {
            id,
            tenant: TenantId(0),
            spec: JobSpec {
                key_slot: 0,
                blocks: 1,
                seed: id,
                decrypt: false,
                user: Label::PUBLIC_TRUSTED,
            },
        }
    }

    #[test]
    fn backpressure_at_capacity() {
        let q = WorkQueues::new(2, 3);
        for id in 0..3 {
            assert!(q.try_push(job(id)).is_ok());
        }
        assert!(q.try_push(job(3)).is_err(), "fourth push must bounce");
        assert_eq!(q.len(), 3);
        assert!(q.pop(0).is_some());
        assert!(q.try_push(job(4)).is_ok(), "freed slot accepts again");
    }

    #[test]
    fn pop_reports_steals() {
        let q = WorkQueues::new(2, 8);
        q.try_push(job(0)).unwrap(); // shard 0
        let (own, stolen) = q.pop(0).unwrap();
        assert_eq!(own.id, 0);
        assert!(!stolen, "own-shard pop is not a steal");
        q.try_push(job(2)).unwrap(); // shard 0 again
        let (theft, stolen) = q.pop(1).unwrap();
        assert_eq!(theft.id, 2);
        assert!(stolen, "cross-shard pop is a steal");
    }

    #[test]
    fn steal_crosses_shards_and_counts() {
        let q = WorkQueues::new(2, 8);
        // Even ids land on shard 0; worker 1's own shard stays empty.
        for id in [0, 2, 4] {
            q.try_push(job(id)).unwrap();
        }
        assert_eq!(q.steals(), 0);
        let (stolen, _) = q.pop(1).expect("steals from shard 0");
        assert_eq!(stolen.id, 0, "steal takes the oldest (front)");
        assert_eq!(q.steals(), 1);
        let (own, _) = q.pop(0).expect("own shard pops back");
        assert_eq!(own.id, 4, "own pop takes the freshest (back)");
        assert_eq!(q.steals(), 1, "own pop is not a steal");
    }

    #[test]
    fn drains_to_empty() {
        let q = WorkQueues::new(3, 16);
        for id in 0..10 {
            q.try_push(job(id)).unwrap();
        }
        let mut seen = 0;
        while q.pop(seen % 3).is_some() {
            seen += 1;
        }
        assert_eq!(seen, 10);
        assert_eq!(q.len(), 0);
    }
}
