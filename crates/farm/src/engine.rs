//! Per-worker lane engine: independent job lifecycles on one batch.
//!
//! The fleet's batched driver keeps every lane in the same protocol
//! phase (all loading keys, then all streaming). A farm worker cannot:
//! jobs land on lanes at different times, so one lane may be allocating
//! its key cells while its neighbours stream blocks. [`LaneEngine`]
//! drives one [`BatchedDriver`] with a per-lane phase machine over
//! [`LaneAction`]s, harvests completed jobs as they finish, and lets the
//! scheduler refill the freed lanes immediately.
//!
//! For re-packing, [`LaneEngine::quiesce`] parks submissions until the
//! pipeline drains, [`LaneEngine::dismantle`] checkpoints every live
//! session ([`sim::LaneSnapshot`]), and [`LaneEngine::adopt`] resumes a
//! checkpointed session on a lane of a *new* engine built over the same
//! compiled tape — possibly at a different width, possibly on the other
//! simulator backend.

use std::sync::{Arc, Mutex};

use accel::batch::{BatchedDriver, LaneAction};
use accel::driver::{Request, Response};
use accel::fleet::{block_from, KEY_DERIVE_INDEX};
use aes_core::Aes;
use sim::{LaneBackend, LaneSnapshot, RuntimeViolation};
use telemetry::{arg, AuditEvent, AuditKind, AuditSink, FlightRecorder, Tracer};

use crate::tenant::{Job, JobOutcome, TenantEntry};

/// Cycles a freshly written key waits for the decrypt-key preparation
/// unit to finish expanding RK10 (mirrors
/// [`BatchedDriver::load_keys`]'s idle).
const KEY_PREP_CYCLES: u8 = 14;

/// Upper bound on [`LaneEngine::quiesce`] — far above the pipeline
/// depth; exceeding it means requests were lost, which is a bug worth a
/// panic, not a hang.
const QUIESCE_CYCLE_CAP: u64 = 10_000;

/// Where a lane's job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LanePhase {
    /// Allocate the key's high cell to the job's principal.
    AllocHi,
    /// Allocate the key's low cell.
    AllocLo,
    /// Write the key's high 64 bits.
    WriteHi,
    /// Write the key's low 64 bits.
    WriteLo,
    /// Idle while the decrypt-key preparation unit expands RK10.
    KeyWait(u8),
    /// Stream request blocks / await responses.
    Stream,
}

/// One job resident on a lane, with everything needed to verify its
/// stream and to survive a re-pack.
#[derive(Debug)]
pub(crate) struct ActiveJob {
    job: Job,
    key_hi: u64,
    key_lo: u64,
    oracle: Aes,
    phase: LanePhase,
    /// Next block index to submit (0..spec.blocks).
    next_block: usize,
    /// Harvested responses, in completion order.
    responses: Vec<Response>,
    /// Release-check refusals harvested so far.
    hw_rejections: usize,
    /// Length of the lane's violation stream when the job landed; the
    /// delta at completion is the job's violation count. Survives
    /// re-packing because snapshots carry the full stream.
    vio_base: usize,
}

impl ActiveJob {
    fn new(job: Job, vio_base: usize) -> ActiveJob {
        let key = block_from(job.spec.seed, KEY_DERIVE_INDEX);
        ActiveJob {
            key_hi: u64::from_be_bytes(key[..8].try_into().expect("8 bytes")),
            key_lo: u64::from_be_bytes(key[8..].try_into().expect("8 bytes")),
            oracle: Aes::new_128(key),
            phase: LanePhase::AllocHi,
            next_block: 0,
            responses: Vec::with_capacity(job.spec.blocks),
            hw_rejections: 0,
            vio_base,
            job,
        }
    }

    fn done_submitting(&self) -> bool {
        self.phase == LanePhase::Stream && self.next_block == self.job.spec.blocks
    }

    /// Checks the i-th response of a deterministic stream against the
    /// software oracle. Block i's plaintext (or ciphertext, for decrypt
    /// jobs) is `block_from(seed, i)`; indices line up with responses as
    /// long as the hardware refused nothing, which is the admission
    /// layer's job to guarantee.
    fn verified_count(&self) -> usize {
        if self.hw_rejections > 0 {
            return 0;
        }
        self.responses
            .iter()
            .enumerate()
            .filter(|(i, r)| {
                let input = block_from(self.job.spec.seed, *i as u64);
                let expected = if self.job.spec.decrypt {
                    self.oracle.decrypt_block(input)
                } else {
                    self.oracle.encrypt_block(input)
                };
                expected == r.block
            })
            .count()
    }
}

/// The telemetry an engine carries when the farm runs with observability
/// on: the shared tracer/audit handles, this worker's trace thread id,
/// and (optionally) a tag-plane flight recorder sampling every cycle.
#[derive(Debug)]
pub(crate) struct EngineTel {
    pub(crate) tracer: Tracer,
    pub(crate) audit: AuditSink,
    pub(crate) flight: Option<FlightRecorder>,
    /// Trace thread id (1 + worker index; 0 is the front door).
    pub(crate) tid: u64,
    /// The farm's tenant registry, for name attribution on the audit
    /// path (cold: locked only when a violation or refusal fires).
    pub(crate) tenants: Arc<Mutex<Vec<Arc<TenantEntry>>>>,
}

impl EngineTel {
    /// `(tenant index, tenant name)` for an audit record.
    fn tenant_attribution(&self, job: &Job) -> (Option<u64>, Option<String>) {
        let name = self
            .tenants
            .lock()
            .expect("tenant registry poisoned")
            .get(job.tenant.index())
            .map(|e| e.spec.name.clone());
        (Some(job.tenant.index() as u64), name)
    }
}

/// One worker's batch: a driver plus per-lane job state and utilisation
/// counters.
#[derive(Debug)]
pub(crate) struct LaneEngine<S: LaneBackend> {
    driver: BatchedDriver<S>,
    lanes: Vec<Option<ActiveJob>>,
    /// Scratch, one per lane (avoids per-cycle allocation).
    actions: Vec<LaneAction>,
    accepted: Vec<bool>,
    /// Cycles a lane offered a block the input handshake refused.
    pub(crate) stall_cycles: u64,
    /// Lane-cycles spent with a job resident.
    pub(crate) busy_lane_cycles: u64,
    /// Lane-cycles spent empty.
    pub(crate) idle_lane_cycles: u64,
    /// Blocks completed on this engine (tuner measurements).
    pub(crate) blocks_harvested: u64,
    /// Telemetry hooks; `None` costs one branch per cycle.
    tel: Option<EngineTel>,
    /// Per-lane violation-stream watermark: violations below it have
    /// already been audited (restored streams carry their history).
    vio_seen: Vec<usize>,
}

impl<S: LaneBackend> LaneEngine<S> {
    pub(crate) fn new(sim: S) -> LaneEngine<S> {
        LaneEngine::with_telemetry(sim, None)
    }

    pub(crate) fn with_telemetry(sim: S, tel: Option<EngineTel>) -> LaneEngine<S> {
        let driver = BatchedDriver::from_batched(sim);
        let lanes = driver.lanes();
        LaneEngine {
            driver,
            lanes: (0..lanes).map(|_| None).collect(),
            actions: vec![LaneAction::Idle; lanes],
            accepted: vec![false; lanes],
            stall_cycles: 0,
            busy_lane_cycles: 0,
            idle_lane_cycles: 0,
            blocks_harvested: 0,
            tel,
            vio_seen: vec![0; lanes],
        }
    }

    pub(crate) fn active_count(&self) -> usize {
        self.lanes.iter().filter(|l| l.is_some()).count()
    }

    pub(crate) fn idle_lane(&self) -> Option<usize> {
        self.lanes.iter().position(Option::is_none)
    }

    /// Lands a job on an empty lane. The key-load allocs retag and wipe
    /// the job's own key cells; anything a previous occupant left in
    /// *other* cells stays tagged with that occupant's label, and the
    /// hardware's flow checks — not the scheduler — keep it unreadable.
    pub(crate) fn start_job(&mut self, lane: usize, job: Job) {
        assert!(self.lanes[lane].is_none(), "lane {lane} already occupied");
        let vio_base = self.driver.violations(lane).len();
        self.vio_seen[lane] = self.vio_seen[lane].max(vio_base);
        if let Some(tel) = &self.tel {
            tel.tracer.async_event(
                'n',
                tel.tid,
                job.id,
                "job",
                "farm",
                vec![
                    arg("event", "lane_assign"),
                    arg("lane", lane as u64),
                    arg("cycle", self.driver.cycle()),
                ],
            );
        }
        self.lanes[lane] = Some(ActiveJob::new(job, vio_base));
    }

    /// Advances every lane one cycle, pushing any jobs that completed
    /// onto `completed`. With `pause_submits` no new blocks enter the
    /// pipeline (key loading still proceeds) — the quiesce mode.
    pub(crate) fn step_cycle(&mut self, pause_submits: bool, completed: &mut Vec<JobOutcome>) {
        for (lane, slot) in self.lanes.iter_mut().enumerate() {
            self.actions[lane] = match slot {
                None => {
                    self.idle_lane_cycles += 1;
                    LaneAction::Idle
                }
                Some(aj) => {
                    self.busy_lane_cycles += 1;
                    let user = aj.job.spec.user;
                    let slot_base = 2 * aj.job.spec.key_slot;
                    // Alloc/write actions always land, so the phase
                    // advances as the action is issued; Submit advances
                    // only on acceptance, below.
                    match aj.phase {
                        LanePhase::AllocHi => {
                            aj.phase = LanePhase::AllocLo;
                            LaneAction::Alloc {
                                cell: slot_base,
                                owner: user,
                            }
                        }
                        LanePhase::AllocLo => {
                            aj.phase = LanePhase::WriteHi;
                            LaneAction::Alloc {
                                cell: slot_base + 1,
                                owner: user,
                            }
                        }
                        LanePhase::WriteHi => {
                            aj.phase = LanePhase::WriteLo;
                            LaneAction::WriteKey {
                                cell: slot_base,
                                data: aj.key_hi,
                                writer: user,
                            }
                        }
                        LanePhase::WriteLo => {
                            aj.phase = LanePhase::KeyWait(KEY_PREP_CYCLES);
                            LaneAction::WriteKey {
                                cell: slot_base + 1,
                                data: aj.key_lo,
                                writer: user,
                            }
                        }
                        LanePhase::KeyWait(n) => {
                            aj.phase = if n <= 1 {
                                LanePhase::Stream
                            } else {
                                LanePhase::KeyWait(n - 1)
                            };
                            LaneAction::Idle
                        }
                        LanePhase::Stream => {
                            if pause_submits || aj.next_block >= aj.job.spec.blocks {
                                LaneAction::Idle
                            } else {
                                LaneAction::Submit {
                                    req: Request {
                                        block: block_from(aj.job.spec.seed, aj.next_block as u64),
                                        key_slot: aj.job.spec.key_slot,
                                        user,
                                    },
                                    decrypt: aj.job.spec.decrypt,
                                }
                            }
                        }
                    }
                }
            };
        }

        self.driver.step(&self.actions, &mut self.accepted);
        if self.tel.is_some() {
            self.observe();
        }

        for lane in 0..self.lanes.len() {
            let Some(aj) = self.lanes[lane].as_mut() else {
                continue;
            };
            if let LaneAction::Submit { .. } = self.actions[lane] {
                if self.accepted[lane] {
                    aj.next_block += 1;
                } else {
                    self.stall_cycles += 1;
                }
            }
            // Harvest whatever the lane emitted this cycle.
            let fresh = self.driver.responses[lane].len();
            if fresh > 0 {
                self.blocks_harvested += fresh as u64;
                aj.responses.append(&mut self.driver.responses[lane]);
            }
            if let (Some(tel), false) = (&self.tel, self.driver.rejections[lane].is_empty()) {
                let (tenant, tenant_name) = tel.tenant_attribution(&aj.job);
                for rej in &self.driver.rejections[lane] {
                    tel.audit.record(AuditEvent {
                        kind: Some(AuditKind::HwReleaseRefused),
                        tenant,
                        tenant_name: tenant_name.clone(),
                        job: Some(aj.job.id),
                        lane: Some(lane as u64),
                        cycle: Some(rej.cycle),
                        node: None,
                        source: Some("out_block".to_owned()),
                        detail: format!(
                            "release check refused a response for principal {:?}",
                            rej.user
                        ),
                    });
                }
            }
            aj.hw_rejections += self.driver.rejections[lane].len();
            self.driver.rejections[lane].clear();

            if aj.done_submitting() && self.driver.in_flight(lane) == 0 {
                let aj = self.lanes[lane].take().expect("checked above");
                let violations = self.driver.violations(lane).len() - aj.vio_base;
                let verified = aj.verified_count();
                if let Some(tel) = &self.tel {
                    tel.tracer.async_event(
                        'e',
                        tel.tid,
                        aj.job.id,
                        "job",
                        "farm",
                        vec![
                            arg("responses", aj.responses.len() as u64),
                            arg("verified", verified as u64),
                            arg("violations", violations as u64),
                            arg("cycle", self.driver.cycle()),
                        ],
                    );
                }
                completed.push(JobOutcome {
                    id: aj.job.id,
                    tenant: aj.job.tenant,
                    responses: aj.responses.len(),
                    rejections: aj.hw_rejections,
                    verified,
                    violations,
                });
            }
        }
    }

    /// The telemetry tap, run once per cycle after the driver settles:
    /// samples the flight recorder and turns any violations fresh since
    /// the per-lane watermark into attributed audit records (plus a
    /// flight-dump trigger on the offending lane).
    fn observe(&mut self) {
        let Some(tel) = self.tel.as_mut() else { return };
        if let Some(flight) = tel.flight.as_mut() {
            flight.sample(self.driver.sim_mut());
        }
        for lane in 0..self.lanes.len() {
            let vios = self.driver.violations(lane);
            if vios.len() <= self.vio_seen[lane] {
                continue;
            }
            let fresh: Vec<RuntimeViolation> = vios[self.vio_seen[lane]..].to_vec();
            self.vio_seen[lane] = vios.len();
            let (tenant, tenant_name, job) = match &self.lanes[lane] {
                Some(aj) => {
                    let (t, n) = tel.tenant_attribution(&aj.job);
                    (t, n, Some(aj.job.id))
                }
                None => (None, None, None),
            };
            for v in fresh {
                let detail = v.to_string();
                let (kind, node, source) = match &v {
                    RuntimeViolation::DowngradeRejected { node, .. } => (
                        AuditKind::DowngradeRejected,
                        Some(node.index() as u64),
                        Some(ifc_check::runtime_blame(self.driver.sim().netlist(), *node)),
                    ),
                    RuntimeViolation::OutputLeak { port, .. } => (
                        AuditKind::OutputLeak,
                        self.driver
                            .sim()
                            .netlist()
                            .output(port)
                            .map(|n| n.index() as u64),
                        Some(port.clone()),
                    ),
                };
                tel.audit.record(AuditEvent {
                    kind: Some(kind),
                    tenant,
                    tenant_name: tenant_name.clone(),
                    job,
                    lane: Some(lane as u64),
                    cycle: Some(v.cycle()),
                    node,
                    source,
                    detail: detail.clone(),
                });
                if let Some(flight) = tel.flight.as_mut() {
                    flight.trigger(lane, v.cycle(), &detail);
                }
            }
        }
    }

    /// Dumps any armed flight post-rolls immediately — call before the
    /// engine is dropped or dismantled, so a violation caught within
    /// `post_roll` cycles of the end still produces its VCD.
    pub(crate) fn flush_flight(&mut self) {
        if let Some(flight) = self.tel.as_mut().and_then(|t| t.flight.as_mut()) {
            flight.flush();
        }
    }

    /// Parks submissions and runs until no lane has a request in flight
    /// (jobs that finish on the way out are reported into `completed`).
    ///
    /// # Panics
    ///
    /// Panics if the pipeline fails to drain within a generous bound.
    pub(crate) fn quiesce(&mut self, completed: &mut Vec<JobOutcome>) {
        for _ in 0..QUIESCE_CYCLE_CAP {
            if (0..self.lanes.len()).all(|l| self.driver.in_flight(l) == 0) {
                return;
            }
            self.step_cycle(true, completed);
        }
        panic!("lane engine failed to quiesce within {QUIESCE_CYCLE_CAP} cycles");
    }

    /// Checkpoints and removes every live session. Call only after
    /// [`quiesce`](Self::quiesce) — a snapshot taken with requests in
    /// flight would silently drop them (in-flight accounting lives in
    /// the driver, not the simulator state).
    pub(crate) fn dismantle(&mut self) -> Vec<(ActiveJob, LaneSnapshot)> {
        let mut out = Vec::new();
        for lane in 0..self.lanes.len() {
            assert_eq!(
                self.driver.in_flight(lane),
                0,
                "dismantle before quiesce would lose in-flight requests"
            );
            if let Some(aj) = self.lanes[lane].take() {
                let snap = self.driver.sim_mut().lane_snapshot(lane);
                out.push((aj, snap));
            }
        }
        out
    }

    /// Resumes a checkpointed session on an empty lane. The snapshot's
    /// violation stream is restored with it, so the job's `vio_base`
    /// delta accounting carries over unchanged.
    pub(crate) fn adopt(&mut self, lane: usize, aj: ActiveJob, snap: &LaneSnapshot) {
        assert!(self.lanes[lane].is_none(), "lane {lane} already occupied");
        self.driver.sim_mut().restore_lane(lane, snap);
        // The restored stream carries the session's violation history —
        // already audited by the engine it came from.
        self.vio_seen[lane] = self.driver.violations(lane).len();
        if let Some(tel) = &self.tel {
            tel.tracer.async_event(
                'n',
                tel.tid,
                aj.job.id,
                "job",
                "farm",
                vec![arg("event", "adopt"), arg("lane", lane as u64)],
            );
        }
        self.lanes[lane] = Some(aj);
    }

    /// Takes and resets the utilisation counters — the scheduler flushes
    /// them into the farm-wide metrics once per quantum.
    pub(crate) fn take_counters(&mut self) -> EngineCounters {
        let c = EngineCounters {
            stall_cycles: self.stall_cycles,
            busy_lane_cycles: self.busy_lane_cycles,
            idle_lane_cycles: self.idle_lane_cycles,
            blocks: self.blocks_harvested,
        };
        self.stall_cycles = 0;
        self.busy_lane_cycles = 0;
        self.idle_lane_cycles = 0;
        self.blocks_harvested = 0;
        c
    }
}

/// One quantum's utilisation, flushed by [`LaneEngine::take_counters`].
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct EngineCounters {
    pub(crate) stall_cycles: u64,
    pub(crate) busy_lane_cycles: u64,
    pub(crate) idle_lane_cycles: u64,
    pub(crate) blocks: u64,
}
