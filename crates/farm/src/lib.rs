//! Accelerator-farm service: a long-lived multi-tenant scheduler over
//! the lane-batched AES simulators.
//!
//! The fleet harness ([`accel::fleet`]) measures a *static* workload:
//! every session is known up front, partitioned once, and run to
//! completion. A deployed accelerator pool doesn't look like that — jobs
//! arrive continuously from many mutually distrusting tenants, differ
//! wildly in size, and finish at different times, leaving lanes idle
//! inside half-finished batches. This crate turns the batched simulator
//! into a *service*:
//!
//! * **Admission** ([`Farm::submit`]) enforces the per-tenant IFC policy
//!   *before* a job reaches hardware: the submitted label must match the
//!   tenant's registered label (no spoofing), and only the supervisor may
//!   target the master-key slot — the same rules the hardware's
//!   nonmalleable-declassification check enforces at release time, moved
//!   to the front door so a malicious tenant cannot burn pool cycles.
//!   Queues are bounded; a full queue pushes back with
//!   [`AdmissionError::QueueFull`] instead of buffering unboundedly.
//! * **Work stealing** ([`queue`]): admitted jobs land in per-worker
//!   sharded deques. A worker drains its own shard LIFO and steals the
//!   oldest jobs from its neighbours when empty, so a burst aimed at one
//!   shard spreads across the pool.
//! * **Dynamic lane re-packing** ([`service`], [`engine`]): each worker
//!   drives one lane-batched engine and *refills* lanes the moment a job
//!   completes, instead of waiting for the whole batch. Between
//!   scheduling quanta the worker compares its batch width against what
//!   the throughput model ([`tuner::WidthTuner`]) recommends for the
//!   current load and — when they disagree — checkpoints every live lane
//!   ([`sim::LaneSnapshot`]), rebuilds the engine at the new width on the
//!   same compiled tape, and restores the sessions mid-flight.
//! * **Measured width selection** ([`tuner`]): the width chosen per batch
//!   comes from per-width blocks/s estimates seeded from the repo's
//!   `BENCH_sim.json` measurements and refined online (EWMA) from this
//!   host's observed quanta. The estimates are why the farm avoids the
//!   W=8 batched-throughput cliff: eight waiting jobs pack into two
//!   four-wide batches, never one eight-wide one, unless this host
//!   actually measures W=8 faster.
//!
//! [`Farm::metrics`] snapshots the whole service as plain data (and JSON)
//! for the benchmark guards: per-tenant counters, queue depth, stall
//! rate, lane-occupancy histogram, steal/re-pack counts.

pub mod baseline;
mod engine;
pub mod metrics;
mod queue;
mod service;
mod tenant;
pub mod tuner;

mod backend;

pub use backend::AnyLane;
pub use metrics::{FarmMetrics, TenantMetrics};
pub use service::{Farm, FarmConfig, FarmReport};
pub use tenant::{AdmissionError, JobOutcome, JobSpec, TenantId, TenantSpec};
pub use tuner::WidthTuner;
