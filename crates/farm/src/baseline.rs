//! Static-packing baseline for the farm benchmarks.
//!
//! The comparison point `farm_guard` measures against: the fleet's
//! strategy applied to a mixed-size job list. All jobs are known up
//! front, partitioned once by [`accel::fleet::plan_batches`] (widest
//! fit, clamped to worker coverage), and each batch runs to completion
//! with **no refill** — when a short job finishes next to a long one,
//! its lane idles until the whole batch drains, exactly what a static
//! scheduler does to a churn workload. Same engines, same tape, same
//! verification; the only difference is the scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

use accel::fleet::plan_batches;
use hdl::Netlist;
use sim::{BatchedSim, OptConfig, TrackMode};

use crate::engine::LaneEngine;
use crate::tenant::{Job, JobOutcome, JobSpec, TenantId};

/// Cycle cap per batch — generous against any plausible workload; a
/// batch exceeding it means lost requests, which should fail loudly.
const BATCH_CYCLE_CAP: u64 = 1_000_000;

/// What the static baseline run observed.
#[derive(Debug, Clone)]
pub struct StaticReport {
    /// Per-job outcomes (same shape the farm reports).
    pub outcomes: Vec<JobOutcome>,
    /// Wall-clock time for the whole run.
    pub wall: Duration,
}

impl StaticReport {
    /// Total completed blocks.
    #[must_use]
    pub fn blocks(&self) -> u64 {
        self.outcomes.iter().map(|o| o.responses as u64).sum()
    }

    /// Aggregate blocks per second.
    #[must_use]
    pub fn blocks_per_sec(&self) -> f64 {
        self.blocks() as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Whether every response of every job matched the software oracle.
    #[must_use]
    pub fn all_verified(&self) -> bool {
        self.outcomes
            .iter()
            .all(|o| o.verified == o.responses && o.rejections == 0)
    }
}

/// Runs `jobs` to completion under static widest-fit packing (the
/// non-farm scheduler) and reports outcomes plus wall time.
///
/// # Panics
///
/// Panics if a batch fails to complete within a generous cycle cap.
#[must_use]
pub fn run_static(
    net: &Netlist,
    mode: TrackMode,
    opt: &OptConfig,
    jobs: &[JobSpec],
) -> StaticReport {
    let workers = thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(jobs.len().max(1));
    let batches = plan_batches(jobs.len(), workers, 1);
    let proto = BatchedSim::with_tracking_opt(net.clone(), mode, 1, opt);
    let next = AtomicUsize::new(0);
    let outcomes = Mutex::new(Vec::with_capacity(jobs.len()));

    let started = Instant::now();
    thread::scope(|s| {
        for _ in 0..workers.min(batches.len().max(1)) {
            s.spawn(|| loop {
                let b = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(first, width)) = batches.get(b) else {
                    break;
                };
                let mut engine = LaneEngine::new(proto.with_lanes(width));
                for lane in 0..width {
                    engine.start_job(
                        lane,
                        Job {
                            id: (first + lane) as u64,
                            tenant: TenantId(0),
                            spec: jobs[first + lane],
                        },
                    );
                }
                let mut done = Vec::with_capacity(width);
                let mut cycles = 0u64;
                while engine.active_count() > 0 {
                    engine.step_cycle(false, &mut done);
                    cycles += 1;
                    assert!(
                        cycles < BATCH_CYCLE_CAP,
                        "static batch failed to complete within {BATCH_CYCLE_CAP} cycles"
                    );
                }
                outcomes
                    .lock()
                    .expect("outcomes poisoned")
                    .append(&mut done);
            });
        }
    });
    StaticReport {
        outcomes: outcomes.into_inner().expect("outcomes poisoned"),
        wall: started.elapsed(),
    }
}
