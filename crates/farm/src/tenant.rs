//! Tenants, job specifications, and admission-time policy errors.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use ifc_lattice::Label;

/// Handle to a registered tenant, returned by
/// [`Farm::register_tenant`](crate::Farm::register_tenant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TenantId(pub(crate) usize);

impl TenantId {
    /// The tenant's registry index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// A tenant's registration: who they are and which principal label their
/// traffic carries. The label is fixed at registration — admission
/// rejects any job claiming a different one.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Display name (metrics and reports).
    pub name: String,
    /// The principal label stamped on every request this tenant submits.
    pub label: Label,
}

/// One encrypt/decrypt job: a deterministic stream of blocks against one
/// key slot, exactly the fleet harness's per-session workload shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSpec {
    /// Scratchpad key slot (0..=3; slot 3 is the master key and
    /// supervisor-only).
    pub key_slot: usize,
    /// Number of blocks to stream (must be positive).
    pub blocks: usize,
    /// Seed for the deterministic key/block stream
    /// ([`accel::fleet::block_from`]).
    pub seed: u64,
    /// Run the decrypt datapath instead of encrypt.
    pub decrypt: bool,
    /// The label the submitter claims to act as. Must equal the tenant's
    /// registered label or admission rejects the job as a spoof.
    pub user: Label,
}

/// Why a job was refused at the farm's front door, before touching any
/// simulated hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// The tenant handle is not in this farm's registry.
    UnknownTenant,
    /// The job claimed a label other than the tenant's registered one.
    LabelSpoof {
        /// Label the job claimed.
        claimed: Label,
        /// Label the tenant registered with.
        registered: Label,
    },
    /// A non-supervisor tenant targeted the master-key slot.
    MasterSlotDenied,
    /// The key slot is outside the scratchpad (0..=3).
    BadKeySlot(usize),
    /// The job streams zero blocks.
    ZeroBlocks,
    /// The admission queue is at capacity — backpressure; retry later.
    QueueFull,
    /// The farm is draining and accepts no new work.
    Draining,
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::UnknownTenant => write!(f, "unknown tenant"),
            AdmissionError::LabelSpoof {
                claimed,
                registered,
            } => write!(
                f,
                "label spoof: job claims {claimed:?} but tenant registered {registered:?}"
            ),
            AdmissionError::MasterSlotDenied => {
                write!(f, "only the supervisor may target the master-key slot")
            }
            AdmissionError::BadKeySlot(slot) => write!(f, "key slot {slot} out of range (0..=3)"),
            AdmissionError::ZeroBlocks => write!(f, "job streams zero blocks"),
            AdmissionError::QueueFull => write!(f, "admission queue full (backpressure)"),
            AdmissionError::Draining => write!(f, "farm is draining"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// An admitted job travelling through the queues to a worker lane.
#[derive(Debug, Clone)]
pub(crate) struct Job {
    /// Farm-unique job id (admission order).
    pub(crate) id: u64,
    pub(crate) tenant: TenantId,
    pub(crate) spec: JobSpec,
}

/// What one completed job observed, reported back per tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobOutcome {
    /// The job's admission id.
    pub id: u64,
    /// The submitting tenant.
    pub tenant: TenantId,
    /// Blocks the hardware completed.
    pub responses: usize,
    /// Blocks the hardware's release check refused.
    pub rejections: usize,
    /// Responses that matched the software AES oracle.
    pub verified: usize,
    /// Runtime violations recorded on the job's lane during its tenure.
    pub violations: usize,
}

/// A tenant's live counters. All atomics: workers and the metrics
/// snapshot touch them concurrently without a lock.
#[derive(Debug, Default)]
pub(crate) struct TenantCounters {
    /// Jobs admitted into the queues.
    pub(crate) submitted: AtomicU64,
    /// Jobs refused by the admission policy (spoof / master-slot / bad
    /// spec).
    pub(crate) admission_rejected: AtomicU64,
    /// Jobs refused by queue backpressure.
    pub(crate) queue_rejected: AtomicU64,
    /// Jobs fully completed.
    pub(crate) completed: AtomicU64,
    /// Blocks completed across all jobs.
    pub(crate) blocks: AtomicU64,
    /// Blocks verified against the software oracle.
    pub(crate) verified: AtomicU64,
    /// Runtime violations recorded on this tenant's lanes.
    pub(crate) violations: AtomicU64,
    /// Blocks the hardware's release check refused.
    pub(crate) hw_rejections: AtomicU64,
}

/// A registered tenant: spec plus counters.
#[derive(Debug)]
pub(crate) struct TenantEntry {
    pub(crate) spec: TenantSpec,
    pub(crate) counters: TenantCounters,
}

impl TenantEntry {
    pub(crate) fn new(spec: TenantSpec) -> TenantEntry {
        TenantEntry {
            spec,
            counters: TenantCounters::default(),
        }
    }

    /// Folds one job's outcome into the counters.
    pub(crate) fn record_outcome(&self, outcome: &JobOutcome) {
        let c = &self.counters;
        c.completed.fetch_add(1, Ordering::Relaxed);
        c.blocks
            .fetch_add(outcome.responses as u64, Ordering::Relaxed);
        c.verified
            .fetch_add(outcome.verified as u64, Ordering::Relaxed);
        c.violations
            .fetch_add(outcome.violations as u64, Ordering::Relaxed);
        c.hw_rejections
            .fetch_add(outcome.rejections as u64, Ordering::Relaxed);
    }
}
