//! Plain-data metrics snapshots and their JSON rendering.
//!
//! Hand-rolled JSON like the rest of the repo (the build environment is
//! offline; no serde). The shape is consumed by the `farm_guard`
//! benchmark gate and uploaded as a CI artifact.

/// A guarded ratio: `num / den` only when both operands are finite and
/// the denominator is positive; `0.0` otherwise. Every rate the farm
/// reports goes through this, so `stall_rate` with zero busy cycles or a
/// `blocks_per_sec` taken microseconds after start can never surface as
/// `NaN`/`inf` — which would render as unparseable JSON.
#[must_use]
pub fn rate(num: f64, den: f64) -> f64 {
    if !num.is_finite() || !den.is_finite() || den <= 0.0 {
        return 0.0;
    }
    let r = num / den;
    if r.is_finite() {
        r
    } else {
        0.0
    }
}

/// Last-resort guard applied to every float the JSON rendering formats:
/// `format!` writes `NaN`/`inf` verbatim, which no JSON parser accepts.
fn finite(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        0.0
    }
}

/// One tenant's counters at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantMetrics {
    /// Registered display name.
    pub name: String,
    /// Jobs admitted into the queues.
    pub submitted: u64,
    /// Jobs refused by the admission policy.
    pub admission_rejected: u64,
    /// Jobs refused by queue backpressure.
    pub queue_rejected: u64,
    /// Jobs fully completed.
    pub completed: u64,
    /// Blocks completed.
    pub blocks: u64,
    /// Blocks verified against the software oracle.
    pub verified: u64,
    /// Runtime violations recorded on this tenant's lanes.
    pub violations: u64,
    /// Blocks the hardware's release check refused.
    pub hw_rejections: u64,
    /// Completed blocks per wall-clock second since the farm started.
    pub blocks_per_sec: f64,
}

/// A point-in-time snapshot of the whole service.
#[derive(Debug, Clone, PartialEq)]
pub struct FarmMetrics {
    /// Wall-clock seconds since the farm started.
    pub elapsed_secs: f64,
    /// Blocks completed across all tenants.
    pub blocks_total: u64,
    /// Aggregate completed blocks per second.
    pub blocks_per_sec: f64,
    /// Admitted jobs not yet claimed by a worker.
    pub queue_depth: usize,
    /// Jobs admitted but not yet completed.
    pub active_jobs: usize,
    /// Cycles a lane offered a block the input handshake refused.
    pub stall_cycles: u64,
    /// Lane-cycles spent with a job resident.
    pub busy_lane_cycles: u64,
    /// Lane-cycles spent empty.
    pub idle_lane_cycles: u64,
    /// `stall_cycles / busy_lane_cycles`.
    pub stall_rate: f64,
    /// Engine rebuilds at a new width (dynamic re-packing events).
    pub repacks: u64,
    /// Jobs popped from another worker's queue shard.
    pub steals: u64,
    /// Scheduling quanta executed per lane width — the lane-occupancy
    /// histogram, `(width, quanta)` per supported width.
    pub width_quanta: Vec<(usize, u64)>,
    /// The width tuner's effective blocks/s estimate per supported
    /// width at snapshot time (seeds refined by this run's online
    /// measurements) — what re-packing decisions were based on.
    pub width_estimates: Vec<(usize, f64)>,
    /// Per-tenant counters, in registration order.
    pub tenants: Vec<TenantMetrics>,
}

/// Minimal JSON string escaping (tenant names are the only free text).
fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

impl FarmMetrics {
    /// Renders the snapshot as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let widths: Vec<String> = self
            .width_quanta
            .iter()
            .map(|(w, q)| format!("{{\"width\": {w}, \"quanta\": {q}}}"))
            .collect();
        let estimates: Vec<String> = self
            .width_estimates
            .iter()
            .map(|(w, e)| {
                format!(
                    "{{\"width\": {w}, \"blocks_per_sec_estimate\": {:.1}}}",
                    finite(*e)
                )
            })
            .collect();
        let tenants: Vec<String> = self
            .tenants
            .iter()
            .map(|t| {
                format!(
                    "{{\"name\": \"{}\", \"submitted\": {}, \"admission_rejected\": {}, \
                     \"queue_rejected\": {}, \"completed\": {}, \"blocks\": {}, \
                     \"verified\": {}, \"violations\": {}, \"hw_rejections\": {}, \
                     \"blocks_per_sec\": {:.1}}}",
                    escape(&t.name),
                    t.submitted,
                    t.admission_rejected,
                    t.queue_rejected,
                    t.completed,
                    t.blocks,
                    t.verified,
                    t.violations,
                    t.hw_rejections,
                    finite(t.blocks_per_sec),
                )
            })
            .collect();
        format!(
            "{{\n  \"elapsed_secs\": {:.3},\n  \"blocks_total\": {},\n  \
             \"blocks_per_sec\": {:.1},\n  \"queue_depth\": {},\n  \"active_jobs\": {},\n  \
             \"stall_cycles\": {},\n  \"busy_lane_cycles\": {},\n  \"idle_lane_cycles\": {},\n  \
             \"stall_rate\": {:.4},\n  \"repacks\": {},\n  \"steals\": {},\n  \
             \"width_quanta\": [{}],\n  \"width_estimates\": [{}],\n  \"tenants\": [{}]\n}}",
            finite(self.elapsed_secs),
            self.blocks_total,
            finite(self.blocks_per_sec),
            self.queue_depth,
            self.active_jobs,
            self.stall_cycles,
            self.busy_lane_cycles,
            self.idle_lane_cycles,
            finite(self.stall_rate),
            self.repacks,
            self.steals,
            widths.join(", "),
            estimates.join(", "),
            tenants.join(", "),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_renders_and_escapes() {
        let m = FarmMetrics {
            elapsed_secs: 1.5,
            blocks_total: 10,
            blocks_per_sec: 6.7,
            queue_depth: 0,
            active_jobs: 0,
            stall_cycles: 1,
            busy_lane_cycles: 100,
            idle_lane_cycles: 3,
            stall_rate: 0.01,
            repacks: 2,
            steals: 1,
            width_quanta: vec![(1, 0), (4, 5)],
            width_estimates: vec![(1, 15000.0), (4, 25000.5)],
            tenants: vec![TenantMetrics {
                name: "a\"b".into(),
                submitted: 1,
                admission_rejected: 0,
                queue_rejected: 0,
                completed: 1,
                blocks: 10,
                verified: 10,
                violations: 0,
                hw_rejections: 0,
                blocks_per_sec: 6.7,
            }],
        };
        let json = m.to_json();
        assert!(json.contains("\"blocks_total\": 10"));
        assert!(json.contains("\\\"b\""), "quote in name is escaped");
        assert!(json.contains("{\"width\": 4, \"quanta\": 5}"));
        assert!(json.contains("{\"width\": 4, \"blocks_per_sec_estimate\": 25000.5}"));
    }

    #[test]
    fn rate_guards_every_degenerate_denominator() {
        assert_eq!(rate(10.0, 2.0), 5.0);
        assert_eq!(rate(10.0, 0.0), 0.0, "zero denominator");
        assert_eq!(rate(10.0, -1.0), 0.0, "negative denominator");
        assert_eq!(rate(10.0, f64::NAN), 0.0, "NaN denominator");
        assert_eq!(rate(f64::NAN, 2.0), 0.0, "NaN numerator");
        assert_eq!(rate(10.0, f64::INFINITY), 0.0, "inf denominator");
        assert_eq!(rate(f64::MAX, f64::MIN_POSITIVE), 0.0, "overflowing ratio");
    }

    #[test]
    fn json_never_emits_nan_or_inf() {
        let m = FarmMetrics {
            elapsed_secs: f64::NAN,
            blocks_total: 0,
            blocks_per_sec: f64::INFINITY,
            queue_depth: 0,
            active_jobs: 0,
            stall_cycles: 0,
            busy_lane_cycles: 0,
            idle_lane_cycles: 0,
            stall_rate: f64::NAN,
            repacks: 0,
            steals: 0,
            width_quanta: vec![(1, 0)],
            width_estimates: vec![(1, f64::NEG_INFINITY)],
            tenants: vec![TenantMetrics {
                name: "t".into(),
                submitted: 0,
                admission_rejected: 0,
                queue_rejected: 0,
                completed: 0,
                blocks: 0,
                verified: 0,
                violations: 0,
                hw_rejections: 0,
                blocks_per_sec: f64::NAN,
            }],
        };
        let json = m.to_json();
        assert!(!json.contains("NaN") && !json.contains("inf"), "{json}");
        // The degenerate fields all collapse to plain zeros.
        assert!(json.contains("\"stall_rate\": 0.0000"), "{json}");
        assert!(json.contains("\"blocks_per_sec\": 0.0"), "{json}");
    }
}
